#!/usr/bin/env python
"""Seed-sensitivity study: is CARE's win statistically real?

Repeats the 4-core multi-copy experiment across several trace seeds and
reports each scheme's speedup over LRU with a confidence interval, plus a
Welch t-test against the SHiP++ baseline.  Use this before trusting any
single-seed number from a reduced-scale run.

    python examples/seed_sensitivity.py [--seeds 5] [--workload 429.mcf]
"""

import argparse

from repro.analysis import format_table, separable, summarize
from repro.sim import SystemConfig, simulate
from repro.workloads import multicopy_traces, spec_names

SCHEMES = ["shippp", "mcare", "care"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="429.mcf", choices=spec_names())
    parser.add_argument("--seeds", type=int, default=5)
    parser.add_argument("--cores", type=int, default=4)
    parser.add_argument("--records", type=int, default=8000)
    args = parser.parse_args()

    cfg = SystemConfig.default(args.cores)
    speedups = {policy: [] for policy in SCHEMES}
    for seed in range(args.seeds):
        traces = multicopy_traces(args.workload, args.cores, args.records,
                                  seed=100 + seed)
        records = [t.records for t in traces]
        base = simulate(records, cfg=cfg, llc_policy="lru", prefetch=True,
                        measure_records=args.records // 2,
                        warmup_records=args.records // 2, seed=seed)
        base_ipc = sum(base.ipc)
        for policy in SCHEMES:
            res = simulate(records, cfg=cfg, llc_policy=policy,
                           prefetch=True,
                           measure_records=args.records // 2,
                           warmup_records=args.records // 2, seed=seed)
            speedups[policy].append(sum(res.ipc) / base_ipc)
        print(f"seed {seed}: " + "  ".join(
            f"{p}={speedups[p][-1]:.3f}" for p in SCHEMES))

    print()
    rows = []
    for policy in SCHEMES:
        s = summarize(speedups[policy])
        rows.append([policy, f"{s.mean:.3f}", f"{s.std:.3f}",
                     f"[{s.ci_low:.3f}, {s.ci_high:.3f}]"])
    print(format_table(["policy", "mean speedup", "std", "95% CI"], rows))

    if args.seeds >= 2:
        for policy in ("mcare", "care"):
            sig, p = separable(speedups[policy], speedups["shippp"])
            verdict = "separable" if sig else "not separable"
            print(f"{policy} vs shippp: p={p:.3f} -> {verdict} at α=0.05")


if __name__ == "__main__":
    main()
