#!/usr/bin/env python
"""PMC deep dive: measurement, distribution, predictability, C-AMAT view.

Walks through the paper's Section III/IV analysis on a live simulation:

1. the Fig. 2 study case, exactly (Tables I & II),
2. the PMC distribution of a real workload's LLC misses (Fig. 5's view),
3. PMC predictability per PC (Table III's view),
4. the C-AMAT decomposition the PMC metric derives from.

    python examples/pmc_analysis.py [--workload 429.mcf]
"""

import argparse

from repro.analysis import (
    camat_breakdown,
    format_table,
    paper_study_case,
)
from repro.core.pmc import PMC_BIN_WIDTH, PMC_NUM_BINS, pmc_delta_summary
from repro.sim import SystemConfig, simulate
from repro.workloads import spec_names, spec_trace


def show_study_case() -> None:
    print("=" * 64)
    print("1. Study case (Fig. 2): why MLP-based cost is not enough")
    print("=" * 64)
    result = paper_study_case()
    rows = [[label, str(result.mlp_cost[label]), str(result.pmc[label])]
            for label in sorted(result.mlp_cost)]
    print(format_table(["miss", "MLP-based cost", "PMC"], rows))
    print("-> A has the highest MLP cost yet zero PMC: every one of its")
    print("   miss cycles hides under other accesses' base cycles.\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="429.mcf",
                        choices=spec_names())
    parser.add_argument("--records", type=int, default=12000)
    args = parser.parse_args()

    show_study_case()

    trace = spec_trace(args.workload, n_records=args.records, seed=11)
    res = simulate([trace.records], cfg=SystemConfig.default(1),
                   llc_policy="lru", prefetch=False,
                   measure_records=args.records // 2,
                   warmup_records=args.records // 2,
                   collect_deltas=True, seed=1)
    stats = res.conc[0]

    print("=" * 64)
    print(f"2. PMC distribution for {args.workload} (Fig. 5's view)")
    print("=" * 64)
    total = max(1, sum(stats.pmc_histogram))
    for i, count in enumerate(stats.pmc_histogram):
        lo = i * PMC_BIN_WIDTH
        label = (f"{lo}-{lo + PMC_BIN_WIDTH - 1}"
                 if i < PMC_NUM_BINS - 1 else f"{lo}+")
        print(f"  {label:>8} cyc  {'#' * int(40 * count / total):40s} "
              f"{count / total:6.1%}")
    print(f"  misses={stats.misses}  pure misses={stats.pure_misses} "
          f"(pMR={stats.pure_miss_rate:.3f})  mean PMC={stats.mean_pmc:.1f}\n")

    print("=" * 64)
    print("3. PMC predictability per PC (Table III's view)")
    print("=" * 64)
    summary = pmc_delta_summary(res.pmc_deltas[0])
    print(format_table(
        ["|PMC delta| bucket", "share"],
        [[k, f"{summary[k]:.1%}"] for k in
         ("[0,50)", "[50,100)", "[100,150)", ">=150")]))
    print(f"  median |PMC delta| = {summary['median']:.2f} cycles")
    print("-> consecutive misses of one PC have similar PMC, so the past")
    print("   predicts the future - the basis for CARE's PD counters.\n")

    print("=" * 64)
    print("4. C-AMAT decomposition (Section II-B)")
    print("=" * 64)
    b = camat_breakdown(stats)
    print(f"  C-AMAT            = {b.camat:8.2f} cycles/access")
    print(f"  hit/overlap term  = {b.hit_term:8.2f}")
    print(f"  pMR x pAMP        = {b.pure_miss_term:8.2f} "
          f"(pMR={b.pure_miss_rate:.3f}, pAMP={b.pamp:.1f})")
    print("-> only the pure-miss term hurts; CARE shrinks exactly that.")


if __name__ == "__main__":
    main()
