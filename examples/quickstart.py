#!/usr/bin/env python
"""Quickstart: simulate one workload under LRU and CARE and compare.

Runs a single-core machine on a synthetic mcf-like (pointer-chasing)
workload, first with the LRU baseline and then with CARE, and prints the
metrics the paper revolves around: IPC, MPKI, pure miss rate (pMR), mean
PMC, and the PMC histogram.

    python examples/quickstart.py
"""

from repro.analysis import format_table
from repro.core.pmc import PMC_BIN_WIDTH, PMC_NUM_BINS
from repro.sim import SystemConfig, simulate
from repro.workloads import spec_trace


def main() -> None:
    # 1. Generate a workload trace.  "429.mcf" is the paper's canonical
    #    pointer-chasing benchmark: dependent loads produce isolated,
    #    expensive (high-PMC) misses.
    trace = spec_trace("429.mcf", n_records=12000, seed=42)
    print(f"workload: {trace.name}  ({trace.memory_accesses} accesses, "
          f"{trace.instructions} instructions, "
          f"{trace.footprint_blocks()} blocks touched)")

    # 2. Simulate the same machine with two LLC policies.
    cfg = SystemConfig.default(n_cores=1)
    results = {}
    for policy in ("lru", "care"):
        results[policy] = simulate(
            [trace.records], cfg=cfg, llc_policy=policy, prefetch=True,
            measure_records=6000, warmup_records=6000, seed=1)

    # 3. Compare.
    rows = []
    for policy, res in results.items():
        rows.append([
            policy, f"{res.ipc[0]:.3f}", f"{res.mpki():.2f}",
            f"{res.pmr:.3f}", f"{res.mean_pmc:.1f}", f"{res.aocpa:.1f}",
        ])
    print()
    print(format_table(
        ["policy", "IPC", "MPKI", "pMR", "mean PMC", "AOCPA"], rows))

    speedup = results["care"].ipc[0] / results["lru"].ipc[0]
    print(f"\nCARE speedup over LRU: {speedup:.3f}x")

    # 4. The PMC histogram (Fig. 5's view) under LRU: not all misses cost
    #    the same — the insight CARE is built on.
    hist = results["lru"].conc_total.pmc_histogram
    total = max(1, sum(hist))
    print("\nPMC distribution of LLC misses under LRU:")
    for i in range(PMC_NUM_BINS):
        lo = i * PMC_BIN_WIDTH
        label = (f"{lo:>4}-{lo + PMC_BIN_WIDTH - 1} cyc"
                 if i < PMC_NUM_BINS - 1 else f"{lo:>4}+ cyc   ")
        bar = "#" * int(50 * hist[i] / total)
        print(f"  {label} {bar} {hist[i] / total:.1%}")


if __name__ == "__main__":
    main()
