#!/usr/bin/env python
"""GAP graph-analytics workloads under CARE (the paper's Fig. 9 domain).

Executes real graph kernels (BFS, PageRank, SSSP, ...) over the synthetic
Table IX graphs, traces their memory behavior, and compares LRU vs SHiP++
vs CARE on a 4-core multi-copy run — the setting where the paper argues
irregular access patterns defeat pure re-reference prediction while
concurrency-awareness still helps.

    python examples/graph_analytics.py [--workload bfs-or] [--cores 4]
"""

import argparse

from repro.analysis import format_table
from repro.sim import SystemConfig, simulate
from repro.workloads import (
    GRAPH_SPECS,
    build_graph,
    gap_trace,
    gap_workload_names,
    multicopy_traces,
)

SCHEMES = ["lru", "shippp", "care"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="bfs-or",
                        choices=gap_workload_names())
    parser.add_argument("--cores", type=int, default=4)
    parser.add_argument("--records", type=int, default=8000)
    args = parser.parse_args()

    alg, gkey = args.workload.split("-")
    spec = GRAPH_SPECS[gkey]
    graph = build_graph(gkey)
    print(f"kernel {alg} on {spec.full_name}: |V|={graph.n_vertices} "
          f"|E|={graph.n_edges} (paper scale: {spec.paper_vertices} / "
          f"{spec.paper_edges})")

    sample = gap_trace(args.workload, n_records=2000, seed=0)
    print(f"trace sample: {sample.memory_accesses} accesses over "
          f"{sample.footprint_blocks()} blocks, "
          f"{len({r.pc for r in sample.records})} distinct access-site PCs")

    traces = multicopy_traces(args.workload, args.cores, args.records,
                              seed=7, suite="gap")
    cfg = SystemConfig.default(args.cores)
    rows = []
    base_ipc = None
    for policy in SCHEMES:
        res = simulate([t.records for t in traces], cfg=cfg,
                       llc_policy=policy, prefetch=True,
                       measure_records=args.records // 2,
                       warmup_records=args.records // 2, seed=1)
        total = sum(res.ipc)
        if base_ipc is None:
            base_ipc = total
        rows.append([
            policy, f"{total:.3f}", f"{total / base_ipc:.3f}",
            f"{res.mpki():.2f}", f"{res.pmr:.3f}", f"{res.mean_pmc:.1f}",
        ])
    print()
    print(format_table(
        ["policy", "sum IPC", "vs LRU", "MPKI", "pMR", "mean PMC"], rows))


if __name__ == "__main__":
    main()
