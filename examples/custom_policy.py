#!/usr/bin/env python
"""Writing your own LLC policy and plugging it into the framework.

This is the extension path a downstream user takes: subclass
``ReplacementPolicy``, implement the four hooks, and hand the class to the
simulator.  The example builds "PMC-LRU" — plain LRU that refuses to evict
blocks whose fetching miss was expensive (high PMC) until they age out —
a ~30-line concurrency-aware policy, then races it against LRU and CARE.

    python examples/custom_policy.py
"""

from repro.analysis import format_table
from repro.policies.base import PolicyAccess, ReplacementPolicy
from repro.sim import SystemConfig, simulate
from repro.workloads import spec_trace


class PMCShieldedLRU(ReplacementPolicy):
    """LRU + a one-bit PMC shield.

    Blocks fetched by a costly miss (PMC above ``threshold``) get a shield
    bit; victim selection skips shielded blocks once, then clears their
    shield so nothing becomes immortal.
    """

    name = "pmc_lru"

    def __init__(self, sets: int, ways: int, seed: int = 0,
                 threshold: float = 100.0) -> None:
        super().__init__(sets, ways, seed)
        self.threshold = threshold
        self._stamp = [[0] * ways for _ in range(sets)]
        self._shield = [[False] * ways for _ in range(sets)]
        self._clock = 0

    def _touch(self, set_idx: int, way: int) -> None:
        self._clock += 1
        self._stamp[set_idx][way] = self._clock

    def find_victim(self, set_idx: int, blocks, access: PolicyAccess) -> int:
        stamps = self._stamp[set_idx]
        shield = self._shield[set_idx]
        order = sorted(range(self.ways), key=lambda w: stamps[w])
        for way in order:                 # oldest unshielded block
            if not shield[way]:
                return way
        for way in order:                 # everyone shielded: spend shields
            shield[way] = False
        return order[0]

    def on_hit(self, set_idx: int, way: int, blocks, access: PolicyAccess) -> None:
        self._touch(set_idx, way)

    def on_fill(self, set_idx: int, way: int, blocks, access: PolicyAccess) -> None:
        self._touch(set_idx, way)
        self._shield[set_idx][way] = (
            not access.is_writeback and access.pmc > self.threshold)


def main() -> None:
    trace = spec_trace("429.mcf", n_records=10000, seed=7)
    cfg = SystemConfig.default(1)

    def factory(sets, ways, seed, n_cores):
        return PMCShieldedLRU(sets, ways, seed)

    rows = []
    base = None
    for label, policy in [("lru", "lru"), ("pmc_lru", factory),
                          ("care", "care")]:
        res = simulate([trace.records], cfg=cfg, llc_policy=policy,
                       prefetch=True, measure_records=5000,
                       warmup_records=5000, seed=1)
        if base is None:
            base = res.ipc[0]
        rows.append([label, f"{res.ipc[0]:.3f}", f"{res.ipc[0] / base:.3f}",
                     f"{res.mpki():.2f}", f"{res.pmr:.3f}"])
    print(format_table(["policy", "IPC", "vs LRU", "MPKI", "pMR"], rows))
    print("\nNote what usually happens here: the naive shield LOSES to "
          "plain LRU.\nProtecting blocks just because their miss was "
          "expensive backfires when those\nblocks are also dead (mcf's "
          "pointer chains are exactly that).  This is the\npaper's point: "
          "the cost signal only pays off combined with learned reuse\n"
          "(RC + PD in CARE's SHT), which is why CARE wins where this "
          "toy does not.")


if __name__ == "__main__":
    main()
