#!/usr/bin/env python
"""Multi-programmed LLC study: the paper's 4-core methodology end to end.

Builds a 4-core *mixed* workload (different SPEC-like benchmarks per core),
runs it under every scheme the paper compares with prefetching enabled, and
reports normalized weighted IPC — a miniature of Fig. 10.

    python examples/multicore_llc_study.py [--cores 4] [--records 8000]
"""

import argparse

from repro.analysis import format_bars, format_table, normalized_weighted_ipc
from repro.sim import SystemConfig, simulate
from repro.workloads import mixed_workload_names, mixed_workload_traces

SCHEMES = ["lru", "shippp", "hawkeye", "glider", "mcare", "care"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cores", type=int, default=4)
    parser.add_argument("--records", type=int, default=8000)
    parser.add_argument("--mix", type=int, default=0,
                        help="seeded mix id (0-99)")
    args = parser.parse_args()

    names = mixed_workload_names(args.cores, args.mix)
    print(f"mix {args.mix}: " + ", ".join(names))
    traces = mixed_workload_traces(args.cores, args.mix,
                                   n_records=args.records)
    cfg = SystemConfig.default(args.cores)

    # IPC_alone: each benchmark on an otherwise idle machine (LRU).
    alone = []
    for slot, trace in enumerate(traces):
        res = simulate([trace.records], cfg=SystemConfig.default(1),
                       llc_policy="lru", prefetch=True,
                       measure_records=args.records // 2,
                       warmup_records=args.records // 2, seed=1)
        alone.append(res.ipc[0])
        print(f"  core {slot}: {names[slot]:18s} alone IPC {res.ipc[0]:.3f}")

    # Shared runs under each scheme.
    records = [t.records for t in traces]
    runs = {}
    for policy in SCHEMES:
        runs[policy] = simulate(
            records, cfg=cfg, llc_policy=policy, prefetch=True,
            measure_records=args.records // 2,
            warmup_records=args.records // 2, seed=1)

    base = runs["lru"]
    rows = []
    normalized = {}
    for policy, res in runs.items():
        nw = normalized_weighted_ipc(res, base, alone)
        normalized[policy] = nw
        rows.append([
            policy, f"{sum(res.ipc):.3f}", f"{nw:.3f}",
            f"{res.pmr:.3f}", f"{res.mean_pmc:.1f}",
        ])
    print()
    print(format_table(
        ["policy", "sum IPC", "norm. weighted IPC", "pMR", "mean PMC"],
        rows))
    print()
    print(format_bars(normalized, baseline=normalized["lru"]))


if __name__ == "__main__":
    main()
