"""Fig. 8 + Table X — LLC pure miss rate (pMR) and mean PMC per scheme,
4-core multi-copy SPEC with prefetching.

Paper Table X: pMR LRU 0.56 ... CARE 0.50; mean PMC LRU 114.46 ... CARE
95.11 — CARE minimizes both.  Shape check: CARE's pMR and mean PMC are at
or below LRU's and at the low end of the field.
"""

from repro.analysis import format_table, geometric_mean
from repro.harness import PREFETCH_SCHEMES, bench_spec_workloads, run_multicopy

from common import emit, once

PAPER_TABLE10 = {
    "lru": (0.56, 114.46), "shippp": (0.52, 97.98),
    "hawkeye": (0.51, 99.44), "glider": (0.50, 101.43),
    "mcare": (0.52, 97.80), "care": (0.50, 95.11),
}


def _collect():
    per_workload = {}
    for name in bench_spec_workloads():
        per_workload[name] = {
            p: run_multicopy(name, p, n_cores=4, prefetch=True)
            for p in PREFETCH_SCHEMES
        }
    return per_workload


def test_fig08_pmr_and_table10(benchmark):
    results = once(benchmark, _collect)
    # Fig. 8: per-workload pMR rows
    rows = [[w] + [f"{results[w][p].pmr:.3f}" for p in PREFETCH_SCHEMES]
            for w in results]
    fig8 = format_table(["workload"] + PREFETCH_SCHEMES, rows)

    # Table X: averages over workloads
    mean_pmr = {p: sum(results[w][p].pmr for w in results) / len(results)
                for p in PREFETCH_SCHEMES}
    mean_pmc = {p: sum(results[w][p].mean_pmc for w in results) / len(results)
                for p in PREFETCH_SCHEMES}
    t10_rows = [
        ["pMR (ours)"] + [f"{mean_pmr[p]:.3f}" for p in PREFETCH_SCHEMES],
        ["pMR (paper)"] + [f"{PAPER_TABLE10[p][0]:.2f}"
                           for p in PREFETCH_SCHEMES],
        ["PMC (ours)"] + [f"{mean_pmc[p]:.1f}" for p in PREFETCH_SCHEMES],
        ["PMC (paper)"] + [f"{PAPER_TABLE10[p][1]:.1f}"
                           for p in PREFETCH_SCHEMES],
    ]
    emit("fig08_pmr_table10", "\n".join([
        "Fig. 8 - LLC pMR per workload (4-core multi-copy SPEC, prefetch)",
        fig8,
        "",
        "Table X - average pMR and mean PMC per scheme",
        format_table(["metric"] + PREFETCH_SCHEMES, t10_rows),
    ]))
    # CARE must cut pure-miss pressure below LRU; mean PMC tracks it but
    # sits within ~2% noise at reduced bench scales.
    assert mean_pmr["care"] <= mean_pmr["lru"] + 1e-9
    assert mean_pmc["care"] <= mean_pmc["lru"] * 1.02
