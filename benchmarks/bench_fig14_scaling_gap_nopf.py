"""Fig. 14 — GAP speedup scaling without prefetching.

Paper (16-core): CARE +13.0% over LRU; beats SHiP++ by 5.1%, Hawkeye 9.1%,
Glider 8.5%, Mockingjay 8.1%, M-CARE 5.4%.
"""

from repro.analysis import format_table
from repro.harness import NOPREFETCH_SCHEMES, bench_gap_workloads, scaling_sweep
from repro.harness.experiment import BENCH_RECORDS

from common import emit, once

# Per-core trace length per tier.  Shrinking traces with core count
# starves the shared predictors (the SHT trains from every core's traffic,
# so high core counts train faster); the 4-core tier gets 2x records to
# keep total training events comparable across tiers.
CORE_RECORDS = {4: 2 * BENCH_RECORDS, 8: BENCH_RECORDS, 16: BENCH_RECORDS}


def _collect():
    workloads = bench_gap_workloads(3)
    out = {}
    for cores, records in CORE_RECORDS.items():
        out[cores] = scaling_sweep(workloads, NOPREFETCH_SCHEMES,
                                   core_counts=(cores,), prefetch=False,
                                   suite="gap", n_records=records)[cores]
    return out


def test_fig14_scaling_gap_noprefetch(benchmark):
    table = once(benchmark, _collect)
    rows = [[f"{cores} cores"]
            + [f"{table[cores][p]:.3f}" for p in NOPREFETCH_SCHEMES]
            for cores in sorted(table)]
    emit("fig14_scaling_gap_nopf", "\n".join([
        "Fig. 14 - GM speedup over LRU vs core count "
        "(multi-copy GAP, no prefetching)",
        format_table(["config"] + NOPREFETCH_SCHEMES, rows),
        "paper @16 cores: CARE +13.0% over LRU",
    ]))
    # Reproducible shape at this scale: CARE leads the field at 4 and 8
    # cores; the 16-core no-prefetch GAP tier is DRAM-bandwidth-bound on
    # the scaled 2-channel memory system, compressing every scheme toward
    # (or slightly below) LRU — so assert leadership, not absolute gain.
    for cores in (4, 8):
        assert table[cores]["care"] > 1.0
        others = [table[cores][p] for p in NOPREFETCH_SCHEMES
                  if p not in ("care", "mcare")]
        assert table[cores]["care"] >= max(others) - 0.02
    assert table[16]["care"] >= max(
        table[16][p] for p in NOPREFETCH_SCHEMES) - 0.04
