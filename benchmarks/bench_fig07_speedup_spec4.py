"""Fig. 7 — normalized IPC, 4-core multi-copy SPEC workloads, with L1+L2
prefetching, for LRU / SHiP++ / Hawkeye / Glider / M-CARE / CARE.

Paper headline: CARE +10.3% GM over LRU vs SHiP++ +7.6%, Hawkeye +6.2%,
Glider +7.2%, M-CARE +7.5%.  Shape check: CARE's GM leads the field.
"""

from repro.analysis import format_table
from repro.harness import PREFETCH_SCHEMES, bench_spec_workloads, speedup_sweep

from common import emit, once

PAPER_GM = {"lru": 1.0, "shippp": 1.076, "hawkeye": 1.062,
            "glider": 1.072, "mcare": 1.075, "care": 1.103}


def _collect():
    return speedup_sweep(bench_spec_workloads(), PREFETCH_SCHEMES,
                         n_cores=4, prefetch=True, suite="spec")


def test_fig07_speedup_spec_4core(benchmark):
    table = once(benchmark, _collect)
    rows = [[w] + [f"{table[w][p]:.3f}" for p in PREFETCH_SCHEMES]
            for w in table]
    rows.append(["paper GM"] + [f"{PAPER_GM[p]:.3f}"
                                for p in PREFETCH_SCHEMES])
    emit("fig07_speedup_spec4", "\n".join([
        "Fig. 7 - normalized IPC, 4-core multi-copy SPEC, with prefetching",
        format_table(["workload"] + PREFETCH_SCHEMES, rows),
    ]))
    gm = table["GEOMEAN"]
    assert gm["care"] > 1.0                       # CARE beats LRU
    assert gm["care"] >= gm["mcare"] - 0.01       # PMC >= MLP-cost signal
    # CARE leads (small tolerance: reduced-scale runs are noisy).
    others = [gm[p] for p in PREFETCH_SCHEMES if p != "care"]
    assert gm["care"] >= max(others) - 0.02
