"""Extension — Belady-OPT context for the locality dimension (Section II-C).

On the fast single-level simulator (where future knowledge exists) we place
every practical policy between Random and OPT on the LLC-filtered access
stream of a representative workload.  This is the classical upper-bound
framing the paper's Section II-C invokes.
"""

from repro.analysis import format_table
from repro.harness import simulate_cache
from repro.workloads import spec_trace

from common import emit, once

POLICIES = ["random", "fifo", "lru", "srrip", "drrip", "ship", "shippp",
            "mockingjay", "hawkeye", "opt"]


def _collect():
    trace = spec_trace("482.sphinx3", n_records=20000, seed=9)
    out = {}
    for policy in POLICIES:
        res = simulate_cache(trace.records, sets=32, ways=16, policy=policy,
                             seed=4)
        out[policy] = res.hit_rate
    return out


def test_opt_upper_bound(benchmark):
    rates = once(benchmark, _collect)
    rows = [[p, f"{rates[p]:.3f}"] for p in POLICIES]
    emit("opt_bound", "\n".join([
        "Extension - single-level hit rates vs Belady's OPT "
        "(482.sphinx3-like stream, 32x16 cache)",
        format_table(["policy", "hit rate"], rows),
    ]))
    assert rates["opt"] >= max(v for k, v in rates.items() if k != "opt")
    assert rates["lru"] >= rates["random"] - 0.02
