"""Shared helpers for the per-figure benchmark modules.

Each benchmark regenerates one paper table/figure as text: it prints the
rows (visible with ``pytest -s`` / in benchmark output) and also writes them
to ``benchmarks/results/<name>.txt`` so a full run leaves a reviewable
artifact trail.

Every simulation point routes through :mod:`repro.harness.runner`, so a
rerun in a fresh process serves previously-simulated points from the
persistent result store (``$REPRO_RESULT_STORE``); conftest prints the
cache-hit accounting at the end of the session.  Scale knobs are
documented in :mod:`repro.harness.scale` (``REPRO_BENCH_*`` environment
variables); ``REPRO_WORKERS`` parallelizes the sweeps.
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a figure's text and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The simulations are far too expensive for pytest-benchmark's default
    auto-calibration; one timed round is the measurement.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
