"""Fig. 12 — GAP speedup scaling with core count (with prefetching).

Paper (16-core): CARE +16.1% over LRU; beats SHiP++/Hawkeye/Glider/
Mockingjay/M-CARE by 7.8/12.7/11.6/11.4/7.3%.  Shape checks as Fig. 11.
"""

from repro.analysis import format_table
from repro.harness import PREFETCH_SCHEMES, bench_gap_workloads, scaling_sweep
from repro.harness.experiment import BENCH_RECORDS

from common import emit, once

PAPER_CARE = {4: 1.087, 8: 1.12, 16: 1.161}

# Per-core trace length per tier.  Shrinking traces with core count
# starves the shared predictors (the SHT trains from every core's traffic,
# so high core counts train faster); the 4-core tier gets 2x records to
# keep total training events comparable across tiers.
CORE_RECORDS = {4: 2 * BENCH_RECORDS, 8: BENCH_RECORDS, 16: BENCH_RECORDS}


def _collect():
    workloads = bench_gap_workloads(3)
    out = {}
    for cores, records in CORE_RECORDS.items():
        out[cores] = scaling_sweep(workloads, PREFETCH_SCHEMES,
                                   core_counts=(cores,), prefetch=True,
                                   suite="gap", n_records=records)[cores]
    return out


def test_fig12_scaling_gap(benchmark):
    table = once(benchmark, _collect)
    rows = [[f"{cores} cores"]
            + [f"{table[cores][p]:.3f}" for p in PREFETCH_SCHEMES]
            + [f"{PAPER_CARE[cores]:.3f}"]
            for cores in sorted(table)]
    emit("fig12_scaling_gap", "\n".join([
        "Fig. 12 - GM speedup over LRU vs core count "
        "(multi-copy GAP, with prefetching)",
        format_table(["config"] + PREFETCH_SCHEMES + ["paper CARE"], rows),
    ]))
    for cores in table:
        assert table[cores]["care"] > 0.98   # never meaningfully below LRU
    assert table[16]["care"] > 1.0
