"""Ablation — isolate CARE's two signals (beyond the paper's M-CARE study).

* ``care_locality``    — PD/PMC path off (SHiP++-like signature locality),
* ``care_concurrency`` — RC/reuse path off (cost-only decisions),
* ``care``             — both signals (the full framework).

Expectation (the paper's thesis): both signals together beat either alone.
"""

from repro.analysis import format_table
from repro.harness import bench_spec_workloads, speedup_sweep

from common import emit, once

SCHEMES = ["lru", "care_locality", "care_concurrency", "mcare", "care"]


def _collect():
    return speedup_sweep(bench_spec_workloads(), SCHEMES, n_cores=4,
                         prefetch=True, suite="spec")


def test_ablation_components(benchmark):
    table = once(benchmark, _collect)
    rows = [[w] + [f"{table[w][p]:.3f}" for p in SCHEMES] for w in table]
    emit("ablation_components", "\n".join([
        "Ablation - CARE component contributions "
        "(4-core multi-copy SPEC, prefetching)",
        format_table(["workload"] + SCHEMES, rows),
    ]))
    gm = table["GEOMEAN"]
    assert gm["care"] >= gm["care_locality"] - 0.02
    assert gm["care"] >= gm["care_concurrency"] - 0.02
