"""Table VIII — LLC MPKI of every evaluated SPEC workload (1-core, LRU,
no prefetching).

Absolute MPKI depends on the substrate; the check is the *banding*: the
workloads the paper reports as low-MPKI measure low here, and the
high-MPKI ones measure high.
"""

from repro.analysis import format_table
from repro.harness import run_single
from repro.workloads import SPEC_BENCHMARKS, spec_names

from common import emit, once


def _collect():
    out = {}
    for name in spec_names():
        res = run_single(name, "lru", prefetch=False)
        out[name] = res.mpki()
    return out


def test_table08_mpki(benchmark):
    measured = once(benchmark, _collect)
    rows = []
    for name, mpki in measured.items():
        bench = SPEC_BENCHMARKS[name]
        rows.append([name, bench.pattern_class,
                     f"{bench.paper_mpki:.2f}", f"{mpki:.2f}"])
    emit("table08_mpki", "\n".join([
        "Table VIII - evaluated SPEC workloads: LLC MPKI "
        "(1-core, LRU, no prefetch)",
        format_table(["workload", "class", "MPKI (paper)", "MPKI (ours)"],
                     rows),
    ]))
    # Band preservation: rank correlation between paper and measured MPKI.
    names = list(measured)
    paper_rank = sorted(names, key=lambda n: SPEC_BENCHMARKS[n].paper_mpki)
    ours_rank = sorted(names, key=lambda n: measured[n])
    paper_pos = {n: i for i, n in enumerate(paper_rank)}
    ours_pos = {n: i for i, n in enumerate(ours_rank)}
    n = len(names)
    d2 = sum((paper_pos[x] - ours_pos[x]) ** 2 for x in names)
    spearman = 1 - 6 * d2 / (n * (n * n - 1))
    print(f"\nSpearman rank correlation paper-vs-ours: {spearman:.3f}")
    assert spearman > 0.6
