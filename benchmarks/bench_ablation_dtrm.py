"""Ablation — DTRM adaptive thresholds vs frozen thresholds (Section V-F).

The paper motivates DTRM as the robustness mechanism that adapts the
PMC quantization to each workload/phase.  We compare full CARE against
``care_static`` (initial thresholds forever).
"""

from repro.analysis import format_table
from repro.harness import bench_spec_workloads, speedup_sweep

from common import emit, once

SCHEMES = ["lru", "care_static", "care"]


def _collect():
    return speedup_sweep(bench_spec_workloads(), SCHEMES, n_cores=4,
                         prefetch=True, suite="spec")


def test_ablation_dtrm(benchmark):
    table = once(benchmark, _collect)
    rows = [[w] + [f"{table[w][p]:.3f}" for p in SCHEMES] for w in table]
    emit("ablation_dtrm", "\n".join([
        "Ablation - DTRM adaptive vs frozen thresholds "
        "(4-core multi-copy SPEC, prefetching)",
        format_table(["workload"] + SCHEMES, rows),
    ]))
    gm = table["GEOMEAN"]
    # Adaptation should never cost much and usually helps.
    assert gm["care"] >= gm["care_static"] - 0.03
