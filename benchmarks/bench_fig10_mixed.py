"""Fig. 10 — normalized weighted IPC over mixed 4-core workloads.

Paper: 100 mixes; CARE +12.8% GM over LRU (SHiP++ +11.9%, Hawkeye +6.8%,
Glider +6.4%, M-CARE +11.4%), with CARE best on 67/100 mixes.  We run
``REPRO_BENCH_MIXES`` seeded mixes (same mixes for every scheme) and report
GM normalized weighted IPC plus CARE's win count.
"""

from repro.analysis import format_table, geometric_mean, normalized_weighted_ipc
from repro.harness import PREFETCH_SCHEMES, run_mix, run_single
from repro.harness.experiment import BENCH_MIXES
from repro.workloads import mixed_workload_names

from common import emit, once

PAPER_GM = {"lru": 1.0, "shippp": 1.119, "hawkeye": 1.068,
            "glider": 1.064, "mcare": 1.114, "care": 1.128}


def _collect():
    table = {}
    for mix_id in range(BENCH_MIXES):
        names = mixed_workload_names(4, mix_id)
        # IPC_alone per slot: single-core LRU run of that benchmark.
        alone = [run_single(n, "lru", prefetch=True).ipc[0] for n in names]
        base = run_mix(mix_id, "lru")
        row = {}
        for policy in PREFETCH_SCHEMES:
            res = base if policy == "lru" else run_mix(mix_id, policy)
            row[policy] = normalized_weighted_ipc(res, base, alone)
        table[f"mix{mix_id:03d}"] = row
    return table


def test_fig10_mixed_workloads(benchmark):
    table = once(benchmark, _collect)
    gm = {p: geometric_mean([row[p] for row in table.values()])
          for p in PREFETCH_SCHEMES}
    wins = sum(
        1 for row in table.values()
        if row["care"] >= max(row[p] for p in PREFETCH_SCHEMES) - 1e-12)
    rows = [[mix] + [f"{row[p]:.3f}" for p in PREFETCH_SCHEMES]
            for mix, row in table.items()]
    rows.append(["GEOMEAN"] + [f"{gm[p]:.3f}" for p in PREFETCH_SCHEMES])
    rows.append(["paper GM"] + [f"{PAPER_GM[p]:.3f}"
                                for p in PREFETCH_SCHEMES])
    emit("fig10_mixed", "\n".join([
        "Fig. 10 - normalized weighted IPC, 4-core mixed workloads, "
        "with prefetching",
        format_table(["mix"] + PREFETCH_SCHEMES, rows),
        f"CARE best (or tied) on {wins}/{len(table)} mixes "
        "(paper: 67/100)",
    ]))
    assert gm["care"] > 1.0
    assert gm["care"] >= gm["hawkeye"] - 0.02
