"""Table IX — the GAP graph datasets (scaled synthetic stand-ins)."""

from repro.analysis import format_table
from repro.workloads import GRAPH_SPECS, build_graph, graph_keys

from common import emit, once


def test_table09_graph_datasets(benchmark):
    graphs = once(benchmark, lambda: {k: build_graph(k) for k in graph_keys()})
    rows = []
    for key in graph_keys():
        spec = GRAPH_SPECS[key]
        g = graphs[key]
        rows.append([
            f"{spec.full_name} ({key})",
            spec.paper_vertices, spec.paper_edges,
            g.n_vertices, g.n_edges, f"{g.avg_degree:.1f}",
            spec.description,
        ])
    text = "\n".join([
        "Table IX - graph datasets (paper scale vs built scale)",
        format_table(["dataset", "V(paper)", "E(paper)", "V(built)",
                      "E(built)", "deg(built)", "description"], rows),
    ])
    emit("table09_graphs", text)
    sizes = [graphs[k].n_vertices for k in ("or", "tw", "ur")]
    assert sizes == sorted(sizes)          # urand > twitter > orkut
