"""Fig. 13 — SPEC speedup scaling without prefetching (adds Mockingjay).

Paper (16-core): CARE +19.4% over LRU vs second-best Mockingjay +11.9%.
Shape checks: CARE > LRU at every tier and CARE leads the field at 16
cores.
"""

from repro.analysis import format_table
from repro.harness import NOPREFETCH_SCHEMES, bench_spec_workloads, scaling_sweep
from repro.harness.experiment import BENCH_RECORDS, BENCH_WORKLOADS

from common import emit, once

PAPER = {16: {"care": 1.194, "second_best": 1.119}}

# Per-core trace length per tier.  Shrinking traces with core count
# starves the shared predictors (the SHT trains from every core's traffic,
# so high core counts train faster); the 4-core tier gets 2x records to
# keep total training events comparable across tiers.
CORE_RECORDS = {4: 2 * BENCH_RECORDS, 8: BENCH_RECORDS, 16: BENCH_RECORDS}


def _collect():
    workloads = bench_spec_workloads(max(3, BENCH_WORKLOADS // 3))
    out = {}
    for cores, records in CORE_RECORDS.items():
        out[cores] = scaling_sweep(workloads, NOPREFETCH_SCHEMES,
                                   core_counts=(cores,), prefetch=False,
                                   suite="spec", n_records=records)[cores]
    return out


def test_fig13_scaling_spec_noprefetch(benchmark):
    table = once(benchmark, _collect)
    rows = [[f"{cores} cores"]
            + [f"{table[cores][p]:.3f}" for p in NOPREFETCH_SCHEMES]
            for cores in sorted(table)]
    emit("fig13_scaling_spec_nopf", "\n".join([
        "Fig. 13 - GM speedup over LRU vs core count "
        "(multi-copy SPEC, no prefetching)",
        format_table(["config"] + NOPREFETCH_SCHEMES, rows),
        "paper @16 cores: CARE 1.194, second best (Mockingjay) 1.119",
    ]))
    for cores in table:
        assert table[cores]["care"] > 0.97
    assert table[16]["care"] > 1.0
    top16 = max(table[16], key=lambda p: table[16][p])
    assert table[16]["care"] >= table[16][top16] - 0.02
