"""Simulation-kernel throughput — the repo's perf-regression harness.

Unlike the figure benchmarks (which go through the cached sweep runner),
these points always simulate: the measurement is the kernel itself, as
records/sec and events/sec on fixed seeds at 1/4/8 cores.  The same
suite backs ``python -m repro perf``; here it additionally leaves a
reviewable artifact under ``benchmarks/results/`` and a machine-readable
``BENCH_perf.json`` at the repo root, so every PR records the perf
trajectory next to the figure outputs.

Run with ``REPRO_PERF_FULL=1`` for full-size traces (the CLI default);
the pytest run defaults to smoke-sized traces to keep ``pytest
benchmarks`` affordable.
"""

import os
from pathlib import Path

from repro.harness.perfbench import (format_payload, run_suite,
                                     write_payload)

from common import emit, once

_FULL = os.environ.get("REPRO_PERF_FULL", "").strip() not in ("", "0")
_REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def test_kernel_throughput(benchmark):
    payload = once(benchmark, lambda: run_suite(
        repeat=2, smoke=not _FULL, progress=True))
    emit("perf_kernel_throughput", format_payload(payload))
    write_payload(payload, _REPO_ROOT / "BENCH_perf.json")
    for name, case in payload["cases"].items():
        assert case["records_per_s"] > 0, name
        assert case["events_per_s"] > 0, name
        assert case["events"] > case["records"], name
