"""Fig. 5 — distribution of PMC over LLC misses (single-core, LRU).

Eight 50-cycle bins (1: 0-49 ... 8: 350+).  The paper's observation: the
distribution differs sharply across workloads, so misses are far from
equally costly.
"""

from repro.analysis import format_table
from repro.core.pmc import PMC_NUM_BINS
from repro.harness import run_single
from repro.workloads import FIG5_WORKLOADS

from common import emit, once


def _collect():
    out = {}
    for name in FIG5_WORKLOADS:
        res = run_single(name, "lru", prefetch=False)
        hist = res.conc_total.pmc_histogram
        total = max(1, sum(hist))
        out[name] = [h / total for h in hist]
    return out


def test_fig05_pmc_distribution(benchmark):
    dists = once(benchmark, _collect)
    headers = ["workload"] + [f"bin{i+1}" for i in range(PMC_NUM_BINS)]
    rows = [[name] + [f"{v:.2f}" for v in dist]
            for name, dist in dists.items()]
    emit("fig05_pmc_distribution", "\n".join([
        "Fig. 5 - PMC distribution per workload "
        "(bins of 50 cycles; bin1=0-49 ... bin8=350+); 1-core, LRU",
        format_table(headers, rows),
    ]))
    for name, dist in dists.items():
        assert abs(sum(dist) - 1.0) < 1e-6, name
    # Shape check: distributions differ across workloads (first-bin share
    # spans a wide range).
    first_bin = [d[0] for d in dists.values()]
    assert max(first_bin) - min(first_bin) > 0.2
