"""Table III — predictability of PMC: |PMC delta| between consecutive
misses of the same PC (single-core, LRU).

Paper: the majority of deltas are < 50 cycles and medians are low, so past
PMC predicts future PMC per PC.
"""

from repro.analysis import format_table
from repro.core.pmc import pmc_delta_summary
from repro.harness import run_single
from repro.workloads import FIG5_WORKLOADS

from common import emit, once


def _collect():
    out = {}
    for name in FIG5_WORKLOADS:
        res = run_single(name, "lru", prefetch=False, collect_deltas=True)
        out[name] = pmc_delta_summary(res.pmc_deltas[0])
    return out


def test_table03_pmc_predictability(benchmark):
    summaries = once(benchmark, _collect)
    rows = []
    for name, s in summaries.items():
        rows.append([name, f"{s['[0,50)']:.1%}", f"{s['[50,100)']:.1%}",
                     f"{s['[100,150)']:.1%}", f"{s['>=150']:.1%}",
                     f"{s['median']:.2f}"])
    emit("table03_pmc_predictability", "\n".join([
        "Table III - distribution and median of |PMC delta| per PC "
        "(1-core, LRU)",
        format_table(["workload", "[0,50)", "[50,100)", "[100,150)",
                      ">=150", "median"], rows),
        "paper: majority of deltas < 50 cycles; medians 1-49 cycles",
    ]))
    majority_small = [s["[0,50)"] for s in summaries.values()]
    # Paper's claim: for all workloads most deltas are small.
    assert sum(v > 0.5 for v in majority_small) >= len(majority_small) * 0.7
