"""Tables V & VI — hardware cost of CARE and every compared framework."""

from repro.analysis import (
    PAPER_TABLE6_KB,
    care_concurrency_kb,
    care_cost,
    format_table,
    framework_costs,
)

from common import emit, once


def test_table05_care_breakdown(benchmark):
    report = once(benchmark, care_cost)
    rows = [[item.name, f"{item.kb:.4f}", item.used_for]
            for item in report.items]
    rows.append(["TOTAL", f"{report.total_kb:.2f}", ""])
    rows.append(["concurrency-aware share",
                 f"{care_concurrency_kb(report):.2f}", ""])
    text = "\n".join([
        "Table V - CARE hardware cost (16-way 2MB LLC)",
        format_table(["structure", "KB", "used for"], rows),
        "paper: 26.64KB total, 6.76KB for concurrency awareness",
    ])
    emit("table05_care_cost", text)
    assert abs(report.total_kb - 26.64) < 0.05
    assert abs(care_concurrency_kb(report) - 6.76) < 0.05


def test_table06_framework_comparison(benchmark):
    reports = once(benchmark, framework_costs)
    rows = []
    for rep in reports:
        rows.append([
            rep.framework,
            "Yes" if rep.uses_pc else "No",
            "Yes" if rep.concurrency_aware else "No",
            f"{rep.total_kb:.2f}",
            f"{PAPER_TABLE6_KB[rep.framework]:.2f}",
        ])
    text = "\n".join([
        "Table VI - hardware costs for different replacement frameworks",
        format_table(["framework", "uses PC", "concurrency", "KB (ours)",
                      "KB (paper)"], rows),
    ])
    emit("table06_framework_costs", text)
    for rep in reports:
        assert abs(rep.total_kb - PAPER_TABLE6_KB[rep.framework]) \
            <= 0.10 * PAPER_TABLE6_KB[rep.framework]
