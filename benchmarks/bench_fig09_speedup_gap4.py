"""Fig. 9 — normalized IPC, 4-core multi-copy GAP workloads, with
prefetching.

Paper: CARE +8.7% over LRU vs SHiP++ +5.4%, Hawkeye +1.8%, Glider +3.0%,
M-CARE +6.7%.  Shape check: CARE at the top; graph irregularity hurts the
pure re-reference predictors (Hawkeye/Glider trail SHiP++/CARE).
"""

from repro.analysis import format_table
from repro.harness import PREFETCH_SCHEMES, bench_gap_workloads, speedup_sweep

from common import emit, once

PAPER_GM = {"lru": 1.0, "shippp": 1.054, "hawkeye": 1.018,
            "glider": 1.030, "mcare": 1.067, "care": 1.087}


def _collect():
    return speedup_sweep(bench_gap_workloads(), PREFETCH_SCHEMES,
                         n_cores=4, prefetch=True, suite="gap")


def test_fig09_speedup_gap_4core(benchmark):
    table = once(benchmark, _collect)
    rows = [[w] + [f"{table[w][p]:.3f}" for p in PREFETCH_SCHEMES]
            for w in table]
    rows.append(["paper GM"] + [f"{PAPER_GM[p]:.3f}"
                                for p in PREFETCH_SCHEMES])
    emit("fig09_speedup_gap4", "\n".join([
        "Fig. 9 - normalized IPC, 4-core multi-copy GAP, with prefetching",
        format_table(["workload"] + PREFETCH_SCHEMES, rows),
    ]))
    gm = table["GEOMEAN"]
    assert gm["care"] > 1.0
    others = [gm[p] for p in PREFETCH_SCHEMES if p != "care"]
    assert gm["care"] >= max(others) - 0.02
