"""Fig. 3 — percentage of LLC misses with hit-miss overlapping.

Paper setting: 4-core multi-copy workloads, LRU.  The paper reports 30-80%
across benchmarks and concludes hit-miss overlap cannot be ignored; our
synthetic traces keep denser LLC hit traffic, so the measured fractions sit
higher, with the same conclusion.
"""

from repro.analysis import format_table
from repro.harness import bench_spec_workloads, run_multicopy

from common import emit, once


def _collect():
    rows = {}
    for name in bench_spec_workloads():
        res = run_multicopy(name, "lru", n_cores=4, prefetch=False)
        rows[name] = res.hit_miss_overlap_fraction
    return rows


def test_fig03_hit_miss_overlap(benchmark):
    rows = once(benchmark, _collect)
    table = format_table(
        ["workload", "misses w/ hit-miss overlap"],
        [[name, f"{frac:.1%}"] for name, frac in rows.items()])
    emit("fig03_hitmiss_overlap", "\n".join([
        "Fig. 3 - fraction of LLC misses with hit-miss overlapping "
        "(4-core multi-copy, LRU)",
        table,
        "paper: 30%-80% across benchmarks -> overlap cannot be ignored",
    ]))
    assert all(0.0 <= v <= 1.0 for v in rows.values())
    # The motivating observation: a substantial share of misses overlap.
    assert sum(rows.values()) / len(rows) > 0.3
