"""Tables I & II — the Fig. 2 study case: MLP-based cost vs PMC.

Expected (exact): MLP cost A=5, C=D=E=7/3; PMC A=0, C=1, D=E=2;
active pure miss cycles = 5 (cycles 10-14).
"""

from repro.analysis import (
    EXPECTED_MLP,
    EXPECTED_PMC,
    EXPECTED_PURE_CYCLES,
    format_table,
    paper_study_case,
)

from common import emit, once


def test_table01_02_study_case(benchmark):
    result = once(benchmark, paper_study_case)
    rows = []
    for label in sorted(result.mlp_cost):
        rows.append([
            label,
            str(result.pmc[label]),
            str(EXPECTED_PMC[label]),
            str(result.mlp_cost[label]),
            str(EXPECTED_MLP[label]),
        ])
    text = "\n".join([
        "Tables I & II - study case (Fig. 2): per-miss cost analysis",
        format_table(
            ["miss", "PMC", "PMC(paper)", "MLP-cost", "MLP-cost(paper)"],
            rows),
        f"active pure miss cycles: {result.pure_miss_cycles} "
        f"(paper: {EXPECTED_PURE_CYCLES})",
    ])
    emit("table01_02_studycase", text)
    assert result.pmc == EXPECTED_PMC
    assert result.mlp_cost == EXPECTED_MLP
    assert result.pure_miss_cycles == EXPECTED_PURE_CYCLES
