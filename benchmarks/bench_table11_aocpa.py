"""Table XI — Average Overlapping Cycles Per Access vs core count.

Paper: AOCPA grows significantly with core count on both suites (more
miss-miss and hit-miss overlap as the shared LLC gets busier), which is the
headroom CARE exploits.
"""

from repro.analysis import format_table
from repro.harness import bench_gap_workloads, bench_spec_workloads, run_multicopy
from repro.harness.experiment import BENCH_RECORDS, BENCH_WORKLOADS

from common import emit, once

# Per-core trace length per tier.  Shrinking traces with core count
# starves the shared predictors (the SHT trains from every core's traffic,
# so high core counts train faster); the 4-core tier gets 2x records to
# keep total training events comparable across tiers.
CORE_RECORDS = {4: 2 * BENCH_RECORDS, 8: BENCH_RECORDS, 16: BENCH_RECORDS}


def _mean_aocpa(workloads, suite, cores, records):
    vals = []
    for name in workloads:
        res = run_multicopy(name, "lru", n_cores=cores, prefetch=True,
                            suite=suite, n_records=records)
        vals.append(res.aocpa)
    return sum(vals) / len(vals)


def _collect():
    spec = bench_spec_workloads(max(3, BENCH_WORKLOADS // 3))
    gap = bench_gap_workloads(3)
    out = {"SPEC": {}, "GAP": {}}
    for cores, records in CORE_RECORDS.items():
        out["SPEC"][cores] = _mean_aocpa(spec, "spec", cores, records)
        out["GAP"][cores] = _mean_aocpa(gap, "gap", cores, records)
    return out


def test_table11_aocpa(benchmark):
    table = once(benchmark, _collect)
    rows = [[suite] + [f"{table[suite][c]:.2f}" for c in sorted(CORE_RECORDS)]
            for suite in ("SPEC", "GAP")]
    emit("table11_aocpa", "\n".join([
        "Table XI - AOCPA (cycles) vs core count, with prefetching, LRU",
        format_table(["suite"] + [f"{c} cores" for c in sorted(CORE_RECORDS)],
                     rows),
        "paper: AOCPA increases significantly with core count",
    ]))
    # SPEC overlap grows monotonically with cores; GAP peaks by 8 cores at
    # this scale (the 16-core tier is bandwidth-bound, lengthening isolated
    # stalls) - assert growth from the 4-core tier for both.
    assert table["SPEC"][16] > table["SPEC"][4]
    assert max(table["GAP"][8], table["GAP"][16]) > table["GAP"][4]
