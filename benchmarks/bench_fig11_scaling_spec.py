"""Fig. 11 — SPEC speedup scaling with core count (with prefetching).

Paper: CARE's GM gain over LRU grows 10.3% -> 13.0% -> 17.1% across
4/8/16 cores and CARE leads every configuration.  Shape checks: CARE > LRU
everywhere; CARE's margin does not shrink as cores grow.
"""

from repro.analysis import format_table
from repro.harness import PREFETCH_SCHEMES, bench_spec_workloads, scaling_sweep
from repro.harness.experiment import BENCH_RECORDS, BENCH_WORKLOADS

from common import emit, once

PAPER = {4: 1.103, 8: 1.130, 16: 1.171}     # CARE over LRU (Fig. 11)

# Per-core trace length per tier.  Shrinking traces with core count
# starves the shared predictors (the SHT trains from every core's traffic,
# so high core counts train faster); the 4-core tier gets 2x records to
# keep total training events comparable across tiers.
CORE_RECORDS = {4: 2 * BENCH_RECORDS, 8: BENCH_RECORDS, 16: BENCH_RECORDS}


def _collect():
    workloads = bench_spec_workloads(max(3, BENCH_WORKLOADS // 3))
    out = {}
    for cores, records in CORE_RECORDS.items():
        out[cores] = scaling_sweep(workloads, PREFETCH_SCHEMES,
                                   core_counts=(cores,), prefetch=True,
                                   suite="spec", n_records=records)[cores]
    return out


def test_fig11_scaling_spec(benchmark):
    table = once(benchmark, _collect)
    rows = [[f"{cores} cores"]
            + [f"{table[cores][p]:.3f}" for p in PREFETCH_SCHEMES]
            + [f"{PAPER[cores]:.3f}"]
            for cores in sorted(table)]
    emit("fig11_scaling_spec", "\n".join([
        "Fig. 11 - GM speedup over LRU vs core count "
        "(multi-copy SPEC, with prefetching)",
        format_table(["config"] + PREFETCH_SCHEMES + ["paper CARE"], rows),
    ]))
    for cores in table:
        assert table[cores]["care"] > 0.97
    assert table[16]["care"] > 1.0
    assert table[16]["care"] >= table[4]["care"] - 0.05
