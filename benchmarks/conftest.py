"""Make the shared helpers importable, report the bench scale in use, and
summarize sweep-engine cache behaviour at the end of the session."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.harness.runner import session_stats  # noqa: E402
from repro.harness.scale import get_scale  # noqa: E402
from repro.harness.store import default_store  # noqa: E402


def pytest_report_header(config):
    scale = get_scale()
    store = default_store()
    where = str(store.namespace) if store is not None else "disabled"
    return (
        f"repro bench scale: records/core={scale.records} "
        f"workloads={scale.workloads} mixes={scale.mixes} "
        "(override with REPRO_BENCH_RECORDS / REPRO_BENCH_WORKLOADS / "
        f"REPRO_BENCH_MIXES) | result store: {where} "
        "(REPRO_RESULT_STORE) | workers: REPRO_WORKERS"
    )


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Cache-hit accounting: how much of this run was re-simulation."""
    stats = session_stats
    if stats.points == 0:
        return
    terminalreporter.write_sep("-", "repro sweep engine")
    terminalreporter.write_line(stats.summary())
    store = default_store()
    if store is not None:
        s = store.stats()
        terminalreporter.write_line(
            f"result store: {s['hits']} hits, {s['misses']} misses, "
            f"{s['writes']} writes ({store.namespace})")
