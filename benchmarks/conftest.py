"""Make the shared helpers importable and report the bench scale in use."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.harness.experiment import (  # noqa: E402
    BENCH_MIXES,
    BENCH_RECORDS,
    BENCH_WORKLOADS,
)


def pytest_report_header(config):
    return (
        f"repro bench scale: records/core={BENCH_RECORDS} "
        f"workloads={BENCH_WORKLOADS} mixes={BENCH_MIXES} "
        "(override with REPRO_BENCH_RECORDS / REPRO_BENCH_WORKLOADS / "
        "REPRO_BENCH_MIXES)"
    )
