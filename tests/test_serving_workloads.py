"""Production-traffic workload families (PR 9): the serving registry,
Zipfian distribution fidelity, seed determinism, and byte-identity
through a cold and a warm trace cache."""

import random
from collections import Counter

import pytest

from repro.workloads.patterns import ELEMS_PER_BLOCK, ZipfianPattern
from repro.workloads.serving import (SERVE_FAMILIES, SERVE_WORKLOADS,
                                     serve_names, serve_trace,
                                     serve_workload, zipf_mass)
from repro.workloads.spec_like import DEFAULT_SCALE
from repro.workloads.tracecache import TraceCache, cached_trace


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_registry_covers_every_family():
    families = {w.family for w in SERVE_WORKLOADS.values()}
    assert families == set(SERVE_FAMILIES)
    assert len(SERVE_WORKLOADS) >= 6


def test_registry_names_and_lookup():
    names = serve_names()
    assert names == list(SERVE_WORKLOADS)
    for name in names:
        assert serve_workload(name).name == name


def test_lookup_prefix_and_unknown():
    assert serve_workload("kv-zipf9").name == "kv-zipf99"
    with pytest.raises(KeyError):
        serve_workload("kv-zipf")       # ambiguous prefix
    with pytest.raises(KeyError):
        serve_workload("no-such-workload")


def test_targets_are_positive_and_calibration_plausible():
    for work in SERVE_WORKLOADS.values():
        assert work.target_mpki > 0
        assert work.pattern_class


# ----------------------------------------------------------------------
# Trace generation
# ----------------------------------------------------------------------
def test_traces_are_valid_and_tagged():
    for name in serve_names():
        trace = serve_trace(name, n_records=600, seed=3)
        trace.validate()
        assert trace.name == name
        assert trace.suite == "SERVE"
        assert len(trace) == 600


def test_seed_determinism_and_sensitivity():
    a = serve_trace("kv-zipf99", n_records=800, seed=3)
    b = serve_trace("kv-zipf99", n_records=800, seed=3)
    c = serve_trace("kv-zipf99", n_records=800, seed=4)
    assert a.records == b.records
    assert a.records != c.records


def test_update_heavy_writes_more_than_read_mostly():
    read_mostly = serve_trace("kv-zipf99", n_records=2000, seed=3)
    update_heavy = serve_trace("kv-update", n_records=2000, seed=3)
    assert update_heavy.write_fraction > read_mostly.write_fraction + 0.1


def test_usvc_traces_carry_dependent_loads():
    trace = serve_trace("usvc-chase", n_records=2000, seed=3)
    deps = sum(1 for r in trace.records if r.dep)
    assert deps > 0.05 * len(trace)


# ----------------------------------------------------------------------
# Zipfian fidelity
# ----------------------------------------------------------------------
def test_zipf_mass_bounds_and_skew_ordering():
    assert zipf_mass(1000, 0.99, 0) == 0.0
    assert zipf_mass(1000, 0.99, 1000) == pytest.approx(1.0)
    # Higher theta concentrates more mass on the head.
    assert zipf_mass(1000, 0.99, 10) > zipf_mass(1000, 0.75, 10)


def test_zipfian_top_mass_matches_empirical_frequency():
    """The analytic top-1% mass must match the sampled distribution."""
    pattern = ZipfianPattern(4096 * ELEMS_PER_BLOCK, theta=0.99, seed=3)
    analytic = pattern.top_mass(0.01)
    top = max(1, int(pattern.n_keys * 0.01))
    hot_slots = {pattern._slot[rank] for rank in range(top)}
    rng = random.Random(7)
    n = 40000
    hits = Counter()
    for _ in range(n):
        _, addr_elems, _, _ = pattern.step(rng)
        hits[addr_elems // ELEMS_PER_BLOCK in hot_slots] += 1
    empirical = hits[True] / n
    assert empirical == pytest.approx(analytic, abs=0.02)
    # theta=0.99 over ~4k keys: the hot head carries a large share.
    assert analytic > 0.35


def test_zipfian_head_and_tail_use_distinct_pcs():
    pattern = ZipfianPattern(512 * ELEMS_PER_BLOCK, theta=0.99, seed=3)
    rng = random.Random(5)
    pcs = {pattern.step(rng)[0] for _ in range(5000)}
    assert {0, 2} <= pcs          # head fast path vs. tail fill path
    assert pcs <= {0, 1, 2, 3}


def test_zipfian_rejects_bad_parameters():
    with pytest.raises(ValueError):
        ZipfianPattern(1024, theta=0.0)
    pattern = ZipfianPattern(1024, theta=0.9)
    with pytest.raises(ValueError):
        pattern.top_mass(0.0)


# ----------------------------------------------------------------------
# Trace-cache routing
# ----------------------------------------------------------------------
def test_serve_traces_round_trip_the_cache_byte_identical(tmp_path):
    """Cold generate+persist, then a warm read from a *fresh* cache
    object (disk path, no memo), must both equal direct generation."""
    direct = serve_trace("stream-scan", n_records=500, seed=9,
                         scale=DEFAULT_SCALE)
    cold_cache = TraceCache(tmp_path / "traces")
    cold = cached_trace("serve", "stream-scan", 500, 9, DEFAULT_SCALE,
                        cache=cold_cache)
    assert cold_cache.writes == 1
    warm_cache = TraceCache(tmp_path / "traces")
    warm = cached_trace("serve", "stream-scan", 500, 9, DEFAULT_SCALE,
                        cache=warm_cache)
    assert warm_cache.hits == 1 and warm_cache.memo_hits == 0
    assert direct.records == cold.records == warm.records
    assert direct.suite == warm.suite == "SERVE"
    assert direct.name == warm.name == "stream-scan"
