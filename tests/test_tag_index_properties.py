"""Property tests for the cache's O(1) tag->way index.

The index (``Cache._tag2way``) replaced the linear scan over the ways on
the lookup hot path.  These tests pin its contract: after any sequence of
accesses, fills, prefetches, writebacks and invalidations — including the
pathological duplicate-tag state a writeback can create while a demand
miss on the same block is outstanding — ``_find_way`` answers exactly
what a first-match linear scan over the tag array would answer.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policies.lru import LRUPolicy
from repro.sim import AccessType, Cache, CacheConfig, Engine, MemRequest


class _SlowLower:
    """Lower level answering after a fixed delay (keeps misses outstanding)."""

    name = "MEM"

    def __init__(self, engine, delay=8):
        self.engine = engine
        self.delay = delay

    def access(self, req):
        if req.rtype != AccessType.WRITEBACK:
            done = self.engine.now + self.delay
            self.engine.at(done, req.respond, done, self.name)


def make_cache(sets=2, ways=2, latency=1, mshr=2, delay=8):
    eng = Engine()
    cfg = CacheConfig("C", sets, ways, latency, mshr)
    cache = Cache(cfg, eng, LRUPolicy(sets, ways), lower=_SlowLower(eng, delay))
    return eng, cache


def reference_find_way(cache, set_idx, tag):
    """The pre-index implementation: first-match linear scan."""
    for way, blk in enumerate(cache._sets[set_idx]):
        if blk.valid and blk.tag == tag:
            return way
    return -1


def check_index_matches_linear_scan(cache):
    """The index must answer exactly like a linear scan, for every set."""
    dup_free = True
    for set_idx, blocks in enumerate(cache._sets):
        valid_tags = [b.tag for b in blocks if b.valid]
        if len(valid_tags) != len(set(valid_tags)):
            dup_free = False
        index = cache._tag2way[set_idx]
        assert set(index) == set(valid_tags)
        for tag in valid_tags:
            assert cache._find_way(set_idx, tag) == \
                reference_find_way(cache, set_idx, tag)
        # absent tags must miss
        probe_tag = max(valid_tags, default=0) + 1
        assert cache._find_way(set_idx, probe_tag) == -1
        assert cache._valid_count[set_idx] == len(valid_tags)
    if dup_free:
        # With no duplicate-tag copies present, the full invariant check
        # must pass (it raises on any index/array disagreement).  Duplicate
        # states are legal transients — a writeback installed a block while
        # a demand miss on it was outstanding — and are covered above by
        # the linear-scan comparison instead.
        assert cache._dup_tags == 0
        cache.assert_no_duplicates()


@st.composite
def op_streams(draw):
    n = draw(st.integers(40, 160))
    seed = draw(st.integers(0, 2 ** 16))
    r = random.Random(seed)
    ops = []
    for _ in range(n):
        block = r.randrange(24)       # 24 blocks over 2x2 cache: conflicts
        roll = r.random()
        if roll < 0.45:
            kind = AccessType.LOAD
        elif roll < 0.60:
            kind = AccessType.RFO
        elif roll < 0.72:
            kind = AccessType.PREFETCH
        elif roll < 0.88:
            kind = AccessType.WRITEBACK
        else:
            kind = "invalidate"
        ops.append((block, kind, r.randrange(0, 6)))
    return ops


@settings(max_examples=40, deadline=None)
@given(op_streams())
def test_tag_index_agrees_with_linear_scan_on_random_streams(ops):
    """Random access/prefetch/writeback/invalidate stream, interleaved with
    partial event processing so fills land between operations."""
    eng, cache = make_cache()
    for i, (block, kind, steps) in enumerate(ops):
        addr = block * 64
        if kind == "invalidate":
            cache.invalidate(addr)
        else:
            cache.access(MemRequest(addr=addr, pc=0x40 + block, core=0,
                                    rtype=kind, created=eng.now))
        for _ in range(steps):
            if not eng.step():
                break
        check_index_matches_linear_scan(cache)
    eng.run()
    check_index_matches_linear_scan(cache)
    # conservation: every access resolved as a hit, miss, or was a merge
    total = cache.stats.total_accesses
    assert total == sum(cache.stats.hits.values()) + \
        sum(cache.stats.misses.values())


def test_duplicate_tag_state_keeps_first_match_semantics():
    """Force the writeback-under-miss duplicate and walk the index through
    it: install, first-copy invalidation (remap), second-copy removal."""
    eng, cache = make_cache(sets=1, ways=2, latency=1, mshr=2, delay=20)
    C, B = 0x000, 0x100

    # C resident at way 0
    cache.access(MemRequest(addr=C, pc=1, core=0, rtype=AccessType.LOAD))
    eng.run()
    assert cache._find_way(0, cache.tag_of(C >> 6)) == 0

    # demand miss on B outstanding...
    cache.access(MemRequest(addr=B, pc=2, core=0, rtype=AccessType.LOAD))
    while eng.now < 5:
        eng.step()
    # ...when a writeback to B arrives: installs directly into way 1
    cache.access(MemRequest(addr=B, pc=3, core=0, rtype=AccessType.WRITEBACK,
                            created=eng.now))
    eng.run()

    # The fill evicted LRU C (way 0) and installed B again: two valid
    # copies of B.  First-match semantics: way 0 wins.
    tag_b = cache.tag_of(B >> 6)
    blocks = cache.blocks_in_set(0)
    assert blocks[0].valid and blocks[0].tag == tag_b
    assert blocks[1].valid and blocks[1].tag == tag_b
    assert cache._dup_tags == 1
    assert cache._find_way(0, tag_b) == 0 == reference_find_way(cache, 0, tag_b)
    assert cache.probe(B)

    # Dropping the first copy must remap the index to the surviving one.
    # (The demand-filled way-0 copy is clean, so invalidate reports False.)
    assert cache.invalidate(B) is False
    assert cache._dup_tags == 0
    assert cache._find_way(0, tag_b) == 1 == reference_find_way(cache, 0, tag_b)
    assert cache.probe(B)
    cache.assert_no_duplicates()

    # Dropping the second copy (the dirty writeback install) empties the set.
    assert cache.invalidate(B) is True
    assert cache._find_way(0, tag_b) == -1
    assert not cache.probe(B)
    assert cache._valid_count[0] == 0
    cache.assert_no_duplicates()


def test_assert_no_duplicates_catches_index_desync():
    """The cross-check must fail loudly if the index stops mirroring the
    tag array (guards the maintenance logic itself)."""
    eng, cache = make_cache()
    cache.access(MemRequest(addr=0x0, pc=1, core=0, rtype=AccessType.LOAD))
    eng.run()
    cache.assert_no_duplicates()
    set_idx = cache.set_index(0)
    tag = cache.tag_of(0)
    cache._tag2way[set_idx][tag + 7] = 0     # poison the index
    try:
        cache.assert_no_duplicates()
    except AssertionError:
        pass
    else:
        raise AssertionError("index desync was not detected")
