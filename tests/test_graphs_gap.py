"""Graph datasets (Table IX) and GAP algorithm trace emitters."""

import numpy as np
import pytest

from repro.workloads.gap import (
    NEIGHBORS_BASE,
    OFFSETS_BASE,
    bfs_records,
    cc_records,
    gap_algorithms,
    gap_trace,
    gap_workload_names,
    pagerank_records,
    sssp_records,
    bc_records,
)
from repro.workloads.graphs import (
    GRAPH_SPECS,
    CSRGraph,
    build_graph,
    graph_keys,
)


# ----------------------------------------------------------------------
# Graph construction
# ----------------------------------------------------------------------

def test_table9_graphs_exist():
    assert graph_keys() == ["or", "tw", "ur"]
    assert GRAPH_SPECS["or"].full_name == "orkut"
    assert GRAPH_SPECS["tw"].paper_vertices == "61.6M"


def test_graphs_validate_and_sizes_ordered():
    sizes = {}
    for key in graph_keys():
        g = build_graph(key)
        g.validate()
        sizes[key] = g.n_vertices
        assert g.n_edges > g.n_vertices          # connected-ish density
    assert sizes["or"] < sizes["tw"] < sizes["ur"]


def test_powerlaw_graphs_are_skewed_uniform_is_not():
    def degree_skew(g: CSRGraph) -> float:
        deg = np.diff(g.offsets)
        return float(deg.max() / max(1.0, deg.mean()))

    assert degree_skew(build_graph("tw")) > 3 * degree_skew(build_graph("ur"))


def test_graph_build_is_memoized_and_deterministic():
    a = build_graph("or")
    b = build_graph("or")
    assert a is b


def test_unknown_graph_rejected():
    with pytest.raises(KeyError):
        build_graph("zz")


def test_out_neighbors_matches_offsets():
    g = build_graph("or")
    u = int(np.argmax(np.diff(g.offsets)))       # highest-degree vertex
    nbrs = g.out_neighbors(u)
    assert len(nbrs) == g.offsets[u + 1] - g.offsets[u]


# ----------------------------------------------------------------------
# Kernels compute correct results while tracing
# ----------------------------------------------------------------------

def line_graph(n=6):
    """0 -> 1 -> 2 -> ... -> n-1 (plus reverse edges)."""
    edges = []
    for i in range(n - 1):
        edges.append((i, i + 1))
        edges.append((i + 1, i))
    src = np.array([e[0] for e in edges])
    order = np.argsort(src, kind="stable")
    src = src[order]
    dst = np.array([e[1] for e in edges])[order]
    offsets = np.zeros(n + 1, dtype=np.int64)
    offsets[1:] = np.cumsum(np.bincount(src, minlength=n))
    weights = np.ones(len(dst), dtype=np.int64)
    g = CSRGraph("line", offsets, dst.astype(np.int64), weights)
    g.validate()
    return g


def test_bfs_records_and_depths():
    g = line_graph(5)
    records = list(bfs_records(g, source=0))
    assert records, "bfs must touch memory"
    # bfs on a line visits every vertex: depth writes = n-1
    writes = [r for r in records if r.is_write]
    assert len(writes) == 4


def test_sssp_relaxes_line_graph():
    g = line_graph(4)
    records = list(sssp_records(g, source=0))
    writes = [r for r in records if r.is_write]
    assert len(writes) >= 3      # dist updates propagate down the line
    # weights array must be read
    from repro.workloads.gap import WEIGHTS_BASE
    assert any(WEIGHTS_BASE <= r.addr < WEIGHTS_BASE + (1 << 30)
               for r in records)


def test_cc_converges_on_line_graph():
    g = line_graph(6)
    records = list(cc_records(g))
    assert records
    writes = [r for r in records if r.is_write]
    assert writes           # labels propagate


def test_pagerank_reads_offsets_and_neighbors():
    g = line_graph(4)
    records = list(pagerank_records(g, iterations=2))
    assert any(OFFSETS_BASE <= r.addr < OFFSETS_BASE + (1 << 30)
               for r in records)
    assert any(NEIGHBORS_BASE <= r.addr < NEIGHBORS_BASE + (1 << 30)
               for r in records)


def test_bc_has_forward_and_backward_phases():
    g = line_graph(5)
    records = list(bc_records(g, source=0))
    writes = [r for r in records if r.is_write]
    assert len(writes) >= 5   # depth + sigma writes + delta writes


# ----------------------------------------------------------------------
# Trace assembly
# ----------------------------------------------------------------------

def test_gap_workload_names_cover_5x3():
    names = gap_workload_names()
    assert len(names) == 15
    assert "bfs-or" in names and "pr-ur" in names
    assert gap_algorithms() == ["bc", "bfs", "cc", "pr", "sssp"]


@pytest.mark.parametrize("workload", ["bfs-or", "pr-tw", "sssp-ur"])
def test_gap_trace_exact_length(workload):
    t = gap_trace(workload, n_records=400, seed=1)
    assert len(t) == 400
    assert t.suite == "GAP"
    t.validate()


def test_gap_trace_deterministic():
    a = gap_trace("cc-or", 300, seed=2)
    b = gap_trace("cc-or", 300, seed=2)
    assert a.records == b.records


def test_gap_trace_seed_separates_address_space():
    a = gap_trace("bfs-or", 50, seed=1)
    b = gap_trace("bfs-or", 50, seed=2)
    assert (a.records[0].addr >> 36) != (b.records[0].addr >> 36)


def test_gap_trace_unknown_workload():
    with pytest.raises(KeyError):
        gap_trace("dfs-or", 10)
    with pytest.raises(KeyError):
        gap_trace("bfs-xx", 10)


def test_gap_pcs_are_stable_per_site():
    t = gap_trace("bfs-or", 2000, seed=1)
    pcs = {r.pc for r in t.records}
    assert len(pcs) <= 16     # a handful of access sites, stable PCs
