"""End-to-end integration: every scheme through the full hierarchy, plus the
paper's qualitative headline checks at miniature scale."""

import pytest

from repro.policies.registry import available_policies
from repro.sim import SystemConfig, simulate
from repro.workloads import multicopy_traces, spec_trace

ALL_TIMING_POLICIES = [p for p in available_policies() if p != "opt"]


@pytest.fixture(scope="module")
def mcf_traces():
    return [t.records for t in multicopy_traces("429.mcf", 2, 4000, seed=5)]


@pytest.mark.parametrize("policy", ALL_TIMING_POLICIES)
def test_every_policy_completes_multicore(policy, mcf_traces):
    res = simulate(mcf_traces, cfg=SystemConfig.default(2),
                   llc_policy=policy, prefetch=True,
                   measure_records=1500, warmup_records=1500, seed=1)
    assert all(ipc > 0 for ipc in res.ipc)
    assert res.policy == policy
    assert 0.0 <= res.pmr <= 1.0
    assert res.mean_pmc >= 0.0


def test_care_beats_lru_on_chase_workload(mcf_traces):
    lru = simulate(mcf_traces, cfg=SystemConfig.default(2),
                   llc_policy="lru", prefetch=True,
                   measure_records=1500, warmup_records=1500)
    care = simulate(mcf_traces, cfg=SystemConfig.default(2),
                    llc_policy="care", prefetch=True,
                    measure_records=1500, warmup_records=1500)
    assert sum(care.ipc) > sum(lru.ipc)


def test_care_lowers_pure_miss_pressure(mcf_traces):
    """Fig. 8 / Table X shape: CARE reduces pMR or mean PMC vs LRU."""
    lru = simulate(mcf_traces, cfg=SystemConfig.default(2),
                   llc_policy="lru", prefetch=True,
                   measure_records=1500, warmup_records=1500)
    care = simulate(mcf_traces, cfg=SystemConfig.default(2),
                    llc_policy="care", prefetch=True,
                    measure_records=1500, warmup_records=1500)
    assert (care.pmr <= lru.pmr * 1.02
            or care.mean_pmc <= lru.mean_pmc * 1.02)


def test_single_core_pmc_distribution_collected():
    """Fig. 5 machinery: histogram over 8 bins, populated."""
    tr = spec_trace("429.mcf", 4000, seed=2)
    res = simulate([tr.records], cfg=SystemConfig.default(1),
                   llc_policy="lru", measure_records=1500,
                   warmup_records=1500, collect_deltas=True)
    hist = res.conc_total.pmc_histogram
    assert len(hist) == 8
    assert sum(hist) == res.conc_total.misses
    assert res.pmc_deltas[0], "PMC delta stream must be populated"


def test_mlp_cost_at_least_pmc_per_run(mcf_traces):
    """Every miss's MLP cost >= its PMC (PMC only counts unhidden cycles),
    so the means obey the same order."""
    res = simulate(mcf_traces, cfg=SystemConfig.default(2),
                   llc_policy="lru", prefetch=True,
                   measure_records=1500, warmup_records=1500)
    assert res.conc_total.mlp_sum >= res.conc_total.pmc_sum - 1e-6


def test_more_cores_more_overlap():
    """Table XI shape: AOCPA grows with core count (more LLC contention)."""
    aocpa = {}
    for cores in (1, 4):
        traces = [t.records for t in
                  multicopy_traces("462.libquantum", cores, 4000, seed=5)]
        res = simulate(traces, cfg=SystemConfig.default(cores),
                       llc_policy="lru", prefetch=True,
                       measure_records=1500, warmup_records=1500)
        aocpa[cores] = res.aocpa
    assert aocpa[4] > aocpa[1]


def test_prefetching_converts_streaming_demand_misses():
    tr = spec_trace("462.libquantum", 4000, seed=2)
    base = simulate([tr.records], cfg=SystemConfig.default(1),
                    llc_policy="lru", prefetch=False,
                    measure_records=1500, warmup_records=1500)
    pf = simulate([tr.records], cfg=SystemConfig.default(1),
                  llc_policy="lru", prefetch=True,
                  measure_records=1500, warmup_records=1500)
    # IP-stride covers the stream: LLC demand misses collapse and IPC
    # doesn't regress meaningfully (the machine is bandwidth-bound, so
    # the win shows as latency hiding, not raw IPC).
    assert pf.llc.demand_misses < base.llc.demand_misses * 0.7
    assert pf.ipc[0] > base.ipc[0] * 0.95
