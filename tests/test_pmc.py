"""PMC Measurement Logic vs. the paper's definitions.

The central correctness tests of the reproduction: the event-driven,
interval-accruing :class:`ConcurrencyMonitor` must agree *exactly* with the
per-cycle definition of Algorithm 1, which :func:`analyze_case` implements
directly with exact fractions.  We check the paper's own study case
(Tables I and II) and then hypothesis-generated random scenarios.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.studycase import CaseAccess, analyze_case
from repro.core.pmc import (
    PMC_NUM_BINS,
    ConcurrencyMonitor,
    pmc_bin,
    pmc_delta_summary,
)
from repro.sim import AccessType, Engine, MemRequest
from repro.sim.mshr import MSHREntry


def run_monitor(accesses, base=2, miss=6, core=0, n_cores=1):
    """Replay a study-case timeline through the real monitor."""
    eng = Engine()
    mon = ConcurrencyMonitor(eng, n_cores, base)
    entries = {}
    for i, a in enumerate(accesses):
        req = MemRequest(addr=i * 64, pc=0x100 + 4 * i, core=core,
                         rtype=AccessType.LOAD)
        eng.at(a.start, lambda c=core, t=a.start: mon.on_access(c, t))
        if a.is_miss:
            entry = MSHREntry(block=i, primary=req,
                              issue_time=a.start + base, core=core)
            entries[a.label] = entry
            eng.at(a.start + base,
                   lambda e=entry, t=a.start + base: mon.on_miss_start(core, t, e))
            end = a.start + base + miss
            eng.at(end, lambda e=entry, t=end: mon.on_miss_end(core, t, e))
    eng.run()
    mon.finalize()
    return mon, entries


class TestStudyCase:
    """Fig. 2 / Tables I and II through the real measurement logic."""

    def setup_method(self):
        self.case = [
            CaseAccess("A", 1, True),
            CaseAccess("B", 3, False),
            CaseAccess("C", 5, True),
            CaseAccess("D", 7, True),
            CaseAccess("E", 7, True),
            CaseAccess("F", 8, False),
        ]
        self.mon, self.entries = run_monitor(self.case)

    def test_pmc_values_match_table2(self):
        assert self.entries["A"].pmc == pytest.approx(0.0)
        assert self.entries["C"].pmc == pytest.approx(1.0)
        assert self.entries["D"].pmc == pytest.approx(2.0)
        assert self.entries["E"].pmc == pytest.approx(2.0)

    def test_mlp_costs_match_table1(self):
        assert self.entries["A"].mlp_cost == pytest.approx(5.0)
        for label in "CDE":
            assert self.entries[label].mlp_cost == pytest.approx(7 / 3)

    def test_active_pure_miss_cycles_is_five(self):
        assert self.mon.core_stats(0).pure_miss_cycles == pytest.approx(5.0)

    def test_only_cde_are_pure(self):
        assert not self.entries["A"].is_pure
        assert all(self.entries[l].is_pure for l in "CDE")

    def test_pmc_sum_equals_pure_cycles(self):
        total = sum(e.pmc for e in self.entries.values())
        assert total == pytest.approx(
            self.mon.core_stats(0).pure_miss_cycles)

    def test_aggregate_counters(self):
        stats = self.mon.core_stats(0)
        assert stats.accesses == 6
        assert stats.misses == 4
        assert stats.pure_misses == 3
        assert stats.pure_miss_rate == pytest.approx(0.5)


@st.composite
def scenarios(draw):
    n = draw(st.integers(1, 8))
    base = draw(st.integers(1, 4))
    miss = draw(st.integers(1, 12))
    accesses = []
    for i in range(n):
        start = draw(st.integers(1, 30))
        is_miss = draw(st.booleans())
        accesses.append(CaseAccess(f"x{i}", start, is_miss))
    return accesses, base, miss


@settings(max_examples=120, deadline=None)
@given(scenarios())
def test_monitor_matches_per_cycle_oracle(scenario):
    """Interval accrual == per-cycle Algorithm 1, for arbitrary timelines."""
    accesses, base, miss = scenario
    oracle = analyze_case(accesses, base_cycles=base, miss_cycles=miss)
    mon, entries = run_monitor(accesses, base=base, miss=miss)
    stats = mon.core_stats(0)
    assert stats.pure_miss_cycles == pytest.approx(
        float(len(oracle.pure_miss_cycles)))
    for label, entry in entries.items():
        assert entry.pmc == pytest.approx(float(oracle.pmc[label])), label
        assert entry.mlp_cost == pytest.approx(
            float(oracle.mlp_cost[label])), label
        assert entry.is_pure == oracle.is_pure[label], label


def test_cores_are_tracked_independently():
    """Multi-core PML: core 1's hits cannot hide core 0's miss cycles."""
    case0 = [CaseAccess("m", 1, True)]
    # Alone: miss cycles 3-8 all pure -> PMC 6.
    mon, entries = run_monitor(case0)
    assert entries["m"].pmc == pytest.approx(6.0)

    # Now add core-1 traffic across the same cycles; core 0 unchanged.
    eng = Engine()
    mon = ConcurrencyMonitor(eng, 2, 2)
    req = MemRequest(addr=0, pc=0, core=0, rtype=AccessType.LOAD)
    entry = MSHREntry(block=0, primary=req, issue_time=3, core=0)
    eng.at(1, lambda: mon.on_access(0, 1))
    eng.at(3, lambda: mon.on_miss_start(0, 3, entry))
    eng.at(9, lambda: mon.on_miss_end(0, 9, entry))
    for t in (2, 4, 6, 8):
        eng.at(t, lambda t=t: mon.on_access(1, t))
    eng.run()
    mon.finalize()
    assert entry.pmc == pytest.approx(6.0)
    assert mon.core_stats(1).accesses == 4
    assert mon.core_stats(1).pure_miss_cycles == 0


def test_overlapped_miss_has_zero_pmc_but_nonzero_mlp():
    # A hit's base cycles fully cover the miss window.
    case = [CaseAccess("m", 1, True),
            CaseAccess("h1", 3, False), CaseAccess("h2", 5, False),
            CaseAccess("h3", 7, False)]
    mon, entries = run_monitor(case, base=2, miss=6)
    assert entries["m"].pmc == 0.0
    assert not entries["m"].is_pure
    assert entries["m"].mlp_cost == pytest.approx(6.0)


def test_pmc_bin_edges():
    assert pmc_bin(0) == 0
    assert pmc_bin(49.9) == 0
    assert pmc_bin(50) == 1
    assert pmc_bin(349.9) == PMC_NUM_BINS - 2
    assert pmc_bin(350) == PMC_NUM_BINS - 1
    assert pmc_bin(10_000) == PMC_NUM_BINS - 1
    with pytest.raises(ValueError):
        pmc_bin(-1)


def test_pmc_delta_summary_buckets_and_median():
    deltas = [0, 10, 60, 120, 500]
    s = pmc_delta_summary(deltas)
    assert s["[0,50)"] == pytest.approx(2 / 5)
    assert s["[50,100)"] == pytest.approx(1 / 5)
    assert s["[100,150)"] == pytest.approx(1 / 5)
    assert s[">=150"] == pytest.approx(1 / 5)
    assert s["median"] == 60


def test_pmc_delta_summary_empty():
    s = pmc_delta_summary([])
    assert s["median"] == 0.0 and s["[0,50)"] == 0.0


def test_delta_tracking_per_pc():
    """Consecutive misses of one PC produce |PMC delta| samples."""
    eng = Engine()
    mon = ConcurrencyMonitor(eng, 1, 2, collect_deltas=True)
    for i, (start, dur) in enumerate([(1, 6), (20, 3)]):
        req = MemRequest(addr=i * 64, pc=0x500, core=0, rtype=AccessType.LOAD)
        e = MSHREntry(block=i, primary=req, issue_time=start + 2, core=0)
        eng.at(start, lambda t=start: mon.on_access(0, t))
        eng.at(start + 2, lambda e=e, t=start + 2: mon.on_miss_start(0, t, e))
        eng.at(start + 2 + dur,
               lambda e=e, t=start + 2 + dur: mon.on_miss_end(0, t, e))
    eng.run()
    deltas = mon.pmc_deltas(0)
    assert deltas == [pytest.approx(3.0)]  # |6 - 3|


def test_reset_stats_keeps_outstanding_state():
    eng = Engine()
    mon = ConcurrencyMonitor(eng, 1, 2)
    req = MemRequest(addr=0, pc=0, core=0, rtype=AccessType.LOAD)
    entry = MSHREntry(block=0, primary=req, issue_time=3, core=0)
    eng.at(1, lambda: mon.on_access(0, 1))
    eng.at(3, lambda: mon.on_miss_start(0, 3, entry))
    eng.at(5, lambda: mon.reset_stats())
    eng.at(9, lambda: mon.on_miss_end(0, 9, entry))
    eng.run()
    stats = mon.core_stats(0)
    # Post-reset window spans cycles 5-9, all pure.
    assert stats.misses == 1
    assert stats.pure_miss_cycles == pytest.approx(4.0)
