"""Engine watcher-mux tests.

``Engine.add_watcher``/``remove_watcher`` let several observers (runtime
sanitizer, metrics sampler) share the single ``watcher`` slot: one
registrant is wired directly (the historical zero-overhead path), two or
more go through a countdown trampoline firing at the GCD-free base of
``min(intervals)``.
"""

import pytest

from repro.sim.engine import Engine, EngineError


def _noop():
    pass


def _run_events(engine, count):
    for t in range(1, count + 1):
        engine.at(t, _noop)
    engine.run()


def test_single_watcher_uses_direct_slot():
    engine = Engine()
    fired = []

    def watch():
        fired.append(engine.events_processed)

    engine.add_watcher(watch, 4)
    assert engine.watcher is watch          # no trampoline for one watcher
    assert engine.watch_interval == 4
    assert engine.watchers == (watch,)
    _run_events(engine, 10)
    assert fired == [4, 8]
    engine.remove_watcher(watch)
    assert engine.watcher is None
    assert engine.watchers == ()


def test_two_watchers_fire_at_their_own_cadence():
    engine = Engine()
    fired = {"fast": 0, "slow": 0}

    def fast():
        fired["fast"] += 1

    def slow():
        fired["slow"] += 1

    engine.add_watcher(fast, 2)
    engine.add_watcher(slow, 3)
    assert set(engine.watchers) == {fast, slow}
    _run_events(engine, 12)
    # The trampoline polls every min(2, 3) = 2 events; the slow watcher's
    # countdown trips on every other poll (effective cadence 4).
    assert fired["fast"] == 6
    assert fired["slow"] == 3


def test_remove_watcher_rewires_to_direct_slot():
    engine = Engine()
    calls = []
    a = calls.append

    def other():
        calls.append("other")

    engine.add_watcher(other, 2)
    engine.add_watcher(lambda: a("x"), 5)
    assert engine.watcher is not other      # trampoline active
    engine.remove_watcher(engine.watchers[1])
    assert engine.watcher is other          # back to the direct slot
    assert engine.watch_interval == 2


def test_duplicate_registration_refused():
    engine = Engine()
    engine.add_watcher(_noop, 2)
    with pytest.raises(EngineError):
        engine.add_watcher(_noop, 4)


def test_direct_assignment_blocks_add_watcher():
    engine = Engine()
    engine.watcher = _noop                  # legacy direct wiring
    with pytest.raises(EngineError):
        engine.add_watcher(lambda: None, 2)


def test_bound_method_identity_survives_reaccess():
    """``self.method`` makes a fresh object per access; the registry must
    match by equality, or uninstalls would silently leak watchers."""

    class Observer:
        def __init__(self):
            self.count = 0

        def check(self):
            self.count += 1

    engine = Engine()
    obs = Observer()
    engine.add_watcher(obs.check, 3)
    engine.remove_watcher(obs.check)        # a *different* bound object
    assert engine.watchers == ()
    assert engine.watcher is None


def test_interval_must_be_positive():
    engine = Engine()
    with pytest.raises(EngineError):
        engine.add_watcher(_noop, 0)
