"""Core model: pacing, ROB limits, dependent loads, warmup, IPC."""

import pytest

from repro.sim import AccessType, CoreConfig, Engine
from repro.sim.cpu import Core
from repro.workloads import TraceRecord


class InstantL1:
    """Answers every access after a fixed delay (stands in for the cache)."""

    def __init__(self, engine, delay=3):
        self.engine = engine
        self.delay = delay
        self.issued = []

    def access(self, req):
        self.issued.append((self.engine.now, req))
        self.engine.at(self.engine.now + self.delay, req.respond,
                       self.engine.now + self.delay)


def run_core(records, delay=3, issue_width=4, rob=32, warmup=0,
             measure=None):
    eng = Engine()
    l1 = InstantL1(eng, delay)
    core = Core(0, eng, l1, records, CoreConfig(issue_width, rob),
                measure_records=measure, warmup_records=warmup, replay=False)
    core.start()
    eng.run()
    return eng, l1, core


def recs(n, gap=0, dep=False):
    return [TraceRecord(pc=0x10 + i, addr=i * 64, is_write=False,
                        gap=gap, dep=dep) for i in range(n)]


def test_all_records_retire():
    eng, l1, core = run_core(recs(20))
    assert core.finished
    assert core.retired_records == 20
    assert core.retired_instructions == 20


def test_instruction_count_includes_gaps():
    eng, l1, core = run_core(recs(10, gap=4))
    assert core.retired_instructions == 50


def test_front_end_pacing_limits_issue_rate():
    # 16 records, width 4, gap 0 -> at most 4 issues per cycle.
    eng, l1, core = run_core(recs(16), issue_width=4)
    from collections import Counter
    per_cycle = Counter(t for t, _ in l1.issued)
    assert max(per_cycle.values()) <= 4


def test_rob_limits_outstanding():
    # ROB of 4 slots, gap 0 -> at most 4 in flight.
    eng = Engine()
    inflight = {"now": 0, "peak": 0}

    class TrackingL1:
        def __init__(self, engine):
            self.engine = engine

        def access(self, req):
            inflight["now"] += 1
            inflight["peak"] = max(inflight["peak"], inflight["now"])

            def respond(r=req):
                inflight["now"] -= 1
                r.respond(self.engine.now)

            self.engine.at(self.engine.now + 10, respond)

    core = Core(0, eng, TrackingL1(eng), recs(30),
                CoreConfig(issue_width=8, rob_entries=4), replay=False)
    core.start()
    eng.run()
    assert core.finished
    assert inflight["peak"] <= 4


def test_dependent_loads_serialize():
    # Independent: overlapped; dependent: latency adds up.
    _, _, fast = run_core(recs(10, gap=0, dep=False), delay=20)
    _, _, slow = run_core(recs(10, gap=0, dep=True), delay=20)
    assert slow.finish_time > fast.finish_time + 100  # ~serialized


def test_warmup_excluded_from_ipc():
    eng, l1, core = run_core(recs(30, gap=1), warmup=10, measure=20)
    assert core.finished
    assert core.retired_instructions == 40      # 20 measured x 2 instr
    assert core.measure_start_time > 0
    assert core.ipc > 0


def test_stores_issue_rfo():
    records = [TraceRecord(pc=1, addr=0, is_write=True, gap=0)]
    eng, l1, core = run_core(records)
    assert l1.issued[0][1].rtype == AccessType.RFO


def test_empty_trace_finishes_immediately():
    eng = Engine()
    finished = []
    core = Core(0, eng, InstantL1(eng), [], CoreConfig(),
                on_finish=lambda c: finished.append(c))
    core.start()
    assert core.finished and finished == [core]


def test_stop_halts_dispatch():
    eng = Engine()
    l1 = InstantL1(eng)
    core = Core(0, eng, l1, recs(100), CoreConfig(4, 8), replay=False)
    core.start()
    eng.run(max_events=20)
    issued_before = len(l1.issued)
    core.stop()
    eng.run()
    # completions drain but no new dispatch beyond what the ROB held
    assert len(l1.issued) <= issued_before + 8


def test_ipc_definition():
    eng, l1, core = run_core(recs(40, gap=3), issue_width=4)
    cycles = core.finish_time - core.measure_start_time
    assert core.ipc == pytest.approx(core.retired_instructions / cycles)
