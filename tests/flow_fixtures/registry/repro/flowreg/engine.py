"""Fixture event loop: a root, a stored bound method, and sched sites."""


def helper():
    return 0


class Engine:
    __slots__ = ("queue", "_cb")

    def __init__(self):
        self.queue = []
        self._cb = self._tick   # stored bound method (resolved by flow)

    def post(self, when, fn):
        self.queue.append((when, fn))

    def run(self):  # hot: fixture entry point
        while self.queue:
            _, fn = self.queue.pop()
            fn()
        self._cb()

    def _tick(self):  # hot: reached through the stored bound method
        return helper()


def on_event():  # hot: scheduled onto the engine in setup()
    return 1


def setup():
    eng = Engine()
    eng.post(5, on_event)
    return eng
