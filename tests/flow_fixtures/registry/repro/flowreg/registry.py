"""Fixture registries: string-table backends + decorator policies."""

#: Lazily imported backends, name -> "module:Class" (the same structural
#: shape as ``repro.sim.backends._BUILTINS``).
_BACKENDS = {
    "alpha": "repro.flowreg.impl:ImplA",
    "beta": "repro.flowreg.impl:ImplB",
}

_POLICIES = {}


def load(name):
    """String-table consumer: flow links this to ImplA/ImplB."""
    target = _BACKENDS[name]
    return target


def register(name):
    """Decorator registry (the ``make_policy`` resolver's counterpart)."""
    def deco(cls):
        _POLICIES[name] = cls
        return cls
    return deco


def make_policy(name):
    return _POLICIES[name]()
