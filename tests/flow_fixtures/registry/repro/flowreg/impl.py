"""Fixture backends and a decorator-registered policy."""

from .registry import register


class ImplA:
    __slots__ = ("state",)

    def __init__(self):
        self.state = 0

    def ping(self):
        return "a"


class ImplB:
    __slots__ = ("state",)

    def __init__(self):
        self.state = 1

    def ping(self):
        return "b"


@register("care")
class CarePolicy:
    __slots__ = ("hits",)

    def __init__(self):
        self.hits = 0

    def on_hit(self):
        self.hits += 1
        return self.hits
