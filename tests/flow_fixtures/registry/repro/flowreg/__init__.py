"""Flow-analysis fixture package: registry indirection + bound methods.

A miniature simulator shaped like the real tree so the call-graph tests
in ``tests/test_flow_analysis.py`` can pin resolution behaviour without
depending on ``src`` internals: a string-table backend registry
(``module:Class`` values, like ``repro.sim.backends``), a decorator
policy registry (like ``repro.policies.registry``), a stored
bound-method callback, and callbacks scheduled onto the engine.
"""
