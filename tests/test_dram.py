"""DRAM timing model: row-buffer behavior, bank/channel serialization."""

import pytest

from repro.sim import AccessType, DRAMConfig, Engine, MemRequest
from repro.sim.dram import DRAM


def make_dram(channels=1, banks=2, row_size=2048):
    eng = Engine()
    dram = DRAM(DRAMConfig(channels=channels, banks_per_channel=banks,
                           row_size=row_size), eng)
    return eng, dram


def _read(addr, cb):
    return MemRequest(addr=addr, pc=0, core=0, rtype=AccessType.LOAD,
                      callback=cb)


def test_first_access_is_row_activate():
    eng, dram = make_dram()
    times = []
    dram.access(_read(0x0, lambda r, t: times.append(t)))
    eng.run()
    cfg = dram.cfg
    assert times == [cfg.t_rcd + cfg.t_cas + cfg.burst_cycles]
    assert dram.stats.row_misses == 1


def test_row_hit_is_faster():
    eng, dram = make_dram()
    times = []
    dram.access(_read(0x0, lambda r, t: times.append(("a", t))))
    eng.run()
    # 0x80 maps to the same bank (block 2 with 2 banks) and same row.
    dram.access(_read(0x80, lambda r, t: times.append(("b", t))))
    eng.run()
    first = times[0][1]
    second = times[1][1] - first
    assert dram.stats.row_hits == 1
    assert second == dram.cfg.row_hit_latency


def test_row_conflict_pays_precharge():
    eng, dram = make_dram(banks=1, row_size=128)
    times = []
    dram.access(_read(0x0, lambda r, t: times.append(t)))
    eng.run()
    dram.access(_read(0x4000, lambda r, t: times.append(t)))  # new row, same bank
    eng.run()
    delta = times[1] - times[0]
    assert delta == dram.cfg.row_miss_latency
    assert dram.stats.row_misses == 2


def test_same_bank_requests_serialize():
    eng, dram = make_dram(banks=1)
    times = []
    dram.access(_read(0x0, lambda r, t: times.append(t)))
    dram.access(_read(0x40, lambda r, t: times.append(t)))
    eng.run()
    assert times[1] > times[0]


def test_different_banks_overlap():
    eng, dram = make_dram(banks=2)
    times = []
    dram.access(_read(0x0, lambda r, t: times.append(t)))    # bank 0
    dram.access(_read(0x40, lambda r, t: times.append(t)))   # bank 1
    eng.run()
    # array access overlaps; only the data bursts serialize
    assert times[1] - times[0] == dram.cfg.burst_cycles


def test_channel_interleaving():
    eng, dram = make_dram(channels=2, banks=1)
    times = []
    dram.access(_read(0x0, lambda r, t: times.append(t)))    # channel 0
    dram.access(_read(0x40, lambda r, t: times.append(t)))   # channel 1
    eng.run()
    assert times[0] == times[1]   # fully parallel across channels


def test_writeback_consumes_bandwidth_without_response():
    eng, dram = make_dram(banks=1)
    wb = MemRequest(addr=0x0, pc=0, core=0, rtype=AccessType.WRITEBACK)
    dram.access(wb)
    times = []
    dram.access(_read(0x40, lambda r, t: times.append(t)))
    eng.run()
    assert dram.stats.writes == 1
    # The read had to wait behind the write burst in the same bank.
    assert times[0] > dram.cfg.row_miss_latency


def test_mean_read_latency_accumulates():
    eng, dram = make_dram()
    for i in range(4):
        dram.access(_read(i * 0x40, lambda r, t: None))
    eng.run()
    assert dram.stats.reads == 4
    assert dram.stats.mean_read_latency > 0
