"""Multi-seed statistics helpers."""

import pytest

from repro.analysis.statistics import (
    RunStatistics,
    separable,
    summarize,
    summarize_sweep,
)


def test_summarize_basic():
    s = summarize([1.0, 2.0, 3.0])
    assert s.mean == pytest.approx(2.0)
    assert s.std == pytest.approx(1.0)
    assert s.ci_low < 2.0 < s.ci_high
    assert s.n == 3


def test_summarize_single_value_degenerates():
    s = summarize([5.0])
    assert s.mean == 5.0
    assert s.ci_low == s.ci_high == 5.0


def test_summarize_validation():
    with pytest.raises(ValueError):
        summarize([])
    with pytest.raises(ValueError):
        summarize([1.0], confidence=1.5)


def test_ci_narrows_with_more_samples():
    wide = summarize([1.0, 2.0, 3.0])
    narrow = summarize([1.0, 2.0, 3.0] * 10)
    assert narrow.ci_half_width < wide.ci_half_width


def test_ci_widens_with_confidence():
    a = summarize([1.0, 2.0, 3.0], confidence=0.90)
    b = summarize([1.0, 2.0, 3.0], confidence=0.99)
    assert b.ci_half_width > a.ci_half_width


def test_separable_detects_clear_gap():
    sig, p = separable([1.0, 1.01, 0.99, 1.02], [2.0, 2.01, 1.98, 2.02])
    assert sig and p < 0.001


def test_separable_rejects_noise():
    sig, p = separable([1.0, 1.2, 0.8, 1.1], [1.05, 0.95, 1.15, 0.9])
    assert not sig


def test_separable_needs_two_samples():
    with pytest.raises(ValueError):
        separable([1.0], [1.0, 2.0])


def test_summarize_sweep():
    tables = [
        {"lru": 1.0, "care": 1.2},
        {"lru": 1.0, "care": 1.3},
        {"lru": 1.0, "care": 1.25},
    ]
    out = summarize_sweep(tables)
    assert out["care"].mean == pytest.approx(1.25)
    assert out["lru"].std == 0.0
    with pytest.raises(ValueError):
        summarize_sweep([])


def test_formatted_output():
    s = summarize([1.0, 2.0])
    text = s.formatted()
    assert "±" in text and "n=2" in text
