"""The supervision layer: failure values, retry policy, manifest
checkpoint/resume, the supervised pool's watchdog, and signal handling."""

import json
import os
import signal

import pytest

from repro.harness import ExperimentSpec, ResultStore, run_many
from repro.harness.runner import SweepStats, clear_memo
from repro.harness.store import reset_default_store, set_default_store
from repro.harness.supervise import (CRASH_ERROR, TIMEOUT_ERROR,
                                     FailedResult, RetryPolicy,
                                     SweepFailedError, SweepInterrupted,
                                     SweepManifest, active_supervisor,
                                     compute_timeout, format_failure_table,
                                     supervised_sweep)

WORKLOADS = ["429.mcf", "462.libquantum", "470.lbm"]


@pytest.fixture(autouse=True)
def isolated(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    monkeypatch.delenv("REPRO_TIMEOUT", raising=False)
    monkeypatch.delenv("REPRO_RETRIES", raising=False)
    monkeypatch.delenv("REPRO_POOL", raising=False)
    clear_memo()
    store = ResultStore(tmp_path / "store")
    set_default_store(store)
    yield store
    clear_memo()
    reset_default_store()


@pytest.fixture(params=["spawn", "persistent"])
def pool_mode(request, monkeypatch):
    """Chaos-matrix tests run against both pool flavors (PR 5 / PR 7)."""
    monkeypatch.setenv("REPRO_POOL", request.param)
    yield request.param
    if request.param == "persistent":
        from repro.harness.turbo import shutdown_shared_pool
        shutdown_shared_pool()


def specs_for(workloads, n_records=300):
    return [ExperimentSpec.single(w, "lru", n_records=n_records)
            for w in workloads]


def a_failure(spec, kind="error", error="ValueError", permanent=True):
    return FailedResult(spec=spec, kind=kind, error=error,
                        message="boom", attempts=2, permanent=permanent)


# ----------------------------------------------------------------------
# FailedResult / RetryPolicy / compute_timeout
# ----------------------------------------------------------------------
def test_failed_result_roundtrip():
    spec = specs_for(WORKLOADS[:1])[0]
    try:
        raise ValueError("boom")
    except ValueError as exc:
        failure = FailedResult.from_exception(spec, exc, attempts=2,
                                              duration=0.5, permanent=True)
    assert failure.error == "ValueError" and failure.kind == "error"
    assert "boom" in failure.message and "ValueError" in failure.traceback
    clone = FailedResult.from_dict(failure.to_dict())
    assert clone.spec == spec and clone.attempts == 2
    assert "2 attempt(s)" in failure.summary()


def test_retry_policy_classification():
    policy = RetryPolicy()
    assert policy.is_transient(OSError("disk full"))
    assert policy.is_transient(MemoryError())
    assert policy.is_transient_name("BrokenProcessPool")
    assert policy.is_transient_name(CRASH_ERROR)
    assert policy.is_transient_name(TIMEOUT_ERROR)
    assert not policy.is_transient(ValueError("bad input"))
    assert not policy.is_transient_name("ChaosError")


def test_retry_policy_delay_is_deterministic_and_bounded():
    policy = RetryPolicy(backoff=0.25, backoff_cap=8.0, jitter=0.5)
    assert policy.delay("k", 0) == policy.delay("k", 0)
    assert policy.delay("k", 0) != policy.delay("other", 0)
    for attempt in range(12):
        delay = policy.delay("k", attempt)
        base = min(8.0, 0.25 * 2 ** attempt)
        assert base <= delay <= base * 1.5
    with pytest.raises(ValueError, match="max_attempts"):
        RetryPolicy(max_attempts=0)


def test_retry_policy_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_RETRIES", "5")
    assert RetryPolicy.from_env().max_attempts == 5
    monkeypatch.setenv("REPRO_RETRIES", "junk")
    assert RetryPolicy.from_env().max_attempts == 3    # default, warned


def test_compute_timeout_precedence(monkeypatch):
    spec = specs_for(WORKLOADS[:1], n_records=300)[0]
    scaled = compute_timeout(spec)
    assert scaled is not None and scaled > 120.0      # base + work term
    big = specs_for(WORKLOADS[:1], n_records=30000)[0]
    assert compute_timeout(big) > scaled              # scales with size
    monkeypatch.setenv("REPRO_TIMEOUT", "7.5")
    assert compute_timeout(spec) == 7.5
    monkeypatch.setenv("REPRO_TIMEOUT", "0")
    assert compute_timeout(spec) is None              # watchdog off
    assert compute_timeout(spec, override=3.0) == 3.0
    assert compute_timeout(spec, override=0) is None


def test_format_failure_table_lists_every_point():
    specs = specs_for(WORKLOADS[:2])
    text = format_failure_table([a_failure(s) for s in specs])
    assert "2 point(s) failed" in text
    for spec in specs:
        assert spec.label() in text


# ----------------------------------------------------------------------
# SweepManifest
# ----------------------------------------------------------------------
def test_manifest_tracks_and_persists_status(tmp_path):
    specs = specs_for(WORKLOADS)
    path = tmp_path / "m.json"
    manifest = SweepManifest(path, sweep="fig07")
    for spec in specs:
        manifest.register(spec)
    manifest.mark_done(specs[0])
    manifest.mark_failed(a_failure(specs[1]))
    assert manifest.counts() == {"pending": 1, "done": 1, "failed": 1}
    manifest.save()

    loaded = SweepManifest.load(path)
    assert loaded.sweep == "fig07"
    assert loaded.counts() == {"pending": 1, "done": 1, "failed": 1}
    assert loaded.keys_with_status("done") == [specs[0].key()]
    assert loaded.reset_failures() == 1
    assert loaded.counts()["pending"] == 2
    assert "3 point(s)" in loaded.summary()


def test_manifest_register_keeps_existing_status(tmp_path):
    spec = specs_for(WORKLOADS[:1])[0]
    manifest = SweepManifest(tmp_path / "m.json")
    manifest.register(spec)
    manifest.mark_done(spec)
    manifest.register(spec)                  # idempotent
    assert manifest.counts()["done"] == 1


def test_manifest_load_rejects_future_versions(tmp_path):
    path = tmp_path / "m.json"
    path.write_text(json.dumps({"version": 99, "points": {}}))
    with pytest.raises(ValueError, match="version"):
        SweepManifest.load(path)


# ----------------------------------------------------------------------
# supervised_sweep context
# ----------------------------------------------------------------------
def test_supervised_sweep_installs_and_restores():
    assert active_supervisor() is None
    with supervised_sweep() as sup:
        assert active_supervisor() is sup
        with pytest.raises(RuntimeError, match="already active"):
            with supervised_sweep():
                pass
    assert active_supervisor() is None


def test_run_many_leaves_none_holes_under_supervisor(monkeypatch):
    monkeypatch.setenv("REPRO_CHAOS", "raise:7:1/1")
    specs = specs_for(WORKLOADS)
    with supervised_sweep(retry=RetryPolicy(backoff=0.01)) as sup:
        results = run_many(specs, workers=1)
    assert results == [None] * len(specs)
    assert len(sup.failures) == len(specs)
    assert all(f.error == "ChaosError" for f in sup.failures)


def test_run_many_fail_fast_aborts_early(monkeypatch):
    monkeypatch.setenv("REPRO_CHAOS", "raise:7:1/1")
    specs = specs_for(WORKLOADS)
    with supervised_sweep(keep_going=False,
                          retry=RetryPolicy(backoff=0.01)):
        with pytest.raises(SweepFailedError) as excinfo:
            run_many(specs, workers=1)
    assert len(excinfo.value.failures) == 1   # stopped at the first


def test_run_many_checkpoints_manifest(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CHAOS", "raise:11:1/2")
    specs = specs_for(WORKLOADS)
    path = tmp_path / "m.json"
    with supervised_sweep(manifest=SweepManifest(path),
                          retry=RetryPolicy(backoff=0.01)) as sup:
        run_many(specs, workers=1)
    assert path.is_file()
    loaded = SweepManifest.load(path)
    counts = loaded.counts()
    assert counts["failed"] == len(sup.failures) > 0
    assert counts["done"] == len(specs) - counts["failed"]
    entry = loaded.points[sup.failures[0].spec.key()]
    assert entry["error"]["error"] == "ChaosError"


# ----------------------------------------------------------------------
# Signal handling: SIGINT mid-sweep checkpoints, resume completes
# ----------------------------------------------------------------------
def test_sigint_mid_sweep_flushes_manifest_and_resumes(isolated, tmp_path):
    specs = specs_for(WORKLOADS)
    path = tmp_path / "m.json"

    def interrupt_after_first(stats, spec, event):
        if event == "simulated":
            os.kill(os.getpid(), signal.SIGINT)

    with supervised_sweep(manifest=SweepManifest(path)):
        with pytest.raises(SweepInterrupted):
            run_many(specs, workers=1, progress=interrupt_after_first)

    loaded = SweepManifest.load(path)
    counts = loaded.counts()
    assert counts["done"] == 1 and counts["pending"] == len(specs) - 1

    # resume: the done point is served from the store, the rest simulate
    clear_memo()
    stats = SweepStats()
    with supervised_sweep(manifest=loaded):
        results = run_many(specs, workers=1, stats_out=stats)
    assert all(r is not None for r in results)
    assert stats.store_hits == 1
    assert stats.simulated == len(specs) - 1
    assert SweepManifest.load(path).counts()["done"] == len(specs)


# ----------------------------------------------------------------------
# Worker pools (both flavors): watchdog and crash recovery
# ----------------------------------------------------------------------
def test_pool_watchdog_kills_hung_workers(pool_mode, monkeypatch):
    monkeypatch.setenv("REPRO_CHAOS", "hang:5:1/1")
    monkeypatch.setenv("REPRO_TIMEOUT", "2")
    specs = specs_for(WORKLOADS[:2])
    stats = SweepStats()
    results = run_many(specs, workers=2, stats_out=stats,
                       retry=RetryPolicy(max_attempts=3, backoff=0.01))
    assert all(r is not None for r in results)
    assert stats.timeouts == len(specs)     # every point hung once
    assert stats.failed == 0
    assert stats.fell_back_serial or stats.pool_mode == pool_mode


def test_pool_recovers_crashed_workers(pool_mode, monkeypatch):
    monkeypatch.setenv("REPRO_CHAOS", "kill:5:1/1")
    specs = specs_for(WORKLOADS[:2])
    stats = SweepStats()
    results = run_many(specs, workers=2, stats_out=stats,
                       retry=RetryPolicy(max_attempts=3, backoff=0.01))
    assert all(r is not None for r in results)
    assert stats.crashes == len(specs)      # every worker died once
    assert stats.failed == 0


def test_pool_results_match_serial_under_chaos(isolated, pool_mode,
                                               monkeypatch):
    """Chaos only perturbs scheduling, never results: a pool sweep under
    kill/flaky chaos is byte-identical to a clean serial sweep."""
    specs = specs_for(WORKLOADS)
    monkeypatch.setenv("REPRO_CHAOS", "kill,flaky:9:1/2")
    via_pool = run_many(specs, workers=2, store=None,
                        retry=RetryPolicy(max_attempts=3, backoff=0.01))
    monkeypatch.delenv("REPRO_CHAOS")
    clear_memo()
    serial = run_many(specs, workers=1, store=None)
    assert [r.to_json() for r in via_pool] == \
        [r.to_json() for r in serial]
