"""Trace persistence (native format) and the ChampSim importer."""

import gzip
import struct

import pytest

from repro.workloads import spec_trace
from repro.workloads.io import (
    CHAMPSIM_RECORD,
    load_trace,
    pack_champsim_instruction,
    read_champsim_trace,
    save_trace,
)
from repro.workloads.trace import TraceRecord, make_trace


# ----------------------------------------------------------------------
# Native format
# ----------------------------------------------------------------------

def test_native_roundtrip(tmp_path):
    trace = spec_trace("429.mcf", n_records=700, seed=4)
    path = tmp_path / "mcf.rtrc"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert loaded.records == trace.records
    assert loaded.name == trace.name
    assert loaded.seed == trace.seed
    assert loaded.suite == trace.suite


def test_native_roundtrip_gzip(tmp_path):
    trace = spec_trace("470.lbm", n_records=500, seed=1)
    path = tmp_path / "lbm.rtrc.gz"
    save_trace(trace, path)
    raw = path.read_bytes()
    assert raw[:2] == b"\x1f\x8b"      # actually gzip on disk
    assert load_trace(path).records == trace.records


def test_native_preserves_dep_and_write_flags(tmp_path):
    records = [
        TraceRecord(pc=1, addr=64, is_write=True, gap=3, dep=False),
        TraceRecord(pc=2, addr=128, is_write=False, gap=0, dep=True),
    ]
    trace = make_trace("flags", records)
    path = tmp_path / "flags.rtrc"
    save_trace(trace, path)
    assert load_trace(path).records == records


def test_native_rejects_garbage(tmp_path):
    path = tmp_path / "bad.rtrc"
    path.write_bytes(b"NOPE" + b"\x00" * 32)
    with pytest.raises(ValueError, match="not a native trace"):
        load_trace(path)


def test_native_detects_truncation(tmp_path):
    trace = spec_trace("429.mcf", n_records=50, seed=4)
    path = tmp_path / "t.rtrc"
    save_trace(trace, path)
    data = path.read_bytes()
    path.write_bytes(data[:-7])
    with pytest.raises(ValueError, match="truncated|promises"):
        load_trace(path)


# ----------------------------------------------------------------------
# ChampSim importer
# ----------------------------------------------------------------------

def test_champsim_record_is_64_bytes():
    assert CHAMPSIM_RECORD.size == 64
    assert len(pack_champsim_instruction(0x400000)) == 64


def test_champsim_loads_and_stores_extracted():
    blob = b"".join([
        pack_champsim_instruction(0x400000),                 # no memory
        pack_champsim_instruction(0x400004, src_mem=[0x1000]),
        pack_champsim_instruction(0x400008),                 # no memory
        pack_champsim_instruction(0x40000C),                 # no memory
        pack_champsim_instruction(0x400010, dest_mem=[0x2000]),
    ])
    trace = read_champsim_trace(blob, name="t")
    assert len(trace.records) == 2
    load, store = trace.records
    assert (load.pc, load.addr, load.is_write, load.gap) == \
        (0x400004, 0x1000, False, 1)
    assert (store.pc, store.addr, store.is_write, store.gap) == \
        (0x400010, 0x2000, True, 2)


def test_champsim_multi_operand_instruction():
    blob = pack_champsim_instruction(
        0x10, src_mem=[0xA0, 0xB0], dest_mem=[0xC0])
    trace = read_champsim_trace(blob)
    assert [(r.addr, r.is_write) for r in trace.records] == [
        (0xA0, False), (0xB0, False), (0xC0, True)]


def test_champsim_max_records_cap():
    blob = b"".join(
        pack_champsim_instruction(0x10 + i, src_mem=[0x100 + 64 * i])
        for i in range(10))
    trace = read_champsim_trace(blob, max_records=4)
    assert len(trace.records) == 4


def test_champsim_truncated_stream_rejected():
    blob = pack_champsim_instruction(0x10, src_mem=[0x100])[:-3]
    with pytest.raises(ValueError, match="truncated"):
        read_champsim_trace(blob)


def test_champsim_from_file_and_gzip(tmp_path):
    blob = pack_champsim_instruction(0x20, src_mem=[0x40])
    plain = tmp_path / "trace.champsim"
    plain.write_bytes(blob)
    assert len(read_champsim_trace(plain).records) == 1
    gz = tmp_path / "trace.champsim.gz"
    gz.write_bytes(gzip.compress(blob))
    assert len(read_champsim_trace(gz).records) == 1


def test_champsim_trace_runs_in_simulator():
    blob = b"".join(
        pack_champsim_instruction(0x400000 + 4 * (i % 8),
                                  src_mem=[0x1000 + 64 * (i % 50)])
        for i in range(800))
    trace = read_champsim_trace(blob, name="imported")
    from repro.sim import SystemConfig, simulate
    res = simulate([trace.records], cfg=SystemConfig.tiny(1),
                   llc_policy="care")
    assert res.ipc[0] > 0
