"""Examples stay importable/compilable (full runs are exercised manually)."""

import py_compile
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 4      # quickstart + >=3 domain scenarios


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_has_module_docstring_and_main(path):
    source = path.read_text()
    assert source.lstrip().startswith(('"""', '#!')), path
    assert "__main__" in source, f"{path.name} is not runnable"
