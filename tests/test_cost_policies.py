"""Cost-based baselines: SBAR (MLP-aware) and LACS."""

import pytest

from repro.policies.base import PolicyAccess
from repro.policies.dueling import SetDuel
from repro.policies.registry import make_policy
from repro.policies.sbar import quantize_mlp_cost
from repro.sim.request import AccessType


def acc(pc=0, mlp=0.0, instr=0, rtype=AccessType.LOAD):
    return PolicyAccess(pc=pc, addr=0, core=0, rtype=rtype,
                        mlp_cost=mlp, instr_during_miss=instr)


def test_quantize_mlp_cost_levels():
    assert quantize_mlp_cost(0) == 0
    assert quantize_mlp_cost(59.9) == 0
    assert quantize_mlp_cost(60) == 1
    assert quantize_mlp_cost(10_000) == 7
    with pytest.raises(ValueError):
        quantize_mlp_cost(-1)


def test_sbar_lin_prefers_cheap_victim():
    pol = make_policy("sbar", sets=4, ways=2, leaders_per_policy=0)
    # force LIN everywhere: with 0 leaders all sets follow PSEL (A = LIN)
    blocks = [None] * 2
    pol.on_fill(0, 0, blocks, acc(mlp=500))   # expensive miss (cost 7)
    pol.on_fill(0, 1, blocks, acc(mlp=0))     # cheap miss (cost 0)
    # way 1 is MRU (rank 1) but cheap: 1 + 0 = 1 < way0's 0 + 7.
    assert pol.find_victim(0, blocks, acc()) == 1


def test_sbar_lru_mode_ignores_cost():
    pol = make_policy("sbar", sets=64, ways=2, seed=0)
    leader_b = next(s for s in range(64)
                    if pol.duel.role(s) == SetDuel.ROLE_B)  # LRU leader
    blocks = [None] * 2
    pol.on_fill(leader_b, 0, blocks, acc(mlp=500))
    pol.on_fill(leader_b, 1, blocks, acc(mlp=0))
    assert pol.find_victim(leader_b, blocks, acc()) == 0  # plain LRU victim


def test_sbar_hit_promotes_recency():
    pol = make_policy("sbar", sets=4, ways=2, leaders_per_policy=0)
    blocks = [None] * 2
    pol.on_fill(0, 0, blocks, acc(mlp=0))
    pol.on_fill(0, 1, blocks, acc(mlp=0))
    pol.on_hit(0, 0, blocks, acc())
    assert pol.find_victim(0, blocks, acc()) == 1


def test_sbar_writeback_fill_is_cheap():
    pol = make_policy("sbar", sets=4, ways=1, leaders_per_policy=0)
    blocks = [None]
    pol.on_fill(0, 0, blocks, acc(mlp=999, rtype=AccessType.WRITEBACK))
    assert pol._cost[0][0] == 0


def test_lacs_prefers_cheap_miss_victims():
    pol = make_policy("lacs", sets=1, ways=3, cheap_threshold=50)
    blocks = [None] * 3
    pol.on_fill(0, 0, blocks, acc(instr=10))    # core stalled: costly
    pol.on_fill(0, 1, blocks, acc(instr=200))   # hidden: cheap
    pol.on_fill(0, 2, blocks, acc(instr=5))     # costly
    assert pol.find_victim(0, blocks, acc()) == 1


def test_lacs_falls_back_to_lru_when_all_costly():
    pol = make_policy("lacs", sets=1, ways=2, cheap_threshold=50)
    blocks = [None] * 2
    pol.on_fill(0, 0, blocks, acc(instr=0))
    pol.on_fill(0, 1, blocks, acc(instr=0))
    pol.on_hit(0, 0, blocks, acc())
    assert pol.find_victim(0, blocks, acc()) == 1
