"""Save-state codec: header, refusal rules, and resume bit-identity.

The harness-level machinery around these bytes (cadence, preemption,
quarantine, pool protocol) is covered in ``test_preempt.py``; this file
pins the wire format itself: a blob written mid-run restores to a system
whose remaining run is byte-identical, stale blobs are refused as
:class:`StaleSavestate`, and torn blobs as :class:`CorruptSavestate`.
"""

import gzip
import json
from dataclasses import replace

import pytest

from repro.harness import ExperimentSpec
from repro.harness import preempt
from repro.harness.store import code_fingerprint
from repro.sim.savestate import (SAVESTATE_SCHEMA, CorruptSavestate,
                                 StaleSavestate, decode_savestate,
                                 read_savestate_header)

ENGINES = ("classic", "batched")


@pytest.fixture(autouse=True)
def clean_latch(monkeypatch):
    monkeypatch.delenv("REPRO_CKPT_DIR", raising=False)
    monkeypatch.delenv("REPRO_CKPT_EVENTS", raising=False)
    monkeypatch.delenv("REPRO_CKPT_SECS", raising=False)
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    preempt.clear_preempt()
    yield
    preempt.clear_preempt()


def a_spec(engine="classic"):
    return replace(ExperimentSpec.single("462.libquantum", "lru",
                                         n_records=300), engine=engine)


def make_blob(tmp_path, monkeypatch, spec):
    """A real mid-run save-state: force a preempt at the first tick."""
    monkeypatch.setenv("REPRO_CKPT_DIR", str(tmp_path / "ckpt"))
    monkeypatch.setenv("REPRO_CKPT_EVENTS", "1000")
    preempt.request_preempt()
    with pytest.raises(preempt.PreemptedError) as excinfo:
        spec.execute()
    assert excinfo.value.path is not None
    return open(excinfo.value.path, "rb").read()


def tamper(blob, **header_changes):
    """Rewrite header fields (recompressed, checksum untouched)."""
    raw = gzip.decompress(blob)
    sep = raw.find(b"\n")
    header = json.loads(raw[:sep].decode())
    header.update(header_changes)
    patched = json.dumps(header, sort_keys=True).encode() + raw[sep:]
    return gzip.compress(patched, mtime=0)


# ----------------------------------------------------------------------
# Header
# ----------------------------------------------------------------------
def test_header_is_readable_without_unpickling(tmp_path, monkeypatch):
    spec = a_spec()
    blob = make_blob(tmp_path, monkeypatch, spec)
    header = read_savestate_header(blob)
    assert header["schema"] == SAVESTATE_SCHEMA
    assert header["spec_key"] == spec.key()
    assert header["fingerprint"] == code_fingerprint()
    assert header["engine"] == "Engine"
    assert header["events"] == 1000 and header["now"] > 0


# ----------------------------------------------------------------------
# Round trip: restore-then-run == uninterrupted run
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ENGINES)
def test_decode_resumes_byte_identical(tmp_path, monkeypatch, engine):
    spec = a_spec(engine)
    clean = spec.execute()
    blob = make_blob(tmp_path, monkeypatch, spec)
    system = decode_savestate(blob, spec_key=spec.key(),
                              fingerprint=code_fingerprint())
    assert system.engine.events_processed == 1000
    resumed = system.resume()
    assert resumed.to_json() == clean.to_json()


# ----------------------------------------------------------------------
# Refusal rules
# ----------------------------------------------------------------------
def test_decode_refuses_skew_as_stale(tmp_path, monkeypatch):
    spec = a_spec()
    blob = make_blob(tmp_path, monkeypatch, spec)
    key, fp = spec.key(), code_fingerprint()
    with pytest.raises(StaleSavestate, match="schema"):
        decode_savestate(tamper(blob, schema="repro.savestate/v99"),
                         spec_key=key, fingerprint=fp)
    with pytest.raises(StaleSavestate, match="fingerprint"):
        decode_savestate(blob, spec_key=key, fingerprint="f" * 64)
    with pytest.raises(StaleSavestate, match="spec"):
        decode_savestate(blob, spec_key="0" * 64, fingerprint=fp)
    # schema is checked before the fingerprint: a future-format blob is
    # reported as a schema problem even if everything else drifted too
    with pytest.raises(StaleSavestate, match="schema"):
        decode_savestate(tamper(blob, schema="x", fingerprint="y"),
                         spec_key=key, fingerprint=fp)


def test_decode_refuses_torn_blob_as_corrupt(tmp_path, monkeypatch):
    spec = a_spec()
    blob = make_blob(tmp_path, monkeypatch, spec)
    key, fp = spec.key(), code_fingerprint()
    with pytest.raises(CorruptSavestate, match="gzip"):
        decode_savestate(blob[:len(blob) // 2], spec_key=key, fingerprint=fp)
    with pytest.raises(CorruptSavestate, match="gzip"):
        decode_savestate(b"not a gzip stream", spec_key=key, fingerprint=fp)
    # flip one payload byte: checksum catches it before unpickling
    raw = gzip.decompress(blob)
    flipped = gzip.compress(raw[:-1] + bytes([raw[-1] ^ 0xFF]), mtime=0)
    with pytest.raises(CorruptSavestate, match="checksum"):
        decode_savestate(flipped, spec_key=key, fingerprint=fp)
    with pytest.raises(CorruptSavestate, match="header"):
        decode_savestate(gzip.compress(b"no newline here"),
                         spec_key=key, fingerprint=fp)


def test_encoding_a_machine_is_deterministic(tmp_path, monkeypatch):
    """Encoding one machine twice yields identical bytes: mtime=0 gzip
    framing plus a stable header mean the blob is a function of the
    in-memory state, with no wall-clock smuggled in.  (Two *separate*
    simulations may pickle sets of in-flight objects in different
    orders, so cross-run blob equality is deliberately not claimed —
    the pinned invariant is result equality, above.)"""
    from repro.sim.savestate import encode_savestate
    spec = a_spec()
    blob = make_blob(tmp_path, monkeypatch, spec)
    system = decode_savestate(blob, spec_key=spec.key(),
                              fingerprint=code_fingerprint())
    first = encode_savestate(system, spec_key=spec.key(),
                             fingerprint=code_fingerprint())
    second = encode_savestate(system, spec_key=spec.key(),
                              fingerprint=code_fingerprint())
    assert first == second
