"""Metrics-sampler tests: row cadence, column alignment, byte-identity.

The sampler promises a columnar time-series whose columns all have the
same length, one row roughly per ``interval`` cycles plus a final row at
the last simulated cycle, DTRM threshold columns only for policies that
carry a DTRM, and — like every observer — zero effect on results.
"""

import json

import pytest

from tests.conftest import build_trace
from repro.obs import MetricsTable, ObsConfig
from repro.obs.sampler import MetricsSampler
from repro.sim import SystemConfig
from repro.sim.system import System


def _run_sampled(policy="care", interval=2_000, n=1200, n_cores=1,
                 sanitize=None):
    cfg = SystemConfig.tiny(n_cores)
    traces = [build_trace(n=n, seed=s, name=f"t{s}").records
              for s in range(n_cores)]
    system = System(cfg, traces, llc_policy=policy, seed=3,
                    measure_records=n // 2, warmup_records=n // 2,
                    sanitize=sanitize,
                    obs=ObsConfig(metrics_interval=interval))
    result = system.run()
    return system, result


def test_row_cadence_and_column_alignment():
    interval = 2_000
    system, result = _run_sampled(interval=interval)
    table = system.sampler.table
    lengths = {name: len(values) for name, values in table.columns.items()}
    assert len(set(lengths.values())) == 1, f"ragged columns: {lengths}"
    rows = table.n_rows
    # One row per crossed boundary (polling may skip a boundary, never
    # duplicate one) plus the finalize() row at the last cycle.
    assert 2 <= rows <= result.sim_cycles // interval + 1
    cycles = table.column("cycle")
    assert cycles == sorted(cycles)
    assert len(set(cycles)) == len(cycles)
    assert cycles[-1] == result.sim_cycles
    events = table.column("events")
    assert events == sorted(events)
    for name, values in table.columns.items():
        if name.startswith("dtrm_"):
            continue
        assert all(v is not None for v in values), f"None in {name}"
    for occ in table.column("LLC_occ"):
        assert 0.0 <= occ <= 1.0


def test_dtrm_columns_follow_the_policy():
    care_sys, _ = _run_sampled(policy="care")
    care_table = care_sys.sampler.table
    assert care_table.meta["has_dtrm"] is True
    assert all(v is not None for v in care_table.column("dtrm_low"))
    assert all(v is not None for v in care_table.column("dtrm_high"))

    lru_sys, _ = _run_sampled(policy="lru")
    lru_table = lru_sys.sampler.table
    assert lru_table.meta["has_dtrm"] is False
    assert all(v is None for v in lru_table.column("dtrm_low"))
    assert all(v is None for v in lru_table.column("dtrm_costly_share"))


def test_sampling_never_perturbs_results():
    n = 1000
    cfg = SystemConfig.tiny(2)
    traces = [build_trace(n=n, seed=s, name=f"t{s}").records
              for s in range(2)]

    def run(obs):
        return System(cfg, traces, llc_policy="care", seed=3,
                      measure_records=n // 2, warmup_records=n // 2,
                      obs=obs).run()

    plain = run(None)
    sampled = run(ObsConfig(metrics_interval=500))
    assert (json.dumps(plain.to_dict(), sort_keys=True)
            == json.dumps(sampled.to_dict(), sort_keys=True))


def test_sampler_composes_with_sanitizer():
    system, result = _run_sampled(sanitize=True)
    plain_sys, plain = _run_sampled(sanitize=None)
    assert (json.dumps(result.to_dict(), sort_keys=True)
            == json.dumps(plain.to_dict(), sort_keys=True))
    # Both observers detached cleanly after the run.
    assert system.engine.watcher is None
    assert system.engine.watchers == ()
    assert system.sampler.table.n_rows >= 2


def test_metrics_table_json_round_trip():
    system, _ = _run_sampled()
    table = system.sampler.table
    clone = MetricsTable.from_json(table.to_json())
    assert clone.interval == table.interval
    assert clone.meta == table.meta
    assert clone.columns == table.columns
    assert clone.to_json() == table.to_json()


def test_sampler_rejects_bad_interval():
    cfg = SystemConfig.tiny(1)
    traces = [build_trace(n=200).records]
    system = System(cfg, traces, llc_policy="lru", seed=3,
                    measure_records=100, warmup_records=100)
    with pytest.raises(ValueError):
        MetricsSampler(system, 0)
