"""GAP kernels compute *correct* results (validated against networkx).

The trace generators are real algorithm implementations; these tests drain
each kernel and check its computed answer against networkx on the orkut
stand-in graph, so the traced address streams genuinely belong to the
algorithms the paper evaluates.
"""

import networkx as nx
import numpy as np
import pytest

from repro.workloads.gap import (
    bc_records,
    bfs_records,
    cc_records,
    pagerank_records,
    sssp_records,
)
from repro.workloads.graphs import build_graph


@pytest.fixture(scope="module")
def graph():
    return build_graph("or")


@pytest.fixture(scope="module")
def nx_graph(graph):
    g = nx.DiGraph()
    g.add_nodes_from(range(graph.n_vertices))
    for u in range(graph.n_vertices):
        start, end = graph.offsets[u], graph.offsets[u + 1]
        for i in range(start, end):
            g.add_edge(u, int(graph.neighbors[i]),
                       weight=int(graph.weights[i]))
    return g


def drain(gen):
    for _ in gen:
        pass


def test_bfs_depths_match_networkx(graph, nx_graph):
    source = 0
    result = {}
    drain(bfs_records(graph, source, result=result))
    expected = nx.single_source_shortest_path_length(nx_graph, source)
    depth = result["depth"]
    for v in range(graph.n_vertices):
        if v in expected:
            assert depth[v] == expected[v], v
        else:
            assert depth[v] == -1, v


def test_sssp_distances_match_networkx(graph, nx_graph):
    source = 0
    result = {}
    drain(sssp_records(graph, source, result=result))
    expected = nx.single_source_dijkstra_path_length(nx_graph, source,
                                                     weight="weight")
    dist = result["dist"]
    inf = np.iinfo(np.int64).max
    for v in range(graph.n_vertices):
        if v in expected:
            assert dist[v] == expected[v], v
        else:
            assert dist[v] == inf, v


def test_cc_labels_match_weakly_connected_components(graph, nx_graph):
    result = {}
    drain(cc_records(graph, result=result))
    comp = result["comp"]
    # Two-direction hooking converges to the minimum vertex id per
    # weakly-connected component — exactly GAP cc's answer.
    for component in nx.weakly_connected_components(nx_graph):
        label = min(component)
        for v in component:
            assert comp[v] == label, v


def test_pagerank_conserves_mass_and_favors_hubs(graph, nx_graph):
    result = {}
    drain(pagerank_records(graph, iterations=15, result=result))
    rank = result["rank"]
    # Mass is conserved up to dangling leakage (vertices nobody references).
    assert 0.5 < rank.sum() <= 1.05
    # The most-referenced vertex (in-degree of the pull) must out-rank the
    # median vertex.
    refs = np.bincount(graph.neighbors, minlength=graph.n_vertices)
    hub = int(np.argmax(refs))
    median_vertex = int(np.argsort(refs)[len(refs) // 2])
    assert rank[hub] > rank[median_vertex]


def test_bc_sigma_counts_shortest_paths(graph, nx_graph):
    source = 0
    result = {}
    drain(bc_records(graph, source, result=result))
    sigma = result["sigma"]
    # sigma[v] must equal the number of shortest paths from the source.
    # Check a sample of reachable vertices against networkx.
    expected_paths = {}
    depths = nx.single_source_shortest_path_length(nx_graph, source)
    # networkx: count shortest paths via BFS predecessor DAG
    preds = nx.predecessor(nx_graph, source)
    counts = {source: 1}

    def count_paths(v):
        if v in counts:
            return counts[v]
        counts[v] = sum(count_paths(p) for p in preds.get(v, []))
        return counts[v]

    import sys
    sys.setrecursionlimit(100000)
    reachable = [v for v in depths if depths[v] > 0]
    for v in sorted(reachable)[:200]:
        assert sigma[v] == count_paths(v), v


def test_bc_delta_nonnegative(graph):
    result = {}
    drain(bc_records(graph, 3, result=result))
    assert (result["delta"] >= 0).all()
