"""MemRequest semantics and MSHR allocate/merge/free behavior."""

import pytest

from repro.sim import MSHR, AccessType, MemRequest


def _req(addr=0x1000, rtype=AccessType.LOAD, core=0, pc=0x40):
    return MemRequest(addr=addr, pc=pc, core=core, rtype=rtype)


def test_block_is_64b_aligned():
    assert _req(addr=0x1000).block == _req(addr=0x103F).block
    assert _req(addr=0x1000).block != _req(addr=0x1040).block


def test_respond_invokes_callback_with_time():
    seen = []
    r = _req()
    r.callback = lambda req, t: seen.append((req, t))
    r.respond(42, served_by="LLC")
    assert seen == [(r, 42)]
    assert r.completed == 42 and r.served_by == "LLC"


def test_child_inherits_identity_fields():
    r = _req(rtype=AccessType.RFO, core=2)
    child = r.child(created=10)
    assert (child.addr, child.pc, child.core) == (r.addr, r.pc, r.core)
    assert child.rtype == AccessType.RFO
    assert child.req_id != r.req_id


def test_demand_classification():
    assert AccessType.LOAD.is_demand and AccessType.RFO.is_demand
    assert not AccessType.PREFETCH.is_demand
    assert not AccessType.WRITEBACK.is_demand


def test_mshr_allocate_and_free():
    m = MSHR(2)
    r = _req()
    entry = m.allocate(r, time=5)
    assert entry.issue_time == 5 and entry.core == 0
    assert m.lookup(r.block) is entry
    assert len(m) == 1
    freed = m.free(r.block)
    assert freed is entry and len(m) == 0


def test_mshr_merge_collects_waiters():
    m = MSHR(2)
    r1 = _req()
    entry = m.allocate(r1, 0)
    r2 = _req()
    m.merge(r1.block, r2)
    assert entry.waiters == [r1, r2]
    assert m.merges == 1


def test_mshr_full_and_overflow_guard():
    m = MSHR(1)
    m.allocate(_req(addr=0x0), 0)
    assert m.full
    with pytest.raises(RuntimeError):
        m.allocate(_req(addr=0x40), 0)


def test_mshr_duplicate_allocation_rejected():
    m = MSHR(4)
    m.allocate(_req(addr=0x80), 0)
    with pytest.raises(RuntimeError):
        m.allocate(_req(addr=0x80), 1)


def test_prefetch_promotion_on_demand_merge():
    m = MSHR(4)
    p = _req(rtype=AccessType.PREFETCH)
    entry = m.allocate(p, 0)
    assert entry.prefetch_only
    m.merge(p.block, _req(rtype=AccessType.LOAD))
    assert not entry.prefetch_only


def test_has_rfo_detects_store_waiters():
    m = MSHR(4)
    entry = m.allocate(_req(rtype=AccessType.LOAD), 0)
    assert not entry.has_rfo
    m.merge(entry.block, _req(rtype=AccessType.RFO))
    assert entry.has_rfo


def test_outstanding_per_core_counts():
    m = MSHR(8)
    m.allocate(_req(addr=0x000, core=0), 0)
    m.allocate(_req(addr=0x040, core=0), 0)
    m.allocate(_req(addr=0x080, core=1), 0)
    assert m.outstanding_for_core(0) == 2
    assert m.outstanding_for_core(1) == 1
    assert m.outstanding_for_core(2) == 0
    assert {e.block for e in m.entries_for_core(0)} == {0, 1}


def test_peak_occupancy_tracked():
    m = MSHR(4)
    for i in range(3):
        m.allocate(_req(addr=i * 64), 0)
    m.free(0)
    assert m.peak_occupancy == 3
