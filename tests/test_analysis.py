"""Analysis layer: study case, metrics, C-AMAT, hardware cost, reporting."""

from fractions import Fraction

import pytest

from repro.analysis import (
    EXPECTED_MLP,
    EXPECTED_PMC,
    EXPECTED_PURE_CYCLES,
    CaseAccess,
    analyze_case,
    banner,
    camat_breakdown,
    care_concurrency_kb,
    care_cost,
    format_bars,
    format_table,
    framework_costs,
    geometric_mean,
    normalized_ipc,
    paper_study_case,
    speedup_summary,
    weighted_speedup,
    PAPER_TABLE6_KB,
)
from repro.core.pmc import CoreConcurrencyStats
from repro.sim.stats import SimResult
from repro.sim.cache import CacheStats


# ----------------------------------------------------------------------
# Study case (Tables I & II)
# ----------------------------------------------------------------------

def test_study_case_reproduces_table1_exactly():
    result = paper_study_case()
    assert result.mlp_cost == EXPECTED_MLP


def test_study_case_reproduces_table2_exactly():
    result = paper_study_case()
    assert result.pmc == EXPECTED_PMC
    assert result.pure_miss_cycles == EXPECTED_PURE_CYCLES


def test_study_case_pmc_sums_to_pure_cycles():
    result = paper_study_case()
    assert result.total_pmc == Fraction(len(result.pure_miss_cycles))


def test_analyze_case_rejects_duplicate_labels():
    with pytest.raises(ValueError):
        analyze_case([CaseAccess("A", 1, True), CaseAccess("A", 2, False)])


def test_isolated_miss_costs_full_latency():
    r = analyze_case([CaseAccess("m", 1, True)], base_cycles=2,
                     miss_cycles=6)
    assert r.mlp_cost["m"] == 6
    assert r.pmc["m"] == 6


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------

def _result(ipcs, policy="x"):
    return SimResult(policy=policy, n_cores=len(ipcs), prefetch=False,
                     ipc=list(ipcs), instructions=[1000] * len(ipcs),
                     cycles=[100] * len(ipcs), llc=CacheStats(),
                     conc=[CoreConcurrencyStats() for _ in ipcs],
                     conc_total=CoreConcurrencyStats(), pmc_deltas=[])


def test_geometric_mean():
    assert geometric_mean([2, 8]) == pytest.approx(4.0)
    with pytest.raises(ValueError):
        geometric_mean([])
    with pytest.raises(ValueError):
        geometric_mean([1.0, 0.0])


def test_normalized_ipc():
    assert normalized_ipc(_result([2, 2]), _result([1, 1])) == 2.0


def test_weighted_speedup():
    ws = weighted_speedup(_result([1.0, 2.0]), [2.0, 2.0])
    assert ws == pytest.approx(1.5)
    with pytest.raises(ValueError):
        weighted_speedup(_result([1.0]), [1.0, 1.0])


def test_speedup_summary_geomean_row():
    results = {
        "w1": {"lru": _result([1.0]), "care": _result([1.2])},
        "w2": {"lru": _result([1.0]), "care": _result([1.3])},
    }
    table = speedup_summary(results)
    assert table["w1"]["care"] == pytest.approx(1.2)
    assert table["GEOMEAN"]["care"] == pytest.approx(
        geometric_mean([1.2, 1.3]))
    assert table["GEOMEAN"]["lru"] == pytest.approx(1.0)


def test_speedup_summary_requires_baseline():
    with pytest.raises(KeyError):
        speedup_summary({"w": {"care": _result([1.0])}})


# ----------------------------------------------------------------------
# C-AMAT
# ----------------------------------------------------------------------

def test_camat_decomposition_consistent():
    stats = CoreConcurrencyStats(
        accesses=100, misses=30, pure_misses=10,
        pure_miss_cycles=200.0, active_cycles=500.0)
    b = camat_breakdown(stats)
    assert b.camat == pytest.approx(5.0)
    assert b.pure_miss_rate == pytest.approx(0.1)
    assert b.pamp == pytest.approx(20.0)
    assert b.hit_term + b.pure_miss_term == pytest.approx(b.camat)


def test_camat_empty_stats():
    b = camat_breakdown(CoreConcurrencyStats())
    assert b.camat == 0.0 and b.pamp == 0.0


# ----------------------------------------------------------------------
# Hardware cost (Tables V & VI)
# ----------------------------------------------------------------------

def test_care_cost_matches_table5():
    report = care_cost()            # paper's 2MB/16-way configuration
    assert report.total_kb == pytest.approx(26.64, abs=0.05)
    assert care_concurrency_kb(report) == pytest.approx(6.76, abs=0.05)
    assert report.kb_for("SHT") == pytest.approx(12.0)
    assert report.kb_for("metadata") == pytest.approx(14.125, abs=0.01)


def test_care_cost_scales_linearly_with_llc():
    small = care_cost(blocks=32768)
    double = care_cost(blocks=65536)
    # per-block metadata doubles; tables are fixed
    assert double.total_kb > small.total_kb
    assert double.kb_for("SHT") == small.kb_for("SHT")


def test_table6_costs_within_ten_percent_of_paper():
    for report in framework_costs():
        paper = PAPER_TABLE6_KB[report.framework]
        assert report.total_kb == pytest.approx(paper, rel=0.10), \
            report.framework


def test_care_cheaper_than_ml_frameworks():
    costs = {r.framework: r.total_kb for r in framework_costs()}
    assert costs["CARE"] < costs["Glider"]
    assert costs["CARE"] < costs["Hawkeye"]


def test_only_care_and_sbar_are_concurrency_aware():
    flags = {r.framework: r.concurrency_aware for r in framework_costs()}
    assert flags["CARE"] and flags["SBAR(MLP)"]
    assert not any(flags[f] for f in ("LRU", "SHiP++", "Hawkeye", "Glider",
                                      "Mockingjay"))


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------

def test_format_table_alignment_and_floats():
    out = format_table(["name", "v"], [["a", 1.23456], ["bb", 2.0]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert "1.235" in out


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [[1]])


def test_format_bars_scales():
    out = format_bars({"lru": 1.0, "care": 2.0}, width=10)
    lines = out.splitlines()
    assert lines[1].count("█") == 10
    assert lines[0].count("█") == 5


def test_banner_contains_title():
    assert "Figure 7" in banner("Figure 7")
