"""Shared fixtures for the test suite."""

import random

import pytest

from repro.sim import SystemConfig
from repro.workloads import TraceRecord, make_trace


@pytest.fixture
def rng():
    return random.Random(0xBEEF)


@pytest.fixture
def tiny_cfg():
    return SystemConfig.tiny(1)


@pytest.fixture
def tiny_cfg4():
    return SystemConfig.tiny(4)


def build_trace(n=1500, seed=0, hot_blocks=32, region_blocks=4096,
                hot_frac=0.6, write_frac=0.1, mean_gap=3, name="t"):
    """Small mixed-locality trace: hot set + random sweep."""
    r = random.Random(seed)
    records = []
    for i in range(n):
        if r.random() < hot_frac:
            block = r.randrange(hot_blocks)
            pc = 0x100 + (block % 4) * 4
        else:
            block = hot_blocks + r.randrange(region_blocks)
            pc = 0x200
        records.append(TraceRecord(
            pc=pc, addr=block * 64, is_write=r.random() < write_frac,
            gap=r.randrange(0, 2 * mean_gap + 1)))
    return make_trace(name, records, seed=seed)


@pytest.fixture
def small_trace():
    return build_trace()


@pytest.fixture
def small_traces4():
    return [build_trace(seed=s, name=f"t{s}") for s in range(4)]
