"""The sweep engine: run/run_many, caching tiers, parallel determinism."""

import os

import pytest

from repro.harness import ExperimentSpec, ResultStore, run, run_many
from repro.harness.runner import SweepStats, clear_memo, resolve_workers
from repro.harness.store import reset_default_store, set_default_store

WORKLOADS = ["429.mcf", "462.libquantum", "470.lbm", "482.sphinx3"]


@pytest.fixture(autouse=True)
def isolated_store(tmp_path):
    """Each test gets an empty memo and its own on-disk store."""
    clear_memo()
    store = ResultStore(tmp_path / "store")
    set_default_store(store)
    yield store
    clear_memo()
    reset_default_store()


def specs_for(workloads, n_records=400):
    return [ExperimentSpec.single(w, "lru", n_records=n_records)
            for w in workloads]


def test_run_memoizes_and_persists(isolated_store):
    spec = specs_for(WORKLOADS[:1])[0]
    a = run(spec)
    b = run(spec)
    assert a is b                       # in-process memo keeps identity
    assert isolated_store.stats()["writes"] == 1
    clear_memo()
    c = run(spec)                       # fresh memo -> served from disk
    assert c is not a and c == a
    assert isolated_store.stats()["hits"] == 1


def test_run_force_resimulates(isolated_store):
    spec = specs_for(WORKLOADS[:1])[0]
    a = run(spec)
    b = run(spec, force=True)
    assert b is not a and b == a
    assert isolated_store.stats()["writes"] == 2


def test_run_many_preserves_order_and_dedups(isolated_store):
    specs = specs_for(WORKLOADS[:2])
    sheet = [specs[0], specs[1], specs[0], specs[1], specs[0]]
    stats = SweepStats()
    results = run_many(sheet, workers=1, stats_out=stats)
    assert len(results) == 5
    assert results[0] is results[2] is results[4]
    assert results[1] is results[3]
    assert stats.simulated == 2         # duplicates resolved once
    assert stats.total == 2


def test_run_many_serves_store_hits(isolated_store):
    specs = specs_for(WORKLOADS[:3])
    run_many(specs, workers=1)
    clear_memo()                        # simulate a fresh process
    stats = SweepStats()
    again = run_many(specs, workers=1, stats_out=stats)
    assert stats.store_hits == 3
    assert stats.simulated == 0         # zero re-simulation
    assert [r.to_json() for r in again] == \
        [r.to_json() for r in run_many(specs, workers=1)]


def test_parallel_results_byte_identical_to_serial(isolated_store):
    specs = specs_for(WORKLOADS)
    serial_stats = SweepStats()
    serial = run_many(specs, workers=1, store=None, stats_out=serial_stats)
    clear_memo()
    par_stats = SweepStats()
    parallel = run_many(specs, workers=2, store=None, stats_out=par_stats)
    assert par_stats.pool_used or par_stats.fell_back_serial
    assert serial_stats.simulated == par_stats.simulated == len(specs)
    for a, b in zip(serial, parallel):
        assert a.to_json() == b.to_json()


def test_parallel_run_populates_store(isolated_store):
    specs = specs_for(WORKLOADS[:2])
    run_many(specs, workers=2)
    assert isolated_store.stats()["writes"] == 2
    clear_memo()
    stats = SweepStats()
    run_many(specs, workers=2, stats_out=stats)
    assert stats.store_hits == 2 and stats.simulated == 0


def test_same_seed_same_json_across_processes(isolated_store):
    """Determinism: a subprocess-simulated point equals the in-process one."""
    spec = ExperimentSpec.multicopy("462.libquantum", "care", n_cores=2,
                                    prefetch=True, n_records=300)
    [via_pool] = run_many([spec], workers=2, store=None)
    clear_memo()
    in_process = run(spec, store=None)
    assert via_pool.to_json() == in_process.to_json()


def test_run_many_progress_callback(isolated_store):
    events = []
    specs = specs_for(WORKLOADS[:2])
    run_many(specs, workers=1,
             progress=lambda stats, spec, event: events.append(event))
    assert events.count("simulated") == 2
    assert events[-1] == "done"


def test_resolve_workers(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert resolve_workers(None) == 1
    assert resolve_workers(3) == 3
    assert resolve_workers(0) == (os.cpu_count() or 1)
    assert resolve_workers(-5) == 1
    monkeypatch.setenv("REPRO_WORKERS", "6")
    assert resolve_workers(None) == 6
    monkeypatch.setenv("REPRO_WORKERS", "banana")
    assert resolve_workers(None) == 1


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="speedup needs >= 4 CPUs")
def test_parallel_speedup_on_four_points(isolated_store):
    """Acceptance: workers=4 gives >= 2x wall-clock on 4 distinct points."""
    import time
    specs = specs_for(WORKLOADS, n_records=4000)
    start = time.monotonic()
    serial = run_many(specs, workers=1, store=None)
    serial_t = time.monotonic() - start
    clear_memo()
    start = time.monotonic()
    parallel = run_many(specs, workers=4, store=None)
    parallel_t = time.monotonic() - start
    assert [r.to_json() for r in serial] == [r.to_json() for r in parallel]
    assert parallel_t * 2.0 <= serial_t


def test_legacy_helpers_route_through_engine(isolated_store):
    from repro.harness import run_single
    from repro.harness.experiment import _result_cache
    clear_memo()
    res = run_single("462.libquantum", "lru", n_records=400)
    assert len(_result_cache) == 1
    (spec,) = _result_cache
    assert isinstance(spec, ExperimentSpec)
    assert spec.n_records == 400 and spec.n_cores == 1
    assert _result_cache[spec] is res
    assert isolated_store.stats()["writes"] == 1
