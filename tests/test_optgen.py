"""OPTgen: the occupancy-vector reconstruction of Belady's decisions."""

from repro.policies.optgen import OptGen


def feed(gen, stream, pc=0x10):
    labels = []
    for tag in stream:
        labels.append(gen.access(tag, pc))
    return labels


def test_first_touch_yields_no_label():
    gen = OptGen(ways=2)
    assert gen.access(1, 0x10) is None


def test_reuse_within_capacity_labels_hit():
    gen = OptGen(ways=2)
    labels = feed(gen, [1, 2, 1])
    assert labels[2] is not None and labels[2].hit


def test_capacity_exceeded_labels_miss():
    gen = OptGen(ways=1)
    # A, B, C all live across A's reuse interval with 1 way: A's reuse
    # cannot be cached once B is kept... with 1 way, interval [A..A] holds
    # B and C touches -> occupancy full at B's slot after B reuse.
    labels = feed(gen, [1, 2, 2, 1])
    # 2's reuse fits (occupancy 0 < 1), 1's reuse sees the interval where
    # 2 was cached -> full -> OPT miss.
    assert labels[2].hit is True
    assert labels[3].hit is False


def test_opt_beats_lru_shape_on_cyclic_pattern():
    # Cyclic pattern over ways+1 blocks: LRU hits 0%; OPT hits some.
    gen = OptGen(ways=2)
    labels = feed(gen, [1, 2, 3] * 6)
    hits = sum(1 for l in labels if l is not None and l.hit)
    assert hits > 0


def test_label_carries_previous_pc_and_context():
    gen = OptGen(ways=4)
    gen.access(7, 0xAAA, context="first")
    label = gen.access(7, 0xBBB, context="second")
    assert label.pc == 0xAAA
    assert label.context == "first"


def test_out_of_window_reuse_is_negative():
    gen = OptGen(ways=1, window=4)
    gen.access(99, 0x1)
    for tag in range(10, 16):
        gen.access(tag, 0x2)
    label = gen.access(99, 0x3)
    assert label is not None and not label.hit


def test_time_advances_per_access():
    gen = OptGen(ways=2)
    feed(gen, [1, 2, 3])
    assert gen.time == 3


def test_address_map_is_bounded():
    gen = OptGen(ways=2, window=8)
    for tag in range(10_000):
        gen.access(tag, 0x1)
    assert len(gen._last) <= 4 * gen.window + 1
