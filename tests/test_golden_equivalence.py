"""Golden-equivalence suite: the simulator's results are pinned bit-exact.

Each fixture in ``tests/golden/`` holds an ExperimentSpec and the
``SimResult.to_dict()`` it produced before the hot-path optimization work
(tag->way index, ``__slots__`` request/MSHR objects, engine fast path,
PMC interval fast path).  Re-running the spec must reproduce the stored
result *byte for byte* after canonical JSON serialization — any drift in
event ordering, float accumulation, or policy decisions fails here.

Regenerate (only after an intentional model change) with::

    PYTHONPATH=src python tests/golden/regenerate.py
"""

import difflib
import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.harness.spec import ExperimentSpec

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
FIXTURES = sorted(GOLDEN_DIR.glob("*.json"))

#: Every registered engine backend must reproduce every fixture byte for
#: byte — the batched backend's whole contract is bit-identity.
ENGINES = ("classic", "batched")


def _canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("path", FIXTURES, ids=[p.stem for p in FIXTURES])
def test_result_is_bit_identical_to_golden_fixture(path, engine):
    raw = path.read_text()
    stored = json.loads(raw)
    spec = ExperimentSpec.from_dict(stored["spec"])
    result = replace(spec, engine=engine).execute()
    # The fixture's identity is the spec *as stored* (engine is a pure
    # throughput knob, not part of the experiment's identity).
    got = _canonical({"name": stored["name"], "spec": spec.to_dict(),
                      "result": result.to_dict()})
    if got != raw:
        diff = "\n".join(difflib.unified_diff(
            _canonical(stored).splitlines(),
            got.splitlines(),
            fromfile=f"golden/{path.name}", tofile=f"current[{engine}]",
            lineterm=""))
        pytest.fail(
            f"simulation result drifted from golden fixture {path.name} "
            f"under engine={engine};\n"
            f"if the behaviour change is intentional, regenerate with "
            f"'PYTHONPATH=src python tests/golden/regenerate.py'\n{diff}")


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("path", FIXTURES, ids=[p.stem for p in FIXTURES])
def test_result_is_bit_identical_with_observers_attached(path, engine):
    """Tracing + metrics sampling must never perturb simulation results.

    Every golden fixture re-runs with the event tracer and the interval
    metrics sampler both enabled; the result must stay byte-identical to
    the fixture produced without observers — on every backend.
    """
    from repro.obs import ObsConfig

    stored = json.loads(path.read_text())
    spec = replace(ExperimentSpec.from_dict(stored["spec"]), engine=engine)
    obs = ObsConfig(metrics_interval=2_000, trace=True, trace_sample=1)
    result = spec.execute(obs=obs)
    assert _canonical(result.to_dict()) == _canonical(stored["result"]), (
        f"observers perturbed the simulation for {path.name} "
        f"under engine={engine}")


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("path", FIXTURES, ids=[p.stem for p in FIXTURES])
def test_result_is_bit_identical_after_checkpoint_restore(
        path, engine, tmp_path, monkeypatch):
    """A forced mid-run checkpoint + restore must be invisible: the
    resumed second half produces the exact fixture bytes on every
    fixture, under both engines (the save-state contract)."""
    from repro.harness import preempt

    stored = json.loads(path.read_text())
    spec = replace(ExperimentSpec.from_dict(stored["spec"]), engine=engine)
    monkeypatch.setenv("REPRO_CKPT_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_CKPT_EVENTS", "2000")
    preempt.clear_preempt()
    preempt.request_preempt()
    try:
        with pytest.raises(preempt.PreemptedError):
            spec.execute()
        notes = {}
        result = spec.execute(notes=notes)
    finally:
        preempt.clear_preempt()
    assert notes.get("resumed", 0) > 0, "restore did not happen"
    assert _canonical(result.to_dict()) == _canonical(stored["result"]), (
        f"checkpoint/restore perturbed the simulation for {path.name} "
        f"under engine={engine}")


def test_fixture_coverage():
    """The suite must keep covering the key configuration axes."""
    assert len(FIXTURES) >= 6
    specs = [json.loads(p.read_text())["spec"] for p in FIXTURES]
    assert {s["preset"] for s in specs} >= {"tiny", "default"}
    assert {s["n_cores"] for s in specs} >= {1, 2, 4}
    assert {s["policy"] for s in specs} >= {"lru", "care", "mcare", "shippp"}
    assert {s["prefetch"] for s in specs} == {True, False}
    assert any(s["collect_deltas"] for s in specs)
    # Every production-traffic family stays golden-pinned.
    serve = {s["workload"] for s in specs if s["suite"] == "serve"}
    assert {w.split("-")[0] for w in serve} >= {"kv", "stream", "usvc"}
