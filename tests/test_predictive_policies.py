"""Hawkeye, Glider, Mockingjay, and Belady-OPT."""

import pytest

from repro.harness import simulate_cache
from repro.policies.base import PolicyAccess
from repro.policies.hawkeye import HawkeyePredictor
from repro.policies.mockingjay import ReuseDistancePredictor
from repro.policies.registry import make_policy
from repro.sim.request import AccessType


def acc(pc=0x40, addr=0, rtype=AccessType.LOAD, prefetch=False):
    return PolicyAccess(pc=pc, addr=addr, core=0, rtype=rtype,
                        prefetch=prefetch)


def seq(blocks, pc_of=lambda b: 0x10):
    return [(pc_of(b), b * 64) for b in blocks]


# ----------------------------------------------------------------------
# Hawkeye
# ----------------------------------------------------------------------

def test_hawkeye_predictor_trains_and_saturates():
    p = HawkeyePredictor(entries=64)
    pc = 0x1234
    assert p.friendly(pc)                 # starts at threshold
    for _ in range(10):
        p.train(pc, hit=False)
    assert not p.friendly(pc)
    for _ in range(20):
        p.train(pc, hit=True)
    assert p.friendly(pc)


def test_hawkeye_predictor_separates_prefetch_class():
    p = HawkeyePredictor(entries=4096)
    pc = 0x40
    for _ in range(10):
        p.train(pc, hit=False, prefetch=True)
    assert p.friendly(pc, prefetch=False)
    assert not p.friendly(pc, prefetch=True)


def test_hawkeye_averse_fill_is_first_victim():
    pol = make_policy("hawkeye", sets=8, ways=2)
    blocks = [None] * 2
    # make pc 0xBAD averse
    for _ in range(10):
        pol.predictor.train(0xBAD, hit=False)
    pol.on_fill(1, 0, blocks, acc(pc=0x600D))
    pol.on_fill(1, 1, blocks, acc(pc=0xBAD))
    assert pol.find_victim(1, blocks, acc()) == 1


def test_hawkeye_forced_eviction_detrains():
    pol = make_policy("hawkeye", sets=8, ways=2)
    blocks = [None] * 2
    pc = 0x77
    pol.on_fill(1, 0, blocks, acc(pc=pc))
    pol.on_fill(1, 1, blocks, acc(pc=pc))
    pol.on_hit(1, 0, blocks, acc(pc=pc))
    pol.on_hit(1, 1, blocks, acc(pc=pc))   # both friendly at age 0
    idx = pol.predictor._index(pc, False)
    before = pol.predictor._table[idx]
    pol.find_victim(1, blocks, acc())
    assert pol.predictor._table[idx] == before - 1


def test_hawkeye_writeback_inserts_averse():
    pol = make_policy("hawkeye", sets=8, ways=2)
    blocks = [None] * 2
    pol.on_fill(2, 0, blocks, acc(rtype=AccessType.WRITEBACK))
    assert pol._age[2][0] == pol.MAX_AGE


def test_hawkeye_beats_lru_on_mixed_reuse_scan():
    reuse = list(range(8))
    stream = list(range(1000, 1600))
    pattern = []
    for i in range(20):
        pattern += reuse + stream[30 * i:30 * (i + 1)]
    addrs = seq(pattern, pc_of=lambda b: 0x10 if b < 8 else 0x20)
    lru = simulate_cache(addrs, sets=2, ways=8, policy="lru")
    hawk = simulate_cache(addrs, sets=2, ways=8, policy="hawkeye",
                          sampled_target=2)
    assert hawk.hits > lru.hits


# ----------------------------------------------------------------------
# Glider
# ----------------------------------------------------------------------

def test_glider_isvm_trains_with_margin():
    pol = make_policy("glider", sets=8, ways=2)
    hist = (1, 2, 3, 4, 5)
    pc = 0x90
    for _ in range(100):
        pol.isvm.train(pc, hist, hit=True)
    # margin training stops at the training threshold
    assert pol.isvm.raw_sum(pc, hist) <= pol.isvm.train_threshold + len(hist)
    assert pol.isvm.friendly(pc, hist)
    for _ in range(200):
        pol.isvm.train(pc, hist, hit=False)
    assert not pol.isvm.friendly(pc, hist)


def test_glider_history_is_per_core():
    pol = make_policy("glider", sets=8, ways=2, n_cores=2)
    blocks = [None] * 2
    pol.on_fill(1, 0, blocks, PolicyAccess(pc=0x10, addr=0, core=0,
                                           rtype=AccessType.LOAD))
    assert len(pol._pchr[0]) == 1
    assert len(pol._pchr[1]) == 0


def test_glider_improves_on_reuse_scan_mix():
    reuse = list(range(8))
    stream = list(range(1000, 1600))
    pattern = []
    for i in range(20):
        pattern += reuse + stream[30 * i:30 * (i + 1)]
    addrs = seq(pattern, pc_of=lambda b: 0x10 if b < 8 else 0x20)
    lru = simulate_cache(addrs, sets=2, ways=8, policy="lru")
    glider = simulate_cache(addrs, sets=2, ways=8, policy="glider",
                            sampled_target=2)
    assert glider.hits > lru.hits


# ----------------------------------------------------------------------
# Mockingjay
# ----------------------------------------------------------------------

def test_rdp_snaps_when_close_jumps_when_far():
    rdp = ReuseDistancePredictor(entries=64)
    rdp.train(0x1, 100)
    assert rdp.predict(0x1) == 100
    rdp.train(0x1, 104)               # close: snap
    assert rdp.predict(0x1) == 104
    rdp.train(0x1, 504)               # far: move a quarter
    assert rdp.predict(0x1) == 204


def test_mockingjay_evicts_farthest_predicted_reuse():
    pol = make_policy("mockingjay", sets=8, ways=2)
    blocks = [None] * 2
    near_pc, far_pc = 0x1, 0x2
    for _ in range(4):
        pol.rdp.train(near_pc, 2)
        pol.rdp.train(far_pc, 900)
    pol.on_fill(1, 0, blocks, acc(pc=near_pc))
    pol.on_fill(1, 1, blocks, acc(pc=far_pc))
    assert pol.find_victim(1, blocks, acc()) == 1


def test_mockingjay_sampler_trains_observed_distance():
    pol = make_policy("mockingjay", sets=8, ways=4)
    s = next(iter(pol.sampled))
    blocks = [None] * 4
    pc = 0x5
    pol.on_fill(s, 0, blocks, acc(pc=pc, addr=0x0))
    for i in range(1, 4):
        pol.on_fill(s, i, blocks, acc(pc=0x99, addr=i * 64))
    pol.on_hit(s, 0, blocks, acc(pc=pc, addr=0x0))
    assert pol.rdp.predict(pc) == 4    # 4 sampler accesses since the fill


def test_mockingjay_beats_lru_on_chase_plus_reuse():
    # dead one-shot stream (never reused) + hot reuse set
    hot = list(range(6))
    dead = list(range(2000, 2600))
    pattern = []
    for i in range(20):
        pattern += hot + dead[30 * i:30 * (i + 1)]
    addrs = seq(pattern, pc_of=lambda b: 0x10 if b < 8 else 0x20)
    lru = simulate_cache(addrs, sets=2, ways=8, policy="lru")
    mj = simulate_cache(addrs, sets=2, ways=8, policy="mockingjay",
                        sampled_target=2)
    assert mj.hits > lru.hits


# ----------------------------------------------------------------------
# Belady OPT
# ----------------------------------------------------------------------

def test_opt_requires_future_knowledge():
    pol = make_policy("opt", sets=1, ways=2)
    with pytest.raises(ValueError, match="future"):
        pol.on_fill(0, 0, [None] * 2, acc())


def test_opt_is_optimal_on_cyclic_pattern():
    # loop of 3 blocks over 2-way cache: OPT hit rate = 1/3 asymptotically
    addrs = seq([1, 2, 3] * 30)
    opt = simulate_cache(addrs, sets=1, ways=2, policy="opt")
    lru = simulate_cache(addrs, sets=1, ways=2, policy="lru")
    assert lru.hits == 0
    assert opt.hits >= 25


def test_opt_never_loses_to_any_policy(rng):
    addrs = [(0, rng.randrange(64) * 64) for _ in range(2000)]
    opt = simulate_cache(addrs, sets=2, ways=4, policy="opt")
    for other in ("lru", "fifo", "random", "srrip", "lfu"):
        r = simulate_cache(addrs, sets=2, ways=4, policy=other)
        assert opt.hits >= r.hits, other
