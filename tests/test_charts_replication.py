"""ASCII charts and seed-replication harness."""

import pytest

from repro.analysis.charts import line_chart, scaling_chart
from repro.harness.replication import replicated_speedups


# ----------------------------------------------------------------------
# line_chart
# ----------------------------------------------------------------------

def test_line_chart_contains_series_glyphs_and_legend():
    out = line_chart([4, 8, 16], {"lru": [1.0, 1.0, 1.0],
                                  "care": [1.1, 1.13, 1.17]})
    assert "o=lru" in out and "x=care" in out
    assert "o" in out and "x" in out


def test_line_chart_extremes_on_boundary_rows():
    out = line_chart([0, 1], {"s": [0.0, 10.0]}, height=5, width=10)
    lines = out.splitlines()
    assert lines[0].startswith("  10.000")
    assert "s" not in lines[0]          # glyph row, but max is first series row
    # min value printed on the bottom axis row
    assert any(l.startswith("   0.000") for l in lines)


def test_line_chart_validation():
    with pytest.raises(ValueError):
        line_chart([], {"a": []})
    with pytest.raises(ValueError):
        line_chart([1], {})
    with pytest.raises(ValueError):
        line_chart([1, 2], {"a": [1.0]})
    with pytest.raises(ValueError):
        line_chart([1], {str(i): [1.0] for i in range(9)})


def test_line_chart_flat_series_does_not_divide_by_zero():
    out = line_chart([1, 2, 3], {"flat": [2.0, 2.0, 2.0]})
    assert "flat" in out


def test_scaling_chart_shape():
    table = {4: {"lru": 1.0, "care": 1.1},
             8: {"lru": 1.0, "care": 1.14},
             16: {"lru": 1.0, "care": 1.18}}
    out = scaling_chart(table)
    assert "cores" in out and "speedup over LRU" in out
    assert "care" in out


# ----------------------------------------------------------------------
# replication harness (miniature runs)
# ----------------------------------------------------------------------

def test_replicated_speedups_summary():
    stats = replicated_speedups("462.libquantum", ["lru", "srrip"],
                                n_cores=1, prefetch=False,
                                n_records=800, seeds=(0, 1))
    assert set(stats) == {"srrip"}
    s = stats["srrip"]
    assert s.n == 2
    assert s.mean > 0
    assert s.ci_low <= s.mean <= s.ci_high
