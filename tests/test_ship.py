"""SHiP and SHiP++: SHCT training, insertion decisions, prefetch handling."""

import pytest

from repro.policies.base import PolicyAccess
from repro.policies.registry import make_policy
from repro.policies.ship import SHCT
from repro.sim.request import AccessType
from repro.core.signatures import pc_signature


def acc(pc=0x40, rtype=AccessType.LOAD, prefetch=False, addr=0):
    return PolicyAccess(pc=pc, addr=addr, core=0, rtype=rtype,
                        prefetch=prefetch)


def sampled_set(pol):
    return next(iter(pol.sampled))


# ----------------------------------------------------------------------
# SHCT
# ----------------------------------------------------------------------

def test_shct_saturates_both_ends():
    t = SHCT(entries=8, bits=2, initial=1)
    for _ in range(10):
        t.increment(3)
    assert t[3] == 3
    for _ in range(10):
        t.decrement(3)
    assert t[3] == 0


def test_shct_initial_value_respected():
    assert SHCT(initial=2)[0] == 2
    with pytest.raises(ValueError):
        SHCT(bits=2, initial=9)


# ----------------------------------------------------------------------
# SHiP
# ----------------------------------------------------------------------

def test_ship_dead_signature_inserts_distant():
    pol = make_policy("ship", sets=8, ways=2)
    s = sampled_set(pol)
    blocks = [None] * 2
    pc = 0x77
    # Train the signature dead: fill + evict without reuse, repeatedly.
    for _ in range(4):
        pol.on_fill(s, 0, blocks, acc(pc=pc))
        pol.on_evict(s, 0, blocks, acc())
    sig = pc_signature(pc, False)
    assert pol.shct[sig] == 0
    pol.on_fill(0, 0, blocks, acc(pc=pc))
    assert pol.rrpv[0][0] == pol.rrpv_max


def test_ship_first_reuse_trains_up_once():
    pol = make_policy("ship", sets=8, ways=2)
    s = sampled_set(pol)
    blocks = [None] * 2
    pc = 0x99
    sig = pc_signature(pc, False)
    before = pol.shct[sig]
    pol.on_fill(s, 0, blocks, acc(pc=pc))
    pol.on_hit(s, 0, blocks, acc(pc=pc))
    pol.on_hit(s, 0, blocks, acc(pc=pc))   # second hit must not retrain
    assert pol.shct[sig] == before + 1


def test_ship_eviction_without_reuse_trains_down():
    pol = make_policy("ship", sets=8, ways=2)
    s = sampled_set(pol)
    blocks = [None] * 2
    pc = 0xAB
    sig = pc_signature(pc, False)
    before = pol.shct[sig]
    pol.on_fill(s, 0, blocks, acc(pc=pc))
    pol.on_evict(s, 0, blocks, acc())
    assert pol.shct[sig] == before - 1


def test_ship_reused_block_eviction_does_not_train_down():
    pol = make_policy("ship", sets=8, ways=2)
    s = sampled_set(pol)
    blocks = [None] * 2
    pc = 0xCD
    sig = pc_signature(pc, False)
    pol.on_fill(s, 0, blocks, acc(pc=pc))
    pol.on_hit(s, 0, blocks, acc(pc=pc))
    trained = pol.shct[sig]
    pol.on_evict(s, 0, blocks, acc())
    assert pol.shct[sig] == trained


def test_ship_signature_ignores_prefetch_bit():
    pol = make_policy("ship", sets=8, ways=2)
    a = acc(pc=0x10, prefetch=True)
    b = acc(pc=0x10, prefetch=False)
    assert pol.signature(a) == pol.signature(b)


# ----------------------------------------------------------------------
# SHiP++
# ----------------------------------------------------------------------

def test_shippp_signature_distinguishes_prefetch():
    pol = make_policy("shippp", sets=8, ways=2)
    a = acc(pc=0x10, prefetch=True)
    b = acc(pc=0x10, prefetch=False)
    assert pol.signature(a) != pol.signature(b)


def test_shippp_writebacks_insert_distant_and_do_not_train():
    pol = make_policy("shippp", sets=8, ways=2)
    s = sampled_set(pol)
    blocks = [None] * 2
    wb = acc(rtype=AccessType.WRITEBACK)
    sig = pol.signature(wb)
    before = pol.shct[sig]
    pol.on_fill(s, 0, blocks, wb)
    assert pol.rrpv[s][0] == pol.rrpv_max
    pol.on_hit(s, 0, blocks, wb)
    assert pol.shct[sig] == before


def test_shippp_saturated_signature_inserts_mru():
    pol = make_policy("shippp", sets=8, ways=2)
    s = sampled_set(pol)
    blocks = [None] * 2
    pc = 0x55
    sig = pc_signature(pc, False)
    for _ in range(10):   # saturate via repeated first-reuses
        pol.on_fill(s, 0, blocks, acc(pc=pc))
        pol.on_hit(s, 0, blocks, acc(pc=pc))
    assert pol.shct[sig] == pol.shct.max_value
    pol.on_fill(1, 0, blocks, acc(pc=pc))
    assert pol.rrpv[1][0] == 0


def test_shippp_prefetch_fill_insertion():
    pol = make_policy("shippp", sets=8, ways=2)
    blocks = [None] * 2
    # Unproven prefetch signature (counter > 0): long position, so a
    # timely prefetch survives until its demand.
    pol.on_fill(1, 0, blocks, acc(pc=0xE0, rtype=AccessType.PREFETCH,
                                  prefetch=True))
    assert pol.rrpv[1][0] == pol.rrpv_max - 1
    # Dead prefetch signature (counter == 0): distant.
    s = sampled_set(pol)
    dead = acc(pc=0xE4, rtype=AccessType.PREFETCH, prefetch=True)
    for _ in range(4):
        pol.on_fill(s, 0, blocks, dead)
        pol.on_evict(s, 0, blocks, dead)
    pol.on_fill(1, 1, blocks, dead)
    assert pol.rrpv[1][1] == pol.rrpv_max


def test_shippp_prefetch_hit_on_unreferenced_block_is_ignored():
    pol = make_policy("shippp", sets=8, ways=2)
    s = sampled_set(pol)
    blocks = [None] * 2
    pol.on_fill(s, 0, blocks, acc(pc=0xF0, rtype=AccessType.PREFETCH,
                                  prefetch=True))
    rrpv_before = pol.rrpv[s][0]
    pol.on_hit(s, 0, blocks, acc(pc=0xF0, rtype=AccessType.PREFETCH,
                                 prefetch=True))
    assert pol.rrpv[s][0] == rrpv_before
