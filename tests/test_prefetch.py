"""Prefetchers: next-line and IP-stride behavior, plumbing through caches."""

import pytest

from repro.prefetch import IPStridePrefetcher, NextLinePrefetcher
from repro.sim import AccessType, MemRequest
from repro.sim.config import BLOCK_SIZE


def req(addr, pc=0x40):
    return MemRequest(addr=addr, pc=pc, core=0, rtype=AccessType.LOAD)


def test_next_line_prefetches_next_block():
    pf = NextLinePrefetcher()
    out = pf.train(req(0x1008), hit=True)
    assert out == [0x1040]


def test_next_line_degree():
    pf = NextLinePrefetcher(degree=3)
    out = pf.train(req(0x0), hit=False)
    assert out == [BLOCK_SIZE, 2 * BLOCK_SIZE, 3 * BLOCK_SIZE]
    with pytest.raises(ValueError):
        NextLinePrefetcher(degree=0)


def test_ip_stride_learns_constant_stride():
    pf = IPStridePrefetcher(degree=2, threshold=2)
    pc = 0x88
    outs = []
    for i in range(6):
        outs.append(pf.train(req(i * 2 * BLOCK_SIZE, pc=pc), hit=False))
    # needs a few observations before confidence crosses the threshold
    assert outs[0] == [] and outs[1] == []
    assert outs[-1] == [(10 + 2) * BLOCK_SIZE, (10 + 4) * BLOCK_SIZE]


def test_ip_stride_does_not_predict_random():
    pf = IPStridePrefetcher()
    import random
    r = random.Random(0)
    predictions = []
    for _ in range(50):
        predictions += pf.train(req(r.randrange(1 << 20) * 64, pc=0x10),
                                hit=False)
    assert len(predictions) <= 4     # essentially nothing learned


def test_ip_stride_per_pc_isolation():
    pf = IPStridePrefetcher(table_size=64)
    for i in range(5):
        pf.train(req(i * BLOCK_SIZE, pc=0x10), hit=False)
        pf.train(req((100 + 3 * i) * BLOCK_SIZE, pc=0x11), hit=False)
    out10 = pf.train(req(5 * BLOCK_SIZE, pc=0x10), hit=False)
    out11 = pf.train(req(115 * BLOCK_SIZE, pc=0x11), hit=False)
    assert out10 and out10[0] == 6 * BLOCK_SIZE
    assert out11 and out11[0] == 118 * BLOCK_SIZE


def test_ip_stride_table_conflict_resets():
    pf = IPStridePrefetcher(table_size=1)
    for i in range(5):
        pf.train(req(i * BLOCK_SIZE, pc=0x10), hit=False)
    # a different pc steals the single entry
    assert pf.train(req(0x0, pc=0x11), hit=False) == []
    assert pf.table[0].pc == 0x11


def test_same_block_retouch_learns_nothing():
    pf = IPStridePrefetcher()
    pf.train(req(0x100, pc=0x1), hit=True)
    assert pf.train(req(0x108, pc=0x1), hit=True) == []


def test_cache_filters_redundant_prefetches(tiny_cfg, small_trace):
    from repro.sim import System
    # warmup_records=0 so cache stats are never reset mid-run and stay
    # comparable with the prefetcher's own issue counter.
    system = System(tiny_cfg, [small_trace.records], prefetch=True,
                    warmup_records=0)
    system.run()
    l1 = system.l1s[0]
    # issued prefetches became PREFETCH accesses at L1
    assert l1.stats.accesses[AccessType.PREFETCH] == l1.prefetcher.issued
    assert l1.prefetcher.issued <= l1.prefetcher.trained
