"""SHT counters / SBP classification (Section V-B/C) and DTRM (Section V-F)."""

import pytest

from repro.core.dtrm import DTRM, DTRMConfig
from repro.core.sht import CostClass, ReuseClass, SignatureHistoryTable
from repro.core.signatures import SIG_ENTRIES, hash_pc, pc_signature


# ----------------------------------------------------------------------
# Signatures
# ----------------------------------------------------------------------

def test_signature_is_14_bits():
    for pc in (0, 0x400000, 0xFFFFFFFF, 123456789):
        for pf in (False, True):
            assert 0 <= pc_signature(pc, pf) < SIG_ENTRIES


def test_signature_prefetch_bit_separates_classes():
    assert pc_signature(0x40, True) != pc_signature(0x40, False)


def test_signature_deterministic():
    assert pc_signature(0x1234) == pc_signature(0x1234)


def test_hash_pc_spreads_dense_pcs():
    values = {hash_pc(0x400000 + 4 * i) for i in range(256)}
    assert len(values) > 200   # few collisions on dense PC ranges


# ----------------------------------------------------------------------
# SHT
# ----------------------------------------------------------------------

def test_sht_counters_saturate():
    sht = SignatureHistoryTable(entries=16, rc_init=2, pd_init=2)
    for _ in range(20):
        sht.rc_increment(3)
        sht.pd_decrement(3)
    assert sht.rc(3) == sht.max_value
    assert sht.pd(3) == 0
    for _ in range(20):
        sht.rc_decrement(3)
        sht.pd_increment(3)
    assert sht.rc(3) == 0
    assert sht.pd(3) == sht.max_value


def test_sbp_reuse_classification():
    sht = SignatureHistoryTable(entries=8, rc_init=2)
    assert sht.reuse_class(0) == ReuseClass.MODERATE
    for _ in range(8):
        sht.rc_increment(0)
    assert sht.reuse_class(0) == ReuseClass.HIGH
    for _ in range(8):
        sht.rc_decrement(0)
    assert sht.reuse_class(0) == ReuseClass.LOW


def test_sbp_cost_classification():
    sht = SignatureHistoryTable(entries=8, pd_init=2)
    assert sht.cost_class(0) == CostClass.MODERATE
    for _ in range(8):
        sht.pd_increment(0)
    assert sht.cost_class(0) == CostClass.HIGH
    for _ in range(8):
        sht.pd_decrement(0)
    assert sht.cost_class(0) == CostClass.LOW


def test_sht_index_wraps():
    sht = SignatureHistoryTable(entries=4)
    sht.rc_increment(5)
    assert sht.rc(1) == sht.rc(5)


def test_sht_rejects_bad_init():
    with pytest.raises(ValueError):
        SignatureHistoryTable(counter_bits=3, rc_init=8)


# ----------------------------------------------------------------------
# DTRM
# ----------------------------------------------------------------------

def test_dtrm_quantization_bands():
    d = DTRM(period=100, config=DTRMConfig(initial_low=50, initial_high=350))
    assert d.quantize(0) == DTRM.PMCS_CHEAP
    assert d.quantize(49.9) == DTRM.PMCS_CHEAP
    assert d.quantize(50) == DTRM.PMCS_MID
    assert d.quantize(350) == DTRM.PMCS_MID
    assert d.quantize(350.1) == DTRM.PMCS_COSTLY


def test_dtrm_loosens_when_costly_scarce():
    cfg = DTRMConfig(initial_low=50, initial_high=350, low_step=10,
                     high_step=70)
    d = DTRM(period=1000, config=cfg)
    for _ in range(1000):       # no costly misses at all
        d.observe(10.0)
    assert d.low == 40 and d.high == 280


def test_dtrm_tightens_when_costly_common():
    cfg = DTRMConfig(initial_low=50, initial_high=350, low_step=10,
                     high_step=70)
    d = DTRM(period=1000, config=cfg)
    for _ in range(1000):       # every miss costly
        d.observe(1000.0)
    assert d.low == 60 and d.high == 420


def test_dtrm_stable_inside_band():
    d = DTRM(period=1000)
    # 2% costly: between 0.5% and 5% -> no movement.
    for i in range(1000):
        d.observe(10_000.0 if i % 50 == 0 else 10.0)
    assert (d.low, d.high) == (DTRMConfig().initial_low,
                               DTRMConfig().initial_high)


def test_dtrm_thresholds_never_cross():
    cfg = DTRMConfig(initial_low=20, initial_high=40, low_step=10,
                     high_step=70, min_low=0, min_gap=10)
    d = DTRM(period=10, config=cfg)
    for _ in range(100):
        d.observe(0.0)
    assert d.low >= 0
    assert d.high >= d.low + 10


def test_dtrm_frozen_when_not_adaptive():
    d = DTRM(period=10, adaptive=False)
    init = (d.low, d.high)
    for _ in range(100):
        d.observe(0.0)
    assert (d.low, d.high) == init
    assert len(d.threshold_history) == 10   # periods still recorded


def test_dtrm_counts_tcm():
    d = DTRM(period=100)
    for i in range(50):
        d.observe(1e6)
    assert d.total_costly == 50
    assert d.total_misses == 50


def test_dtrm_paper_config():
    cfg = DTRMConfig.paper()
    assert (cfg.initial_low, cfg.initial_high) == (50.0, 350.0)
    assert (cfg.low_step, cfg.high_step) == (10.0, 70.0)
