"""Workload substrate: patterns, SPEC-like registry, mixes."""

import random

import pytest

from repro.sim.config import BLOCK_SIZE
from repro.workloads import (
    FIG5_WORKLOADS,
    SPEC_BENCHMARKS,
    HotColdPattern,
    PointerChasePattern,
    RandomPattern,
    ScanPattern,
    StreamPattern,
    StridePattern,
    TraceRecord,
    WeightedPattern,
    WorkloadMix,
    make_trace,
    mixed_workload_names,
    mixed_workload_traces,
    multicopy_traces,
    spec_benchmark,
    spec_names,
    spec_trace,
)


# ----------------------------------------------------------------------
# Trace container
# ----------------------------------------------------------------------

def test_trace_instruction_count():
    t = make_trace("t", [TraceRecord(1, 0, False, 3),
                         TraceRecord(2, 64, True, 0)])
    assert t.instructions == 5
    assert t.memory_accesses == 2
    assert t.write_fraction == 0.5


def test_trace_validation_rejects_negative_fields():
    with pytest.raises(ValueError):
        make_trace("bad", [TraceRecord(1, -8, False, 0)])


def test_trace_footprint():
    t = make_trace("t", [TraceRecord(0, b * 64, False, 0)
                         for b in (0, 0, 1, 2, 2)])
    assert t.footprint_blocks() == 3


# ----------------------------------------------------------------------
# Patterns
# ----------------------------------------------------------------------

def test_stream_pattern_is_sequential_and_wraps():
    p = StreamPattern(region_elems=4)
    rng = random.Random(0)
    idxs = [p.step(rng)[1] for _ in range(6)]
    assert idxs == [0, 1, 2, 3, 0, 1]


def test_stride_pattern_steps_blocks():
    p = StridePattern(region_elems=1000, stride_blocks=2)
    rng = random.Random(0)
    a = p.step(rng)[1]
    b = p.step(rng)[1]
    assert b - a == 16       # 2 blocks x 8 elems


def test_pointer_chase_is_dependent_and_covers_cycle():
    p = PointerChasePattern(region_elems=8 * 16, seed=3)
    rng = random.Random(0)
    seen = set()
    for _ in range(16):
        pc_off, idx, w, dep = p.step(rng)
        assert dep
        seen.add(idx // 8)
    assert len(seen) == 16    # full permutation cycle


def test_hot_cold_pattern_respects_fraction_and_pcs():
    p = HotColdPattern(region_elems=1000, hot_elems=100, hot_fraction=0.8)
    rng = random.Random(1)
    hot = 0
    pcs = set()
    for _ in range(2000):
        pc, idx, w, dep = p.step(rng)
        pcs.add(pc)
        hot += idx < 100
    assert 0.75 < hot / 2000 < 0.85
    assert len(pcs) >= 2      # hot and cold use distinct PCs


def test_scan_pattern_revisits_blocks():
    p = ScanPattern(region_elems=8 * 4)
    rng = random.Random(0)
    idxs = [p.step(rng)[1] for _ in range(8)]
    assert idxs[:4] == [0, 8, 16, 24]
    assert idxs[4:] == [0, 8, 16, 24]


def test_pattern_rejects_bad_params():
    with pytest.raises(ValueError):
        StreamPattern(0)
    with pytest.raises(ValueError):
        HotColdPattern(10, 20)
    with pytest.raises(ValueError):
        HotColdPattern(10, 5, hot_fraction=1.5)


# ----------------------------------------------------------------------
# WorkloadMix
# ----------------------------------------------------------------------

def _mix(seed=0, mean_gap=3.0):
    return WorkloadMix("m", [
        WeightedPattern(0.5, StreamPattern(800)),
        WeightedPattern(0.5, HotColdPattern(400, 100)),
    ], mean_gap=mean_gap, seed=seed)


def test_mix_regions_are_disjoint():
    mix = _mix()
    t = mix.generate(2000)
    stream_pcs = set()
    regions = {}
    for rec in t.records:
        regions.setdefault(rec.pc // 64, set()).add(rec.addr >> 22)
    all_regions = [a for s in regions.values() for a in s]
    # patterns never write into each other's 4MB-aligned windows


def test_mix_is_deterministic_per_seed():
    a = _mix(seed=5).generate(500)
    b = _mix(seed=5).generate(500)
    assert a.records == b.records
    c = _mix(seed=6).generate(500)
    assert a.records != c.records


def test_mix_seed_changes_address_space():
    a = _mix(seed=1).generate(10)
    b = _mix(seed=2).generate(10)
    assert (a.records[0].addr >> 32) != (b.records[0].addr >> 32)


def test_mix_gap_mean_near_target():
    t = _mix(mean_gap=4.0).generate(5000)
    mean = sum(r.gap for r in t.records) / len(t.records)
    assert 2.5 < mean < 5.5


def test_mix_rejects_bad_weights():
    with pytest.raises(ValueError):
        WorkloadMix("m", [], mean_gap=1)
    with pytest.raises(ValueError):
        WorkloadMix("m", [WeightedPattern(0.0, StreamPattern(10))],
                    mean_gap=1)


# ----------------------------------------------------------------------
# SPEC registry
# ----------------------------------------------------------------------

def test_thirty_benchmarks_with_table8_mpki():
    names = spec_names()
    assert len(names) == 30
    assert SPEC_BENCHMARKS["429.mcf"].paper_mpki == 26.28
    assert SPEC_BENCHMARKS["605.mcf_s"].paper_mpki == 55.62
    suites = {SPEC_BENCHMARKS[n].suite for n in names}
    assert suites == {"SPEC06", "SPEC17"}


def test_fig5_subset_is_valid():
    assert len(FIG5_WORKLOADS) == 16
    for name in FIG5_WORKLOADS:
        assert name in SPEC_BENCHMARKS


def test_spec_trace_generation():
    t = spec_trace("462.libquantum", n_records=500, seed=1)
    assert len(t) == 500
    assert t.name == "462.libquantum"
    t.validate()


def test_spec_benchmark_prefix_lookup():
    assert spec_benchmark("429").name == "429.mcf"
    with pytest.raises(KeyError):
        spec_benchmark("999.nope")


def test_spec_traces_differ_by_benchmark():
    a = spec_trace("429.mcf", 300, seed=1)
    b = spec_trace("470.lbm", 300, seed=1)
    # mcf chases pointers (dep records); lbm streams (no deps, more writes)
    assert any(r.dep for r in a.records)
    assert not any(r.dep for r in b.records)
    assert b.write_fraction > a.write_fraction


# ----------------------------------------------------------------------
# Mixes / multicopy
# ----------------------------------------------------------------------

def test_mixed_workloads_deterministic_and_from_universe():
    names1 = mixed_workload_names(4, 7)
    names2 = mixed_workload_names(4, 7)
    assert names1 == names2
    assert len(names1) == 4
    assert all(n in SPEC_BENCHMARKS for n in names1)
    assert mixed_workload_names(4, 8) != names1 or True  # ids differ


def test_mixed_workload_traces_shapes():
    traces = mixed_workload_traces(2, 0, n_records=200)
    assert len(traces) == 2
    assert all(len(t) == 200 for t in traces)


def test_multicopy_traces_not_synchronized():
    traces = multicopy_traces("462.libquantum", 2, 200, seed=1)
    assert traces[0].records != traces[1].records
    # separate address spaces
    assert (traces[0].records[0].addr >> 32) != (traces[1].records[0].addr >> 32)


def test_multicopy_gap_suite():
    traces = multicopy_traces("bfs-or", 2, 300, seed=1, suite="gap")
    assert len(traces) == 2 and all(len(t) == 300 for t in traces)
    with pytest.raises(ValueError):
        multicopy_traces("x", 1, 10, suite="bogus")
