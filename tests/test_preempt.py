"""Checkpoint/preempt harness layer: config, cadence, quarantine
fallback, chaos preempt equivalence on every execution path, manifest
lineage + persistence strikes, and resource guards."""

import json
import os
import signal

import pytest

from repro.harness import ExperimentSpec, ResultStore, run_many
from repro.harness import preempt
from repro.harness.runner import SweepStats, clear_memo
from repro.harness.store import (code_fingerprint, reset_default_store,
                                 set_default_store)
from repro.harness.supervise import (ManifestPersistError, RetryPolicy,
                                     SweepInterrupted, SweepManifest,
                                     supervised_sweep)

WORKLOADS = ["429.mcf", "462.libquantum", "470.lbm"]

CKPT_VARS = ("REPRO_CKPT_DIR", "REPRO_CKPT_EVENTS", "REPRO_CKPT_SECS",
             "REPRO_RSS_BUDGET_MB", "REPRO_DISK_FLOOR_MB",
             "REPRO_PREEMPT_GRACE")


@pytest.fixture(autouse=True)
def isolated(tmp_path, monkeypatch):
    for var in CKPT_VARS + ("REPRO_CHAOS", "REPRO_POOL", "REPRO_TIMEOUT"):
        monkeypatch.delenv(var, raising=False)
    preempt.clear_preempt()
    clear_memo()
    store = ResultStore(tmp_path / "store")
    set_default_store(store)
    yield store
    preempt.clear_preempt()
    clear_memo()
    reset_default_store()


@pytest.fixture(params=["spawn", "persistent"])
def pool_mode(request, monkeypatch):
    monkeypatch.setenv("REPRO_POOL", request.param)
    yield request.param
    if request.param == "persistent":
        from repro.harness.turbo import shutdown_shared_pool
        shutdown_shared_pool()


def specs_for(workloads, n_records=300):
    return [ExperimentSpec.single(w, "lru", n_records=n_records)
            for w in workloads]


def enable_ckpt(monkeypatch, tmp_path, events="1000"):
    root = tmp_path / "ckpt"
    monkeypatch.setenv("REPRO_CKPT_DIR", str(root))
    if events:
        monkeypatch.setenv("REPRO_CKPT_EVENTS", events)
    return root


# ----------------------------------------------------------------------
# Configuration parsing
# ----------------------------------------------------------------------
def test_checkpoint_from_env_requires_dir():
    assert preempt.checkpoint_from_env({}) is None
    assert preempt.checkpoint_from_env({"REPRO_CKPT_DIR": "  "}) is None
    cfg = preempt.checkpoint_from_env({"REPRO_CKPT_DIR": "/tmp/c"})
    assert cfg.dir == "/tmp/c"
    assert cfg.every_events is None and cfg.every_secs is None


def test_checkpoint_from_env_parses_cadence_leniently():
    cfg = preempt.checkpoint_from_env({
        "REPRO_CKPT_DIR": "/tmp/c", "REPRO_CKPT_EVENTS": "5000",
        "REPRO_CKPT_SECS": "2.5"})
    assert cfg.every_events == 5000 and cfg.every_secs == 2.5
    cfg = preempt.checkpoint_from_env({
        "REPRO_CKPT_DIR": "/tmp/c", "REPRO_CKPT_EVENTS": "junk",
        "REPRO_CKPT_SECS": "-1"})
    assert cfg.every_events is None and cfg.every_secs is None
    # events floor at 1; a bare dir still ticks at the default interval
    cfg = preempt.checkpoint_from_env({
        "REPRO_CKPT_DIR": "/tmp/c", "REPRO_CKPT_EVENTS": "0"})
    policy = preempt.CheckpointPolicy.for_spec(cfg, "k" * 64, "f" * 64)
    assert policy.tick_interval == 1


def test_grace_and_guard_parsing():
    assert preempt.preempt_grace({}) == preempt.DEFAULT_GRACE_SECS
    assert preempt.preempt_grace({"REPRO_PREEMPT_GRACE": "2.5"}) == 2.5
    assert preempt.preempt_grace(
        {"REPRO_PREEMPT_GRACE": "nope"}) == preempt.DEFAULT_GRACE_SECS
    assert not preempt.guards_from_env({}).enabled
    guards = preempt.guards_from_env({"REPRO_RSS_BUDGET_MB": "512",
                                      "REPRO_DISK_FLOOR_MB": "100"})
    assert guards.enabled
    assert guards.rss_budget_mb == 512 and guards.disk_floor_mb == 100
    assert not preempt.guards_from_env(
        {"REPRO_RSS_BUDGET_MB": "-5"}).enabled


def test_state_path_is_sharded():
    path = preempt.state_path("/tmp/root", "abcdef" + "0" * 58)
    assert str(path).startswith("/tmp/root/ab/abcdef")
    assert path.name.endswith(".ckpt.gz")


def test_resource_probes_report_plausible_values(tmp_path):
    rss = preempt.rss_mb(os.getpid())
    assert rss is not None and rss > 1.0
    free = preempt.disk_free_mb(tmp_path)
    assert free is not None and free > 0
    assert preempt.rss_mb(2 ** 30) is None       # no such pid
    # breach messages name the offending resource
    guards = preempt.ResourceGuards(rss_budget_mb=0.001)
    assert "rss" in preempt.guard_breach(guards, os.getpid(), None)
    guards = preempt.ResourceGuards(disk_floor_mb=10 ** 9)
    assert "disk" in preempt.guard_breach(guards, os.getpid(), tmp_path)
    assert preempt.guard_breach(preempt.ResourceGuards(), os.getpid(),
                                tmp_path) is None


# ----------------------------------------------------------------------
# Cadence + in-process preempt/resume
# ----------------------------------------------------------------------
def test_cadence_writes_states_and_completion_clears_them(
        tmp_path, monkeypatch):
    root = enable_ckpt(monkeypatch, tmp_path)
    spec = specs_for(WORKLOADS[:1])[0]
    seen = []
    original = preempt.save_state

    def spy(policy):
        seen.append(policy.system.engine.events_processed)
        return original(policy)

    monkeypatch.setattr(preempt, "save_state", spy)
    clean = spec.execute()
    assert seen and seen == sorted(seen)         # periodic saves happened
    assert all(n % 1000 == 0 for n in seen)      # at watcher boundaries
    # ...and the completed run cleaned its state up
    assert not preempt.state_path(root, spec.key()).exists()
    # a checkpointed run is byte-identical to an unobserved one
    for var in ("REPRO_CKPT_DIR", "REPRO_CKPT_EVENTS"):
        monkeypatch.delenv(var)
    assert spec.execute().to_json() == clean.to_json()


def test_preempt_then_reexecute_resumes(tmp_path, monkeypatch):
    enable_ckpt(monkeypatch, tmp_path)
    spec = specs_for(WORKLOADS[:1])[0]
    preempt.request_preempt()
    with pytest.raises(preempt.PreemptedError) as excinfo:
        spec.execute()
    assert excinfo.value.events == 1000
    notes = {}
    resumed = spec.execute(notes=notes)
    assert notes == {"resumed": 1000}
    for var in ("REPRO_CKPT_DIR", "REPRO_CKPT_EVENTS"):
        monkeypatch.delenv(var)
    assert resumed.to_json() == spec.execute().to_json()


def test_corrupt_state_quarantines_and_cold_starts(tmp_path, monkeypatch):
    root = enable_ckpt(monkeypatch, tmp_path)
    spec = specs_for(WORKLOADS[:1])[0]
    preempt.request_preempt()
    with pytest.raises(preempt.PreemptedError):
        spec.execute()
    path = preempt.state_path(root, spec.key())
    path.write_bytes(path.read_bytes()[:100])            # torn write
    notes = {}
    result = spec.execute(notes=notes)
    assert "CorruptSavestate" in notes["quarantined"]
    assert "resumed" not in notes                        # cold start
    assert (path.parent / "quarantine" / path.name).is_file()
    for var in ("REPRO_CKPT_DIR", "REPRO_CKPT_EVENTS"):
        monkeypatch.delenv(var)
    assert result.to_json() == spec.execute().to_json()  # never wrong


def test_stale_state_quarantines_and_cold_starts(tmp_path, monkeypatch):
    from repro.sim.savestate import encode_savestate
    root = enable_ckpt(monkeypatch, tmp_path)
    spec = specs_for(WORKLOADS[:1])[0]
    preempt.request_preempt()
    with pytest.raises(preempt.PreemptedError):
        spec.execute()
    path = preempt.state_path(root, spec.key())
    # re-sign the valid state with a foreign code fingerprint
    from repro.sim.savestate import decode_savestate
    system = decode_savestate(path.read_bytes(), spec_key=spec.key(),
                              fingerprint=code_fingerprint())
    path.write_bytes(encode_savestate(system, spec_key=spec.key(),
                                      fingerprint="f" * 64))
    notes = {}
    spec.execute(notes=notes)
    assert "StaleSavestate" in notes["quarantined"]
    assert (path.parent / "quarantine" / path.name).is_file()


# ----------------------------------------------------------------------
# Chaos preempt: every execution path converges to fault-free results
# ----------------------------------------------------------------------
def test_chaos_preempt_noops_without_checkpointing(monkeypatch):
    monkeypatch.delenv("REPRO_CKPT_DIR", raising=False)
    assert not preempt.chaos_preempt()
    assert not preempt.preempt_requested()
    monkeypatch.setenv("REPRO_CKPT_DIR", "/tmp/ckpt")
    assert preempt.chaos_preempt()
    assert preempt.preempt_requested()
    preempt.clear_preempt()


def test_serial_sweep_preempted_points_resume_identically(
        tmp_path, monkeypatch):
    specs = specs_for(WORKLOADS)
    clean = run_many(specs, workers=1, store=None)
    clear_memo()
    enable_ckpt(monkeypatch, tmp_path)
    monkeypatch.setenv("REPRO_CHAOS", "preempt:7:1/1")
    stats = SweepStats()
    results = run_many(specs, workers=1, store=None, stats_out=stats,
                       retry=RetryPolicy(max_attempts=3, backoff=0.01))
    assert stats.retried == len(specs)        # every point was preempted
    assert stats.failed == 0
    assert [r.to_json() for r in results] == [r.to_json() for r in clean]


def test_pool_sweep_preempted_points_resume_identically(
        tmp_path, monkeypatch, pool_mode):
    specs = specs_for(WORKLOADS)
    clean = run_many(specs, workers=1, store=None)
    clear_memo()
    root = enable_ckpt(monkeypatch, tmp_path)
    monkeypatch.setenv("REPRO_CHAOS", "preempt:7:1/1")
    stats = SweepStats()
    results = run_many(specs, workers=2, store=None, stats_out=stats,
                       retry=RetryPolicy(max_attempts=3, backoff=0.01))
    assert stats.failed == 0
    assert [r.to_json() for r in results] == [r.to_json() for r in clean]
    # resumed points completed and removed their save-states
    leftovers = list(root.rglob("*.ckpt.gz"))
    assert not leftovers


def test_ckpt_corrupt_chaos_degrades_to_cold_restart(tmp_path, monkeypatch):
    """A torn save-state may cost time, never correctness: preempted
    points whose states are chaos-truncated quarantine and cold-start."""
    specs = specs_for(WORKLOADS)
    clean = run_many(specs, workers=1, store=None)
    clear_memo()
    root = enable_ckpt(monkeypatch, tmp_path)
    monkeypatch.setenv("REPRO_CHAOS", "preempt,ckpt-corrupt:7:1/1")
    results = run_many(specs, workers=1, store=None,
                       retry=RetryPolicy(max_attempts=3, backoff=0.01))
    assert [r.to_json() for r in results] == [r.to_json() for r in clean]
    quarantined = list(root.rglob("quarantine/*"))
    assert quarantined                        # the torn states moved aside


# ----------------------------------------------------------------------
# Manifest: preempt lineage and persistence strikes
# ----------------------------------------------------------------------
def test_manifest_records_preempt_lineage(tmp_path):
    spec = specs_for(WORKLOADS[:1])[0]
    manifest = SweepManifest(tmp_path / "m.json")
    manifest.register(spec)
    manifest.mark_preempted(spec, "/ckpt/ab/abc.ckpt.gz")
    manifest.mark_preempted(spec, "/ckpt/ab/abc.ckpt.gz")
    entry = manifest.points[spec.key()]
    assert entry["preempts"] == 2
    assert entry["ckpt"] == "/ckpt/ab/abc.ckpt.gz"
    assert entry["status"] == "pending"       # still in flight
    loaded = SweepManifest.load(tmp_path / "m.json")
    assert loaded.points[spec.key()]["preempts"] == 2


def test_manifest_checkpoint_aborts_after_three_strikes(
        tmp_path, monkeypatch):
    spec = specs_for(WORKLOADS[:1])[0]
    manifest = SweepManifest(tmp_path / "m.json")
    manifest.register(spec)
    manifest.checkpoint()                     # healthy baseline

    calls = {"fail": True}

    def flaky_save():
        if calls["fail"]:
            raise OSError(28, "No space left on device")
        SweepManifest.save.__get__(manifest)()

    monkeypatch.setattr(manifest, "save", flaky_save)
    manifest.checkpoint()                     # strike 1: warns
    manifest.checkpoint()                     # strike 2: warns
    with pytest.raises(ManifestPersistError) as excinfo:
        manifest.checkpoint()                 # strike 3: aborts
    assert excinfo.value.strikes == 3
    assert "No space left" in str(excinfo.value)

    # a successful write resets the strike counter
    calls["fail"] = False
    manifest.checkpoint()
    calls["fail"] = True
    manifest.checkpoint()                     # strike 1 again, no raise


# ----------------------------------------------------------------------
# SIGTERM mid-sweep on the persistent pool (parent side)
# ----------------------------------------------------------------------
def test_sigterm_mid_sweep_persistent_pool_flushes_and_resumes(
        isolated, tmp_path, monkeypatch):
    from repro.harness.turbo import shutdown_shared_pool
    monkeypatch.setenv("REPRO_POOL", "persistent")
    specs = specs_for(WORKLOADS)
    path = tmp_path / "m.json"
    fired = []

    def interrupt_after_first(stats, spec, event):
        if event == "simulated" and not fired:
            fired.append(1)
            os.kill(os.getpid(), signal.SIGTERM)

    try:
        with supervised_sweep(manifest=SweepManifest(path)):
            with pytest.raises(SweepInterrupted):
                run_many(specs, workers=2, progress=interrupt_after_first)

        loaded = SweepManifest.load(path)      # handler flushed the ledger
        assert loaded.counts()["done"] >= 1

        clear_memo()
        with supervised_sweep(manifest=loaded):
            results = run_many(specs, workers=2)
        assert all(r is not None for r in results)

        # a second --resume is a no-op re-check: everything store-served
        clear_memo()
        stats = SweepStats()
        with supervised_sweep(manifest=SweepManifest.load(path)):
            results = run_many(specs, workers=2, stats_out=stats)
        assert all(r is not None for r in results)
        assert stats.simulated == 0
        assert stats.store_hits + stats.memo_hits == len(specs)
        assert SweepManifest.load(path).counts()["done"] == len(specs)
    finally:
        shutdown_shared_pool()
