"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


def test_policies_command(capsys):
    assert main(["policies"]) == 0
    out = capsys.readouterr().out
    for name in ("lru", "care", "mcare", "shippp", "hawkeye"):
        assert name in out


def test_workloads_command(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    assert "429.mcf" in out and "bfs-or" in out
    assert "26.28" in out      # Table VIII MPKI shown


def test_studycase_command(capsys):
    assert main(["studycase"]) == 0
    out = capsys.readouterr().out
    assert "7/3" in out
    assert "[10, 11, 12, 13, 14]" in out


def test_hwcost_command(capsys):
    assert main(["hwcost"]) == 0
    out = capsys.readouterr().out
    assert "26.64" in out and "6.76" in out


def test_run_command_spec(capsys):
    assert main(["run", "462.libquantum", "--policies", "lru", "care",
                 "--records", "1000"]) == 0
    out = capsys.readouterr().out
    assert "462.libquantum" in out
    assert "care" in out


def test_run_command_gap(capsys):
    assert main(["run", "bfs-or", "--policies", "lru",
                 "--records", "800", "--prefetch"]) == 0
    out = capsys.readouterr().out
    assert "bfs-or" in out and "prefetch=on" in out


def test_run_command_json(capsys):
    import json
    assert main(["run", "462.libquantum", "--policies", "lru",
                 "--records", "600", "--json", "--no-store"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload) == 1
    entry = payload[0]
    assert entry["spec"]["workload"] == "462.libquantum"
    assert entry["spec"]["policy"] == "lru"
    from repro.sim.stats import SimResult
    res = SimResult.from_dict(entry["result"])
    assert res.policy == "lru" and res.n_cores == 1


def test_sweep_list(capsys):
    assert main(["sweep", "--list"]) == 0
    out = capsys.readouterr().out
    assert "fig07" in out and "fig13" in out
    assert main(["sweep"]) == 0          # bare `sweep` also lists
    assert "fig07" in capsys.readouterr().out


def test_sweep_command_runs_and_reports(capsys, tmp_path):
    from repro.harness.store import (ResultStore, reset_default_store,
                                     set_default_store)
    from repro.harness.runner import clear_memo
    clear_memo()
    set_default_store(ResultStore(tmp_path))
    try:
        assert main(["sweep", "fig07", "--workloads", "1", "--records",
                     "200", "--workers", "1", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 7" in out and "429.mcf" in out
        assert "simulated" in out        # sweep stats line
        # fresh "process": memo dropped, second run is all store hits
        clear_memo()
        assert main(["sweep", "fig07", "--workloads", "1", "--records",
                     "200", "--workers", "1", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "6 store hits, 0 simulated" in out
    finally:
        clear_memo()
        reset_default_store()


def test_sweep_unknown_name(capsys):
    assert main(["sweep", "nope"]) == 2
    err = capsys.readouterr().err
    assert "unknown sweep 'nope'" in err and "available" in err


def test_run_rejects_zero_records(capsys):
    assert main(["run", "429.mcf", "--records", "0"]) == 2
    assert "must be >= 1" in capsys.readouterr().err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_check_command_clean_file(capsys, tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text("def add(a, b):\n    return a + b\n")
    assert main(["check", str(clean)]) == 0
    assert "simsan: clean" in capsys.readouterr().out


def test_check_command_reports_findings(capsys, tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("def merge(dst, extras=[]):\n    dst.extend(extras)\n")
    assert main(["check", str(dirty)]) == 1
    out = capsys.readouterr().out
    assert "SS301" in out and "simsan: skip=" in out


def test_check_command_fix_hints(capsys, tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("def merge(dst, extras=[]):\n    dst.extend(extras)\n")
    assert main(["check", "--fix-hints", str(dirty)]) == 1
    assert "fix:" in capsys.readouterr().out


def test_check_command_syntax_error(capsys, tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    assert main(["check", str(bad)]) == 2
    assert "error" in capsys.readouterr().err


def test_check_command_list_rules(capsys):
    assert main(["check", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "SS101" in out and "SS302" in out


def test_check_command_repo_tree_is_clean(capsys):
    from pathlib import Path
    src = Path(__file__).resolve().parent.parent / "src"
    assert main(["check", str(src)]) == 0
