"""The ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import build_parser, main


def test_policies_command(capsys):
    assert main(["policies"]) == 0
    out = capsys.readouterr().out
    for name in ("lru", "care", "mcare", "shippp", "hawkeye"):
        assert name in out


def test_workloads_command(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    assert "429.mcf" in out and "bfs-or" in out
    assert "26.28" in out      # Table VIII MPKI shown


def test_studycase_command(capsys):
    assert main(["studycase"]) == 0
    out = capsys.readouterr().out
    assert "7/3" in out
    assert "[10, 11, 12, 13, 14]" in out


def test_hwcost_command(capsys):
    assert main(["hwcost"]) == 0
    out = capsys.readouterr().out
    assert "26.64" in out and "6.76" in out


def test_run_command_spec(capsys):
    assert main(["run", "462.libquantum", "--policies", "lru", "care",
                 "--records", "1000"]) == 0
    out = capsys.readouterr().out
    assert "462.libquantum" in out
    assert "care" in out


def test_run_command_gap(capsys):
    assert main(["run", "bfs-or", "--policies", "lru",
                 "--records", "800", "--prefetch"]) == 0
    out = capsys.readouterr().out
    assert "bfs-or" in out and "prefetch=on" in out


def test_run_command_json(capsys):
    import json
    assert main(["run", "462.libquantum", "--policies", "lru",
                 "--records", "600", "--json", "--no-store"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload) == 1
    entry = payload[0]
    assert entry["spec"]["workload"] == "462.libquantum"
    assert entry["spec"]["policy"] == "lru"
    from repro.sim.stats import SimResult
    res = SimResult.from_dict(entry["result"])
    assert res.policy == "lru" and res.n_cores == 1


def test_sweep_list(capsys):
    assert main(["sweep", "--list"]) == 0
    out = capsys.readouterr().out
    assert "fig07" in out and "fig13" in out
    assert main(["sweep"]) == 0          # bare `sweep` also lists
    assert "fig07" in capsys.readouterr().out


def test_sweep_command_runs_and_reports(capsys, tmp_path):
    from repro.harness.store import (ResultStore, reset_default_store,
                                     set_default_store)
    from repro.harness.runner import clear_memo
    clear_memo()
    set_default_store(ResultStore(tmp_path))
    try:
        assert main(["sweep", "fig07", "--workloads", "1", "--records",
                     "200", "--workers", "1", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 7" in out and "429.mcf" in out
        assert "simulated" in out        # sweep stats line
        # fresh "process": memo dropped, second run is all store hits
        clear_memo()
        assert main(["sweep", "fig07", "--workloads", "1", "--records",
                     "200", "--workers", "1", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "6 store hits, 0 simulated" in out
    finally:
        clear_memo()
        reset_default_store()


def test_sweep_unknown_name(capsys):
    assert main(["sweep", "nope"]) == 2
    err = capsys.readouterr().err
    assert "unknown sweep 'nope'" in err and "available" in err


def test_run_rejects_zero_records(capsys):
    assert main(["run", "429.mcf", "--records", "0"]) == 2
    assert "must be >= 1" in capsys.readouterr().err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_check_command_clean_file(capsys, tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text("def add(a, b):\n    return a + b\n")
    assert main(["check", str(clean)]) == 0
    assert "simsan: clean" in capsys.readouterr().out


def test_check_command_reports_findings(capsys, tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("def merge(dst, extras=[]):\n    dst.extend(extras)\n")
    assert main(["check", str(dirty)]) == 1
    out = capsys.readouterr().out
    assert "SS301" in out and "simsan: skip=" in out


def test_check_command_fix_hints(capsys, tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("def merge(dst, extras=[]):\n    dst.extend(extras)\n")
    assert main(["check", "--fix-hints", str(dirty)]) == 1
    assert "fix:" in capsys.readouterr().out


def test_check_command_syntax_error(capsys, tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    assert main(["check", str(bad)]) == 2
    assert "error" in capsys.readouterr().err


def test_check_command_list_rules(capsys):
    assert main(["check", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "SS101" in out and "SS302" in out


def test_check_command_repo_tree_is_clean(capsys):
    from pathlib import Path
    src = Path(__file__).resolve().parent.parent / "src"
    assert main(["check", str(src)]) == 0


def test_check_flow_repo_tree_is_clean(capsys):
    from pathlib import Path
    src = Path(__file__).resolve().parent.parent / "src"
    assert main(["check", "--flow", str(src)]) == 0
    assert "clean (lint+flow)" in capsys.readouterr().out


def test_check_format_json(capsys, tmp_path):
    import json
    dirty = tmp_path / "dirty.py"
    dirty.write_text("def merge(dst, extras=[]):\n    dst.extend(extras)\n")
    assert main(["check", "--format", "json", str(dirty)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == "repro.simsan.findings/v1"
    assert payload["clean"] is False
    assert payload["findings"][0]["rule"] == "SS301"
    assert payload["findings"][0]["line"] == 1


def test_check_format_github_annotations(capsys, tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("def merge(dst, extras=[]):\n    dst.extend(extras)\n")
    assert main(["check", "--format", "github", str(dirty)]) == 1
    out = capsys.readouterr().out
    assert out.startswith("::error file=")
    assert f"file={dirty}" in out and "line=1" in out and "title=SS301" in out


def test_check_call_graph_export_json_and_dot(capsys, tmp_path):
    from pathlib import Path
    import json
    src = Path(__file__).resolve().parent.parent / "src"
    graph_json = tmp_path / "graph.json"
    assert main(["check", "--call-graph", str(graph_json), str(src)]) == 0
    payload = json.loads(graph_json.read_text())
    assert payload["schema"] == "repro.flow.call-graph/v1"
    assert any(n["hot"] for n in payload["nodes"])
    assert any(n["worker"] for n in payload["nodes"])
    graph_dot = tmp_path / "graph.dot"
    assert main(["check", "--call-graph", str(graph_dot), str(src)]) == 0
    assert graph_dot.read_text().startswith("digraph")


def test_check_flow_detects_seeded_unsafe_worker(capsys, tmp_path):
    # a stale suppression is the one flow/lint defect a standalone file
    # can carry (flow rules need the real manifests); SS303 must fire
    stale = tmp_path / "stale.py"
    stale.write_text("def add(a, b):\n"
                     "    return a + b   # simsan: skip=SS301\n")
    assert main(["check", str(stale)]) == 1
    assert "SS303" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Fault tolerance: chaos sweeps, resume, fsck, incident reports
# ----------------------------------------------------------------------
@pytest.fixture
def sweep_env(tmp_path, monkeypatch):
    """Isolated store + memo + chaos env for supervised-CLI tests."""
    import os

    from repro.harness.runner import clear_memo
    from repro.harness.store import (ResultStore, reset_default_store,
                                     set_default_store)
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    clear_memo()
    store = ResultStore(tmp_path / "store")
    set_default_store(store)
    yield store
    # --chaos exports REPRO_CHAOS with a plain os.environ write, which
    # monkeypatch would faithfully *restore* on undo — pop it directly.
    os.environ.pop("REPRO_CHAOS", None)
    clear_memo()
    reset_default_store()


def test_sweep_chaos_fails_with_table_then_resumes(sweep_env, tmp_path,
                                                   capsys):
    import os
    manifest = str(tmp_path / "m.json")
    base = ["sweep", "fig07", "--workloads", "1", "--records", "200",
            "--workers", "1", "--quiet", "--manifest", manifest,
            "--obs-dir", str(tmp_path / "obs")]
    assert main(base + ["--chaos", "raise:11:1/3"]) == 3
    captured = capsys.readouterr()
    assert "Fig. 7" in captured.out          # healthy points finished
    assert "-" in captured.out               # failed cells render holes
    assert "point(s) failed" in captured.err
    assert "ChaosError" in captured.err
    assert "--resume" in captured.err

    # chaos off + --resume completes and matches a fault-free sweep
    # (plain pop: --chaos exported it with a raw os.environ write)
    os.environ.pop("REPRO_CHAOS", None)
    from repro.harness.runner import clear_memo
    clear_memo()
    assert main(base + ["--resume"]) == 0
    resumed = capsys.readouterr().out
    clear_memo()
    assert main(["sweep", "fig07", "--workloads", "1", "--records", "200",
                 "--workers", "1", "--quiet"]) == 0
    clean = capsys.readouterr().out

    def table_of(text):
        return [ln for ln in text.splitlines()
                if ln.startswith(("workload", "429.mcf", "GEOMEAN", "---"))]
    assert table_of(resumed) == table_of(clean)


def test_sweep_fail_fast_aborts(sweep_env, tmp_path, capsys):
    assert main(["sweep", "fig07", "--workloads", "1", "--records", "200",
                 "--workers", "1", "--quiet", "--fail-fast",
                 "--obs-dir", str(tmp_path / "obs"),
                 "--chaos", "raise:11:1/3"]) == 3
    captured = capsys.readouterr()
    assert "Fig. 7" not in captured.out      # aborted before the table
    assert "point(s) failed" in captured.err


def test_sweep_writes_incident_artifact(sweep_env, tmp_path, capsys):
    obs_dir = tmp_path / "obs"
    assert main(["sweep", "fig07", "--workloads", "1", "--records", "200",
                 "--workers", "1", "--quiet", "--obs-dir", str(obs_dir),
                 "--chaos", "raise:11:1/3"]) == 3
    capsys.readouterr()
    artifact = obs_dir / "sweep-fig07.incidents.json"
    assert artifact.is_file()
    payload = json.loads(artifact.read_text())
    assert payload["tag"] == "sweep-fig07"
    assert any(e["event"] == "failure" for e in payload["events"])

    # and `report --incidents` renders it as a markdown section
    assert main(["report", "--incidents", str(artifact)]) == 0
    out = capsys.readouterr().out
    assert "### Incidents (sweep-fig07)" in out
    assert "ChaosError" in out


def test_run_command_reports_failures(sweep_env, tmp_path, capsys):
    assert main(["run", "462.libquantum", "--policies", "lru",
                 "--records", "600", "--no-store", "--json",
                 "--obs-dir", str(tmp_path / "obs"),
                 "--chaos", "raise:0:1/1", "--retries", "1"]) == 3
    captured = capsys.readouterr()
    payload = json.loads(captured.out)
    assert payload[0]["result"] is None
    assert "ChaosError" in captured.err


def test_supervise_flag_validation(capsys):
    assert main(["sweep", "fig07", "--chaos", "explode:1"]) == 2
    assert "unknown chaos fault" in capsys.readouterr().err
    assert main(["sweep", "fig07", "--retries", "0"]) == 2
    assert "--retries" in capsys.readouterr().err
    assert main(["run", "429.mcf", "--timeout", "-1"]) == 2
    assert "--timeout" in capsys.readouterr().err


def test_run_with_checkpoint_flag_absorbs_preempt_chaos(sweep_env,
                                                        tmp_path, capsys):
    """--checkpoint + chaos preempt: every point is preempted mid-run,
    resumed from its save-state, and the output matches a clean run."""
    import os
    base = ["run", "462.libquantum", "--policies", "lru",
            "--records", "600", "--no-store", "--json",
            "--obs-dir", str(tmp_path / "obs")]
    assert main(base + ["--checkpoint", "1000",
                        "--chaos", "preempt:7:1/1"]) == 0
    chaotic = json.loads(capsys.readouterr().out)
    assert chaotic[0]["result"] is not None

    for var in ("REPRO_CHAOS", "REPRO_CKPT_DIR", "REPRO_CKPT_EVENTS",
                "REPRO_CKPT_SECS"):
        os.environ.pop(var, None)
    from repro.harness.runner import clear_memo
    clear_memo()
    assert main(base) == 0
    clean = json.loads(capsys.readouterr().out)
    assert chaotic == clean
    # the resumed point completed, so its save-state was cleaned up
    assert not list((tmp_path / "obs" / "ckpt").rglob("*.ckpt.gz"))


def test_store_fsck_validates_manifests(sweep_env, tmp_path, capsys):
    import os
    manifest = tmp_path / "m.manifest.json"
    assert main(["sweep", "fig07", "--workloads", "1", "--records", "200",
                 "--workers", "1", "--quiet",
                 "--manifest", str(manifest)]) == 0
    capsys.readouterr()
    assert main(["store", "fsck", "--manifests", str(manifest)]) == 0
    assert "manifests fsck:" in capsys.readouterr().out

    text = manifest.read_text()
    manifest.write_text(text[:len(text) // 2])
    assert main(["store", "fsck", "--manifests", str(manifest)]) == 1
    out = capsys.readouterr().out
    assert "1 quarantined" in out and "fresh ledger" in out
    assert (tmp_path / "quarantine" / manifest.name).is_file()
    assert main(["store", "fsck", "--manifests", str(manifest)]) == 0
    os.environ.pop("REPRO_CHAOS", None)


def test_store_fsck_command(sweep_env, capsys):
    assert main(["run", "462.libquantum", "--policies", "lru",
                 "--records", "600"]) == 0
    capsys.readouterr()
    assert main(["store"]) == 0               # bare `store` prints stats
    assert "entries:" in capsys.readouterr().out
    assert main(["store", "fsck"]) == 0       # clean store
    assert "0 quarantined" in capsys.readouterr().out

    [path] = list(sweep_env.entries())
    path.write_text("{broken json")
    assert main(["store", "fsck"]) == 1       # corrupt -> quarantine, exit 1
    out = capsys.readouterr().out
    assert "1 quarantined" in out and "re-simulates" in out
    assert main(["store", "fsck"]) == 0       # second pass is clean
