"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


def test_policies_command(capsys):
    assert main(["policies"]) == 0
    out = capsys.readouterr().out
    for name in ("lru", "care", "mcare", "shippp", "hawkeye"):
        assert name in out


def test_workloads_command(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    assert "429.mcf" in out and "bfs-or" in out
    assert "26.28" in out      # Table VIII MPKI shown


def test_studycase_command(capsys):
    assert main(["studycase"]) == 0
    out = capsys.readouterr().out
    assert "7/3" in out
    assert "[10, 11, 12, 13, 14]" in out


def test_hwcost_command(capsys):
    assert main(["hwcost"]) == 0
    out = capsys.readouterr().out
    assert "26.64" in out and "6.76" in out


def test_run_command_spec(capsys):
    assert main(["run", "462.libquantum", "--policies", "lru", "care",
                 "--records", "1000"]) == 0
    out = capsys.readouterr().out
    assert "462.libquantum" in out
    assert "care" in out


def test_run_command_gap(capsys):
    assert main(["run", "bfs-or", "--policies", "lru",
                 "--records", "800", "--prefetch"]) == 0
    out = capsys.readouterr().out
    assert "bfs-or" in out and "prefetch=on" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
