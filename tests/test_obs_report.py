"""Report-generator and CLI tests: store -> speedup tables -> md/json.

Uses the tiny preset with small record counts so each point simulates in
well under a second; the store is a tmp dir so nothing leaks between
tests (memo cleared explicitly, since specs are content-addressed).
"""

import json

import pytest

from repro.__main__ import main
from repro.harness import runner
from repro.harness.spec import ExperimentSpec
from repro.harness.store import ResultStore
from repro.obs.report import build_report, generate


@pytest.fixture
def populated_store(tmp_path):
    runner.clear_memo()
    store = ResultStore(tmp_path / "store")
    for workload in ("429.mcf", "470.lbm"):
        for policy in ("lru", "care"):
            spec = ExperimentSpec.multicopy(
                workload, policy, n_cores=1, prefetch=False,
                n_records=300, seed=3, preset="tiny")
            runner.run(spec, store=store)
    yield store
    runner.clear_memo()


def test_baseline_speedup_is_exactly_one(populated_store):
    report = json.loads(generate(populated_store, fmt="json"))
    assert report["baseline"] == "lru"
    assert report["n_results"] == 4
    assert len(report["sections"]) == 1
    section = report["sections"][0]
    assert section["policies"][0] == "lru"      # baseline sorts first
    assert {row["workload"] for row in section["workloads"]} == {
        "429.mcf", "470.lbm"}
    for row in section["workloads"]:
        assert row["per_policy"]["lru"]["speedup"] == 1.0
        assert row["per_policy"]["lru"]["mpki_delta"] == 0.0
        assert row["per_policy"]["care"]["speedup"] is not None
    assert section["geomean_speedup"]["lru"] == pytest.approx(1.0)


def test_markdown_has_the_headline_tables(populated_store):
    text = generate(populated_store, fmt="md")
    assert "# repro-care run report" in text
    assert "### Speedup over lru (sum-IPC ratio)" in text
    assert "### MPKI (delta vs. lru)" in text
    assert "### PMC breakdown" in text
    assert "| 429.mcf |" in text
    assert "**geomean**" in text


def test_policy_filter_and_alternate_baseline(populated_store):
    report = json.loads(generate(populated_store, fmt="json",
                                 baseline="care", policies=["care"]))
    section = report["sections"][0]
    assert section["policies"] == ["care"]
    for row in section["workloads"]:
        assert set(row["per_policy"]) == {"care"}
        assert row["per_policy"]["care"]["speedup"] == 1.0


def test_empty_store_renders_a_hint(tmp_path):
    text = generate(ResultStore(tmp_path / "empty"), fmt="md")
    assert "result store is empty" in text


def test_unknown_format_raises(populated_store):
    with pytest.raises(ValueError):
        generate(populated_store, fmt="html")


def test_build_report_handles_missing_baseline():
    """Points without an LRU counterpart get None speedups, not crashes."""
    runner.clear_memo()
    spec = ExperimentSpec.multicopy("429.mcf", "care", n_cores=1,
                                    prefetch=False, n_records=300, seed=3,
                                    preset="tiny")
    result = spec.execute()
    report = build_report([(spec, result)])
    cell = report["sections"][0]["workloads"][0]["per_policy"]["care"]
    assert cell["speedup"] is None
    assert report["sections"][0]["geomean_speedup"]["care"] is None


def test_report_cli_writes_markdown_and_json(populated_store, tmp_path,
                                             capsys):
    rc = main(["report", "--store", str(populated_store.root),
               "--format", "json"])
    assert rc == 0
    report = json.loads(capsys.readouterr().out)
    assert report["n_results"] == 4

    out = tmp_path / "report.md"
    rc = main(["report", "--store", str(populated_store.root),
               "--format", "md", "--out", str(out)])
    assert rc == 0
    assert "### Speedup over lru" in out.read_text()


def _perf_payload(rec_s, ev_s, smoke=False, fingerprint="aaaa"):
    return {
        "schema": 1, "python": "3.11.7", "smoke": smoke,
        "fingerprint": fingerprint,
        "cases": {"4core": {"records_per_s": rec_s, "events_per_s": ev_s,
                            "records": 1, "events": 1, "repeat": 1,
                            "best_wall_s": 1.0, "wall_s": [1.0],
                            "spec": {}}},
    }


def test_perf_diff_cli(tmp_path, capsys):
    base = tmp_path / "base.json"
    fresh = tmp_path / "fresh.json"
    base.write_text(json.dumps(_perf_payload(1000.0, 50000.0)))
    fresh.write_text(json.dumps(_perf_payload(1250.0, 60000.0, smoke=True,
                                              fingerprint="bbbb")))
    rc = main(["perf", "--diff", str(base), str(fresh)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "| 4core | 1,000 | 1,250 | +25.0% |" in out
    assert "smoke" in out                   # mismatch note
    assert "fingerprint changed" in out


def test_perf_diff_cli_missing_file(tmp_path, capsys):
    rc = main(["perf", "--diff", str(tmp_path / "no.json"),
               str(tmp_path / "pe.json")])
    assert rc == 2
    assert "error" in capsys.readouterr().err
