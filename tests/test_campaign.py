"""The declarative campaign layer (PR 9): spec parsing + validation,
workload selectors, slicing semantics, deterministic expansion, the
committed paper-scale campaign file, and status/report rendering
against a populated result store."""

import json

import pytest

from repro.harness.campaign import (CAMPAIGN_SCHEMA, Campaign, CampaignError,
                                    CampaignGrid, apply_slice,
                                    available_campaigns, build_campaign_report,
                                    campaign_status, find_campaign,
                                    load_campaign, parse_campaign,
                                    render_campaign_markdown,
                                    resolve_workloads)
from repro.harness.spec import ExperimentSpec
from repro.harness.store import ResultStore


def minimal(**overrides):
    """A small valid campaign dict tests can bend per case."""
    data = {
        "schema": CAMPAIGN_SCHEMA,
        "name": "unit",
        "defaults": {"records": 200, "seed": 3, "preset": "tiny"},
        "grids": [
            {"id": "g1", "suite": "spec",
             "workloads": ["429.mcf", "433.milc", "450.soplex"],
             "policies": ["lru", "care"], "cores": [1, 2]},
            {"id": "g2", "suite": "mix", "mixes": 4,
             "policies": ["lru", "care"], "cores": [2]},
        ],
        "slices": {
            "smoke": {"grids": ["g1"], "max_workloads": 2,
                      "records": 100, "policies": ["care"]},
        },
    }
    data.update(overrides)
    return data


# ----------------------------------------------------------------------
# Parsing and validation
# ----------------------------------------------------------------------
def test_parse_minimal_campaign():
    campaign = parse_campaign(minimal())
    assert campaign.name == "unit"
    assert [g.id for g in campaign.grids] == ["g1", "g2"]
    assert campaign.grids[0].records == 200
    assert campaign.grids[0].preset == "tiny"
    # g1: 3 workloads x 2 policies x 2 cores; g2: 4 mixes x 2 policies
    assert campaign.points() == 12 + 8


@pytest.mark.parametrize("mutate, match", [
    ({"schema": "nope/v0"}, "schema"),
    ({"name": ""}, "name"),
    ({"grids": []}, "at least one grid"),
])
def test_parse_rejects_bad_top_level(mutate, match):
    with pytest.raises(CampaignError, match=match):
        parse_campaign(minimal(**mutate))


@pytest.mark.parametrize("grid, match", [
    ({"id": "g", "suite": "spec", "workloads": ["429.mcf"],
      "policies": ["lru"], "cores": [1], "bogus": 1}, "unknown keys"),
    ({"id": "g", "suite": "spec", "workloads": ["429.mcf"],
      "policies": ["lru"]}, "missing required key"),
    ({"id": "g", "suite": "weird", "workloads": ["429.mcf"],
      "policies": ["lru"], "cores": [1]}, "unknown suite"),
    ({"id": "g", "suite": "spec", "workloads": ["429.mcf"],
      "policies": ["lru"], "cores": [1], "preset": "huge"},
     "unknown preset"),
    ({"id": "g", "suite": "mix", "policies": ["lru"], "cores": [1]},
     "'mixes' >= 1"),
    ({"id": "g", "suite": "spec", "policies": ["lru"], "cores": [1]},
     "'workloads'"),
])
def test_parse_rejects_bad_grids(grid, match):
    with pytest.raises(CampaignError, match=match):
        parse_campaign(minimal(grids=[grid]))


def test_parse_rejects_duplicate_grid_ids():
    data = minimal()
    data["grids"][1] = dict(data["grids"][0])
    with pytest.raises(CampaignError, match="duplicate grid ids"):
        parse_campaign(data)


def test_parse_rejects_bad_slices():
    with pytest.raises(CampaignError, match="unknown keys"):
        parse_campaign(minimal(slices={"s": {"frobnicate": 1}}))
    with pytest.raises(CampaignError, match="unknown grid"):
        parse_campaign(minimal(slices={"s": {"grids": ["missing"]}}))


# ----------------------------------------------------------------------
# Workload selectors
# ----------------------------------------------------------------------
def test_selectors_expand():
    from repro.workloads import serve_names, spec_names
    assert resolve_workloads("@spec") == spec_names()
    assert resolve_workloads("@serve") == serve_names()
    assert len(resolve_workloads("@spec-fig5")) == 16
    assert resolve_workloads("@gap")
    kv = resolve_workloads("@serve-kv")
    assert kv and all(n in serve_names() for n in kv)
    assert resolve_workloads(["a", "b"]) == ["a", "b"]


@pytest.mark.parametrize("selector", ["@nope", "@serve-cron", []])
def test_selectors_reject_unknown(selector):
    with pytest.raises(CampaignError):
        resolve_workloads(selector)


# ----------------------------------------------------------------------
# Expansion
# ----------------------------------------------------------------------
def test_expansion_is_deterministic_and_typed():
    campaign = parse_campaign(minimal())
    a = campaign.specs()
    b = parse_campaign(minimal()).specs()
    assert [s.key() for s in a] == [s.key() for s in b]
    assert len(a) == campaign.points()
    assert all(isinstance(s, ExperimentSpec) for s in a)


def test_overlapping_grids_deduplicate():
    g = {"id": "g1", "suite": "spec", "workloads": ["429.mcf"],
         "policies": ["lru"], "cores": [1]}
    data = minimal(grids=[g, dict(g, id="g2")], slices={})
    campaign = parse_campaign(data)
    assert campaign.points() == 2          # raw grid points
    assert len(campaign.specs()) == 1      # deduped by spec key


# ----------------------------------------------------------------------
# Slicing
# ----------------------------------------------------------------------
def test_apply_slice_filters_and_overrides():
    campaign = parse_campaign(minimal())
    sliced = apply_slice(campaign, "smoke")
    assert sliced.slice_name == "smoke"
    assert [g.id for g in sliced.grids] == ["g1"]
    grid = sliced.grids[0]
    assert grid.records == 100
    assert grid.policies == ("care",)      # intersection with the grid
    assert len(grid.workloads) == 2        # strided sample keeps spread
    assert grid.workloads[0] == "429.mcf"
    assert sliced.tag() == "campaign-unit-smoke"
    assert sliced.default_manifest() == "campaign-unit-smoke.manifest.json"
    # the original campaign is untouched
    assert campaign.grids[0].records == 200


def test_apply_slice_axis_fallback_when_intersection_empty():
    data = minimal(slices={"alt": {"policies": ["mcare"], "cores": [8]}})
    sliced = apply_slice(parse_campaign(data), "alt")
    for grid in sliced.grids:
        assert grid.policies == ("mcare",)
        assert grid.cores == (8,)


def test_apply_slice_max_mixes_caps():
    data = minimal(slices={"m": {"grids": ["g2"], "max_mixes": 2}})
    sliced = apply_slice(parse_campaign(data), "m")
    assert sliced.grids[0].mixes == 2


def test_apply_slice_unknown_name():
    with pytest.raises(CampaignError, match="no slice"):
        apply_slice(parse_campaign(minimal()), "nope")


# ----------------------------------------------------------------------
# Loading / discovery
# ----------------------------------------------------------------------
def test_load_campaign_json(tmp_path):
    path = tmp_path / "unit.json"
    path.write_text(json.dumps(minimal()))
    campaign = load_campaign(path)
    assert campaign.name == "unit"
    assert campaign.source == str(path)


def test_load_campaign_bad_json(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{nope")
    with pytest.raises(CampaignError, match="invalid JSON"):
        load_campaign(path)


def test_load_campaign_toml(tmp_path):
    tomllib = pytest.importorskip("tomllib")
    assert tomllib
    path = tmp_path / "unit.toml"
    path.write_text(
        'schema = "repro.campaign/v1"\n'
        'name = "unit-toml"\n'
        "[defaults]\nrecords = 100\npreset = \"tiny\"\n"
        "[[grids]]\n"
        'id = "g1"\nsuite = "spec"\nworkloads = ["429.mcf"]\n'
        'policies = ["lru"]\ncores = [1]\n')
    campaign = load_campaign(path)
    assert campaign.name == "unit-toml"
    assert campaign.grids[0].records == 100


def test_find_campaign_paths_and_names(tmp_path, monkeypatch):
    direct = tmp_path / "c.json"
    direct.write_text("{}")
    assert find_campaign(str(direct)) == direct
    monkeypatch.chdir(tmp_path)
    assert available_campaigns() == []
    with pytest.raises(CampaignError, match="no campaign named"):
        find_campaign("missing")


# ----------------------------------------------------------------------
# The committed paper-scale campaign
# ----------------------------------------------------------------------
def test_committed_campaign_is_valid_and_sliceable():
    campaign = load_campaign(find_campaign(None))
    assert campaign.name == "care-paper"
    assert {"ci-smoke", "nightly"} <= set(campaign.slices)
    assert campaign.points() > 1000        # the full paper grid is big
    smoke = apply_slice(campaign, "ci-smoke")
    # the CI gate budget: a handful of points, tiny record counts
    assert len(smoke.specs()) <= 32
    assert all(g.records <= 500 for g in smoke.grids)
    nightly = apply_slice(campaign, "nightly")
    assert 0 < len(nightly.specs()) < campaign.points()


# ----------------------------------------------------------------------
# Status and report against a populated store
# ----------------------------------------------------------------------
@pytest.fixture
def tiny_campaign():
    return parse_campaign({
        "schema": CAMPAIGN_SCHEMA,
        "name": "tiny",
        "defaults": {"records": 200, "preset": "tiny"},
        "grids": [
            {"id": "g1", "figure": "Fig. 7", "title": "speedup",
             "suite": "spec", "workloads": ["429.mcf"],
             "policies": ["lru", "care"], "cores": [1]},
        ],
    })


def test_status_and_report_roundtrip(tiny_campaign, tmp_path):
    store = ResultStore(tmp_path / "store")
    empty = campaign_status(tiny_campaign, store)
    assert empty["points"] == 2 and empty["done"] == 0

    for spec in tiny_campaign.specs():
        store.put(spec, spec.execute())

    status = campaign_status(tiny_campaign, store,
                             manifest_counts={"done": 2, "pending": 0})
    assert status["done"] == status["points"] == 2
    assert status["coverage"] == 1.0
    assert status["manifest"]["done"] == 2

    report = build_campaign_report(tiny_campaign, store)
    assert report["baseline"] == "lru"
    assert report["grids"][0]["done"] == 2

    text = render_campaign_markdown(report)
    assert "# Campaign report · tiny" in text
    assert "| g1 | Fig. 7 |" in text
    assert "100.0%" in text


def test_report_renders_placeholder_without_results(tiny_campaign, tmp_path):
    store = ResultStore(tmp_path / "store")
    text = render_campaign_markdown(
        build_campaign_report(tiny_campaign, store))
    assert "No stored results yet" in text
