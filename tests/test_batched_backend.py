"""Unit tests for the batched backend's building blocks.

Three layers are pinned here, below the golden suite's end-to-end
bit-identity:

* :class:`~repro.sim.batched.engine.EpochEngine` — event *order* must
  match the classic heap engine exactly (time, then scheduling order),
  including same-cycle self-scheduling, ``stop()`` mid-bucket,
  ``until``/``max_events`` bounds, and watcher multiplexing;
* the struct-of-arrays stores in :mod:`repro.sim.batched.soa`;
* the :mod:`repro.sim.backends` registry and the deprecation shims the
  API redesign introduced (positional ``simulate()`` args, silent
  ``make_policy`` kwarg drops).
"""

import random

import numpy as np
import pytest

from repro.sim.backends import (UnknownBackendError, available_backends,
                                build_system, get_backend, resolve_engine)
from repro.sim.batched.engine import EpochEngine
from repro.sim.batched.soa import SoAMSHR, SoATagArrays, TraceColumns
from repro.sim.config import SystemConfig
from repro.sim.engine import Engine, EngineError
from repro.sim.request import AccessType, MemRequest
from repro.workloads import TraceRecord


# ----------------------------------------------------------------------
# EpochEngine: drain order is the classic (time, seq) order
# ----------------------------------------------------------------------
def _random_schedule(engine, log, seed, n=200, self_schedule=True):
    """Schedule n tagged events at random times, some re-scheduling."""
    r = random.Random(seed)

    def ev(tag):
        log.append((engine.now, tag))
        if self_schedule and tag % 7 == 0:
            # same-cycle re-entry plus a future echo
            engine.post(engine.now, ev, tag + 10_000)
            engine.post(engine.now + r.randrange(1, 5), ev, tag + 20_000)

    for tag in range(n):
        engine.at(r.randrange(0, 50), ev, tag)
    return log


@pytest.mark.parametrize("self_schedule", [False, True])
def test_drain_order_matches_classic_engine(self_schedule):
    classic, batched = Engine(), EpochEngine()
    log_c = _random_schedule(classic, [], seed=7, self_schedule=self_schedule)
    log_b = _random_schedule(batched, [], seed=7, self_schedule=self_schedule)
    n_c = classic.run()
    n_b = batched.run()
    assert log_b == log_c
    assert n_b == n_c
    assert batched.events_processed == classic.events_processed
    assert batched.now == classic.now
    assert batched.pending == 0


def test_same_cycle_appends_drain_in_the_same_walk():
    engine = EpochEngine()
    log = []

    def second():
        log.append(("second", engine.now))

    def first():
        log.append(("first", engine.now))
        engine.post(engine.now, second)   # lands behind, same cycle

    engine.at(3, first)
    engine.at(5, lambda: log.append(("later", engine.now)))
    engine.run()
    assert log == [("first", 3), ("second", 3), ("later", 5)]


def test_stop_mid_bucket_preserves_tail_and_resumes():
    engine = EpochEngine()
    log = []
    for tag in range(6):
        engine.at(4, log.append, tag)
    engine.at(4, engine.stop)
    # interleave the stop among the bucket's events
    bucket = engine._buckets[4]
    bucket.insert(3, bucket.pop())
    n1 = engine.run()
    assert log == [0, 1, 2]
    assert n1 == 4                       # 3 appends + the stop event
    assert engine.pending == 3
    assert engine.next_event_time() == 4
    n2 = engine.run()
    assert log == [0, 1, 2, 3, 4, 5]
    assert n2 == 3
    assert engine.events_processed == 7
    assert engine.pending == 0


@pytest.mark.parametrize("kwargs", [
    {"until": 20}, {"max_events": 37}, {"until": 20, "max_events": 37},
])
def test_bounded_runs_match_classic_engine(kwargs):
    classic, batched = Engine(), EpochEngine()
    log_c = _random_schedule(classic, [], seed=11)
    log_b = _random_schedule(batched, [], seed=11)
    n_c = classic.run(**kwargs)
    n_b = batched.run(**kwargs)
    assert log_b == log_c
    assert n_b == n_c
    assert batched.now == classic.now
    assert batched.events_processed == classic.events_processed
    # and the leftovers drain identically
    assert batched.run() == classic.run()
    assert log_b == log_c


def test_step_and_pending_match_classic_engine():
    classic, batched = Engine(), EpochEngine()
    _random_schedule(classic, [], seed=3, n=40, self_schedule=False)
    _random_schedule(batched, [], seed=3, n=40, self_schedule=False)
    while True:
        assert batched.pending == classic.pending
        assert batched.next_event_time() == classic.next_event_time()
        stepped_c, stepped_b = classic.step(), batched.step()
        assert stepped_b == stepped_c
        if not stepped_c:
            break
        assert batched.now == classic.now


def test_scheduling_guards():
    engine = EpochEngine()
    engine.at(5, lambda: None)
    engine.run()
    with pytest.raises(EngineError):
        engine.at(engine.now - 1, lambda: None)
    with pytest.raises(EngineError):
        engine.after(-1, lambda: None)


def test_watcher_multiplexing_parity():
    classic, batched = Engine(), EpochEngine()
    counts = {"c1": 0, "c2": 0, "b1": 0, "b2": 0}
    for eng, keys in ((classic, ("c1", "c2")), (batched, ("b1", "b2"))):
        _random_schedule(eng, [], seed=5, self_schedule=False)
        fns = []
        for key in keys:
            fns.append(lambda k=key: counts.__setitem__(k, counts[k] + 1))
        eng.add_watcher(fns[0], 16)
        eng.add_watcher(fns[1], 64)
        eng.run()
        eng.remove_watcher(fns[0])
        eng.remove_watcher(fns[1])
        assert eng.watcher is None
    assert counts["b1"] == counts["c1"] > 0
    assert counts["b2"] == counts["c2"]


def test_direct_watcher_assignment_conflicts_with_add_watcher():
    engine = EpochEngine()
    engine.watcher = lambda: None
    with pytest.raises(EngineError):
        engine.add_watcher(lambda: None, 8)


# ----------------------------------------------------------------------
# SoA stores
# ----------------------------------------------------------------------
def test_soa_tag_arrays_materialize_round_trip():
    soa = SoATagArrays(sets=4, ways=2)
    fi = 2 * soa.ways + 1               # set 2, way 1
    soa.valid[fi] = 1
    soa.tag[fi] = 0xABC
    soa.dirty[fi] = 1
    soa.core[fi] = 3
    soa.pc[fi] = 0x40
    assert soa.valid_blocks() == 1
    assert soa.set_tags(2) == [0xABC]
    assert soa.set_tags(0) == []
    blocks = soa.materialize_set(2)
    assert len(blocks) == 2
    assert not blocks[0].valid
    blk = blocks[1]
    assert (blk.valid, blk.tag, blk.dirty, blk.core, blk.pc) == (
        True, 0xABC, True, 3, 0x40)
    full = soa.materialize()
    assert len(full) == 4 and full[2][1].tag == 0xABC


def test_soa_mshr_views_are_derived_from_entries():
    mshr = SoAMSHR(capacity=4)
    for i, (block, core) in enumerate([(0x10, 0), (0x20, 1), (0x30, 0)]):
        req = MemRequest(block << 6, 0x4, core, AccessType.LOAD, created=i)
        mshr.allocate(req, time=i)
    assert mshr.occupied_slots() == 3
    assert mshr.outstanding_for_core(0) == 2
    assert mshr.outstanding_for_core(1) == 1
    blocks, cores, issue = mshr.slot_view()
    assert blocks.tolist() == [0x10, 0x20, 0x30]
    assert cores.tolist() == [0, 1, 0]
    assert issue.tolist() == [0, 1, 2]
    mshr.free(0x20)
    assert mshr.occupied_slots() == 2
    assert mshr.outstanding_for_core(1) == 0
    assert mshr.slot_view()[0].tolist() == [0x10, 0x30]


def test_trace_columns_decode():
    records = [
        TraceRecord(pc=0x10, addr=0x1000, is_write=False, gap=2),
        TraceRecord(pc=0x14, addr=0x2000, is_write=True, gap=0),
    ]
    cols = TraceColumns(records, issue_width=4)
    assert cols.n == 2
    assert cols.pc.dtype == np.int64
    assert cols.addr_l == [0x1000, 0x2000]
    assert cols.slots_l == [3, 1]       # gap + 1
    assert cols.rtype_l == [AccessType.LOAD, AccessType.RFO]
    assert cols.slotw_l == [3 / 4, 1 / 4]


# ----------------------------------------------------------------------
# Backend registry / engine selection
# ----------------------------------------------------------------------
def test_registry_lists_both_builtin_backends():
    assert {"classic", "batched"} <= set(available_backends())
    from repro.sim.batched.system import BatchedSystem
    from repro.sim.system import System
    assert get_backend("classic") is System
    assert get_backend("batched") is BatchedSystem


def test_unknown_backend_is_a_clear_error():
    with pytest.raises(UnknownBackendError, match="available"):
        get_backend("vectorized-nope")


def test_resolve_engine_precedence(monkeypatch):
    from dataclasses import replace
    cfg = replace(SystemConfig.tiny(1), engine="batched")
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    assert resolve_engine(None, None) == "classic"
    assert resolve_engine(None, cfg) == "batched"
    assert resolve_engine("classic", cfg) == "classic"
    monkeypatch.setenv("REPRO_ENGINE", "batched")
    assert resolve_engine("classic", None) == "batched"


def test_batched_cache_requires_epoch_engine(tiny_cfg):
    from repro.policies.lru import LRUPolicy
    from repro.sim.batched.cache import BatchedCache
    llc = tiny_cfg.llc
    with pytest.raises(TypeError, match="EpochEngine"):
        BatchedCache(llc, Engine(), LRUPolicy(llc.sets, llc.ways))


# ----------------------------------------------------------------------
# Deprecation shims (API redesign)
# ----------------------------------------------------------------------
def _mini_records(n=60):
    r = random.Random(1)
    return [TraceRecord(pc=0x10, addr=r.randrange(256) * 64,
                        is_write=False, gap=1) for _ in range(n)]


def test_simulate_positional_args_warn_and_still_work(tiny_cfg):
    from repro.sim.system import simulate
    records = _mini_records()
    with pytest.warns(DeprecationWarning, match="positional"):
        legacy = simulate([records], tiny_cfg, "lru")
    modern = simulate([records], cfg=tiny_cfg, llc_policy="lru")
    assert legacy.to_json() == modern.to_json()


def test_simulate_rejects_positional_keyword_conflict(tiny_cfg):
    from repro.sim.system import simulate
    with pytest.warns(DeprecationWarning):
        with pytest.raises(TypeError, match="multiple values"):
            simulate([_mini_records()], tiny_cfg, cfg=tiny_cfg)


def test_make_policy_kwarg_drop_warns_once():
    from repro.policies.registry import make_policy
    with pytest.warns(DeprecationWarning, match="drop"):
        pol = make_policy("lru", 16, 4, bogus_knob_for_test=1)
    assert pol.name == "lru"
    # context kwargs stay silent — that is the uniform-context contract
    import warnings
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        make_policy("lru", 16, 4, n_cores=4)


# ----------------------------------------------------------------------
# End-to-end: build_system wires the batched component classes
# ----------------------------------------------------------------------
def test_build_system_selects_batched_components(tiny_cfg):
    from repro.sim.batched.cache import BatchedCache
    from repro.sim.batched.cpu import BatchedCore
    system = build_system(tiny_cfg, [_mini_records()], engine="batched",
                          llc_policy="lru", warmup_records=0)
    assert isinstance(system.engine, EpochEngine)
    assert isinstance(system.llc, BatchedCache)
    assert all(isinstance(c, BatchedCore) for c in system.cores)
    result = system.run()
    assert result.sim_cycles > 0
