"""Chaos fault injection: config parsing, determinism, and the
end-to-end guarantee that a chaotic sweep converges to the fault-free
result set."""

import json

import pytest

from repro.checks.chaos import (ChaosConfig, ChaosError, FAULTS,
                                chaos_from_env, corrupt_entry,
                                inject_execute, parse_chaos,
                                planned_faults, should_inject)
from repro.harness import ExperimentSpec, ResultStore, run_many
from repro.harness.runner import SweepStats, clear_memo
from repro.harness.store import reset_default_store, set_default_store
from repro.harness.supervise import RetryPolicy, SweepFailedError

WORKLOADS = ["429.mcf", "462.libquantum", "470.lbm"]


@pytest.fixture(autouse=True)
def isolated(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    clear_memo()
    store = ResultStore(tmp_path / "store")
    set_default_store(store)
    yield store
    clear_memo()
    reset_default_store()


def specs_for(workloads, n_records=300):
    return [ExperimentSpec.single(w, "lru", n_records=n_records)
            for w in workloads]


# ----------------------------------------------------------------------
# Config parsing
# ----------------------------------------------------------------------
def test_parse_chaos_profiles():
    cfg = parse_chaos("flaky:7")
    assert cfg.faults == ("flaky",) and cfg.seed == 7
    assert parse_chaos("all:1").faults == FAULTS
    cfg = parse_chaos("kill,hang:3:1/2")
    assert cfg.faults == ("kill", "hang")
    assert (cfg.rate_num, cfg.rate_den) == (1, 2)


def test_parse_chaos_rejects_garbage():
    with pytest.raises(ValueError, match="unknown chaos fault"):
        parse_chaos("explode:1")
    with pytest.raises(ValueError, match="rate"):
        parse_chaos("flaky:1:0/3")
    with pytest.raises(ValueError):
        parse_chaos("flaky:1:banana")
    with pytest.raises(ValueError, match="empty"):
        parse_chaos(":1")


def test_chaos_from_env_off_values(monkeypatch):
    for value in ("", "0", "off", "none", "OFF"):
        monkeypatch.setenv("REPRO_CHAOS", value)
        assert chaos_from_env() is None
    monkeypatch.setenv("REPRO_CHAOS", "raise:5")
    cfg = chaos_from_env()
    assert cfg is not None and cfg.faults == ("raise",)


# ----------------------------------------------------------------------
# Injection decisions
# ----------------------------------------------------------------------
def test_should_inject_is_deterministic_and_rate_bounded():
    cfg = ChaosConfig(faults=("raise",), seed=3, rate_num=1, rate_den=3)
    keys = [f"key-{i:03d}" for i in range(300)]
    picks = [k for k in keys if should_inject(cfg, "raise", k)]
    assert picks == [k for k in keys if should_inject(cfg, "raise", k)]
    # roughly rate_num/rate_den of the keys, and never none/all of them
    assert 0 < len(picks) < len(keys)
    assert abs(len(picks) / len(keys) - 1 / 3) < 0.15
    # a different seed reshuffles the selection
    other = ChaosConfig(faults=("raise",), seed=4, rate_num=1, rate_den=3)
    assert picks != [k for k in keys if should_inject(other, "raise", k)]


def test_transient_faults_fire_on_first_attempt_only():
    cfg = ChaosConfig(faults=FAULTS, seed=1, rate_num=1, rate_den=1)
    key = "some-point"
    assert should_inject(cfg, "flaky", key, attempt=0)
    assert not should_inject(cfg, "flaky", key, attempt=1)
    assert should_inject(cfg, "kill", key, attempt=0)
    assert not should_inject(cfg, "kill", key, attempt=2)
    # "raise" is permanent: every attempt
    assert should_inject(cfg, "raise", key, attempt=0)
    assert should_inject(cfg, "raise", key, attempt=5)
    assert set(planned_faults(cfg, key)) == set(FAULTS)


def test_inject_execute_serial_never_disrupts():
    """With disruptive_ok=False a kill/hang-selected point must neither
    exit nor sleep — the serial runner only sees exception faults."""
    cfg = ChaosConfig(faults=("kill", "hang"), seed=1, rate_num=1,
                      rate_den=1)
    inject_execute(cfg, "any-key", attempt=0, disruptive_ok=False)

    cfg = ChaosConfig(faults=("flaky",), seed=1, rate_num=1, rate_den=1)
    with pytest.raises(OSError, match="transient"):
        inject_execute(cfg, "any-key", attempt=0, disruptive_ok=False)
    cfg = ChaosConfig(faults=("raise",), seed=1, rate_num=1, rate_den=1)
    with pytest.raises(ChaosError, match="permanent"):
        inject_execute(cfg, "any-key", attempt=3, disruptive_ok=False)


def test_corrupt_entry_truncates_selected_files(tmp_path):
    cfg = ChaosConfig(faults=("corrupt",), seed=1, rate_num=1, rate_den=1)
    path = tmp_path / "entry.json"
    payload = json.dumps({"spec": {"a": 1}, "result": list(range(100))})
    path.write_text(payload)
    assert corrupt_entry(cfg, "k", path)
    with pytest.raises(json.JSONDecodeError):
        json.loads(path.read_text())
    # unselected fault -> untouched
    cfg = ChaosConfig(faults=("raise",), seed=1, rate_num=1, rate_den=1)
    path.write_text(payload)
    assert not corrupt_entry(cfg, "k", path)
    assert path.read_text() == payload


# ----------------------------------------------------------------------
# End-to-end: the harness absorbs injected faults
# ----------------------------------------------------------------------
def test_flaky_chaos_is_absorbed_by_retries(monkeypatch):
    monkeypatch.setenv("REPRO_CHAOS", "flaky:7:1/1")
    specs = specs_for(WORKLOADS)
    stats = SweepStats()
    results = run_many(specs, workers=1, stats_out=stats,
                       retry=RetryPolicy(max_attempts=3, backoff=0.01))
    assert all(r is not None for r in results)
    assert stats.retried == len(specs)    # every point flaked once
    assert stats.failed == 0


def test_raise_chaos_lands_in_the_failure_table(monkeypatch):
    monkeypatch.setenv("REPRO_CHAOS", "raise:7:1/1")
    specs = specs_for(WORKLOADS)
    with pytest.raises(SweepFailedError) as excinfo:
        run_many(specs, workers=1,
                 retry=RetryPolicy(max_attempts=2, backoff=0.01))
    failures = excinfo.value.failures
    assert len(failures) == len(specs)
    assert all(f.error == "ChaosError" and f.permanent for f in failures)
    # permanent failures are not retried
    assert all(f.attempts == 1 for f in failures)


def test_chaotic_sweep_resumes_to_fault_free_results(isolated, monkeypatch):
    """Acceptance: chaos -> failures; resume with chaos off -> the result
    set is byte-identical to a fault-free run."""
    specs = specs_for(WORKLOADS)
    monkeypatch.setenv("REPRO_CHAOS", "raise,flaky,corrupt:11:1/2")
    chaotic = run_many(specs, workers=1, keep_going=True, on_failure="none",
                       retry=RetryPolicy(max_attempts=3, backoff=0.01))
    assert any(r is None for r in chaotic)     # seed 11 hits >= 1 point

    monkeypatch.delenv("REPRO_CHAOS")
    clear_memo()
    resumed = run_many(specs, workers=1)
    assert all(r is not None for r in resumed)

    clear_memo()
    set_default_store(None)
    clean = run_many(specs, workers=1)
    assert [r.to_json() for r in resumed] == [r.to_json() for r in clean]


def test_chaotic_resumed_sweep_byte_identical_on_persistent_pool(
        isolated, monkeypatch, tmp_path):
    """The PR 7 warm pool under disruptive chaos (hangs, worker kills,
    store corruption) + trace cache still converges: resume with chaos
    off is byte-identical to a store-less fault-free run."""
    from repro.harness.turbo import shutdown_shared_pool
    from repro.workloads.tracecache import reset_default_trace_cache

    monkeypatch.setenv("REPRO_POOL", "persistent")
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))
    monkeypatch.setenv("REPRO_TIMEOUT", "5")
    specs = specs_for(WORKLOADS)
    try:
        monkeypatch.setenv("REPRO_CHAOS", "raise,kill,corrupt:11:1/2")
        run_many(specs, workers=2, keep_going=True, on_failure="none",
                 retry=RetryPolicy(max_attempts=2, backoff=0.01))

        monkeypatch.delenv("REPRO_CHAOS")
        clear_memo()
        resumed = run_many(specs, workers=2)
        assert all(r is not None for r in resumed)

        clear_memo()
        set_default_store(None)
        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
        clean = run_many(specs, workers=1)
        assert [r.to_json() for r in resumed] == \
            [r.to_json() for r in clean]
    finally:
        shutdown_shared_pool()
        reset_default_trace_cache()
