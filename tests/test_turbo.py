"""The warm worker pool (PR 7): mode resolution, env-snapshot shipping,
worker reuse across sweeps, engine propagation into stored results, and
the CLI's stdout/stderr purity when the store misbehaves."""

import json

import pytest

from repro.harness import ExperimentSpec, ResultStore, run_many
from repro.harness.runner import SweepStats, clear_memo
from repro.harness.store import reset_default_store, set_default_store
from repro.harness import turbo
from repro.harness.turbo import (POOL_ENV, resolve_pool_mode, shared_pool,
                                 shutdown_shared_pool, worker_env_snapshot,
                                 _apply_env)

WORKLOADS = ["429.mcf", "462.libquantum", "470.lbm"]


@pytest.fixture(autouse=True)
def isolated(tmp_path, monkeypatch):
    for var in ("REPRO_CHAOS", "REPRO_TIMEOUT", "REPRO_POOL",
                "REPRO_ENGINE", "REPRO_TRACE_CACHE"):
        monkeypatch.delenv(var, raising=False)
    clear_memo()
    store = ResultStore(tmp_path / "store")
    set_default_store(store)
    yield store
    clear_memo()
    reset_default_store()
    shutdown_shared_pool()


def specs_for(workloads, n_records=300):
    return [ExperimentSpec.single(w, "lru", n_records=n_records)
            for w in workloads]


# ----------------------------------------------------------------------
# Mode resolution and env snapshots
# ----------------------------------------------------------------------
def test_resolve_pool_mode(monkeypatch, caplog):
    assert resolve_pool_mode() == "persistent"        # default
    monkeypatch.setenv(POOL_ENV, "spawn")
    assert resolve_pool_mode() == "spawn"
    monkeypatch.setenv(POOL_ENV, " Persistent ")
    assert resolve_pool_mode() == "persistent"
    monkeypatch.setenv(POOL_ENV, "turbo-encabulator")
    with caplog.at_level("WARNING", logger="repro.harness.turbo"):
        assert resolve_pool_mode() == "persistent"
    assert "REPRO_POOL" in caplog.text


def test_worker_env_snapshot_only_repro_vars(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "batched")
    monkeypatch.setenv("PATH_LIKE_NOISE", "ignored")
    snap = worker_env_snapshot()
    assert snap["REPRO_ENGINE"] == "batched"
    assert all(k.startswith("REPRO_") for k in snap)


def test_apply_env_mirrors_snapshot_exactly(monkeypatch):
    monkeypatch.setenv("REPRO_STALE", "from-fork-time")
    monkeypatch.setenv("REPRO_ENGINE", "classic")
    _apply_env({"REPRO_ENGINE": "batched", "REPRO_CHAOS": "flaky:3"})
    import os
    assert "REPRO_STALE" not in os.environ       # deleted: not in snapshot
    assert os.environ["REPRO_ENGINE"] == "batched"
    assert os.environ["REPRO_CHAOS"] == "flaky:3"


# ----------------------------------------------------------------------
# The amortization claim: workers survive across run_many calls
# ----------------------------------------------------------------------
def test_pool_workers_are_reused_across_sweeps(monkeypatch):
    monkeypatch.setenv(POOL_ENV, "persistent")
    stats = SweepStats()
    run_many(specs_for(WORKLOADS[:2]), workers=2, store=None,
             stats_out=stats)
    assert stats.pool_used and stats.pool_mode == "persistent"
    assert turbo._SHARED is not None
    first_pids = sorted(w.proc.pid for w in turbo._SHARED._workers)
    assert len(first_pids) == 2

    clear_memo()
    run_many(specs_for(WORKLOADS), workers=2, store=None)
    second_pids = sorted(w.proc.pid for w in turbo._SHARED._workers)
    assert second_pids == first_pids      # same warm processes, no respawn
    assert all(w.proc.is_alive() for w in turbo._SHARED._workers)


def test_shared_pool_resizes_by_restart():
    pool = shared_pool(2)
    assert shared_pool(2) is pool          # stable at the same width
    wider = shared_pool(3)
    assert wider is not pool and wider.n_workers == 3
    shutdown_shared_pool()
    shutdown_shared_pool()                 # idempotent
    assert turbo._SHARED is None


# ----------------------------------------------------------------------
# Satellite: REPRO_ENGINE reaches pool workers and the store
# ----------------------------------------------------------------------
def test_engine_env_is_recorded_in_every_stored_result(isolated,
                                                       monkeypatch):
    monkeypatch.setenv(POOL_ENV, "persistent")
    specs = specs_for(WORKLOADS[:2])
    run_many(specs, workers=2, store=None)     # warm the pool on classic

    monkeypatch.setenv("REPRO_ENGINE", "batched")
    clear_memo()
    results = run_many(specs, workers=2)
    assert all(r is not None for r in results)
    entries = list(isolated.entries())
    assert len(entries) == len(specs)
    for path in entries:
        entry = json.loads(path.read_text())
        assert entry["spec"]["engine"] == "batched"


def test_engine_normalization_matches_explicit_spec(isolated, monkeypatch):
    """env-selected and spec-selected batched runs share keys/results."""
    import dataclasses
    spec = specs_for(WORKLOADS[:1])[0]
    explicit = dataclasses.replace(spec, engine="batched")
    via_spec = run_many([explicit], workers=1, store=None)[0]

    monkeypatch.setenv("REPRO_ENGINE", "batched")
    clear_memo()
    via_env = run_many([spec], workers=1, store=None)[0]
    assert via_env.to_json() == via_spec.to_json()


def test_cli_sweep_process_exits_cleanly(tmp_path):
    """Regression: pool workers fork while the supervisor's SIGINT/
    SIGTERM handlers are installed; a worker keeping those handlers
    survives terminate() and multiprocessing's atexit join then hangs
    the CLI process forever after the sweep already printed."""
    import os
    import subprocess
    import sys
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ,
               PYTHONPATH=os.path.join(repo, "src"),
               REPRO_RESULT_STORE=str(tmp_path / "store"),
               REPRO_TRACE_CACHE=str(tmp_path / "traces"),
               REPRO_POOL="persistent")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "sweep", "fig07",
         "--workloads", "1", "--records", "200", "--workers", "2",
         "--quiet"],
        cwd=repo, env=env, timeout=120, capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr


# ----------------------------------------------------------------------
# Satellite: --json stdout stays parseable when the store fails
# ----------------------------------------------------------------------
class ExplodingStore(ResultStore):
    """A store whose writes always fail (full disk, bad perms, ...)."""

    def put(self, spec, result):
        raise OSError("disk full")


def test_run_json_store_failure_keeps_stdout_pure(tmp_path, capsys):
    from repro.__main__ import main
    set_default_store(ExplodingStore(tmp_path / "bad-store"))
    try:
        assert main(["run", "462.libquantum", "--policies", "lru",
                     "--records", "600", "--json"]) == 0
    finally:
        reset_default_store()
    captured = capsys.readouterr()
    payload = json.loads(captured.out)     # stdout is pure JSON
    assert payload[0]["spec"]["workload"] == "462.libquantum"
    assert "store write failed" in captured.err
