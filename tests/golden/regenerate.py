"""Regenerate the golden-equivalence fixtures.

The fixtures pin the simulator's observable behaviour: each file holds an
:class:`~repro.harness.spec.ExperimentSpec` and the byte-exact
``SimResult.to_dict()`` it produced at the commit the fixture was
generated.  ``tests/test_golden_equivalence.py`` re-runs every spec and
asserts the result is unchanged, so hot-path optimizations are proven
bit-identical.

Every spec is executed with the runtime sanitizer enabled (see
:mod:`repro.checks.sanitize`): if any invariant trips, **no fixture file
is written** — a corrupted simulator must never mint new ground truth.
``--check`` verifies the existing fixtures under the sanitizer without
writing anything (the CI sanitizer job runs this).

Only regenerate after an *intentional* behaviour change (a model fix, a
new statistic), never to make a failing optimization pass — and say so in
the commit message.  Usage::

    PYTHONPATH=src python tests/golden/regenerate.py [--check]
"""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent.parent / "src"))

from repro.checks.sanitize import SanitizerError, sanitize_interval  # noqa: E402
from repro.harness.spec import ExperimentSpec  # noqa: E402
from repro.sim.backends import build_system, resolve_engine  # noqa: E402

GOLDEN_DIR = Path(__file__).resolve().parent

#: Coverage: both presets, 1/2/4 cores, spec/gap/mix suites, prefetch
#: on/off, locality-only and concurrency-aware policies, delta collection.
GOLDEN_SPECS = {
    "tiny_1c_lru_spec_nopf": ExperimentSpec.multicopy(
        "429.mcf", "lru", n_cores=1, prefetch=False, n_records=600,
        seed=3, preset="tiny"),
    "tiny_2c_care_spec_pf": ExperimentSpec.multicopy(
        "429.mcf", "care", n_cores=2, prefetch=True, n_records=400,
        seed=3, preset="tiny"),
    "tiny_4c_shippp_gap_pf": ExperimentSpec.multicopy(
        "bfs-or", "shippp", n_cores=4, prefetch=True, n_records=300,
        seed=5, suite="gap", preset="tiny"),
    "default_4c_care_mix_nopf": ExperimentSpec.mix(
        0, "care", n_cores=4, prefetch=False, n_records=300, seed=7),
    "default_4c_care_spec_pf": ExperimentSpec.multicopy(
        "429.mcf", "care", n_cores=4, prefetch=True, n_records=500,
        seed=3),
    "default_1c_mcare_spec_deltas": ExperimentSpec.multicopy(
        "433.milc", "mcare", n_cores=1, prefetch=False, n_records=500,
        seed=11, collect_deltas=True),
    # Production-traffic ("serve") families: one fixture per family so
    # the Zipfian/stream/pointer-chase generators are golden-pinned on
    # both engines.
    "tiny_2c_lru_serve_kv": ExperimentSpec.multicopy(
        "kv-zipf99", "lru", n_cores=2, prefetch=True, n_records=400,
        seed=3, suite="serve", preset="tiny"),
    "tiny_1c_care_serve_stream": ExperimentSpec.multicopy(
        "stream-scan", "care", n_cores=1, prefetch=False, n_records=400,
        seed=5, suite="serve", preset="tiny"),
    "default_2c_mcare_serve_usvc": ExperimentSpec.multicopy(
        "usvc-chase", "mcare", n_cores=2, prefetch=True, n_records=400,
        seed=7, suite="serve"),
}


def execute_sanitized(spec: ExperimentSpec):
    """``spec.execute()`` with the runtime sanitizer force-enabled.

    Routed through :func:`repro.sim.backends.build_system` so the CI
    cross-backend job can replay every fixture spec under another engine
    via ``REPRO_ENGINE`` (bit-identity means the fixture bytes must not
    change).  The fixture *identity* always stays the spec as stored.
    """
    traces = spec.build_traces()
    n = min(len(t) for t in traces)
    system = build_system(spec.build_config(), traces,
                          engine=spec.engine,
                          llc_policy=spec.policy,
                          prefetch=spec.prefetch, seed=spec.seed,
                          measure_records=n // 2, warmup_records=n // 2,
                          collect_deltas=spec.collect_deltas, sanitize=True)
    result = system.run()
    return result, system.sanitizer


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    check_only = "--check" in argv

    payloads = {}
    for name, spec in sorted(GOLDEN_SPECS.items()):
        try:
            result, sanitizer = execute_sanitized(spec)
        except SanitizerError as exc:
            print(f"SANITIZER TRIP on {name}: {exc}", file=sys.stderr)
            print("no fixtures written — fix the simulator first",
                  file=sys.stderr)
            return 1
        payloads[name] = {"name": name, "spec": spec.to_dict(),
                          "result": result.to_dict()}
        print(f"ran {name} [engine={resolve_engine(spec.engine)}]: "
              f"cycles={result.sim_cycles} "
              f"events={result.events} sanitizer_sweeps="
              f"{sanitizer.checks_run} (interval {sanitize_interval()})")

    if check_only:
        stale = []
        for name, payload in payloads.items():
            path = GOLDEN_DIR / f"{name}.json"
            if not path.exists() or json.loads(path.read_text()) != payload:
                stale.append(name)
        if stale:
            print(f"fixtures differ from sanitized rerun: {stale}",
                  file=sys.stderr)
            return 1
        print(f"all {len(payloads)} fixtures verified under the sanitizer")
        return 0

    # Every spec survived the sanitizer: now (and only now) write.
    for name, payload in sorted(payloads.items()):
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(json.dumps(payload, sort_keys=True,
                                   separators=(",", ":")) + "\n")
        print(f"wrote {path.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
