"""SimSan static lint: every rule proven on a seeded violation.

Each test lints a minimal snippet *as if* it lived in a module where the
rule applies (``lint_source(..., module=...)``) and asserts the right
rule ID fires at the right line — plus the mirror case showing the
idiomatic form passes clean.  The last test runs the real linter over
``src`` so the acceptance criterion ("``python -m repro check src``
exits 0") is enforced by the tier-1 suite itself.
"""

import textwrap
from pathlib import Path

import pytest

from repro.checks.lint import (ALL_RULE_IDS, HOT_PATH_MANIFEST, RULES,
                               format_finding, lint_source, module_name_for,
                               run_lint)

REPO_SRC = Path(__file__).resolve().parent.parent / "src"

SIM = "repro.sim.fake"      # deterministic + sim scopes apply
CORE = "repro.core.fake"    # deterministic scope applies, sim does not
OTHER = "repro.analysis.fake"   # only "all"-scope rules apply


def ids(findings):
    return [f.rule_id for f in findings]


def one(findings, rule_id):
    """Assert exactly one finding with ``rule_id`` and return it."""
    matching = [f for f in findings if f.rule_id == rule_id]
    assert len(matching) == 1, (
        f"expected exactly one {rule_id}, got {ids(findings)}")
    return matching[0]


def lint(snippet, module=SIM):
    return lint_source(textwrap.dedent(snippet), module=module)


# ----------------------------------------------------------------------
# Rule catalogue sanity
# ----------------------------------------------------------------------
def test_catalogue_has_at_least_eight_rules():
    assert len(RULES) >= 8
    assert set(ALL_RULE_IDS) == set(RULES)
    for rule in RULES.values():
        assert rule.id and rule.summary and rule.hint
        assert rule.scope in ("deterministic", "sim", "hot", "harness",
                              "all")


def test_hot_path_manifest_names_resolve():
    """Manifest entries must track the real tree (no stale qualnames)."""
    import importlib
    for qualname in HOT_PATH_MANIFEST:
        parts = qualname.split(".")
        # Longest importable prefix, then attribute-walk the rest.
        for split in range(len(parts) - 1, 0, -1):
            try:
                obj = importlib.import_module(".".join(parts[:split]))
            except ImportError:
                continue
            for attr in parts[split:]:
                obj = getattr(obj, attr)
            break
        else:
            pytest.fail(f"unimportable manifest entry {qualname}")


# ----------------------------------------------------------------------
# SS1xx determinism
# ----------------------------------------------------------------------
def test_ss101_unseeded_random_fires():
    f = one(lint("""
        import random
        def pick(ways):
            return random.randrange(ways)
        """), "SS101")
    assert f.line == 4


def test_ss101_seeded_generator_is_clean():
    assert lint("""
        import random
        def make_rng(seed):
            return random.Random(seed)
        """) == []


def test_ss101_out_of_scope_module_is_clean():
    snippet = """
        import random
        def pick(ways):
            return random.randrange(ways)
        """
    assert lint(snippet, module=OTHER) == []


def test_ss102_wall_clock_fires():
    findings = lint("""
        import time
        def stamp():
            return time.time()
        """)
    one(findings, "SS102")


def test_ss102_datetime_now_fires():
    findings = lint("""
        from datetime import datetime
        def stamp():
            return datetime.now()
        """)
    one(findings, "SS102")


def test_ss103_set_iteration_fires():
    findings = lint("""
        def drain(self):
            pending = set()
            for req in pending:
                req.fire()
        """)
    one(findings, "SS103")


def test_ss103_sorted_set_is_clean():
    assert lint("""
        def drain(self):
            pending = set()
            for req in sorted(pending):
                req.fire()
        """) == []


def test_ss104_import_time_env_read_fires():
    findings = lint("""
        import os
        DEBUG = os.environ.get("REPRO_DEBUG")
        """, module=OTHER)
    one(findings, "SS104")


def test_ss104_env_read_inside_function_is_clean():
    assert lint("""
        import os
        def debug_enabled():
            return os.environ.get("REPRO_DEBUG") == "1"
        """, module=OTHER) == []


# ----------------------------------------------------------------------
# SS2xx hot-path discipline
# ----------------------------------------------------------------------
def test_ss201_missing_slots_fires():
    f = one(lint("""
        class Widget:
            def __init__(self):
                self.x = 1
        """), "SS201")
    assert f.line == 2


def test_ss201_slots_class_is_clean():
    assert lint("""
        class Widget:
            __slots__ = ("x",)
            def __init__(self):
                self.x = 1
        """) == []


def test_ss201_dataclass_and_exception_exempt():
    assert lint("""
        from dataclasses import dataclass

        @dataclass
        class Stats:
            hits: int = 0

        class SimError(Exception):
            pass
        """) == []


def test_ss201_core_module_out_of_scope():
    snippet = """
        class Widget:
            def __init__(self):
                self.x = 1
        """
    assert lint(snippet, module=CORE) == []


def test_ss202_closure_in_hot_function_fires():
    findings = lint("""
        class Cache:
            __slots__ = ()
            def access(self, engine, req):  # hot: per-request entry point
                engine.post(5, lambda: req.fire())
        """)
    one(findings, "SS202")


def test_ss202_untagged_function_is_clean():
    assert lint("""
        class Cache:
            __slots__ = ()
            def report(self, engine, req):
                engine.post(5, lambda: req.fire())
        """) == []


def test_ss203_fstring_log_in_hot_function_fires():
    findings = lint("""
        import logging
        log = logging.getLogger(__name__)
        def step(now):  # hot: inner loop
            log.debug(f"tick {now}")
        """)
    one(findings, "SS203")


def test_ss203_lazy_formatting_is_clean():
    assert lint("""
        import logging
        log = logging.getLogger(__name__)
        def step(now):  # hot: inner loop
            log.debug("tick %d", now)
        """) == []


def test_ss204_raw_heap_scheduling_fires():
    findings = lint("""
        import heapq
        def sneak(engine, fn):
            heapq.heappush(engine._heap, (0, 0, fn, ()))
        """)
    one(findings, "SS204")


# ----------------------------------------------------------------------
# SS3xx API hygiene
# ----------------------------------------------------------------------
def test_ss301_mutable_default_fires():
    findings = lint("""
        def merge(dst, extras=[]):
            dst.extend(extras)
        """, module=OTHER)
    one(findings, "SS301")


def test_ss301_none_default_is_clean():
    assert lint("""
        def merge(dst, extras=None):
            dst.extend(extras or [])
        """, module=OTHER) == []


def test_ss302_bare_except_fires():
    findings = lint("""
        def load(path):
            try:
                return open(path).read()
            except:
                return ""
        """, module=OTHER)
    one(findings, "SS302")


def test_ss302_typed_except_is_clean():
    assert lint("""
        def load(path):
            try:
                return open(path).read()
            except OSError:
                return ""
        """, module=OTHER) == []


# ----------------------------------------------------------------------
# SS4xx sweep-throughput discipline
# ----------------------------------------------------------------------
HARNESS = "repro.harness.fake"


def test_ss401_direct_trace_generation_fires_in_harness():
    f = one(lint("""
        from repro.workloads import spec_trace
        def build(name, n):
            return spec_trace(name, n_records=n, seed=3)
        """, module=HARNESS), "SS401")
    assert "spec_trace" in f.message


def test_ss401_covers_every_generator_name():
    for fn in ("make_trace", "spec_trace", "gap_trace"):
        one(lint(f"""
            from repro import workloads
            def build(name):
                return workloads.{fn}(name)
            """, module=HARNESS), "SS401")


def test_ss401_cached_trace_is_clean():
    assert lint("""
        from repro.workloads import cached_trace
        def build(name, n):
            return cached_trace("spec", name, n, 3, 1)
        """, module=HARNESS) == []


def test_ss401_does_not_apply_to_workloads_package():
    assert lint("""
        def helper(name, n):
            return spec_trace(name, n_records=n, seed=0)
        """, module="repro.workloads.mixes") == []


# ----------------------------------------------------------------------
# Suppressions and formatting
# ----------------------------------------------------------------------
def test_line_suppression_silences_only_that_rule():
    findings = lint("""
        import random
        def pick(ways):
            return random.randrange(ways)  # simsan: skip=SS101
        """)
    assert findings == []


def test_line_suppression_is_rule_specific():
    findings = lint("""
        import random
        def pick(ways):
            return random.randrange(ways)  # simsan: skip=SS102
        """)
    one(findings, "SS101")


def test_skip_file_silences_everything():
    findings = lint("""
        # simsan: skip-file
        import random
        def pick(ways):
            return random.randrange(ways)
        """)
    assert findings == []


def test_format_finding_mentions_rule_and_hint():
    f = one(lint("""
        def merge(dst, extras=[]):
            dst.extend(extras)
        """, module=OTHER), "SS301")
    plain = format_finding(f)
    assert "SS301" in plain and f.path in plain
    with_hint = format_finding(f, fix_hints=True)
    assert len(with_hint) > len(plain)


def test_module_name_for_anchors_at_repro():
    assert module_name_for(
        REPO_SRC / "repro" / "sim" / "cache.py") == "repro.sim.cache"


# ----------------------------------------------------------------------
# Acceptance: the real tree is clean
# ----------------------------------------------------------------------
def test_repository_source_is_lint_clean():
    findings = run_lint([REPO_SRC])
    assert findings == [], "\n".join(format_finding(f) for f in findings)
