"""Inclusive-LLC mode: back-invalidation of private levels."""

from dataclasses import replace

import pytest

from repro.policies.lru import LRUPolicy
from repro.sim import (
    AccessType,
    Cache,
    CacheConfig,
    Engine,
    MemRequest,
    SystemConfig,
    System,
)
from tests.conftest import build_trace
from tests.test_cache import _PerfectLower, _load


def build_pair(inclusive=True):
    """Tiny L1 over a 1-entry LLC so LLC evictions are easy to force."""
    eng = Engine()
    mem = _PerfectLower(eng, delay=10)
    llc = Cache(CacheConfig("LLC", 1, 1, 2, 4), eng,
                LRUPolicy(1, 1), lower=mem, inclusive=inclusive)
    l1 = Cache(CacheConfig("L1", 1, 2, 1, 4), eng,
               LRUPolicy(1, 2), lower=llc)
    llc.upper_levels = [l1]
    return eng, mem, llc, l1


def test_invalidate_returns_dirty_state():
    eng, mem, llc, l1 = build_pair()
    l1.access(_load(0x0, rtype=AccessType.RFO))
    eng.run()
    assert l1.probe(0x0)
    assert l1.invalidate(0x0) is True      # dirty copy dropped
    assert not l1.probe(0x0)
    assert l1.invalidate(0x0) is False     # already gone


def test_inclusive_eviction_removes_upper_copy():
    eng, mem, llc, l1 = build_pair(inclusive=True)
    l1.access(_load(0x0))
    eng.run()
    assert l1.probe(0x0) and llc.probe(0x0)
    # A second block evicts the 1-way LLC's only line.
    l1.access(_load(0x40))
    eng.run()
    assert not l1.probe(0x0)
    assert l1.stats.invalidations == 1


def test_noninclusive_eviction_keeps_upper_copy():
    eng, mem, llc, l1 = build_pair(inclusive=False)
    l1.access(_load(0x0))
    eng.run()
    l1.access(_load(0x40))
    eng.run()
    assert l1.probe(0x0)                   # L1 copy survives
    assert l1.stats.invalidations == 0


def test_inclusive_eviction_merges_upper_dirty_state():
    eng, mem, llc, l1 = build_pair(inclusive=True)
    l1.access(_load(0x0, rtype=AccessType.RFO))   # dirty in L1, clean in LLC
    eng.run()
    l1.access(_load(0x40))
    eng.run()
    wbs = [r for r in mem.requests if r.rtype == AccessType.WRITEBACK]
    assert len(wbs) == 1 and wbs[0].block == 0


def test_full_system_inclusive_mode(small_trace):
    cfg = replace(SystemConfig.tiny(1), llc_inclusive=True)
    system = System(cfg, [small_trace.records], llc_policy="lru",
                    warmup_records=0)
    res = system.run()
    assert res.ipc[0] > 0
    invalidations = sum(s.invalidations for s in res.l1_stats + res.l2_stats)
    assert invalidations > 0
    system.llc.assert_no_duplicates()


def test_inclusive_mode_increases_private_misses(small_trace):
    base_cfg = SystemConfig.tiny(1)
    non = System(base_cfg, [small_trace.records], llc_policy="lru",
                 warmup_records=0).run()
    inc = System(replace(base_cfg, llc_inclusive=True),
                 [small_trace.records], llc_policy="lru",
                 warmup_records=0).run()
    # Back-invalidations can only remove reuse from the private levels.
    assert inc.l1_stats[0].demand_hits <= non.l1_stats[0].demand_hits
