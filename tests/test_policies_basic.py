"""Classical policies: LRU, FIFO, Random, LFU, RRIP family, dueling, registry."""

import pytest

from repro.harness import simulate_cache
from repro.policies.base import PolicyAccess
from repro.policies.dueling import SetDuel
from repro.policies.lru import LRUPolicy
from repro.policies.registry import available_policies, make_policy
from repro.policies.sampling import choose_sampled_sets
from repro.policies.srrip import SRRIPPolicy
from repro.sim.request import AccessType


def acc(pc=0, addr=0):
    return PolicyAccess(pc=pc, addr=addr, core=0, rtype=AccessType.LOAD)


def seq_addrs(blocks):
    return [(0x10 + b % 5, b * 64) for b in blocks]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

def test_registry_contains_all_paper_schemes():
    names = available_policies()
    for required in ("lru", "srrip", "drrip", "ship", "shippp", "sbar",
                     "hawkeye", "glider", "mockingjay", "care", "mcare",
                     "opt", "lacs", "fifo", "random", "lfu", "brrip"):
        assert required in names, required


def test_registry_unknown_name_lists_choices():
    with pytest.raises(KeyError, match="available"):
        make_policy("nope", sets=4, ways=2)


def test_registry_drops_unknown_kwargs():
    pol = make_policy("lru", sets=4, ways=2, n_cores=8)  # lru ignores n_cores
    assert isinstance(pol, LRUPolicy)


def test_registry_warns_on_dropped_non_context_kwargs(caplog):
    import logging

    import repro.policies.registry as registry
    registry._warned_drops.clear()
    with caplog.at_level(logging.WARNING, logger="repro.policies.registry"):
        make_policy("lru", sets=4, ways=2, shct_bits=14)   # typo'd override
    assert any("shct_bits" in r.message and "lru" in r.message
               for r in caplog.records)
    # ... but only once per (policy, argument-set) combination
    caplog.clear()
    with caplog.at_level(logging.WARNING, logger="repro.policies.registry"):
        make_policy("lru", sets=4, ways=2, shct_bits=14)
    assert not caplog.records


def test_registry_context_kwargs_drop_silently(caplog):
    import logging
    with caplog.at_level(logging.WARNING, logger="repro.policies.registry"):
        make_policy("lru", sets=4, ways=2, n_cores=8)  # uniform context
    assert not caplog.records


def test_policy_name_attribute_matches_registry_key():
    for name in ("lru", "care", "shippp", "hawkeye"):
        assert make_policy(name, sets=4, ways=2).name == name


# ----------------------------------------------------------------------
# LRU
# ----------------------------------------------------------------------

def test_lru_evicts_least_recent():
    pol = LRUPolicy(1, 3)
    blocks = [None] * 3
    for way in range(3):
        pol.on_fill(0, way, blocks, acc())
    pol.on_hit(0, 0, blocks, acc())          # 0 is now MRU
    assert pol.find_victim(0, blocks, acc()) == 1


def test_lru_stack_property_on_sequential_refills():
    pol = LRUPolicy(1, 4)
    blocks = [None] * 4
    for way in range(4):
        pol.on_fill(0, way, blocks, acc())
    assert pol.recency_order(0) == [3, 2, 1, 0]


def test_lru_exploits_small_working_set():
    # 8 blocks loop into a 16-block cache: all hits after warmup.
    addrs = seq_addrs(list(range(8)) * 20)
    r = simulate_cache(addrs, sets=4, ways=4, policy="lru")
    assert r.misses == 8


def test_lru_thrashes_on_oversized_loop():
    # Classic LRU pathology: loop of N+1 blocks over N-block cache.
    addrs = seq_addrs(list(range(17)) * 10)
    r = simulate_cache(addrs, sets=1, ways=16, policy="lru")
    assert r.hits == 0


# ----------------------------------------------------------------------
# FIFO / Random / LFU
# ----------------------------------------------------------------------

def test_fifo_ignores_hits():
    pol = make_policy("fifo", sets=1, ways=2)
    blocks = [None] * 2
    pol.on_fill(0, 0, blocks, acc())
    pol.on_fill(0, 1, blocks, acc())
    for _ in range(5):
        pol.on_hit(0, 0, blocks, acc())
    assert pol.find_victim(0, blocks, acc()) == 0


def test_random_victims_cover_all_ways():
    pol = make_policy("random", sets=1, ways=4, seed=1)
    seen = {pol.find_victim(0, [None] * 4, acc()) for _ in range(200)}
    assert seen == {0, 1, 2, 3}


def test_lfu_keeps_frequent_block():
    pol = make_policy("lfu", sets=1, ways=2)
    blocks = [None] * 2
    pol.on_fill(0, 0, blocks, acc())
    pol.on_fill(0, 1, blocks, acc())
    for _ in range(10):
        pol.on_hit(0, 0, blocks, acc())
    assert pol.find_victim(0, blocks, acc()) == 1


def test_lfu_decay_halves_counters():
    pol = make_policy("lfu", sets=1, ways=1, decay_period=2)
    blocks = [None]
    pol.on_fill(0, 0, blocks, acc())
    for _ in range(9):
        pol.on_hit(0, 0, blocks, acc())
    assert pol._count[0][0] == 10
    pol.on_fill(0, 0, blocks, acc())   # triggers decay (2nd fill)
    assert pol._count[0][0] <= 5


# ----------------------------------------------------------------------
# RRIP family
# ----------------------------------------------------------------------

def test_srrip_insert_long_promote_on_hit():
    pol = SRRIPPolicy(1, 2)
    blocks = [None] * 2
    pol.on_fill(0, 0, blocks, acc())
    assert pol.rrpv[0][0] == pol.rrpv_max - 1
    pol.on_hit(0, 0, blocks, acc())
    assert pol.rrpv[0][0] == 0


def test_srrip_aging_terminates_and_victimizes():
    pol = SRRIPPolicy(1, 4)
    blocks = [None] * 4
    for w in range(4):
        pol.on_fill(0, w, blocks, acc())
        pol.on_hit(0, w, blocks, acc())   # all RRPV 0
    victim = pol.find_victim(0, blocks, acc())
    assert 0 <= victim < 4
    assert pol.rrpv[0][victim] == pol.rrpv_max


def test_srrip_keeps_hit_blocks_over_fresh_fills():
    # Blocks with hits (RRPV 0) outlive never-hit fills (RRPV 2).
    addrs = seq_addrs([0, 1, 0, 1] + list(range(10, 18)) + [0, 1])
    srrip = simulate_cache(addrs, sets=1, ways=8, policy="srrip")
    lru = simulate_cache(addrs, sets=1, ways=8, policy="lru")
    assert srrip.hits > lru.hits


def test_brrip_resists_thrashing_loop():
    # Loop of ways+1 blocks: LRU gets zero hits, bimodal insertion keeps a
    # subset resident across sweeps.
    addrs = seq_addrs(list(range(17)) * 20)
    lru = simulate_cache(addrs, sets=1, ways=16, policy="lru")
    brrip = simulate_cache(addrs, sets=1, ways=16, policy="brrip", seed=1)
    assert lru.hits == 0
    assert brrip.hits > 50


def test_brrip_inserts_mostly_distant():
    pol = make_policy("brrip", sets=1, ways=1, seed=0)
    blocks = [None]
    distant = 0
    for _ in range(200):
        pol.on_fill(0, 0, blocks, acc())
        distant += pol.rrpv[0][0] == pol.rrpv_max
    assert distant > 150


def test_drrip_tracks_misses_with_psel():
    pol = make_policy("drrip", sets=64, ways=4, seed=0)
    blocks = [None] * 4
    start = pol.duel.psel
    leader_a = next(s for s in range(64) if pol.duel.role(s) == SetDuel.ROLE_A)
    for _ in range(10):
        pol.on_fill(leader_a, 0, blocks, acc())
    assert pol.duel.psel > start


# ----------------------------------------------------------------------
# Set dueling / sampling helpers
# ----------------------------------------------------------------------

def test_setduel_roles_disjoint_and_sized():
    duel = SetDuel(128, leaders_per_policy=16, seed=3)
    roles = [duel.role(s) for s in range(128)]
    assert roles.count(SetDuel.ROLE_A) == 16
    assert roles.count(SetDuel.ROLE_B) == 16


def test_setduel_follower_switches_with_psel():
    duel = SetDuel(64, leaders_per_policy=8, psel_bits=4, seed=0)
    follower = next(s for s in range(64) if duel.role(s) == SetDuel.FOLLOWER)
    leader_a = next(s for s in range(64) if duel.role(s) == SetDuel.ROLE_A)
    assert duel.choose(follower) == SetDuel.ROLE_A
    for _ in range(20):
        duel.on_miss(leader_a)     # policy A keeps missing
    assert duel.choose(follower) == SetDuel.ROLE_B


def test_leader_sets_always_use_own_policy():
    duel = SetDuel(64, leaders_per_policy=8, seed=0)
    leader_b = next(s for s in range(64) if duel.role(s) == SetDuel.ROLE_B)
    for _ in range(100):
        duel.on_miss(leader_b)
    assert duel.choose(leader_b) == SetDuel.ROLE_B


def test_sampled_sets_within_range_and_count():
    sampled = choose_sampled_sets(2048, 64)
    assert len(sampled) == 64
    assert all(0 <= s < 2048 for s in sampled)


def test_sampled_sets_small_cache():
    sampled = choose_sampled_sets(8, 64)
    assert 1 <= len(sampled) <= 4
