"""Full-hierarchy System runs: wiring, warmup, measurement, invariants."""

import pytest

from repro.sim import SystemConfig, System, simulate
from tests.conftest import build_trace


def test_single_core_run_completes(tiny_cfg, small_trace):
    res = simulate([small_trace.records], cfg=tiny_cfg, llc_policy="lru")
    assert res.n_cores == 1
    assert res.ipc[0] > 0
    # Default: warmup = N/4 records, then a full N-record measured region
    # (the trace replays), so measured instructions == the whole trace's.
    assert res.instructions[0] == small_trace.instructions


def test_trace_count_must_match_cores(tiny_cfg4, small_trace):
    with pytest.raises(ValueError):
        System(tiny_cfg4, [small_trace.records], llc_policy="lru")


def test_multicore_run_all_cores_measured(tiny_cfg4, small_traces4):
    res = simulate([t.records for t in small_traces4], cfg=tiny_cfg4,
                   llc_policy="lru")
    assert len(res.ipc) == 4
    assert all(ipc > 0 for ipc in res.ipc)
    assert res.llc.total_accesses > 0


def test_warmup_resets_measured_stats(tiny_cfg, small_trace):
    recs = small_trace.records
    cold = simulate([recs], cfg=tiny_cfg, llc_policy="lru",
                    measure_records=800, warmup_records=0)
    warm = simulate([recs], cfg=tiny_cfg, llc_policy="lru",
                    measure_records=800, warmup_records=700)
    # Cold-start misses must not pollute the warmed measurement.
    assert warm.mpki() < cold.mpki()


def test_policy_objects_accepted(tiny_cfg, small_trace):
    from repro.policies.lru import LRUPolicy

    def factory(sets, ways, seed, n_cores):
        return LRUPolicy(sets, ways, seed)

    res = simulate([small_trace.records], cfg=tiny_cfg, llc_policy=factory)
    assert res.policy == "lru"


def test_llc_monitor_always_attached(tiny_cfg, small_trace):
    res = simulate([small_trace.records], cfg=tiny_cfg, llc_policy="lru")
    assert res.conc_total.accesses > 0
    assert res.conc_total.misses > 0


def test_pmc_sum_bounded_by_pure_cycles(tiny_cfg4, small_traces4):
    res = simulate([t.records for t in small_traces4], cfg=tiny_cfg4,
                   llc_policy="lru")
    for core_stats in res.conc:
        # Completed misses' PMC cannot exceed the core's pure-miss cycles
        # (pre-warmup leak-in allows slight overshoot; allow 10%).
        assert core_stats.pmc_sum <= core_stats.pure_miss_cycles * 1.1 + 1e-6


def test_pure_misses_subset_of_misses(tiny_cfg4, small_traces4):
    res = simulate([t.records for t in small_traces4], cfg=tiny_cfg4,
                   llc_policy="lru")
    total = res.conc_total
    assert 0 <= total.pure_misses <= total.misses
    assert 0 <= total.hit_miss_overlap_misses <= total.misses
    assert 0.0 <= res.pmr <= 1.0


def test_no_duplicate_blocks_after_run(tiny_cfg4, small_traces4):
    system = System(tiny_cfg4, [t.records for t in small_traces4],
                    llc_policy="care")
    system.run()
    system.llc.assert_no_duplicates()
    for cache in system.l1s + system.l2s:
        cache.assert_no_duplicates()


def test_prefetchers_only_when_enabled(tiny_cfg, small_trace):
    off = System(tiny_cfg, [small_trace.records], prefetch=False)
    on = System(tiny_cfg, [small_trace.records], prefetch=True)
    assert off.l1s[0].prefetcher is None
    assert on.l1s[0].prefetcher is not None
    res = on.run()
    assert res.prefetch


def test_prefetching_changes_traffic(tiny_cfg, small_trace):
    base = simulate([small_trace.records], cfg=tiny_cfg, prefetch=False)
    pf = simulate([small_trace.records], cfg=tiny_cfg, prefetch=True)
    total_pf_fills = sum(
        s.prefetch_fills for s in pf.l1_stats + pf.l2_stats)
    assert total_pf_fills > 0
    assert base.llc.total_accesses != pf.llc.total_accesses


def test_deterministic_given_seed(tiny_cfg4, small_traces4):
    traces = [t.records for t in small_traces4]
    a = simulate(traces, cfg=tiny_cfg4, llc_policy="care", seed=7)
    b = simulate(traces, cfg=tiny_cfg4, llc_policy="care", seed=7)
    assert a.ipc == b.ipc
    assert a.sim_cycles == b.sim_cycles
    assert a.mpki() == b.mpki()


def test_summary_fields(tiny_cfg, small_trace):
    res = simulate([small_trace.records], cfg=tiny_cfg, llc_policy="lru")
    s = res.summary()
    for key in ("policy", "cores", "ipc_mean", "mpki", "pmr", "mean_pmc",
                "aocpa", "cycles"):
        assert key in s


def test_collect_deltas_flag(tiny_cfg, small_trace):
    res = simulate([small_trace.records], cfg=tiny_cfg, llc_policy="lru",
                   collect_deltas=True)
    assert isinstance(res.pmc_deltas[0], list)


def test_dram_traffic_accounted(tiny_cfg, small_trace):
    res = simulate([small_trace.records], cfg=tiny_cfg, llc_policy="lru")
    assert res.dram.reads > 0
    assert res.dram.row_hits + res.dram.row_misses == (
        res.dram.reads + res.dram.writes)
