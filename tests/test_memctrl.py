"""FR-FCFS memory controller: scheduling policy and queue behavior."""

import pytest

from repro.sim import AccessType, DRAMConfig, Engine, MemRequest, SystemConfig
from repro.sim.memctrl import FRFCFSController, make_memory


def make_ctrl(banks=2, channels=1, read_queue=8, write_queue=8, **kw):
    eng = Engine()
    cfg = DRAMConfig(channels=channels, banks_per_channel=banks,
                     row_size=1024, scheduler="frfcfs")
    ctrl = FRFCFSController(cfg, eng, read_queue=read_queue,
                            write_queue=write_queue, **kw)
    return eng, ctrl


def _read(addr, cb=None):
    return MemRequest(addr=addr, pc=0, core=0, rtype=AccessType.LOAD,
                      callback=cb)


def _write(addr):
    return MemRequest(addr=addr, pc=0, core=0, rtype=AccessType.WRITEBACK)


def test_factory_honors_scheduler_field():
    eng = Engine()
    from repro.sim.dram import DRAM
    assert isinstance(make_memory(DRAMConfig(scheduler="fcfs"), eng), DRAM)
    assert isinstance(make_memory(DRAMConfig(scheduler="frfcfs"), eng),
                      FRFCFSController)
    with pytest.raises(ValueError):
        make_memory(DRAMConfig(scheduler="nope"), eng)


def test_single_read_latency_matches_simple_model():
    eng, ctrl = make_ctrl()
    times = []
    ctrl.access(_read(0x0, cb=lambda r, t: times.append(t)))
    eng.run()
    cfg = ctrl.cfg
    assert times == [cfg.t_rcd + cfg.t_cas + cfg.burst_cycles]


def test_row_hit_reordering():
    """A younger row-hit request is served before an older row-miss."""
    eng, ctrl = make_ctrl(banks=1)
    order = []
    # Open row 0 in the bank.
    ctrl.access(_read(0x0, cb=lambda r, t: order.append("warm")))
    eng.run()
    # While the bank is busy with a row-miss to row 8, queue: first a
    # row-miss (older), then a row-hit (younger).
    ctrl.access(_read(0x2000, cb=lambda r, t: order.append("busy")))
    ctrl.access(_read(0x4000, cb=lambda r, t: order.append("miss-old")))
    ctrl.access(_read(0x2040, cb=lambda r, t: order.append("hit-young")))
    eng.run()
    assert order == ["warm", "busy", "hit-young", "miss-old"]
    assert ctrl.stats.frfcfs_reorders >= 1


def test_reads_prioritized_over_buffered_writes():
    eng, ctrl = make_ctrl(banks=1, write_queue=16)
    order = []
    ctrl.access(_write(0x0))
    ctrl.access(_read(0x1000, cb=lambda r, t: order.append("read")))
    eng.run()
    # The write was issued first (it arrived when nothing else existed),
    # but subsequent writes buffer while reads flow.
    ctrl.access(_write(0x2000))
    ctrl.access(_write(0x3000))
    ctrl.access(_read(0x4000, cb=lambda r, t: order.append("read2")))
    eng.run()
    assert "read2" in order
    assert ctrl.stats.reads == 2


def test_write_drain_hysteresis():
    eng, ctrl = make_ctrl(banks=1, write_queue=4, drain_high=0.5,
                          drain_low=0.25)
    for i in range(4):
        ctrl.access(_write(0x1000 * i))
    eng.run()
    assert ctrl.stats.writes == 4
    assert ctrl.stats.write_drains >= 1


def test_read_queue_backpressure():
    eng, ctrl = make_ctrl(banks=1, read_queue=2)
    done = []
    for i in range(6):
        ctrl.access(_read(0x1000 * i, cb=lambda r, t: done.append(t)))
    eng.run()
    assert len(done) == 6                      # everything eventually served
    assert ctrl.stats.read_queue_full_stalls > 0


def test_banks_operate_in_parallel():
    eng, ctrl = make_ctrl(banks=2)
    times = []
    ctrl.access(_read(0x0, cb=lambda r, t: times.append(t)))    # bank 0
    ctrl.access(_read(0x40, cb=lambda r, t: times.append(t)))   # bank 1
    eng.run()
    # Bursts serialize on the bus; array access overlaps across banks.
    assert times[1] - times[0] == ctrl.cfg.burst_cycles


def test_full_system_runs_with_frfcfs(small_trace):
    from dataclasses import replace
    from repro.sim import simulate
    cfg = SystemConfig.tiny(1)
    cfg = replace(cfg, dram=replace(cfg.dram, scheduler="frfcfs"))
    res = simulate([small_trace.records], cfg=cfg, llc_policy="care")
    assert res.ipc[0] > 0
    assert res.dram.reads > 0


def test_frfcfs_improves_row_hit_rate_on_interleaved_streams():
    """Two interleaved streams to different rows: FR-FCFS batches row hits."""
    import random
    from dataclasses import replace
    rng = random.Random(1)
    reqs = []
    for i in range(120):
        row = rng.choice([0x0, 0x100000])
        reqs.append(row + (i % 16) * 64)

    def run(scheduler):
        eng = Engine()
        cfg = DRAMConfig(channels=1, banks_per_channel=1, row_size=1024,
                         scheduler=scheduler)
        mem = make_memory(cfg, eng)
        for addr in reqs:
            mem.access(_read(addr))
        eng.run()
        return mem.stats.row_hit_rate

    assert run("frfcfs") >= run("fcfs")


def test_drain_parameter_validation():
    with pytest.raises(ValueError):
        make_ctrl(drain_high=0.2, drain_low=0.5)
