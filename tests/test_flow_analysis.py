"""SimSan-Flow: call-graph resolution + every SS5xx/SS6xx rule proven.

Structure mirrors ``test_lint_rules.py``: the fixture package under
``tests/flow_fixtures`` pins call-graph *resolution* (registry
indirection, stored bound methods, scheduled callbacks); the
fault-injection tests below seed one bad edit per rule against a
minimal fixture config and assert the rule fires — plus the mirror
clean form.  The acceptance test at the end runs the real analysis
over ``src`` so "``repro check --flow`` exits 0" is enforced by the
tier-1 suite itself.
"""

import textwrap
from pathlib import Path

from repro.checks.flow import (FLOW_RULE_IDS, FLOW_RULES, FlowConfig,
                               analyze_modules, build_graph, extract_module,
                               extract_source, run_flow)
from repro.checks.lint import audit_suppressions, lint_source_detailed
from repro.checks.lint.rules import RULES

REPO_SRC = Path(__file__).resolve().parent.parent / "src"
FIXTURES = Path(__file__).resolve().parent / "flow_fixtures"


def ids(findings):
    return [f.rule_id for f in findings]


def one(findings, rule_id):
    matching = [f for f in findings if f.rule_id == rule_id]
    assert len(matching) == 1, (
        f"expected exactly one {rule_id}, got {ids(findings)}")
    return matching[0]


def none(findings, rule_id):
    assert not [f for f in findings if f.rule_id == rule_id], (
        f"expected no {rule_id}, got {ids(findings)}")


def flow(sources, **over):
    """Analyze in-memory modules under a minimal fixture config."""
    mods = [extract_source(textwrap.dedent(src), module=mod,
                           path=f"{mod.replace('.', '/')}.py")
            for mod, src in sources.items()]
    config = FlowConfig(
        hot_roots=frozenset(over.pop("hot_roots", ())),
        hot_domain=over.pop("hot_domain", ("repro.sim",)),
        taint_sink_domain=over.pop("sink_domain", ("repro.sim",)),
        taint_sanitizers=frozenset(over.pop("sanitizers", ())),
        worker_roots=frozenset(over.pop("worker_roots", ())),
        worker_env_api=frozenset(over.pop("env_api", ())),
        registry_resolvers=over.pop("registries", {}),
        hot_manifest=frozenset(over.pop("manifest", ())),
        engine_modules=frozenset(over.pop("engine_modules", ())),
        trace_exempt_modules=frozenset(over.pop("trace_exempt", ())),
        manifest_module=over.pop("manifest_module", "repro.sim.rules"),
    )
    assert not over, f"unknown overrides: {sorted(over)}"
    return analyze_modules(mods, config=config)


# ----------------------------------------------------------------------
# Rule catalogue sanity
# ----------------------------------------------------------------------
def test_flow_catalogue():
    assert set(FLOW_RULE_IDS) == set(FLOW_RULES)
    assert {"SS501", "SS502", "SS503", "SS510",
            "SS601", "SS602", "SS603"} <= set(FLOW_RULE_IDS)
    assert not (set(FLOW_RULE_IDS) & set(RULES)), \
        "flow and lint rule IDs must not collide"
    for rule in FLOW_RULES.values():
        assert rule.id and rule.summary and rule.hint
        assert rule.scope == "all"


# ----------------------------------------------------------------------
# Call-graph resolution over the on-disk fixture package
# ----------------------------------------------------------------------
def fixture_graph():
    files = sorted((FIXTURES / "registry").rglob("*.py"))
    mods = [extract_module(p) for p in files]
    return build_graph(mods, registry_resolvers={
        "repro.flowreg.registry.make_policy":
            "repro.flowreg.registry.register"})


def test_fixture_module_names_anchor_at_repro():
    graph, index = fixture_graph()
    assert "repro.flowreg.engine" in index.modules
    assert "repro.flowreg.registry" in index.modules


def test_string_table_registry_links_loader_to_backends():
    graph, index = fixture_graph()
    edges = graph.successors("repro.flowreg.registry.load")
    registry = {e.dst for e in edges if e.kind == "registry"}
    assert "repro.flowreg.impl.ImplA.__init__" in registry
    assert "repro.flowreg.impl.ImplB.__init__" in registry


def test_decorator_registry_links_resolver_to_registered_policy():
    graph, index = fixture_graph()
    edges = graph.successors("repro.flowreg.registry.make_policy")
    registry = {e.dst for e in edges if e.kind == "registry"}
    assert "repro.flowreg.impl.CarePolicy.__init__" in registry


def test_stored_bound_method_resolves():
    graph, index = fixture_graph()
    dsts = {e.dst for e in graph.successors("repro.flowreg.engine.Engine.run")}
    assert "repro.flowreg.engine.Engine._tick" in dsts


def test_scheduled_callback_becomes_a_root():
    graph, index = fixture_graph()
    assert "repro.flowreg.engine.on_event" in graph.sched_targets


def test_fixture_hot_closure():
    graph, index = fixture_graph()
    roots = {"repro.flowreg.engine.Engine.run"} | graph.sched_targets
    hot = graph.reachable(roots, domain=("repro.flowreg",))
    assert "repro.flowreg.engine.Engine._tick" in hot
    assert "repro.flowreg.engine.helper" in hot
    assert "repro.flowreg.engine.on_event" in hot
    assert "repro.flowreg.engine.setup" not in hot


def test_call_graph_exports():
    graph, index = fixture_graph()
    payload = graph.to_json()
    assert payload["schema"] == "repro.flow.call-graph/v1"
    names = {n["qualname"] for n in payload["nodes"]}
    assert "repro.flowreg.engine.Engine.run" in names
    dot = graph.to_dot()
    assert dot.startswith("digraph") and "Engine.run" in dot


# ----------------------------------------------------------------------
# Fault injection: one seeded bad edit per rule
# ----------------------------------------------------------------------
ENGINE = """
    class Engine:
        def run(self):  # hot: fixture root
            self.step()

        def step(self):  # hot: per event
            return 0
    """


def test_ss501_stale_manifest_entry_trips():
    rep = flow({"repro.sim.eng": ENGINE},
               hot_roots={"repro.sim.eng.Engine.run"},
               manifest={"repro.sim.eng.Engine.run",
                         "repro.sim.eng.Engine.step",
                         "repro.sim.eng.Engine.gone"})
    f = one(rep.findings, "SS501")
    assert "Engine.gone" in f.message


def test_ss501_stale_module_manifest_trips():
    rep = flow({"repro.sim.eng": ENGINE},
               hot_roots={"repro.sim.eng.Engine.run"},
               manifest={"repro.sim.eng.Engine.run",
                         "repro.sim.eng.Engine.step"},
               engine_modules={"repro.sim.vanished"})
    f = one(rep.findings, "SS501")
    assert "repro.sim.vanished" in f.message


def test_ss501_clean_manifest_passes():
    rep = flow({"repro.sim.eng": ENGINE},
               hot_roots={"repro.sim.eng.Engine.run"},
               manifest={"repro.sim.eng.Engine.run",
                         "repro.sim.eng.Engine.step"},
               engine_modules={"repro.sim.eng"})
    assert rep.findings == []


def test_ss502_unreachable_manifest_entry_trips():
    src = ENGINE + """
    class Dead:
        def walk(self):
            return 1
    """
    rep = flow({"repro.sim.eng": src},
               hot_roots={"repro.sim.eng.Engine.run"},
               manifest={"repro.sim.eng.Engine.run",
                         "repro.sim.eng.Engine.step",
                         "repro.sim.eng.Dead.walk"})
    f = one(rep.findings, "SS502")
    assert "Dead.walk" in f.message


def test_ss502_stale_hot_tag_trips():
    src = ENGINE + """
    def orphan():  # hot: nothing reaches this
        return 2
    """
    rep = flow({"repro.sim.eng": src},
               hot_roots={"repro.sim.eng.Engine.run"},
               manifest={"repro.sim.eng.Engine.run",
                         "repro.sim.eng.Engine.step"})
    f = one(rep.findings, "SS502")
    assert "orphan" in f.message


def test_ss503_reachable_untagged_trips_and_tag_clears_it():
    dirty = """
    class Engine:
        def run(self):  # hot: fixture root
            self.step()

        def step(self):
            return 0
    """
    rep = flow({"repro.sim.eng": dirty},
               hot_roots={"repro.sim.eng.Engine.run"},
               manifest={"repro.sim.eng.Engine.run"})
    f = one(rep.findings, "SS503")
    assert "Engine.step" in f.message
    rep = flow({"repro.sim.eng": ENGINE},
               hot_roots={"repro.sim.eng.Engine.run"},
               manifest={"repro.sim.eng.Engine.run",
                         "repro.sim.eng.Engine.step"})
    none(rep.findings, "SS503")


def test_ss510_tainted_helper_call_trips():
    helper = """
    import time

    def stamp():
        return time.time()
    """
    sim = """
    from repro.util.clockish import stamp

    class Cache:
        def access(self, addr):
            return stamp()
    """
    rep = flow({"repro.util.clockish": helper, "repro.sim.cache": sim})
    f = one(rep.findings, "SS510")
    assert "stamp" in f.message and "clock" in f.message
    assert f.path.endswith("repro/sim/cache.py")


def test_ss510_sanitizer_cuts_taint():
    helper = """
    import os

    def from_env():
        return os.environ.get("REPRO_X", "")
    """
    sim = """
    from repro.util.envish import from_env

    class Cache:
        def access(self, addr):
            return from_env()
    """
    rep = flow({"repro.util.envish": helper, "repro.sim.cache": sim},
               sanitizers={"repro.util.envish.from_env"})
    none(rep.findings, "SS510")


def test_ss510_direct_env_read_in_sim_trips():
    sim = """
    import os

    class Cache:
        def access(self, addr):
            return os.environ.get("REPRO_X")
    """
    rep = flow({"repro.sim.cache": sim})
    f = one(rep.findings, "SS510")
    assert "nondeterminism source" in f.message


def test_ss601_worker_global_write_trips_and_suppression_clears():
    dirty = """
    _CACHE = None

    def worker_main(task):
        global _CACHE
        _CACHE = task
        return _CACHE
    """
    rep = flow({"repro.harness.pool": dirty},
               worker_roots={"repro.harness.pool.worker_main"})
    f = one(rep.findings, "SS601")
    assert "_CACHE" in f.message
    clean = """
    _CACHE = None

    def worker_main(task):
        global _CACHE
        _CACHE = task  # simsan: skip=SS601
        return _CACHE
    """
    rep = flow({"repro.harness.pool": clean},
               worker_roots={"repro.harness.pool.worker_main"})
    none(rep.findings, "SS601")
    assert ("repro/harness/pool.py", 6, "SS601") in rep.used_suppressions


def test_ss601_mutating_call_on_module_global_trips():
    dirty = """
    _SEEN = []

    def worker_main(task):
        _SEEN.append(task)
        return len(_SEEN)
    """
    rep = flow({"repro.harness.pool": dirty},
               worker_roots={"repro.harness.pool.worker_main"})
    f = one(rep.findings, "SS601")
    assert "_SEEN" in f.message


def test_ss602_raw_env_read_trips_and_env_api_exempts():
    dirty = """
    import os

    def worker_main(task):
        return os.environ.get("REPRO_SCALE")
    """
    rep = flow({"repro.harness.pool": dirty},
               worker_roots={"repro.harness.pool.worker_main"})
    f = one(rep.findings, "SS602")
    assert "environ" in f.message
    rep = flow({"repro.harness.pool": dirty},
               worker_roots={"repro.harness.pool.worker_main"},
               env_api={"repro.harness.pool.worker_main"})
    none(rep.findings, "SS602")


def test_ss603_import_time_env_capture_trips():
    dirty = """
    import os

    def load_conf():
        return os.environ.get("REPRO_MODE", "fast")

    MODE = load_conf()
    """
    rep = flow({"repro.harness.conf": dirty})
    f = one(rep.findings, "SS603")
    assert "load_conf" in f.message and "env" in f.message


def test_ss603_main_guard_and_closure_factory_pass():
    clean = """
    import os

    def load_conf():
        return os.environ.get("REPRO_MODE", "fast")

    def make_reader():
        def read():
            return load_conf()
        return read

    READER = make_reader()

    if __name__ == "__main__":
        print(load_conf())
    """
    rep = flow({"repro.harness.conf": clean})
    none(rep.findings, "SS603")


# ----------------------------------------------------------------------
# SS303 unused-suppression audit (lint side, flow-aware)
# ----------------------------------------------------------------------
def test_ss303_unused_suppression_flagged():
    res = lint_source_detailed(textwrap.dedent("""
        def add(a, b):
            return a + b   # simsan: skip=SS301
        """), module="repro.sim.fake")
    f = one(audit_suppressions([res]), "SS303")
    assert "SS301" in f.message and "suppresses nothing" in f.message


def test_ss303_used_suppression_not_flagged():
    res = lint_source_detailed(textwrap.dedent("""
        def merge(dst, extras=[]):   # simsan: skip=SS301
            dst.extend(extras)
        """), module="repro.sim.fake")
    assert res.findings == []
    assert audit_suppressions([res]) == []


def test_ss303_unknown_rule_id_always_flagged():
    res = lint_source_detailed(textwrap.dedent("""
        def add(a, b):
            return a + b   # simsan: skip=SS999
        """), module="repro.sim.fake")
    f = one(audit_suppressions([res]), "SS303")
    assert "unknown rule ID" in f.message


def test_ss303_flow_ids_exempt_unless_flow_ran():
    res = lint_source_detailed(textwrap.dedent("""
        def add(a, b):
            return a + b   # simsan: skip=SS601
        """), module="repro.sim.fake")
    assert audit_suppressions([res], flow_ran=False) == []
    one(audit_suppressions([res], flow_ran=True), "SS303")


def test_ss303_flow_used_suppressions_credited():
    res = lint_source_detailed(textwrap.dedent("""
        def add(a, b):
            return a + b   # simsan: skip=SS601
        """), module="repro.sim.fake", path="repro/sim/fake.py")
    used = {("repro/sim/fake.py", 3, "SS601")}
    assert audit_suppressions([res], flow_used=used, flow_ran=True) == []


def test_ss303_skip_file_exempt():
    res = lint_source_detailed(textwrap.dedent("""
        # simsan: skip-file
        def add(a, b):
            return a + b   # simsan: skip=SS301
        """), module="repro.sim.fake")
    assert audit_suppressions([res]) == []


# ----------------------------------------------------------------------
# Acceptance: the real tree is clean and the manifest is exact
# ----------------------------------------------------------------------
def test_repo_tree_is_flow_clean():
    rep = run_flow([REPO_SRC])
    assert rep.findings == [], [str(f) for f in rep.findings]


def test_repo_hot_manifest_matches_derived_closure():
    from repro.checks.lint.rules import HOT_PATH_MANIFEST
    rep = run_flow([REPO_SRC])
    dunderless = {q for q in rep.hot_derived
                  if not rep.index.functions[q].is_dunder}
    tagged_only = {q for q in dunderless
                   if q not in HOT_PATH_MANIFEST
                   and rep.index.functions[q].hot_tagged}
    # every derived-hot function is either tagged in-file or listed
    assert dunderless <= (set(HOT_PATH_MANIFEST) | tagged_only)


def test_repo_suppressions_all_used():
    rep = run_flow([REPO_SRC])
    from repro.checks.lint import run_lint_detailed
    results = run_lint_detailed([REPO_SRC])
    assert audit_suppressions(results, flow_used=rep.used_suppressions,
                              flow_ran=True) == []
