"""Cache model: hits, misses, merging, back-pressure, writebacks, fills."""

import pytest

from repro.policies.lru import LRUPolicy
from repro.sim import AccessType, Cache, CacheConfig, DRAMConfig, Engine, MemRequest
from repro.sim.dram import DRAM


def make_cache(sets=4, ways=2, latency=2, mshr=2, engine=None, lower=None):
    eng = engine or Engine()
    cfg = CacheConfig("C", sets, ways, latency, mshr)
    cache = Cache(cfg, eng, LRUPolicy(sets, ways), lower=lower)
    return eng, cache


class _PerfectLower:
    """A lower level that answers every request after a fixed delay."""

    name = "MEM"

    def __init__(self, engine, delay=10):
        self.engine = engine
        self.delay = delay
        self.requests = []

    def access(self, req):
        self.requests.append(req)
        if req.rtype != AccessType.WRITEBACK:
            self.engine.at(self.engine.now + self.delay, req.respond,
                           self.engine.now + self.delay, self.name)


def _load(addr, core=0, pc=0x40, rtype=AccessType.LOAD, cb=None):
    return MemRequest(addr=addr, pc=pc, core=core, rtype=rtype, callback=cb)


def test_miss_then_hit_latency():
    eng = Engine()
    lower = _PerfectLower(eng, delay=10)
    _, cache = make_cache(engine=eng, lower=lower)
    done = []
    cache.access(_load(0x1000, cb=lambda r, t: done.append(t)))
    eng.run()
    # miss: base(2) + lower(10) = fill at 12
    assert done == [12]
    cache.access(_load(0x1000, cb=lambda r, t: done.append(t)))
    eng.run()
    assert done[-1] == 12 + 2  # hit costs one base latency
    assert cache.stats.demand_hits == 1
    assert cache.stats.demand_misses == 1


def test_mshr_merge_single_lower_request():
    eng = Engine()
    lower = _PerfectLower(eng, delay=20)
    _, cache = make_cache(engine=eng, lower=lower)
    done = []
    cache.access(_load(0x2000, cb=lambda r, t: done.append(("a", t))))
    cache.access(_load(0x2008, cb=lambda r, t: done.append(("b", t))))  # same block
    eng.run()
    assert len(lower.requests) == 1
    assert len(done) == 2
    assert cache.stats.mshr_merges == 1


def test_mshr_backpressure_queues_requests():
    eng = Engine()
    lower = _PerfectLower(eng, delay=50)
    _, cache = make_cache(engine=eng, lower=lower, mshr=2)
    done = []
    for i in range(4):   # 4 distinct blocks, MSHR holds 2
        cache.access(_load(0x4000 + i * 64, cb=lambda r, t: done.append(t)))
    eng.run()
    assert len(done) == 4
    assert cache.stats.mshr_stalls == 2
    assert cache.mshr.peak_occupancy == 2


def test_secondary_miss_merges_even_when_mshr_full():
    eng = Engine()
    lower = _PerfectLower(eng, delay=50)
    _, cache = make_cache(engine=eng, lower=lower, mshr=1)
    done = []
    cache.access(_load(0x0, cb=lambda r, t: done.append("first")))
    cache.access(_load(0x8, cb=lambda r, t: done.append("merged")))
    eng.run()
    assert sorted(done) == ["first", "merged"]
    assert cache.stats.mshr_merges == 1
    assert cache.stats.mshr_stalls == 0


def test_queued_request_late_hit():
    """A queued miss whose block arrives by other means becomes a late hit."""
    eng = Engine()
    lower = _PerfectLower(eng, delay=50)
    _, cache = make_cache(engine=eng, lower=lower, mshr=1)
    done = []
    cache.access(_load(0x0, cb=lambda r, t: done.append("first")))
    cache.access(_load(0x40, cb=lambda r, t: done.append("queued")))  # waits
    # A writeback to the queued block installs it without an MSHR entry.
    cache.access(_load(0x40, rtype=AccessType.WRITEBACK))
    eng.run()
    assert sorted(done) == ["first", "queued"]
    assert cache.stats.late_hits == 1


def test_writeback_allocates_without_fetch():
    eng = Engine()
    lower = _PerfectLower(eng)
    _, cache = make_cache(engine=eng, lower=lower)
    cache.access(_load(0x3000, rtype=AccessType.WRITEBACK))
    eng.run()
    assert lower.requests == []          # no fetch for a writeback miss
    assert cache.probe(0x3000)
    block = cache.blocks_in_set(cache.set_index(0x3000 >> 6))[0]
    assert block.dirty


def test_dirty_eviction_emits_writeback():
    eng = Engine()
    lower = _PerfectLower(eng)
    _, cache = make_cache(sets=1, ways=1, engine=eng, lower=lower)
    cache.access(_load(0x0, rtype=AccessType.RFO))   # dirty fill
    eng.run()
    cache.access(_load(0x40))                        # evicts dirty block
    eng.run()
    wbs = [r for r in lower.requests if r.rtype == AccessType.WRITEBACK]
    assert len(wbs) == 1
    assert wbs[0].block == 0
    assert cache.stats.writebacks_out == 1


def test_rfo_hit_marks_dirty():
    eng = Engine()
    lower = _PerfectLower(eng)
    _, cache = make_cache(engine=eng, lower=lower)
    cache.access(_load(0x100))
    eng.run()
    cache.access(_load(0x100, rtype=AccessType.RFO))
    eng.run()
    set_idx = cache.set_index(0x100 >> 6)
    blk = next(b for b in cache.blocks_in_set(set_idx) if b.valid)
    assert blk.dirty


def test_demand_hit_clears_prefetch_bit():
    eng = Engine()
    lower = _PerfectLower(eng)
    _, cache = make_cache(engine=eng, lower=lower)
    cache.access(_load(0x200, rtype=AccessType.PREFETCH))
    eng.run()
    set_idx = cache.set_index(0x200 >> 6)
    blk = next(b for b in cache.blocks_in_set(set_idx) if b.valid)
    assert blk.prefetch
    cache.access(_load(0x200))
    eng.run()
    assert not blk.prefetch
    assert cache.stats.prefetch_useful == 1


def test_no_duplicate_tags_invariant(small_trace):
    eng = Engine()
    lower = _PerfectLower(eng, delay=7)
    _, cache = make_cache(sets=8, ways=4, engine=eng, lower=lower, mshr=8)
    for rec in small_trace.records[:600]:
        cache.access(_load(rec.addr))
        eng.run()
    cache.assert_no_duplicates()
    assert cache.valid_blocks() <= 8 * 4


def test_block_addr_roundtrip():
    _, cache = make_cache(sets=8, ways=2)
    for addr in (0x0, 0x40, 0x1280, 0xFFFC0):
        block = addr >> 6
        set_idx = cache.set_index(block)
        tag = cache.tag_of(block)
        assert cache.block_addr(set_idx, tag) == (block << 6)
