"""Event-tracer tests: Chrome-trace validity, lifecycle nesting, sampling.

The tracer's contract has three parts: (1) its output is valid Chrome
Trace Event Format, (2) spans nest the way the memory hierarchy does
(core contains L1, deeper levels sit inside their parent's miss window),
and (3) it never perturbs results (covered by the observers-attached
golden test; re-asserted cheaply here).
"""

import json

import pytest

from tests.conftest import build_trace
from repro.obs import ChromeTracer, ObsConfig
from repro.sim import SystemConfig
from repro.sim.request import MemRequest
from repro.sim.system import System


def _run_traced(n_cores=1, sample=1, limit=None, n=1200, policy="lru"):
    cfg = SystemConfig.tiny(n_cores)
    traces = [build_trace(n=n, seed=s, name=f"t{s}").records
              for s in range(n_cores)]
    kw = {"trace": True, "trace_sample": sample}
    if limit is not None:
        kw["trace_limit"] = limit
    system = System(cfg, traces, llc_policy=policy, seed=3,
                    measure_records=n // 2, warmup_records=n // 2,
                    obs=ObsConfig(**kw))
    result = system.run()
    return system, result


def _level(tid):
    """Hierarchy depth of a span's component: core=0 ... DRAM=4."""
    if tid.startswith("core"):
        return 0
    if tid.startswith("L1"):
        return 1
    if tid.startswith("L2"):
        return 2
    return 3 if tid == "LLC" else 4


def test_trace_is_valid_chrome_format(tmp_path):
    system, _ = _run_traced()
    payload = system.tracer.to_dict()
    # Round-trips through JSON (what chrome://tracing / Perfetto load).
    blob = json.dumps(payload)
    parsed = json.loads(blob)
    assert isinstance(parsed["traceEvents"], list)
    assert parsed["otherData"]["clock"] == "cycles"
    for event in parsed["traceEvents"]:
        assert event["ph"] in ("X", "i", "M")
        assert isinstance(event["pid"], int)
        if event["ph"] == "X":
            assert isinstance(event["ts"], int)
            assert isinstance(event["dur"], int)
            assert event["dur"] >= 0
            assert event["name"] in ("LOAD", "RFO", "PREFETCH", "WRITEBACK")
        if event["ph"] == "i":
            assert event["name"] in ("mshr-merge", "mshr-stall", "fill",
                                     "evict")
    # File writer emits the same payload.
    path = system.tracer.write(tmp_path / "out.trace.json")
    assert json.loads(path.read_text()) == parsed


def test_span_nesting_matches_request_lifecycle():
    system, _ = _run_traced(n=1500)
    spans = [e for e in system.tracer.events if e["ph"] == "X"]
    assert spans, "traced run produced no spans"

    # A request keeps its id from dispatch through L1, so the core span
    # must contain the L1 span with the same request id.
    by_req = {}
    for event in spans:
        by_req.setdefault(event["args"]["req"], {})[
            _level(event["tid"])] = event
    core_l1_pairs = 0
    for levels in by_req.values():
        if 0 in levels and 1 in levels:
            core, l1 = levels[0], levels[1]
            assert core["ts"] <= l1["ts"]
            assert core["ts"] + core["dur"] >= l1["ts"] + l1["dur"]
            core_l1_pairs += 1
    assert core_l1_pairs > 0

    # Miss propagation mints a child request per level, so deeper spans
    # link to their parent by (pid, block): every L2/LLC/DRAM span must
    # sit inside a parent-level span for the same block.  The parent may
    # still be *open* (DRAM emits its span at access time with a future
    # end, so a request in flight at engine stop has a DRAM span while
    # the levels above never saw their fill) — an open parent that
    # started no later than the child also counts as containment.
    by_level_block = {}
    for event in spans:
        key = (_level(event["tid"]), event["pid"], event["args"]["block"])
        by_level_block.setdefault(key, []).append(event)
    open_starts = {}
    for (_req_id, tid), start in system.tracer._open.items():
        open_starts.setdefault(tid, []).append(start)

    def parent_tid(level, pid):
        return {2: f"L1D{pid}", 3: f"L2{pid}", 4: "LLC"}[level]

    deep = 0
    for event in spans:
        level = _level(event["tid"])
        if level < 2:
            continue
        parents = by_level_block.get(
            (level - 1, event["pid"], event["args"]["block"]), [])
        end = event["ts"] + event["dur"]
        closed_parent = any(
            p["ts"] <= event["ts"] and p["ts"] + p["dur"] >= end
            for p in parents)
        open_parent = any(
            start <= event["ts"]
            for start in open_starts.get(parent_tid(level, event["pid"]), []))
        assert closed_parent or open_parent, (
            f"span {event} has no containing parent-level span")
        deep += 1
    assert deep > 0, "no deeper-than-L1 spans to check nesting on"


def test_counter_sampling_is_deterministic_and_rate_correct():
    system, _ = _run_traced(sample=3)
    tracer = system.tracer
    assert tracer.considered > 0
    # take() marks indices 0, 3, 6, ... of the demand stream.
    assert tracer.sampled == (tracer.considered + 2) // 3
    # Same spec, same trace: the selection is a pure counter, no RNG.
    # (req ids come from a process-global counter, so compare the
    # events with them stripped.)
    system2, _ = _run_traced(sample=3)
    assert system2.tracer.considered == tracer.considered
    assert system2.tracer.sampled == tracer.sampled

    def stripped(events):
        return [{k: ({a: b for a, b in v.items() if a != "req"}
                     if k == "args" else v)
                 for k, v in e.items()} for e in events]

    assert stripped(system2.tracer.events) == stripped(tracer.events)


def test_trace_limit_bounds_output():
    system, _ = _run_traced(limit=50)
    tracer = system.tracer
    assert len(tracer.events) == 50
    assert tracer.dropped > 0
    assert tracer.to_dict()["otherData"]["dropped_events"] == tracer.dropped


def test_tracer_off_means_no_hooks():
    cfg = SystemConfig.tiny(1)
    traces = [build_trace(n=400).records]
    system = System(cfg, traces, llc_policy="lru", seed=3,
                    measure_records=200, warmup_records=200)
    system.run()
    assert system.tracer is None
    assert system.llc.tracer is None
    assert system.cores[0].tracer is None
    # The hot-path guard slot defaults off for every request.
    assert MemRequest(0x40, 0x100, 0, 0, 0, lambda r, t: None).trace is False


def test_tracer_rejects_bad_parameters():
    with pytest.raises(ValueError):
        ChromeTracer(sample_rate=0)
    with pytest.raises(ValueError):
        ChromeTracer(limit=0)
    with pytest.raises(ValueError):
        ObsConfig(trace=True, trace_sample=0)
