"""Property-based invariants (hypothesis) across the core data structures."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dtrm import DTRM
from repro.core.sht import SignatureHistoryTable
from repro.harness import simulate_cache
from repro.policies.base import PolicyAccess
from repro.policies.registry import available_policies, make_policy
from repro.sim.request import AccessType

TIMING_FREE_POLICIES = [p for p in available_policies() if p != "opt"]


@st.composite
def address_streams(draw):
    n = draw(st.integers(50, 400))
    blocks = draw(st.integers(4, 128))
    seed = draw(st.integers(0, 2 ** 16))
    r = random.Random(seed)
    return [(r.randrange(16), r.randrange(blocks) * 64) for _ in range(n)]


@settings(max_examples=30, deadline=None)
@given(address_streams(), st.sampled_from(TIMING_FREE_POLICIES))
def test_any_policy_conserves_accesses(stream, policy):
    """hits + misses == accesses, and eviction count is consistent."""
    res = simulate_cache(stream, sets=4, ways=2, policy=policy, seed=1)
    assert res.hits + res.misses == len(stream)
    # every miss either filled an invalid way or evicted
    assert res.evictions <= res.misses
    assert res.misses - res.evictions <= 4 * 2


@settings(max_examples=30, deadline=None)
@given(address_streams())
def test_opt_dominates_every_policy(stream):
    """Belady's bound: no policy can beat OPT on hits."""
    opt = simulate_cache(stream, sets=2, ways=2, policy="opt")
    for policy in ("lru", "fifo", "random", "srrip", "lfu", "ship"):
        other = simulate_cache(stream, sets=2, ways=2, policy=policy, seed=2)
        assert opt.hits >= other.hits, policy


@settings(max_examples=30, deadline=None)
@given(address_streams())
def test_larger_cache_never_hurts_lru(stream):
    """LRU has the inclusion property: more ways -> no fewer hits."""
    small = simulate_cache(stream, sets=2, ways=2, policy="lru")
    big = simulate_cache(stream, sets=2, ways=4, policy="lru")
    assert big.hits >= small.hits


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=5000,
                          allow_nan=False), min_size=0, max_size=400))
def test_dtrm_invariants_hold_for_any_pmc_stream(pmcs):
    d = DTRM(period=37)
    for v in pmcs:
        s = d.observe(v)
        assert s in (DTRM.PMCS_CHEAP, DTRM.PMCS_MID, DTRM.PMCS_COSTLY)
        assert d.low >= d.cfg.min_low
        assert d.high >= d.low + d.cfg.min_gap
    assert d.total_misses == len(pmcs)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 200), st.booleans(),
                          st.booleans()), max_size=300))
def test_sht_counters_stay_in_range(ops):
    sht = SignatureHistoryTable(entries=32)
    for sig, which, up in ops:
        if which:
            (sht.rc_increment if up else sht.rc_decrement)(sig)
        else:
            (sht.pd_increment if up else sht.pd_decrement)(sig)
        assert 0 <= sht.rc(sig) <= sht.max_value
        assert 0 <= sht.pd(sig) <= sht.max_value


@settings(max_examples=25, deadline=None)
@given(address_streams(), st.sampled_from(["care", "mcare", "shippp",
                                           "hawkeye", "glider",
                                           "mockingjay", "sbar"]))
def test_advanced_policies_return_valid_victims(stream, policy):
    """Drive the policy API directly with adversarial inputs."""
    pol = make_policy(policy, sets=2, ways=2, seed=3)
    blocks = [None, None]
    r = random.Random(9)
    for pc, addr in stream:
        access = PolicyAccess(
            pc=pc, addr=addr, core=0,
            rtype=r.choice([AccessType.LOAD, AccessType.RFO,
                            AccessType.PREFETCH, AccessType.WRITEBACK]),
            prefetch=r.random() < 0.3,
            pmc=r.random() * 500, mlp_cost=r.random() * 500)
        set_idx = (addr >> 6) & 1
        kind = r.randrange(3)
        if kind == 0:
            way = pol.find_victim(set_idx, blocks, access)
            assert 0 <= way < 2
            pol.on_evict(set_idx, way, blocks, access)
            pol.on_fill(set_idx, way, blocks, access)
        elif kind == 1:
            pol.on_hit(set_idx, r.randrange(2), blocks, access)
        else:
            pol.on_fill(set_idx, r.randrange(2), blocks, access)


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 64), st.integers(1, 16))
def test_monitor_pmc_conservation(n_misses, base_latency):
    """Σ PMC over completed misses == total active pure miss cycles."""
    from repro.core.pmc import ConcurrencyMonitor
    from repro.sim import Engine, MemRequest
    from repro.sim.mshr import MSHREntry

    eng = Engine()
    mon = ConcurrencyMonitor(eng, 1, base_latency)
    rng = random.Random(n_misses * 31 + base_latency)
    entries = []
    for i in range(n_misses):
        start = rng.randrange(1, 100)
        dur = rng.randrange(1, 40)
        reqm = MemRequest(addr=i * 64, pc=i, core=0, rtype=AccessType.LOAD)
        e = MSHREntry(block=i, primary=reqm,
                      issue_time=start + base_latency, core=0)
        entries.append(e)
        eng.at(start, lambda t=start: mon.on_access(0, t))
        eng.at(start + base_latency,
               lambda e=e, t=start + base_latency: mon.on_miss_start(0, t, e))
        end = start + base_latency + dur
        eng.at(end, lambda e=e, t=end: mon.on_miss_end(0, t, e))
    eng.run()
    mon.finalize()
    stats = mon.core_stats(0)
    total_pmc = sum(e.pmc for e in entries)
    assert abs(total_pmc - stats.pure_miss_cycles) < 1e-6
