"""Runtime sanitizer: every invariant proven by fault injection.

Each test runs a tiny system partway, corrupts one internal structure the
way a real bug would (a stale tag-index entry, a leaked MSHR entry, a
dropped waiter, skewed PMC accounting, an event scheduled in the past, an
inclusion hole), then runs a full sanitizer sweep and asserts the *right*
invariant trips — ``SanitizerError.rule`` carries the ID.  A healthy
mid-flight system must sweep clean, and a sanitized end-to-end run must
produce a byte-identical result to an unsanitized one (the sanitizer
observes, never perturbs).
"""

from dataclasses import replace
from heapq import heappush

import pytest

from repro.checks.sanitize import (ALL_INVARIANTS, SAN_INCL, SAN_MSHR,
                                   SAN_PMC, SAN_TAG, SAN_TIME, SAN_WAITER,
                                   Sanitizer, SanitizerError,
                                   attach_sanitizer, sanitize_enabled,
                                   sanitize_interval)
from repro.sim import SystemConfig
from repro.sim.backends import build_system
from repro.sim.mshr import MSHREntry
from repro.sim.request import AccessType, MemRequest


@pytest.fixture(params=["classic", "batched"])
def engine_name(request):
    """Every fault-injection scenario must trip on every backend."""
    return request.param


def partial_system(small_trace, engine="classic", inclusive=False,
                   max_events=4000):
    """A system stopped mid-flight with real traffic in every structure."""
    cfg = SystemConfig.tiny(1)
    if inclusive:
        cfg = replace(cfg, llc_inclusive=True)
    system = build_system(cfg, [small_trace.records], engine=engine,
                          llc_policy="lru", warmup_records=0)
    for core in system.cores:
        core.start()
    system.engine.run(max_events=max_events)
    assert system.engine.events_processed == max_events
    return system


def expect_trip(system, rule):
    san = Sanitizer(system)
    with pytest.raises(SanitizerError) as exc_info:
        san.check()
    assert exc_info.value.rule == rule, str(exc_info.value)


# ----------------------------------------------------------------------
# Baseline: a healthy mid-flight system sweeps clean
# ----------------------------------------------------------------------
def test_healthy_system_passes_all_invariants(small_trace, engine_name):
    system = partial_system(small_trace, engine_name)
    san = Sanitizer(system)
    san.check()
    assert san.checks_run == 1
    assert len(ALL_INVARIANTS) >= 4


# ----------------------------------------------------------------------
# SAN-TIME — event-time monotonicity
# ----------------------------------------------------------------------
def _schedule_in_the_past(engine):
    """Inject an event before ``now`` into whichever queue the engine has."""
    t = engine.now - 1
    if hasattr(engine, "_buckets"):     # calendar queue (batched)
        engine._buckets.setdefault(t, []).append((lambda: None, ()))
        heappush(engine._times, t)
    else:                               # classic heap
        heappush(engine._heap,  # simsan: skip=SS204 (deliberate fault injection)
                 (t, -1, lambda: None, ()))


def test_event_scheduled_in_the_past_trips_san_time(small_trace, engine_name):
    system = partial_system(small_trace, engine_name)
    engine = system.engine
    assert engine.now > 1
    _schedule_in_the_past(engine)
    expect_trip(system, SAN_TIME)


def test_backwards_engine_time_trips_san_time(small_trace, engine_name):
    system = partial_system(small_trace, engine_name)
    san = Sanitizer(system)
    san.check()                      # records _last_now
    system.engine.now -= 2           # a bug rewinds the clock
    with pytest.raises(SanitizerError) as exc_info:
        san.check()
    assert exc_info.value.rule == SAN_TIME


# ----------------------------------------------------------------------
# SAN-TAG — tag-index / linear-scan agreement
# ----------------------------------------------------------------------
def _populated_set(cache):
    for set_idx, count in enumerate(cache._valid_count):
        if count:
            return set_idx
    pytest.fail(f"{cache.name} has no valid blocks after the partial run")


def test_corrupt_tag_index_mapping_trips_san_tag(small_trace, engine_name):
    system = partial_system(small_trace, engine_name)
    llc = system.llc
    set_idx = _populated_set(llc)
    tag, way = next(iter(llc._tag2way[set_idx].items()))
    llc._tag2way[set_idx][tag] = (way + 1) % llc._ways   # stale way pointer
    expect_trip(system, SAN_TAG)


def test_corrupt_valid_count_trips_san_tag(small_trace, engine_name):
    system = partial_system(small_trace, engine_name)
    llc = system.llc
    set_idx = _populated_set(llc)
    llc._valid_count[set_idx] += 1
    expect_trip(system, SAN_TAG)


# ----------------------------------------------------------------------
# SAN-MSHR — leak detection
# ----------------------------------------------------------------------
def _fake_entry(system, issue_time, block=0x7FFF00):
    req = MemRequest(addr=block << 6, pc=0x4, core=0,
                     rtype=AccessType.LOAD, created=issue_time)
    return MSHREntry(block, req, issue_time, core=0)


def test_leaked_mshr_entry_trips_san_mshr(small_trace, engine_name):
    system = partial_system(small_trace, engine_name)
    now = system.engine.now
    san = Sanitizer(system)
    stale = _fake_entry(system, issue_time=now - san.mshr_age_limit - 1)
    system.llc.mshr._entries[stale.block] = stale
    with pytest.raises(SanitizerError) as exc_info:
        san.check()
    assert exc_info.value.rule == SAN_MSHR
    assert "leak" in str(exc_info.value)


def test_misfiled_mshr_entry_trips_san_mshr(small_trace, engine_name):
    system = partial_system(small_trace, engine_name)
    entry = _fake_entry(system, issue_time=system.engine.now)
    system.llc.mshr._entries[entry.block + 1] = entry   # wrong key
    expect_trip(system, SAN_MSHR)


# ----------------------------------------------------------------------
# SAN-WAITER — lost / foreign / double-responded waiters
# ----------------------------------------------------------------------
def test_lost_waiters_trip_san_waiter(small_trace, engine_name):
    system = partial_system(small_trace, engine_name)
    entry = _fake_entry(system, issue_time=system.engine.now)
    system.llc.mshr._entries[entry.block] = entry
    entry.waiters.clear()            # fill path dropped everyone
    expect_trip(system, SAN_WAITER)


def test_double_responded_waiter_trips_san_waiter(small_trace, engine_name):
    system = partial_system(small_trace, engine_name)
    entry = _fake_entry(system, issue_time=system.engine.now)
    system.llc.mshr._entries[entry.block] = entry
    entry.waiters[0].completed = system.engine.now - 1   # already answered
    expect_trip(system, SAN_WAITER)


# ----------------------------------------------------------------------
# SAN-PMC — per-core cycle conservation
# ----------------------------------------------------------------------
def test_overaccounted_pure_miss_cycles_trip_san_pmc(small_trace, engine_name):
    system = partial_system(small_trace, engine_name)
    mon = system.monitor._cores[0]
    mon.stats.pure_miss_cycles = float(system.engine.now + 10_000)
    expect_trip(system, SAN_PMC)


def test_histogram_mass_mismatch_trips_san_pmc(small_trace, engine_name):
    system = partial_system(small_trace, engine_name)
    mon = system.monitor._cores[0]
    assert mon.stats.misses > 0
    mon.stats.misses += 3            # misses counted but never binned
    expect_trip(system, SAN_PMC)


# ----------------------------------------------------------------------
# SAN-INCL — inclusion holes
# ----------------------------------------------------------------------
def _raw_install(cache, set_idx, tag):
    """Hand-install ``(set_idx, tag)`` with the tag index and valid count
    kept consistent, whatever the cache's storage layout."""
    soa = getattr(cache, "soa", None)
    if soa is not None:                 # batched: flat SoA arrays
        base = set_idx * cache._ways
        way = next(w for w in range(cache._ways)
                   if not soa.valid.item(base + w)
                   or soa.tag.item(base + w) != tag)
        if soa.valid.item(base + way):
            del cache._tag2way[set_idx][int(soa.tag.item(base + way))]
        else:
            cache._valid_count[set_idx] += 1
        soa.valid[base + way] = 1
        soa.tag[base + way] = tag
    else:                               # classic: CacheBlock objects
        way = next(w for w, blk in enumerate(cache._sets[set_idx])
                   if not blk.valid or blk.tag != tag)
        blk = cache._sets[set_idx][way]
        if blk.valid:
            del cache._tag2way[set_idx][blk.tag]
        else:
            cache._valid_count[set_idx] += 1
        blk.valid, blk.tag = True, tag
    cache._tag2way[set_idx][tag] = way


def test_inclusion_hole_trips_san_incl(small_trace, engine_name):
    system = partial_system(small_trace, engine_name, inclusive=True)
    l1 = system.l1s[0]
    # Hand-install a block in L1 that the LLC has never seen, updating the
    # tag index and valid count consistently so only inclusion is violated.
    set_idx, tag = 0, 0x7FFFFFF
    _raw_install(l1, set_idx, tag)
    assert not system.llc.probe(l1.block_addr(set_idx, tag))
    expect_trip(system, SAN_INCL)


# ----------------------------------------------------------------------
# Watcher integration — corruption detected mid-run, not only at the end
# ----------------------------------------------------------------------
def test_installed_watcher_detects_mid_run_corruption(small_trace, engine_name):
    cfg = SystemConfig.tiny(1)
    system = build_system(cfg, [small_trace.records], engine=engine_name,
                          llc_policy="lru", warmup_records=0)
    san = attach_sanitizer(system, interval=256)
    for core in system.cores:
        core.start()
    engine = system.engine

    def corrupt():
        # Off-by-one valid count: detectable even on a still-cold set.
        system.llc._valid_count[0] += 1

    engine.at(engine.now + 50, corrupt)
    with pytest.raises(SanitizerError) as exc_info:
        engine.run()
    assert exc_info.value.rule == SAN_TAG
    assert san.checks_run >= 0
    san.uninstall()
    assert engine.watcher is None


def test_double_install_refused(small_trace):
    system = partial_system(small_trace)
    first = Sanitizer(system).install()
    with pytest.raises(RuntimeError):
        Sanitizer(system).install()
    first.uninstall()


# ----------------------------------------------------------------------
# Observer purity — sanitized and plain runs are byte-identical
# ----------------------------------------------------------------------
def test_sanitized_run_is_byte_identical(small_trace, engine_name):
    cfg = SystemConfig.tiny(1)
    plain = build_system(cfg, [small_trace.records], engine=engine_name,
                         llc_policy="lru", warmup_records=0,
                         sanitize=False).run()
    sanitized_system = build_system(cfg, [small_trace.records],
                                    engine=engine_name, llc_policy="lru",
                                    warmup_records=0, sanitize=True)
    sanitized = sanitized_system.run()
    assert sanitized_system.sanitizer is not None
    assert sanitized_system.sanitizer.checks_run > 0
    assert sanitized.to_json() == plain.to_json()
    # run() uninstalls on the way out, enabled or not
    assert sanitized_system.engine.watcher is None


def test_env_switches(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    monkeypatch.delenv("REPRO_SANITIZE_INTERVAL", raising=False)
    assert not sanitize_enabled()
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert sanitize_enabled()
    monkeypatch.setenv("REPRO_SANITIZE_INTERVAL", "128")
    assert sanitize_interval() == 128
    monkeypatch.setenv("REPRO_SANITIZE_INTERVAL", "bogus")
    assert sanitize_interval() == 4096
