"""System configuration presets and validation (Table VII)."""

import pytest

from repro.sim import CacheConfig, DRAMConfig, SystemConfig


def test_paper_config_matches_table7():
    cfg = SystemConfig.paper(1)
    assert cfg.l1.size_kb == 32 and cfg.l1.ways == 8 and cfg.l1.latency == 4
    assert cfg.l1.mshr_entries == 8
    assert cfg.l2.size_kb == 256 and cfg.l2.ways == 8 and cfg.l2.latency == 10
    assert cfg.l2.mshr_entries == 32
    llc = cfg.llc
    assert llc.size_kb == 2048 and llc.ways == 16 and llc.latency == 20
    assert llc.mshr_entries == 64
    assert cfg.core.issue_width == 8 and cfg.core.rob_entries == 256


def test_paper_llc_scales_with_cores():
    for cores in (1, 4, 8, 16):
        cfg = SystemConfig.paper(cores)
        assert cfg.llc.size_kb == 2048 * cores  # 2MB per core
    assert SystemConfig.paper(1).dram.channels == 1
    assert SystemConfig.paper(4).dram.channels == 2


def test_default_preserves_shape():
    cfg = SystemConfig.default(4)
    assert cfg.llc.ways == 16
    assert cfg.l1.size_bytes < cfg.l2.size_bytes < cfg.llc.size_bytes
    assert cfg.l1.latency < cfg.l2.latency < cfg.llc_latency


def test_with_cores_rescales():
    cfg = SystemConfig.default(1).with_cores(8)
    assert cfg.n_cores == 8
    assert cfg.llc.sets == 8 * SystemConfig.default(1).llc.sets


def test_cache_config_rejects_non_power_of_two_sets():
    with pytest.raises(ValueError):
        CacheConfig("bad", 3, 4, 1, 1)


def test_cache_config_rejects_nonpositive_parameters():
    with pytest.raises(ValueError):
        CacheConfig("bad", 4, 0, 1, 1)
    with pytest.raises(ValueError):
        CacheConfig("bad", 4, 4, 0, 1)


def test_dram_latencies_ordered():
    d = DRAMConfig()
    assert d.row_hit_latency < d.row_miss_latency


def test_zero_cores_rejected():
    with pytest.raises(ValueError):
        SystemConfig(n_cores=0)
