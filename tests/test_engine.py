"""Event engine: ordering, scheduling rules, stop/run semantics."""

import pytest

from repro.sim.engine import Engine, EngineError


def test_events_fire_in_time_order():
    eng = Engine()
    order = []
    eng.at(5, order.append, "b")
    eng.at(1, order.append, "a")
    eng.at(9, order.append, "c")
    eng.run()
    assert order == ["a", "b", "c"]
    assert eng.now == 9


def test_same_cycle_events_fire_in_schedule_order():
    eng = Engine()
    order = []
    for tag in "abcde":
        eng.at(3, order.append, tag)
    eng.run()
    assert order == list("abcde")


def test_after_is_relative_to_now():
    eng = Engine()
    seen = []

    def chain():
        seen.append(eng.now)
        if len(seen) < 3:
            eng.after(10, chain)

    eng.after(0, chain)
    eng.run()
    assert seen == [0, 10, 20]


def test_scheduling_into_the_past_raises():
    eng = Engine()
    eng.at(5, lambda: None)
    eng.run()
    with pytest.raises(EngineError):
        eng.at(3, lambda: None)


def test_negative_delay_raises():
    eng = Engine()
    with pytest.raises(EngineError):
        eng.after(-1, lambda: None)


def test_stop_halts_processing():
    eng = Engine()
    seen = []
    eng.at(1, seen.append, 1)
    eng.at(2, eng.stop)
    eng.at(3, seen.append, 3)
    eng.run()
    assert seen == [1]
    assert eng.pending == 1


def test_run_until_leaves_future_events_queued():
    eng = Engine()
    seen = []
    eng.at(1, seen.append, 1)
    eng.at(100, seen.append, 100)
    eng.run(until=50)
    assert seen == [1]
    assert eng.now == 50
    eng.run()
    assert seen == [1, 100]


def test_max_events_bounds_processing():
    eng = Engine()
    for i in range(10):
        eng.at(i, lambda: None)
    processed = eng.run(max_events=4)
    assert processed == 4
    assert eng.pending == 6


def test_events_scheduled_during_execution_run():
    eng = Engine()
    seen = []
    eng.at(1, lambda: eng.at(1, seen.append, "nested"))
    eng.run()
    assert seen == ["nested"]


def test_step_on_empty_heap_returns_false():
    assert Engine().step() is False


def test_events_processed_counter():
    eng = Engine()
    for i in range(7):
        eng.at(i, lambda: None)
    eng.run()
    assert eng.events_processed == 7
