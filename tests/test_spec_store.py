"""ExperimentSpec identity and the persistent result store."""

import json

import pytest

from repro.harness.spec import ExperimentSpec
from repro.harness.store import (
    ResultStore,
    code_fingerprint,
    default_store,
    reset_default_store,
    set_default_store,
)


@pytest.fixture
def spec():
    return ExperimentSpec.single("462.libquantum", "lru", n_records=400)


@pytest.fixture
def result(spec):
    return spec.execute()


# ----------------------------------------------------------------------
# ExperimentSpec
# ----------------------------------------------------------------------
def test_spec_roundtrip(spec):
    assert ExperimentSpec.from_dict(spec.to_dict()) == spec


def test_spec_from_dict_rejects_unknown_fields(spec):
    data = spec.to_dict()
    data["bogus"] = 1
    with pytest.raises(ValueError, match="bogus"):
        ExperimentSpec.from_dict(data)


def test_spec_key_is_stable_and_discriminating(spec):
    assert spec.key() == spec.key()
    assert spec.key() == ExperimentSpec.from_dict(spec.to_dict()).key()
    other = ExperimentSpec.single("462.libquantum", "lru", n_records=401)
    assert other.key() != spec.key()
    assert len(spec.key()) == 64
    # canonical JSON is sorted/compact, so formatting can't change the key
    payload = json.loads(spec.canonical_json())
    assert payload["workload"] == "462.libquantum"


def test_spec_validation():
    with pytest.raises(ValueError, match="workload"):
        ExperimentSpec(workload="", policy="lru")
    with pytest.raises(ValueError, match="mix_id"):
        ExperimentSpec(workload="", policy="lru", suite="mix")
    with pytest.raises(ValueError, match="suite"):
        ExperimentSpec(workload="x", policy="lru", suite="nope")
    with pytest.raises(ValueError, match="preset"):
        ExperimentSpec(workload="x", policy="lru", preset="huge")
    with pytest.raises(ValueError, match="mix_id"):
        ExperimentSpec(workload="x", policy="lru", mix_id=3)


def test_mix_spec_label_and_key():
    a = ExperimentSpec.mix(7, "care", n_records=500)
    b = ExperimentSpec.mix(8, "care", n_records=500)
    assert a.mix_id == 7 and a.suite == "mix"
    assert "mix7" in a.label()
    assert a.key() != b.key()


def test_spec_is_hashable_and_picklable(spec):
    import pickle
    assert pickle.loads(pickle.dumps(spec)) == spec
    assert {spec: 1}[spec] == 1


# ----------------------------------------------------------------------
# ResultStore
# ----------------------------------------------------------------------
def test_store_put_get_roundtrip(tmp_path, spec, result):
    store = ResultStore(tmp_path)
    assert spec not in store
    assert store.get(spec) is None
    path = store.put(spec, result)
    assert path.is_file()
    assert spec in store
    loaded = store.get(spec)
    assert loaded == result
    assert loaded.to_json() == result.to_json()
    assert store.stats() == {"hits": 1, "misses": 1, "writes": 1, "quarantined": 0}
    assert len(store) == 1


def test_store_corrupt_entry_is_a_miss(tmp_path, spec, result):
    store = ResultStore(tmp_path)
    path = store.put(spec, result)
    path.write_text("{not json")
    assert store.get(spec) is None


def test_store_namespaced_by_code_fingerprint(tmp_path, spec, result):
    current = ResultStore(tmp_path)
    current.put(spec, result)
    other = ResultStore(tmp_path, fingerprint="f" * 64)
    assert spec not in other          # different code version, no reuse
    assert current.namespace != other.namespace
    removed = other.prune_stale()     # drops the "old" namespace
    assert removed == 1
    assert spec not in current


def test_code_fingerprint_is_cached_and_hexish():
    fp = code_fingerprint()
    assert fp == code_fingerprint()
    assert len(fp) == 64
    int(fp, 16)


def test_default_store_disabled_by_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_RESULT_STORE", "off")
    reset_default_store()
    try:
        assert default_store() is None
        monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path / "s"))
        reset_default_store()
        store = default_store()
        assert store is not None
        assert store.root == tmp_path / "s"
    finally:
        reset_default_store()


def test_set_default_store(tmp_path):
    store = ResultStore(tmp_path)
    set_default_store(store)
    try:
        assert default_store() is store
    finally:
        reset_default_store()
