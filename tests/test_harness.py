"""Experiment harness: caching, sweeps, cachesim."""

import pytest

from repro.harness import (
    bench_gap_workloads,
    bench_spec_workloads,
    clear_cache,
    run_multicopy,
    run_single,
    simulate_cache,
    speedup_sweep,
)
from repro.harness.experiment import _result_cache


def test_bench_workload_lists():
    assert len(bench_spec_workloads(4)) == 4
    assert len(bench_spec_workloads(30)) == 30
    gaps = bench_gap_workloads(3)
    assert len(gaps) == 3


def test_run_single_is_cached():
    clear_cache()
    a = run_single("462.libquantum", "lru", n_records=600)
    size = len(_result_cache)
    b = run_single("462.libquantum", "lru", n_records=600)
    assert a is b
    assert len(_result_cache) == size


def test_cache_key_distinguishes_parameters():
    clear_cache()
    run_single("462.libquantum", "lru", n_records=600)
    run_single("462.libquantum", "lru", n_records=600, prefetch=True)
    run_single("462.libquantum", "srrip", n_records=600)
    assert len(_result_cache) == 3


def test_speedup_sweep_structure():
    clear_cache()
    table = speedup_sweep(["462.libquantum"], ["lru", "srrip"], n_cores=1,
                          prefetch=False, n_records=600)
    assert set(table) == {"462.libquantum", "GEOMEAN"}
    assert table["462.libquantum"]["lru"] == pytest.approx(1.0)
    assert table["GEOMEAN"]["srrip"] > 0


def test_run_multicopy_core_count():
    clear_cache()
    res = run_multicopy("470.lbm", "lru", n_cores=2, prefetch=False,
                        n_records=500)
    assert res.n_cores == 2


def test_gap_suite_runs():
    clear_cache()
    res = run_multicopy("bfs-or", "lru", n_cores=1, prefetch=False,
                        suite="gap", n_records=500)
    assert res.ipc[0] > 0


# ----------------------------------------------------------------------
# cachesim input handling
# ----------------------------------------------------------------------

def test_cachesim_accepts_multiple_input_forms(small_trace):
    from_records = simulate_cache(small_trace.records[:200], sets=4, ways=2)
    from_pairs = simulate_cache(
        [(r.pc, r.addr) for r in small_trace.records[:200]], sets=4, ways=2)
    from_addrs = simulate_cache(
        [r.addr for r in small_trace.records[:200]], sets=4, ways=2)
    assert from_records.hits == from_pairs.hits == from_addrs.hits


def test_cachesim_rejects_bad_sets():
    with pytest.raises(ValueError):
        simulate_cache([0], sets=3, ways=1)


def test_cachesim_hit_vector():
    r = simulate_cache([0, 0, 64], sets=1, ways=2, record_hits=True)
    assert r.hit_vector == [False, True, False]


def test_cachesim_accepts_policy_object():
    from repro.policies.lru import LRUPolicy
    pol = LRUPolicy(2, 2)
    r = simulate_cache([0, 0], sets=2, ways=2, policy=pol)
    assert r.hits == 1
