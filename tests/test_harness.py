"""Experiment harness: caching, sweeps, cachesim."""

import pytest

from repro.harness import (
    bench_gap_workloads,
    bench_spec_workloads,
    clear_cache,
    run_multicopy,
    run_single,
    simulate_cache,
    speedup_sweep,
)
from repro.harness.experiment import _result_cache


def test_bench_workload_lists():
    assert len(bench_spec_workloads(4)) == 4
    assert len(bench_spec_workloads(30)) == 30
    gaps = bench_gap_workloads(3)
    assert len(gaps) == 3


def test_run_single_is_cached():
    clear_cache()
    a = run_single("462.libquantum", "lru", n_records=600)
    size = len(_result_cache)
    b = run_single("462.libquantum", "lru", n_records=600)
    assert a is b
    assert len(_result_cache) == size


def test_cache_key_distinguishes_parameters():
    clear_cache()
    run_single("462.libquantum", "lru", n_records=600)
    run_single("462.libquantum", "lru", n_records=600, prefetch=True)
    run_single("462.libquantum", "srrip", n_records=600)
    assert len(_result_cache) == 3


def test_speedup_sweep_structure():
    clear_cache()
    table = speedup_sweep(["462.libquantum"], ["lru", "srrip"], n_cores=1,
                          prefetch=False, n_records=600)
    assert set(table) == {"462.libquantum", "GEOMEAN"}
    assert table["462.libquantum"]["lru"] == pytest.approx(1.0)
    assert table["GEOMEAN"]["srrip"] > 0


def test_run_multicopy_core_count():
    clear_cache()
    res = run_multicopy("470.lbm", "lru", n_cores=2, prefetch=False,
                        n_records=500)
    assert res.n_cores == 2


def test_gap_suite_runs():
    clear_cache()
    res = run_multicopy("bfs-or", "lru", n_cores=1, prefetch=False,
                        suite="gap", n_records=500)
    assert res.ipc[0] > 0


# ----------------------------------------------------------------------
# BenchScale (programmatic scaling, replacing import-time env reads)
# ----------------------------------------------------------------------

def test_bench_scale_env_defaults(monkeypatch):
    from repro.harness.scale import BenchScale
    monkeypatch.setenv("REPRO_BENCH_RECORDS", "1234")
    monkeypatch.setenv("REPRO_BENCH_WORKLOADS", "5")
    scale = BenchScale.from_env()
    assert scale.records == 1234
    assert scale.workloads == 5
    assert scale.mixes == 10


def test_bench_scale_programmatic_override():
    from repro.harness import BenchScale, get_scale, set_scale
    from repro.harness.spec import ExperimentSpec
    original = get_scale()
    try:
        set_scale(BenchScale(records=777, workloads=2, mixes=3))
        assert get_scale().records == 777
        assert len(bench_spec_workloads()) == 2
        # spec factories resolve their default trace length from the scale
        assert ExperimentSpec.multicopy("429.mcf", "lru").n_records == 777
    finally:
        set_scale(original)


def test_scale_override_context_manager():
    from repro.harness import get_scale, scale_override
    before = get_scale()
    with scale_override(workloads=1) as scale:
        assert scale.workloads == 1
        assert get_scale() is scale
        assert len(bench_spec_workloads()) == 1
    assert get_scale() == before


def test_legacy_scale_constants_resolve_lazily():
    from repro import harness
    from repro.harness import BenchScale, get_scale, set_scale
    from repro.harness import experiment
    original = get_scale()
    try:
        set_scale(BenchScale(records=4321))
        assert experiment.BENCH_RECORDS == 4321
        assert harness.BENCH_RECORDS == 4321
    finally:
        set_scale(original)
    with pytest.raises(AttributeError):
        experiment.BENCH_NOPE


# ----------------------------------------------------------------------
# cachesim input handling
# ----------------------------------------------------------------------

def test_cachesim_accepts_multiple_input_forms(small_trace):
    from_records = simulate_cache(small_trace.records[:200], sets=4, ways=2)
    from_pairs = simulate_cache(
        [(r.pc, r.addr) for r in small_trace.records[:200]], sets=4, ways=2)
    from_addrs = simulate_cache(
        [r.addr for r in small_trace.records[:200]], sets=4, ways=2)
    assert from_records.hits == from_pairs.hits == from_addrs.hits


def test_cachesim_rejects_bad_sets():
    with pytest.raises(ValueError):
        simulate_cache([0], sets=3, ways=1)


def test_cachesim_hit_vector():
    r = simulate_cache([0, 0, 64], sets=1, ways=2, record_hits=True)
    assert r.hit_vector == [False, True, False]


def test_cachesim_accepts_policy_object():
    from repro.policies.lru import LRUPolicy
    pol = LRUPolicy(2, 2)
    r = simulate_cache([0, 0], sets=2, ways=2, policy=pol)
    assert r.hits == 1
