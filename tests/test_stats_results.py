"""SimResult / CacheStats accounting details."""

import pytest

from repro.core.pmc import CoreConcurrencyStats
from repro.sim import AccessType, SystemConfig, simulate
from repro.sim.cache import CacheStats
from repro.sim.stats import SimResult
from tests.conftest import build_trace


def make_result(**overrides):
    base = dict(
        policy="x", n_cores=2, prefetch=False, ipc=[1.0, 2.0],
        instructions=[10_000, 20_000], cycles=[10_000, 10_000],
        llc=CacheStats(), conc=[CoreConcurrencyStats(),
                                CoreConcurrencyStats()],
        conc_total=CoreConcurrencyStats(), pmc_deltas=[[], []],
    )
    base.update(overrides)
    return SimResult(**base)


def test_mpki_aggregate_and_per_core():
    llc = CacheStats()
    llc.demand_misses_by_core = {0: 100, 1: 50}
    res = make_result(llc=llc)
    assert res.mpki() == pytest.approx(1000 * 150 / 30_000)
    assert res.mpki(0) == pytest.approx(10.0)
    assert res.mpki(1) == pytest.approx(2.5)
    with pytest.raises(IndexError):     # unknown core is a caller bug
        res.mpki(7)


def test_mpki_zero_instructions():
    res = make_result(instructions=[0, 0])
    assert res.mpki() == 0.0


def test_aocpa_averages_only_active_cores():
    a = CoreConcurrencyStats(accesses=10, overlap_cycle_sum=100.0)
    b = CoreConcurrencyStats()           # idle core: excluded
    res = make_result(conc=[a, b])
    assert res.aocpa == pytest.approx(10.0)


def test_cachestats_demand_properties():
    st = CacheStats()
    st.accesses[AccessType.LOAD] = 60
    st.accesses[AccessType.RFO] = 40
    st.accesses[AccessType.PREFETCH] = 11
    st.hits[AccessType.LOAD] = 30
    st.misses[AccessType.LOAD] = 30
    st.misses[AccessType.RFO] = 10
    assert st.demand_accesses == 100
    assert st.total_accesses == 111
    assert st.demand_misses == 40
    assert st.demand_miss_rate == pytest.approx(0.4)


def test_total_instructions_property():
    assert make_result().total_instructions == 30_000


def test_summary_consistent_with_fields(tiny_cfg):
    trace = build_trace(n=800, seed=3)
    res = simulate([trace.records], cfg=tiny_cfg, llc_policy="lru")
    s = res.summary()
    assert s["mpki"] == pytest.approx(res.mpki())
    assert s["pmr"] == pytest.approx(res.pmr)
    assert s["cycles"] == res.sim_cycles


def test_hit_miss_overlap_fraction_bounds(tiny_cfg):
    trace = build_trace(n=800, seed=5)
    res = simulate([trace.records], cfg=tiny_cfg, llc_policy="lru")
    assert 0.0 <= res.hit_miss_overlap_fraction <= 1.0


# ----------------------------------------------------------------------
# Serialization (to_dict/from_dict exact round trip)
# ----------------------------------------------------------------------

def test_cachestats_roundtrip_preserves_enum_and_core_keys():
    st = CacheStats()
    st.accesses[AccessType.LOAD] = 60
    st.hits[AccessType.RFO] = 7
    st.misses[AccessType.PREFETCH] = 3
    st.mshr_merges = 5
    st.demand_misses_by_core = {1: 9, 0: 4}
    back = CacheStats.from_dict(st.to_dict())
    assert back == st
    assert back.demand_misses_by_core == {0: 4, 1: 9}
    assert all(isinstance(k, int) for k in back.demand_misses_by_core)
    assert back.accesses[AccessType.LOAD] == 60


def test_concstats_roundtrip():
    st = CoreConcurrencyStats(accesses=10, misses=4, pmc_sum=12.5,
                              overlap_cycle_sum=3.25)
    st.pmc_histogram[2] = 9
    assert CoreConcurrencyStats.from_dict(st.to_dict()) == st


def test_simresult_roundtrip_synthetic():
    res = make_result()
    back = SimResult.from_dict(res.to_dict())
    assert back == res
    assert back.to_json() == res.to_json()


def test_simresult_roundtrip_real_simulation(tiny_cfg4):
    traces = [build_trace(n=700, seed=s, name=f"t{s}").records
              for s in range(4)]
    res = simulate(traces, cfg=tiny_cfg4, llc_policy="care", prefetch=True)
    text = res.to_json()
    back = SimResult.from_json(text)
    assert back == res                      # exact field equality
    assert back.to_json() == text           # byte-identical re-serialization
    # derived metrics survive the trip
    assert back.mpki() == res.mpki()
    assert back.pmr == res.pmr
    assert back.aocpa == res.aocpa


def test_simresult_rejects_unknown_schema():
    data = make_result().to_dict()
    data["schema"] = 999
    with pytest.raises(ValueError, match="schema"):
        SimResult.from_dict(data)
