"""The content-addressed trace cache (PR 7): keying, round-trip
byte-identity, memo/disk hit accounting, corruption quarantine + fsck,
the representability guard, and the env-keyed process default."""

import gzip

import pytest

from repro.workloads import spec_trace
from repro.workloads.gap import gap_trace
from repro.workloads.tracecache import (ENV_VAR, MAX_GAP, TraceCache,
                                        cached_trace, default_trace_cache,
                                        reset_default_trace_cache,
                                        set_default_trace_cache, trace_key,
                                        workloads_fingerprint)
from repro.workloads.trace import Trace, TraceRecord


@pytest.fixture(autouse=True)
def clean_default(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    reset_default_trace_cache()
    yield
    reset_default_trace_cache()


@pytest.fixture
def cache(tmp_path):
    return TraceCache(tmp_path / "traces")


SPEC_ARGS = dict(kind="spec", name="429.mcf", n_records=400, seed=3,
                 scale=1)


# ----------------------------------------------------------------------
# Keys and namespace
# ----------------------------------------------------------------------
def test_trace_key_is_stable_and_parameter_sensitive():
    key = trace_key(**SPEC_ARGS)
    assert key == trace_key(**SPEC_ARGS)
    assert len(key) == 64
    for change in ({"name": "470.lbm"}, {"n_records": 401}, {"seed": 4},
                   {"scale": 2}, {"kind": "gap"}):
        assert trace_key(**{**SPEC_ARGS, **change}) != key


def test_namespace_is_workloads_fingerprint(cache):
    fp = workloads_fingerprint()
    assert fp == workloads_fingerprint()      # cached, stable
    assert cache.namespace.name == fp[:16]
    key = trace_key(**SPEC_ARGS)
    path = cache.path_for(key)
    assert path.parent.name == key[:2]
    assert path.name == f"{key}.rtrc.gz"


# ----------------------------------------------------------------------
# Round-trip byte-identity and hit accounting
# ----------------------------------------------------------------------
def test_cached_spec_trace_round_trips_exactly(cache):
    direct = spec_trace("429.mcf", n_records=400, seed=3, scale=1)
    via_cache = cached_trace(cache=cache, **SPEC_ARGS)     # cold: generate
    assert via_cache.records == direct.records
    assert cache.stats()["writes"] == 1

    cache.clear_memo()
    from_disk = cached_trace(cache=cache, **SPEC_ARGS)     # warm: disk
    assert from_disk.records == direct.records
    assert cache.stats()["hits"] == 1

    from_memo = cached_trace(cache=cache, **SPEC_ARGS)     # hot: memo
    assert from_memo.records == direct.records
    assert cache.stats()["memo_hits"] == 1


def test_cached_gap_trace_round_trips_and_ignores_scale(cache):
    direct = gap_trace("bfs-tw", n_records=400, seed=5)
    got = cached_trace("gap", "bfs-tw", 400, 5, scale=7, cache=cache)
    assert got.records == direct.records
    # scale is normalized out of gap keys: any value hits the same entry
    cache.clear_memo()
    again = cached_trace("gap", "bfs-tw", 400, 5, scale=1, cache=cache)
    assert again.records == direct.records
    assert cache.stats()["writes"] == 1 and cache.stats()["hits"] == 1


def test_unknown_kind_rejected(cache):
    with pytest.raises(ValueError, match="kind"):
        cached_trace("mystery", "429.mcf", 100, 3, 1, cache=cache)


# ----------------------------------------------------------------------
# Corruption: quarantine on read, fsck sweep
# ----------------------------------------------------------------------
def test_corrupt_entry_is_quarantined_then_regenerated(cache):
    cached_trace(cache=cache, **SPEC_ARGS)
    key = trace_key(**SPEC_ARGS)
    path = cache.path_for(key)
    path.write_bytes(gzip.compress(b"not a trace"))
    cache.clear_memo()

    got = cached_trace(cache=cache, **SPEC_ARGS)   # quarantine + regen
    assert got.records == spec_trace("429.mcf", n_records=400, seed=3,
                                     scale=1).records
    assert cache.stats()["quarantined"] == 1
    assert len(list(cache.quarantine_dir.iterdir())) == 1
    assert path.is_file()                          # rewritten entry


def test_fsck_quarantines_unreadable_entries(cache):
    cached_trace(cache=cache, **SPEC_ARGS)
    cached_trace("spec", "470.lbm", 300, 3, 1, cache=cache)
    bad = cache.path_for(trace_key(**SPEC_ARGS))
    bad.write_bytes(b"\x1f\x8b garbage")

    report = cache.fsck()
    assert report.scanned == 2 and report.ok == 1
    assert len(report.quarantined) == 1
    assert "entr" in report.summary()
    assert len(cache) == 1                        # bad entry moved out
    # a second fsck over the healthy remainder is clean
    clean = cache.fsck()
    assert clean.scanned == 1 and clean.ok == 1 and not clean.errors


# ----------------------------------------------------------------------
# Representability guard: never cache what the format would distort
# ----------------------------------------------------------------------
def test_unrepresentable_trace_is_served_but_not_cached(cache):
    records = [TraceRecord(pc=4, addr=64, is_write=False,
                           gap=MAX_GAP + 1)]
    trace = Trace(name="synthetic", records=records)
    assert cache.put("0" * 64, trace) is None
    assert cache.stats()["writes"] == 0
    assert list(cache.entries()) == []


# ----------------------------------------------------------------------
# The env-keyed process default
# ----------------------------------------------------------------------
def test_default_cache_disabled_values(monkeypatch):
    for value in ("", "0", "off", "none", "disabled", "OFF"):
        monkeypatch.setenv(ENV_VAR, value)
        assert default_trace_cache() is None


def test_default_cache_tracks_env_changes(tmp_path, monkeypatch):
    """Persistent workers apply per-task env snapshots: the default must
    re-resolve when REPRO_TRACE_CACHE changes, without a process restart."""
    monkeypatch.setenv(ENV_VAR, str(tmp_path / "a"))
    first = default_trace_cache()
    assert first is not None and first.root == tmp_path / "a"
    assert default_trace_cache() is first          # stable while unchanged
    monkeypatch.setenv(ENV_VAR, str(tmp_path / "b"))
    second = default_trace_cache()
    assert second is not None and second.root == tmp_path / "b"
    monkeypatch.setenv(ENV_VAR, "off")
    assert default_trace_cache() is None


def test_set_default_overrides_env_until_reset(tmp_path, monkeypatch):
    monkeypatch.setenv(ENV_VAR, "off")
    override = TraceCache(tmp_path / "pinned")
    set_default_trace_cache(override)
    assert default_trace_cache() is override       # env ignored
    reset_default_trace_cache()
    assert default_trace_cache() is None           # env honored again
