"""Store hardening: corrupt-entry quarantine, fsck, and the chaos
corruption hook."""

import json
import shutil

import pytest

from repro.harness import ExperimentSpec, ResultStore
from repro.harness.runner import clear_memo
from repro.harness.store import reset_default_store, set_default_store


@pytest.fixture(autouse=True)
def isolated(monkeypatch):
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    clear_memo()
    yield
    clear_memo()
    reset_default_store()


@pytest.fixture
def spec():
    return ExperimentSpec.single("462.libquantum", "lru", n_records=300)


@pytest.fixture
def store(tmp_path, spec):
    store = ResultStore(tmp_path / "store")
    store.put(spec, spec.execute())
    return store


def entry_path(store, spec):
    [path] = [p for p in store.entries() if p.stem == spec.key()]
    return path


def test_fsck_clean_store(store):
    report = store.fsck()
    assert report.scanned == report.ok == 1
    assert not report.quarantined and not report.errors
    assert "1 ok" in report.summary()


def test_fsck_quarantines_truncated_entry(store, spec):
    path = entry_path(store, spec)
    data = path.read_text()
    path.write_text(data[:len(data) // 2])
    report = store.fsck()
    assert report.scanned == 1 and report.ok == 0
    assert len(report.quarantined) == 1
    assert not path.exists()
    assert (store.quarantine_dir / path.name).is_file()
    # the namespace is clean again
    after = store.fsck()
    assert after.scanned == 0 and not after.quarantined


def test_fsck_quarantines_key_mismatch(store, spec):
    path = entry_path(store, spec)
    misfiled = path.with_name("0" * 64 + ".json")
    shutil.copy(path, misfiled)
    report = store.fsck()
    assert report.ok == 1                       # the original survives
    assert len(report.quarantined) == 1
    assert any("key mismatch" in line for line in report.errors)
    assert not misfiled.exists()


def test_fsck_quarantines_missing_fields(store, spec):
    path = entry_path(store, spec)
    path.write_text(json.dumps({"spec": spec.to_dict()}))  # no result
    report = store.fsck()
    assert len(report.quarantined) == 1


def test_get_quarantines_corrupt_entry_as_miss(store, spec):
    path = entry_path(store, spec)
    path.write_text("{definitely not json")
    assert store.get(spec) is None              # miss, not an exception
    assert not path.exists()                    # moved aside...
    assert (store.quarantine_dir / path.name).is_file()
    assert store.stats()["quarantined"] == 1
    assert spec not in store


def test_quarantine_collisions_get_suffixes(store, spec):
    for _ in range(2):
        path = entry_path(store, spec)
        path.write_text("{broken")
        assert store.get(spec) is None
        store.put(spec, spec.execute())
        clear_memo()
    names = sorted(p.name for p in store.quarantine_dir.iterdir())
    assert len(names) == 2                      # second move got a suffix
    assert names[0] == spec.key() + ".json"


def test_prune_stale_keeps_quarantine(tmp_path, spec):
    current = ResultStore(tmp_path / "store")
    current.put(spec, spec.execute())
    path = entry_path(current, spec)
    path.write_text("{broken")
    assert current.get(spec) is None            # populate quarantine/
    other = ResultStore(tmp_path / "store", fingerprint="f" * 64)
    removed = other.prune_stale()
    assert removed == 1                         # the stale namespace only
    assert other.quarantine_dir.parent.is_dir() # quarantine/ survives


# ----------------------------------------------------------------------
# Manifest fsck: the sweep/campaign ledgers corrupt the same way
# ----------------------------------------------------------------------
def make_manifest(path, spec):
    from repro.harness.supervise import SweepManifest
    manifest = SweepManifest(path)
    manifest.register(spec)
    manifest.save()
    return path


def test_fsck_manifests_passes_healthy_ledgers(tmp_path, spec):
    from repro.harness.supervise import fsck_manifests
    good = make_manifest(tmp_path / "good.manifest.json", spec)
    report = fsck_manifests([good, tmp_path / "missing.manifest.json"])
    assert report.scanned == 1 and report.ok == 1     # missing = skipped
    assert not report.quarantined and not report.errors


def test_fsck_manifests_quarantines_truncated_json(tmp_path, spec):
    from repro.harness.supervise import fsck_manifests
    bad = make_manifest(tmp_path / "bad.manifest.json", spec)
    text = bad.read_text()
    bad.write_text(text[:len(text) // 2])
    report = fsck_manifests([bad])
    assert report.scanned == 1 and report.ok == 0
    assert len(report.quarantined) == 1 and report.errors
    assert not bad.exists()
    assert (tmp_path / "quarantine" / bad.name).is_file()
    # idempotent: the namespace is clean on the second pass
    assert fsck_manifests([bad]).scanned == 0


def test_fsck_manifests_quarantines_semantic_damage(tmp_path, spec):
    from repro.harness.supervise import fsck_manifests
    future = tmp_path / "future.manifest.json"
    future.write_text(json.dumps({"version": 99, "points": {}}))
    mismatch = make_manifest(tmp_path / "mismatch.manifest.json", spec)
    data = json.loads(mismatch.read_text())
    data["points"] = {"0" * 64: data["points"][spec.key()]}
    mismatch.write_text(json.dumps(data))
    status = make_manifest(tmp_path / "status.manifest.json", spec)
    data = json.loads(status.read_text())
    data["points"][spec.key()]["status"] = "exploded"
    status.write_text(json.dumps(data))
    report = fsck_manifests([future, mismatch, status])
    assert report.scanned == 3 and report.ok == 0
    assert len(report.quarantined) == 3
    assert any("version" in e for e in report.errors)
    assert any("does not match" in e for e in report.errors)
    assert any("unknown status" in e for e in report.errors)
    # collisions in quarantine/ get numbered suffixes
    again = make_manifest(tmp_path / "future.manifest.json", spec)
    again.write_text("{torn")
    fsck_manifests([again])
    qnames = sorted(p.name for p in (tmp_path / "quarantine").iterdir())
    assert "future.manifest.json" in qnames
    assert "future.manifest.json.1" in qnames


def test_chaos_corrupt_hook_on_put(tmp_path, spec, monkeypatch):
    monkeypatch.setenv("REPRO_CHAOS", "corrupt:1:1/1")
    store = ResultStore(tmp_path / "store")
    store.put(spec, spec.execute())
    path = entry_path(store, spec)
    with pytest.raises(ValueError):
        json.loads(path.read_text())            # write was truncated
    monkeypatch.delenv("REPRO_CHAOS")
    assert store.get(spec) is None              # hardened get quarantines
    assert store.fsck().scanned == 0
