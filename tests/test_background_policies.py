"""Background policies the paper cites: DIP family (LIP/BIP/DIP), RLR, EAF."""

import pytest

from repro.harness import simulate_cache
from repro.policies.base import PolicyAccess
from repro.policies.dueling import SetDuel
from repro.policies.eaf import BloomFilter
from repro.policies.registry import make_policy
from repro.sim.request import AccessType


def acc(pc=0, addr=0, rtype=AccessType.LOAD, prefetch=False):
    return PolicyAccess(pc=pc, addr=addr, core=0, rtype=rtype,
                        prefetch=prefetch)


def seq(blocks):
    return [(0x10 + (b % 7), b * 64) for b in blocks]


# ----------------------------------------------------------------------
# LIP / BIP / DIP
# ----------------------------------------------------------------------

def test_lip_inserted_block_is_immediate_victim():
    pol = make_policy("lip", sets=1, ways=4)
    blocks = [None] * 4
    for w in range(4):
        pol.on_fill(0, w, blocks, acc())
        if w < 3:
            pol.on_hit(0, w, blocks, acc())   # promote all but the last
    assert pol.find_victim(0, blocks, acc()) == 3


def test_lip_hit_promotes_to_mru():
    pol = make_policy("lip", sets=1, ways=2)
    blocks = [None] * 2
    pol.on_fill(0, 0, blocks, acc())
    pol.on_fill(0, 1, blocks, acc())
    pol.on_hit(0, 1, blocks, acc())
    assert pol.find_victim(0, blocks, acc()) == 0


def test_lip_protects_against_thrash_loop():
    addrs = seq(list(range(17)) * 20)
    lru = simulate_cache(addrs, sets=1, ways=16, policy="lru")
    lip = simulate_cache(addrs, sets=1, ways=16, policy="lip")
    assert lru.hits == 0
    assert lip.hits > 100


def test_bip_occasionally_inserts_mru():
    pol = make_policy("bip", sets=1, ways=1, seed=0, epsilon=0.5)
    blocks = [None]
    mru_like = 0
    for _ in range(200):
        pol.on_fill(0, 0, blocks, acc())
        mru_like += pol._stamp[0][0] == pol._clock
    assert 50 < mru_like < 150


def test_bip_epsilon_validation():
    with pytest.raises(ValueError):
        make_policy("bip", sets=1, ways=1, epsilon=2.0)


def test_dip_leader_sets_follow_their_policy():
    pol = make_policy("dip", sets=64, ways=4, seed=1)
    blocks = [None] * 4
    leader_a = next(s for s in range(64)
                    if pol.duel.role(s) == SetDuel.ROLE_A)
    pol.on_fill(leader_a, 0, blocks, acc())
    # LRU-role leader inserts MRU: newest stamp in the set
    assert pol._stamp[leader_a][0] == pol._clock


def test_dip_tracks_thrash_and_beats_lru():
    addrs = seq(list(range(40)) * 15)
    lru = simulate_cache(addrs, sets=2, ways=16, policy="lru")
    dip = simulate_cache(addrs, sets=2, ways=16, policy="dip",
                         leaders_per_policy=1, seed=3)
    assert dip.hits > lru.hits


# ----------------------------------------------------------------------
# RLR
# ----------------------------------------------------------------------

def test_rlr_prefers_aged_unused_blocks():
    pol = make_policy("rlr", sets=1, ways=2, age_granularity=1)
    blocks = [None] * 2
    pol.on_fill(0, 0, blocks, acc())
    pol.on_fill(0, 1, blocks, acc())
    pol.on_hit(0, 0, blocks, acc())     # way 0 reused
    for _ in range(10):                 # age both
        pol._clock[0] += 1
    assert pol.find_victim(0, blocks, acc()) == 1


def test_rlr_reuse_outweighs_small_age_difference():
    pol = make_policy("rlr", sets=1, ways=2, age_granularity=1)
    blocks = [None] * 2
    pol.on_fill(0, 0, blocks, acc())
    pol.on_hit(0, 0, blocks, acc())     # old but reused
    pol.on_fill(0, 1, blocks, acc())    # fresh, never reused
    pol._clock[0] += 3                  # small aging
    assert pol.find_victim(0, blocks, acc()) == 1


def test_rlr_prefetch_fills_are_cheaper():
    pol = make_policy("rlr", sets=1, ways=2, age_granularity=100)
    blocks = [None] * 2
    pol.on_fill(0, 0, blocks, acc(rtype=AccessType.PREFETCH, prefetch=True))
    pol.on_fill(0, 1, blocks, acc())
    assert pol.find_victim(0, blocks, acc()) == 0


# ----------------------------------------------------------------------
# EAF
# ----------------------------------------------------------------------

def test_bloom_filter_membership_and_reset():
    f = BloomFilter(bits=1024, reset_after=10)
    f.insert(42)
    assert f.test(42)
    for i in range(100, 112):      # push past reset threshold
        f.insert(i)
    assert not f.test(42)


def test_bloom_filter_geometry_validation():
    with pytest.raises(ValueError):
        BloomFilter(bits=4)


def test_eaf_reinserts_premature_evictions_at_mru():
    pol = make_policy("eaf", sets=1, ways=2)
    blocks = [None] * 2
    fill = acc(addr=0x1000)
    pol.on_fill(0, 0, blocks, fill)
    pol.on_evict(0, 0, blocks, acc())
    # refill the same address: filter hit -> MRU insertion
    pol.on_fill(0, 0, blocks, fill)
    assert pol._stamp[0][0] == pol._clock


def test_eaf_beats_lru_on_mixed_thrash():
    reuse = list(range(10))
    scan = list(range(1000, 1400))
    pattern = []
    for i in range(20):
        pattern += reuse + scan[20 * i:20 * (i + 1)]
    addrs = seq(pattern)
    lru = simulate_cache(addrs, sets=1, ways=16, policy="lru")
    eaf = simulate_cache(addrs, sets=1, ways=16, policy="eaf", seed=5)
    assert eaf.hits > lru.hits


def test_new_policies_registered():
    from repro.policies.registry import available_policies
    for name in ("lip", "bip", "dip", "rlr", "eaf"):
        assert name in available_policies()
