"""CARE policy behavior: Table IV insertion/promotion, victim selection,
SHT training, prefetch and writeback handling, M-CARE's cost signal."""

import pytest

from repro.core.care import CAREPolicy, EPV_MAX
from repro.core.dtrm import DTRM
from repro.core.mcare import MCAREPolicy
from repro.core.sht import CostClass, ReuseClass
from repro.core.signatures import pc_signature
from repro.policies.base import PolicyAccess
from repro.sim.request import AccessType


def acc(pc=0x40, rtype=AccessType.LOAD, prefetch=False, pmc=0.0,
        mlp=0.0, addr=0):
    return PolicyAccess(pc=pc, addr=addr, core=0, rtype=rtype,
                        prefetch=prefetch, pmc=pmc, mlp_cost=mlp)


def care(sets=8, ways=4, **kw):
    return CAREPolicy(sets, ways, seed=1, **kw)


def saturate_rc(pol, pc, up=True, prefetch=False):
    sig = pc_signature(pc, prefetch)
    for _ in range(10):
        (pol.sht.rc_increment if up else pol.sht.rc_decrement)(sig)
    return sig


def saturate_pd(pol, pc, up=True, prefetch=False):
    sig = pc_signature(pc, prefetch)
    for _ in range(10):
        (pol.sht.pd_increment if up else pol.sht.pd_decrement)(sig)
    return sig


# ----------------------------------------------------------------------
# Insertion policy (Table IV)
# ----------------------------------------------------------------------

def test_high_reuse_inserts_epv0():
    pol = care()
    saturate_rc(pol, 0x11, up=True)
    pol.on_fill(1, 0, [None] * 4, acc(pc=0x11))
    assert pol.epv_of(1, 0) == 0


def test_low_reuse_inserts_epv3():
    pol = care()
    saturate_rc(pol, 0x22, up=False)
    pol.on_fill(1, 0, [None] * 4, acc(pc=0x22))
    assert pol.epv_of(1, 0) == EPV_MAX


def test_moderate_reuse_low_cost_inserts_epv3():
    pol = care()
    saturate_pd(pol, 0x33, up=False)
    pol.on_fill(1, 0, [None] * 4, acc(pc=0x33))
    assert pol.epv_of(1, 0) == EPV_MAX


def test_moderate_reuse_high_cost_inserts_epv0():
    pol = care()
    saturate_pd(pol, 0x44, up=True)
    pol.on_fill(1, 0, [None] * 4, acc(pc=0x44))
    assert pol.epv_of(1, 0) == 0


def test_moderate_everything_inserts_epv2():
    pol = care()
    pol.on_fill(1, 0, [None] * 4, acc(pc=0x55))
    assert pol.epv_of(1, 0) == 2


def test_writeback_inserts_epv3():
    pol = care()
    saturate_rc(pol, 0x66, up=True)   # even a "good" signature
    pol.on_fill(1, 0, [None] * 4, acc(pc=0x66, rtype=AccessType.WRITEBACK))
    assert pol.epv_of(1, 0) == EPV_MAX


# ----------------------------------------------------------------------
# Hit-promotion policy (Table IV + Section V-E)
# ----------------------------------------------------------------------

def test_moderate_hit_promotes_to_epv0():
    pol = care()
    pol.on_fill(1, 0, [None] * 4, acc(pc=0x77))
    pol.on_hit(1, 0, [None] * 4, acc(pc=0x77))
    assert pol.epv_of(1, 0) == 0


def test_low_reuse_hit_decrements_gradually():
    pol = care()
    saturate_rc(pol, 0x88, up=False)
    pol.on_fill(1, 0, [None] * 4, acc(pc=0x88))
    assert pol.epv_of(1, 0) == EPV_MAX
    pol.on_hit(1, 0, [None] * 4, acc(pc=0x88))
    assert pol.epv_of(1, 0) == EPV_MAX - 1
    for _ in range(5):
        pol.on_hit(1, 0, [None] * 4, acc(pc=0x88))
    assert pol.epv_of(1, 0) == 0       # never below zero


def test_writeback_hit_does_not_promote():
    pol = care()
    pol.on_fill(1, 0, [None] * 4, acc(pc=0x99))
    before = pol.epv_of(1, 0)
    pol.on_hit(1, 0, [None] * 4, acc(pc=0x99, rtype=AccessType.WRITEBACK))
    assert pol.epv_of(1, 0) == before


def test_prefetched_block_first_demand_hit_demotes():
    """Section V-E: a prefetched block hit once by demand is likely dead."""
    pol = care()
    pol.on_fill(1, 0, [None] * 4, acc(pc=0xA0, rtype=AccessType.PREFETCH,
                                      prefetch=True))
    pol.on_hit(1, 0, [None] * 4, acc(pc=0xA0, prefetch=True))  # demand hit
    assert pol.epv_of(1, 0) == EPV_MAX
    assert pol.stats.prefetch_first_demotions == 1


def test_prefetched_block_second_demand_hit_promotes():
    pol = care()
    pol.on_fill(1, 0, [None] * 4, acc(pc=0xA0, rtype=AccessType.PREFETCH,
                                      prefetch=True))
    pol.on_hit(1, 0, [None] * 4, acc(pc=0xA0, prefetch=True))
    # cache clears the block's prefetch bit after the demand hit
    pol.on_hit(1, 0, [None] * 4, acc(pc=0xA0, prefetch=False))
    assert pol.epv_of(1, 0) == 0


def test_prefetch_requests_hitting_prefetched_block_change_nothing():
    pol = care()
    pol.on_fill(1, 0, [None] * 4, acc(pc=0xB0, rtype=AccessType.PREFETCH,
                                      prefetch=True))
    before = pol.epv_of(1, 0)
    pol.on_hit(1, 0, [None] * 4, acc(pc=0xB0, rtype=AccessType.PREFETCH,
                                     prefetch=True))
    assert pol.epv_of(1, 0) == before


# ----------------------------------------------------------------------
# Victim selection (Section V-D)
# ----------------------------------------------------------------------

def test_victim_chosen_among_epv3():
    pol = care(sets=1, ways=4)
    blocks = [None] * 4
    saturate_rc(pol, 0x1, up=True)
    saturate_rc(pol, 0x2, up=False)
    pol.on_fill(0, 0, blocks, acc(pc=0x1))   # EPV 0
    pol.on_fill(0, 1, blocks, acc(pc=0x2))   # EPV 3
    pol.on_fill(0, 2, blocks, acc(pc=0x1))   # EPV 0
    pol.on_fill(0, 3, blocks, acc(pc=0x2))   # EPV 3
    for _ in range(20):
        assert pol.find_victim(0, blocks, acc()) in (1, 3)


def test_victim_aging_when_no_epv3():
    pol = care(sets=1, ways=2)
    blocks = [None] * 2
    saturate_rc(pol, 0x1, up=True)
    pol.on_fill(0, 0, blocks, acc(pc=0x1))
    pol.on_fill(0, 1, blocks, acc(pc=0x1))
    assert pol.epv_of(0, 0) == 0 and pol.epv_of(0, 1) == 0
    victim = pol.find_victim(0, blocks, acc())
    assert victim in (0, 1)
    assert pol.stats.epv_aging_rounds == 3   # 0 -> 3 takes three rounds
    assert all(pol.epv_of(0, w) == EPV_MAX for w in range(2))


def test_victim_random_choice_covers_candidates():
    pol = care(sets=1, ways=4)
    blocks = [None] * 4
    saturate_rc(pol, 0x2, up=False)
    for w in range(4):
        pol.on_fill(0, w, blocks, acc(pc=0x2))
    seen = {pol.find_victim(0, blocks, acc()) for _ in range(100)}
    assert seen == {0, 1, 2, 3}


# ----------------------------------------------------------------------
# SHT training through sampled sets (Section V-B)
# ----------------------------------------------------------------------

def sampled_set(pol):
    return next(iter(pol.sampled))


def test_first_reuse_increments_rc():
    pol = care()
    s = sampled_set(pol)
    sig = pc_signature(0xC0, False)
    before = pol.sht.rc(sig)
    pol.on_fill(s, 0, [None] * 4, acc(pc=0xC0))
    pol.on_hit(s, 0, [None] * 4, acc(pc=0xC0))
    pol.on_hit(s, 0, [None] * 4, acc(pc=0xC0))   # only first reuse trains
    assert pol.sht.rc(sig) == before + 1


def test_dead_eviction_decrements_rc():
    pol = care()
    s = sampled_set(pol)
    sig = pc_signature(0xD0, False)
    before = pol.sht.rc(sig)
    pol.on_fill(s, 0, [None] * 4, acc(pc=0xD0))
    pol.on_evict(s, 0, [None] * 4, acc())
    assert pol.sht.rc(sig) == before - 1


def test_costly_eviction_increments_pd():
    pol = care()
    s = sampled_set(pol)
    sig = pc_signature(0xE0, False)
    before = pol.sht.pd(sig)
    pol.on_fill(s, 0, [None] * 4, acc(pc=0xE0, pmc=1e6))  # PMCS 3
    pol.on_evict(s, 0, [None] * 4, acc())
    assert pol.sht.pd(sig) == before + 1


def test_cheap_eviction_decrements_pd():
    pol = care()
    s = sampled_set(pol)
    sig = pc_signature(0xF0, False)
    before = pol.sht.pd(sig)
    pol.on_fill(s, 0, [None] * 4, acc(pc=0xF0, pmc=0.0))  # PMCS 0
    pol.on_evict(s, 0, [None] * 4, acc())
    assert pol.sht.pd(sig) == before - 1


def test_writeback_blocks_never_train_sht():
    pol = care()
    s = sampled_set(pol)
    pol.on_fill(s, 0, [None] * 4, acc(pc=0x12, rtype=AccessType.WRITEBACK))
    sig = pc_signature(0x12, False)
    before_rc, before_pd = pol.sht.rc(sig), pol.sht.pd(sig)
    pol.on_evict(s, 0, [None] * 4, acc())
    assert (pol.sht.rc(sig), pol.sht.pd(sig)) == (before_rc, before_pd)


def test_dtrm_period_scales_with_cache_size():
    pol = care(sets=8, ways=4)
    assert pol.dtrm.period == max(64, 8 * 4 // 2)
    big = care(sets=2048, ways=16)
    assert big.dtrm.period == 2048 * 16 // 2   # paper: half the LLC blocks


# ----------------------------------------------------------------------
# Ablation flags and M-CARE
# ----------------------------------------------------------------------

def test_use_reuse_false_treats_all_as_moderate():
    pol = care(use_reuse=False)
    saturate_rc(pol, 0x31, up=True)
    pol.on_fill(1, 0, [None] * 4, acc(pc=0x31))
    assert pol.epv_of(1, 0) == 2      # moderate/moderate


def test_use_cost_false_is_locality_only():
    pol = care(use_cost=False)
    saturate_pd(pol, 0x32, up=True)   # would be High-Cost
    pol.on_fill(1, 0, [None] * 4, acc(pc=0x32))
    assert pol.epv_of(1, 0) == 2      # cost ignored


def test_mcare_uses_mlp_signal():
    m = MCAREPolicy(8, 4, seed=1)
    s = sampled_set(m)
    sig = pc_signature(0x41, False)
    before = m.sht.pd(sig)
    # High MLP cost but zero PMC: only M-CARE should call this costly.
    m.on_fill(s, 0, [None] * 4, acc(pc=0x41, pmc=0.0, mlp=1e6))
    m.on_evict(s, 0, [None] * 4, acc())
    assert m.sht.pd(sig) == before + 1

    c = care()
    before = c.sht.pd(sig)
    c.on_fill(s, 0, [None] * 4, acc(pc=0x41, pmc=0.0, mlp=1e6))
    c.on_evict(s, 0, [None] * 4, acc())
    assert c.sht.pd(sig) == before - 1   # CARE sees the zero PMC


def test_care_registry_names():
    from repro.policies.registry import make_policy
    assert isinstance(make_policy("care", sets=8, ways=4, n_cores=2),
                      CAREPolicy)
    assert isinstance(make_policy("mcare", sets=8, ways=4), MCAREPolicy)
