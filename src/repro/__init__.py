"""repro — reproduction of CARE (HPCA 2023).

Public API highlights:

* :func:`repro.sim.simulate` / :class:`repro.sim.System` — run a workload on
  the simulated machine with any LLC policy.
* :class:`repro.sim.SystemConfig` — Table VII machine presets.
* :mod:`repro.workloads` — SPEC-like / GAP workload trace generators.
* :mod:`repro.policies` — every compared replacement scheme, by name via
  ``repro.policies.registry.make_policy``.
* :mod:`repro.core` — PMC measurement (PML) and the CARE/M-CARE policies.
* :mod:`repro.analysis` — metrics, the Fig. 2 study case, hardware costs.
* :mod:`repro.harness` — experiment drivers used by benchmarks/examples.
"""

from .sim import SimResult, System, SystemConfig, simulate

__version__ = "1.0.0"

__all__ = ["SimResult", "System", "SystemConfig", "simulate", "__version__"]
