"""Discrete-event simulation kernel.

The whole hierarchy simulator is built on a single deterministic event heap.
Events are ``(time, sequence, callable, args)`` tuples; the monotonically
increasing sequence number makes same-cycle events fire in scheduling order,
which keeps runs bit-reproducible for a given seed.

Times are integer cycles throughout the simulator.  Components that need
sub-cycle pacing (the core front end) keep their own fractional accumulators
and only ever schedule on whole cycles.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple


class EngineError(RuntimeError):
    """Raised on scheduling misuse (e.g. scheduling into the past)."""


class Engine:
    """Deterministic discrete-event engine with integer-cycle time."""

    __slots__ = ("now", "_heap", "_seq", "_stopped", "events_processed",
                 "watcher", "watch_interval", "_watchers")

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: List[Tuple[int, int, Callable[..., None], Tuple[Any, ...]]] = []
        self._seq: int = 0
        self._stopped: bool = False
        self.events_processed: int = 0
        #: Observation hook: when set, :meth:`run` calls ``watcher()``
        #: every ``watch_interval`` processed events.  A watcher must only
        #: *read* simulator state (never schedule or mutate), so watched
        #: runs stay byte-identical.  ``None`` (the default) keeps the
        #: zero-overhead fast loop.  Prefer :meth:`add_watcher` /
        #: :meth:`remove_watcher`, which multiplex several observers
        #: (sanitizer + metrics sampler) onto this one slot.
        self.watcher: Optional[Callable[[], None]] = None
        self.watch_interval: int = 4096
        #: registered observers: ``[fn, interval, countdown]`` per entry
        self._watchers: List[List[Any]] = []

    # ------------------------------------------------------------------
    # Observer registration
    # ------------------------------------------------------------------
    @property
    def watchers(self) -> Tuple[Callable[[], None], ...]:
        """The registered observer callables (read-only view)."""
        if self._watchers:
            return tuple(entry[0] for entry in self._watchers)
        return (self.watcher,) if self.watcher is not None else ()

    def add_watcher(self, fn: Callable[[], None], interval: int) -> None:
        """Register ``fn`` to be called every ``interval`` processed events.

        Multiple watchers share the single ``watcher`` slot through a
        trampoline ticking at the smallest registered interval; with one
        watcher the slot is wired directly, so the single-observer case
        (the sanitizer alone, or the sampler alone) pays no extra call.
        """
        if interval < 1:
            raise EngineError(f"watch interval must be >= 1, got {interval}")
        if self.watcher is not None and not self._watchers:
            raise EngineError(
                "engine.watcher was assigned directly; use add_watcher for "
                "composable observers")
        # ``==`` not ``is``: bound methods are recreated per attribute
        # access but compare equal for the same instance + function.
        if any(entry[0] == fn for entry in self._watchers):
            raise EngineError("watcher already registered")
        self._watchers.append([fn, interval, interval])
        self._rewire_watchers()

    def remove_watcher(self, fn: Callable[[], None]) -> None:
        """Unregister ``fn`` (no-op if it is not registered)."""
        kept = [entry for entry in self._watchers if entry[0] != fn]
        if len(kept) == len(self._watchers):
            return
        self._watchers = kept
        self._rewire_watchers()

    def _rewire_watchers(self) -> None:
        entries = self._watchers
        if not entries:
            self.watcher = None
        elif len(entries) == 1:
            self.watcher = entries[0][0]
            self.watch_interval = entries[0][1]
        else:
            base = min(entry[1] for entry in entries)
            for entry in entries:
                entry[2] = entry[1]
            self.watcher = self._fire_watchers
            self.watch_interval = base

    def _fire_watchers(self) -> None:
        """Trampoline for multiple observers: each keeps its own cadence."""
        base = self.watch_interval
        for entry in self._watchers:
            entry[2] -= base
            if entry[2] <= 0:
                entry[2] = entry[1]
                entry[0]()

    # ------------------------------------------------------------------
    # Save-states (repro.sim.savestate)
    # ------------------------------------------------------------------
    def __getstate__(self):
        """Pickle every slot verbatim.

        Snapshots are only taken from inside a watcher call, where the
        loop has already settled ``events_processed`` and popped the
        event being dispatched — so the heap holds exactly the
        undispatched future and a restored engine's ``run()`` continues
        with the same arithmetic as the uninterrupted run.  Restore must
        never re-register watchers (``_rewire_watchers`` would reset the
        trampoline countdowns); the ``_watchers`` entries travel with
        their live countdowns instead.
        """
        return {slot: getattr(self, slot) for slot in Engine.__slots__}

    def __setstate__(self, state) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(self, time: int, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute cycle ``time``."""
        time = int(time)
        if time < self.now:
            raise EngineError(
                f"cannot schedule event at {time} (now={self.now})"
            )
        heapq.heappush(self._heap, (time, self._seq, fn, args))
        self._seq += 1

    def after(self, delay: int, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` ``delay`` cycles from now (``delay >= 0``)."""
        if delay < 0:
            raise EngineError(f"negative delay {delay}")
        self.at(self.now + int(delay), fn, *args)

    def post(self, time: int, fn: Callable[..., None], *args: Any) -> None:
        """Hot-path variant of :meth:`at` for internal components.

        Skips the ``int()`` coercion and the past-check: the caller
        guarantees ``time`` is an integer cycle ``>= now`` (all simulator
        latencies are non-negative integers).  Event ordering is identical
        to :meth:`at` — same heap, same sequence numbers.
        """
        heapq.heappush(self._heap, (time, self._seq, fn, args))
        self._seq += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._heap)

    def next_event_time(self) -> Optional[int]:
        """Timestamp of the earliest queued event (``None`` when empty).

        Part of the engine-backend API (DESIGN.md §13): observers such as
        the sanitizer use this instead of reaching into the heap, so it
        works identically against the classic heap and the batched
        calendar queue.
        """
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        """Process one event.  Returns ``False`` when the heap is empty."""
        if not self._heap:
            return False
        time, _seq, fn, args = heapq.heappop(self._heap)
        self.now = time
        self.events_processed += 1
        fn(*args)
        return True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run until the heap drains, ``stop()`` is called, ``until`` cycles
        pass, or ``max_events`` events fire.  Returns events processed.
        """
        self._stopped = False
        processed = 0
        if until is None and max_events is None:
            if self.watcher is None:
                # Fast path (the common full-run case): pop/dispatch inline
                # with the heap and heappop bound to locals, writing ``now``
                # only when the cycle advances (same-cycle drains batch under
                # one timestamp).  ``events_processed`` is settled in bulk
                # after the loop; callbacks observe identical ``now`` values
                # and identical event order as the general loop below.
                heap = self._heap
                pop = heapq.heappop
                now = self.now
                while heap and not self._stopped:
                    time, _seq, fn, args = pop(heap)
                    if time != now:
                        self.now = now = time
                    fn(*args)
                    processed += 1
                self.events_processed += processed
                return processed
            return self._run_watched()
        watcher = self.watcher
        countdown = self.watch_interval
        while self._heap and not self._stopped:
            if until is not None and self._heap[0][0] > until:
                self.now = until
                break
            if max_events is not None and processed >= max_events:
                break
            self.step()
            processed += 1
            if watcher is not None:
                countdown -= 1
                if countdown <= 0:
                    countdown = self.watch_interval
                    watcher()
        return processed

    def _run_watched(self) -> int:
        """Full run with the sanitizer watcher invoked every
        ``watch_interval`` events.  Identical event order, ``now``
        batching, and ``events_processed`` accounting as the fast loop —
        the watcher observes state between events and must not mutate it.
        """
        heap = self._heap
        pop = heapq.heappop
        now = self.now
        base = self.events_processed
        processed = 0
        watcher = self.watcher
        interval = self.watch_interval
        countdown = interval
        while heap and not self._stopped:
            time, _seq, fn, args = pop(heap)
            if time != now:
                self.now = now = time
            fn(*args)
            processed += 1
            countdown -= 1
            if countdown <= 0:
                countdown = interval
                self.events_processed = base + processed
                watcher()
        self.events_processed = base + processed
        return processed
