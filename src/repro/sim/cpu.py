"""Core front-end / ROB model.

The paper's cores are 8-issue out-of-order with a 256-entry ROB (Table VII).
For a last-level-cache study, what the core model must get right is the
*shape of memory concurrency*: how many misses a core keeps outstanding, and
how much compute is available to overlap them.  We model:

* a trace of records ``(pc, addr, is_write, gap)`` where ``gap`` counts the
  non-memory instructions preceding the access,
* an issue-width-limited front end: dispatching a record's ``gap + 1``
  instructions advances a fractional front-end clock by ``(gap+1)/width``,
* a ROB occupancy window in instruction slots with in-order retirement:
  a record's slots are claimed at dispatch and released when the record and
  all older records have completed,
* non-blocking memory: loads/stores issue to L1D when they pass the front
  end and complete whenever the hierarchy responds.

Following the paper's methodology ("we warm up each core using 50M
instructions ... then run simulation over the next 200M instructions"),
each core first retires ``warmup_records`` records unmeasured; IPC is then
measured over the next ``measure_records`` records.  After a core finishes
its measured region it keeps replaying its trace to maintain pressure on
shared resources until every core has finished (the CRC-2/DPC-3 multi-core
methodology the paper follows).
"""

from __future__ import annotations

from collections import deque
from math import ceil
from typing import (TYPE_CHECKING, Any, Callable, Deque, List, Optional,
                    Sequence)

from .config import CoreConfig
from .engine import Engine
from .request import AccessType, MemRequest

if TYPE_CHECKING:
    from .cache import Cache


class _RobEntry:
    __slots__ = ("slots", "done", "measured", "deferred")

    def __init__(self, slots: int, measured: bool) -> None:
        self.slots = slots
        self.done = False
        self.measured = measured
        # requests address-dependent on this one (lazily allocated)
        self.deferred: Optional[List["MemRequest"]] = None


class Core:
    """One core consuming a memory-access trace."""

    __slots__ = (
        "core_id", "engine", "l1", "records", "cfg", "measure_records",
        "warmup_records", "replay", "start_offset", "on_finish", "on_warm",
        "_idx", "_rob", "_prev_entry", "_rob_occ", "_front_time", "_stopped",
        "dispatched_instructions", "dispatched_records", "retired_records",
        "retired_instructions", "warm", "measure_start_time", "finished",
        "finish_time", "_complete_callback", "tracer", "_trace_tid",
    )

    def __init__(self, core_id: int, engine: Engine, l1: "Cache",
                 records: Sequence, cfg: CoreConfig,
                 measure_records: Optional[int] = None,
                 warmup_records: int = 0,
                 replay: bool = True,
                 start_offset: int = 0,
                 on_finish: Optional[Callable[["Core"], None]] = None,
                 on_warm: Optional[Callable[["Core"], None]] = None) -> None:
        self.core_id = core_id
        self.engine = engine
        self.l1 = l1
        self.records = records
        self.cfg = cfg
        self.measure_records = (
            len(records) if measure_records is None else measure_records)
        self.warmup_records = warmup_records
        self.replay = replay
        self.start_offset = start_offset
        self.on_finish = on_finish
        self.on_warm = on_warm

        self._idx = 0
        self._rob: Deque[_RobEntry] = deque()
        self._prev_entry: Optional[_RobEntry] = None
        self._rob_occ = 0
        self._front_time: float = float(start_offset)
        self._stopped = False

        # Measurement ----------------------------------------------------
        self.dispatched_instructions = 0
        self.dispatched_records = 0
        self.retired_records = 0            # total, warmup included
        self.retired_instructions = 0       # measured region only
        self.warm = warmup_records == 0
        self.measure_start_time = start_offset
        self.finished = False
        self.finish_time = 0

        if self.measure_records == 0 or not records:
            self.finished = True

        # Shared completion callback: one bound method for every request
        # (the request carries its ROB entry) instead of a closure per
        # dispatched record.
        self._complete_callback = self._complete_cb

        # Optional event tracer (repro.obs): the core is where a request
        # lifecycle is sampled; ``None`` keeps dispatch untraced.
        self.tracer: Optional[Any] = None
        self._trace_tid = f"core{core_id}"

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the first dispatch (called by the System)."""
        if self.finished:
            if self.on_finish is not None:
                self.on_finish(self)
            return
        self.engine.at(self.start_offset, self._dispatch)

    def stop(self) -> None:
        """Stop dispatching new work (all cores' measured regions done)."""
        self._stopped = True

    # ------------------------------------------------------------------
    @property
    def ipc(self) -> float:
        """IPC over the measured region (valid once ``finished``)."""
        cycles = self.finish_time - self.measure_start_time
        return self.retired_instructions / cycles if cycles > 0 else 0.0

    @property
    def measured_cycles(self) -> int:
        return self.finish_time - self.measure_start_time

    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        """Consume records while the ROB has room, pacing the front end.

        The loop keeps its counters in locals (written back on exit):
        nothing downstream of ``l1.access`` runs synchronously back into
        this core, so the object state only needs to be coherent between
        dispatch rounds, not between loop iterations.
        """
        if self._stopped:
            return
        engine = self.engine
        now = engine.now
        width = self.cfg.issue_width
        rob_limit = self.cfg.rob_entries
        l1_access = self.l1.access
        rob_append = self._rob.append
        core_id = self.core_id
        callback = self._complete_callback
        records = self.records
        n_records = len(records)
        replay = self.replay
        warmup = self.warmup_records
        measure_end = warmup + self.measure_records
        rfo = AccessType.RFO
        load = AccessType.LOAD
        tracer = self.tracer
        trace_tid = self._trace_tid
        idx = self._idx
        rob_occ = self._rob_occ
        front_time = self._front_time
        dispatched = self.dispatched_records
        try:
            while True:
                if dispatched >= measure_end and not replay:
                    return
                if idx >= n_records:
                    if not replay:
                        return
                    idx = 0
                rec = records[idx]
                slots = rec.gap + 1
                if rob_occ + slots > rob_limit:
                    return              # retirement will re-trigger dispatch
                idx += 1
                measured = warmup <= dispatched < measure_end
                dispatched += 1
                self.dispatched_instructions += slots
                rob_occ += slots
                entry = _RobEntry(slots, measured)
                rob_append(entry)
                if front_time < now:
                    front_time = now + slots / width
                else:
                    front_time += slots / width
                issue_cycle = int(ceil(front_time))
                if issue_cycle < now:
                    issue_cycle = now
                req = MemRequest(rec.addr, rec.pc, core_id,
                                 rfo if rec.is_write else load,
                                 issue_cycle, callback)
                req.rob_entry = entry
                if tracer is not None and tracer.take():
                    req.trace = True
                    tracer.span_begin(req, trace_tid, issue_cycle)
                prev = self._prev_entry
                self._prev_entry = entry
                if rec.dep and prev is not None and not prev.done:
                    # Address-dependent load: the pointer value arrives only
                    # when the previous access completes; hold the issue.
                    if prev.deferred is None:
                        prev.deferred = []
                    prev.deferred.append(req)
                elif issue_cycle > now:
                    engine.post(issue_cycle, l1_access, req)
                else:
                    l1_access(req)
        finally:
            self._idx = idx
            self._rob_occ = rob_occ
            self._front_time = front_time
            self.dispatched_records = dispatched

    def _complete_cb(self, req: MemRequest, _time: int) -> None:
        if req.trace and self.tracer is not None:
            self.tracer.span_end(req, self._trace_tid, self.engine.now)
        self._complete(req.rob_entry)

    def _complete(self, entry: _RobEntry) -> None:
        entry.done = True
        if entry.deferred:
            for req in entry.deferred:
                self.l1.access(req)
            entry.deferred = None
        self._retire()
        self._dispatch()

    def _retire(self) -> None:
        rob = self._rob
        if not rob or not rob[0].done:
            return
        now = self.engine.now
        while rob and rob[0].done:
            entry = rob.popleft()
            self._rob_occ -= entry.slots
            self.retired_records += 1
            if not self.warm:
                if self.retired_records >= self.warmup_records:
                    self.warm = True
                    self.measure_start_time = now
                    if self.on_warm is not None:
                        self.on_warm(self)
                continue
            if entry.measured and not self.finished:
                self.retired_instructions += entry.slots
                if (self.retired_records
                        >= self.warmup_records + self.measure_records):
                    self.finished = True
                    self.finish_time = now
                    if self.on_finish is not None:
                        self.on_finish(self)
