"""Miss Status Holding Registers.

The MSHR tracks every outstanding miss of a cache, merges secondary misses to
the same block, and applies back-pressure when full.  As in the paper
(Section IV-B), each entry carries a ``pmc`` accumulator that the PMC
Measurement Logic updates during active pure miss cycles, plus the analogous
``mlp_cost`` accumulator used by SBAR / M-CARE.

``MSHREntry`` is a ``__slots__`` class (identity semantics — entries live
in monitor sets): one is allocated per miss and its accumulators are
updated on every PML interval sweep, so both allocation and attribute
access sit on the simulator's hot path.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .request import AccessType, MemRequest


class MSHREntry:
    """One outstanding miss (one block) and everything merged into it."""

    __slots__ = (
        "block", "primary", "issue_time", "core", "waiters", "rfo",
        "pmc", "mlp_cost", "is_pure", "hit_miss_overlap",
        "prefetch_only", "instr_at_issue",
    )

    def __init__(self, block: int, primary: MemRequest, issue_time: int,
                 core: int, waiters: Optional[List[MemRequest]] = None) -> None:
        self.block = block
        self.primary = primary
        self.issue_time = issue_time
        self.core = core
        rtype = primary.rtype
        if waiters is None:
            self.waiters = [primary]
            #: any waiter is an RFO (maintained on merge; the fill path
            #: reads this once per miss instead of rescanning the waiters)
            self.rfo = rtype == AccessType.RFO
        else:
            waiters.append(primary)
            self.waiters = waiters
            self.rfo = any(w.rtype == AccessType.RFO for w in waiters)

        # --- concurrency bookkeeping (updated by the ConcurrencyMonitor) --
        self.pmc = 0.0               # pure miss contribution accumulated so far
        self.mlp_cost = 0.0          # MLP-based cost accumulated so far
        self.is_pure = False         # had >=1 pure miss cycle
        self.hit_miss_overlap = False  # >=1 miss cycle hidden under base cycles

        # --- provenance ---------------------------------------------------
        #: no demand request merged in yet
        self.prefetch_only = rtype == AccessType.PREFETCH
        self.instr_at_issue = 0      # core's instruction count when miss issued

    def merge(self, req: MemRequest) -> None:
        """Attach a secondary miss to this entry."""
        self.waiters.append(req)
        rtype = req.rtype
        if rtype != AccessType.PREFETCH:
            # A demand merged under a prefetch-initiated miss: the block is
            # no longer a pure prefetch (ChampSim's prefetch promotion).
            self.prefetch_only = False
            if rtype == AccessType.RFO:
                self.rfo = True

    @property
    def has_rfo(self) -> bool:
        return self.rfo

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MSHREntry(block={self.block:#x}, core={self.core}, "
                f"waiters={len(self.waiters)}, pmc={self.pmc:.1f})")


class MSHR:
    """Fixed-capacity MSHR file for one cache."""

    __slots__ = ("capacity", "_entries", "peak_occupancy", "merges",
                 "allocations")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("MSHR capacity must be >= 1")
        self.capacity = capacity
        self._entries: Dict[int, MSHREntry] = {}
        # peak occupancy / merge statistics
        self.peak_occupancy = 0
        self.merges = 0
        self.allocations = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def lookup(self, block: int) -> Optional[MSHREntry]:
        return self._entries.get(block)

    def allocate(self, req: MemRequest, time: int) -> MSHREntry:
        """Allocate a new entry for ``req``'s block.  Caller checks ``full``."""
        entries = self._entries
        if len(entries) >= self.capacity:
            raise RuntimeError("MSHR allocate on full file")
        block = req.block
        if block in entries:
            raise RuntimeError(f"duplicate MSHR allocation for block {block:#x}")
        entry = MSHREntry(block, req, time, req.core)
        entries[block] = entry
        self.allocations += 1
        if len(entries) > self.peak_occupancy:
            self.peak_occupancy = len(entries)
        return entry

    def merge(self, block: int, req: MemRequest) -> MSHREntry:
        entry = self._entries[block]
        entry.merge(req)
        self.merges += 1
        return entry

    def free(self, block: int) -> MSHREntry:
        return self._entries.pop(block)

    def outstanding_for_core(self, core: int) -> int:
        """N_x in Algorithm 1: outstanding misses from ``core`` at this level."""
        return sum(1 for e in self._entries.values() if e.core == core)

    def entries_for_core(self, core: int) -> List[MSHREntry]:
        return [e for e in self._entries.values() if e.core == core]
