"""Miss Status Holding Registers.

The MSHR tracks every outstanding miss of a cache, merges secondary misses to
the same block, and applies back-pressure when full.  As in the paper
(Section IV-B), each entry carries a ``pmc`` accumulator that the PMC
Measurement Logic updates during active pure miss cycles, plus the analogous
``mlp_cost`` accumulator used by SBAR / M-CARE.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .request import AccessType, MemRequest


@dataclass(eq=False)  # identity semantics: entries live in monitor sets
class MSHREntry:
    """One outstanding miss (one block) and everything merged into it."""

    block: int
    primary: MemRequest
    issue_time: int
    core: int
    waiters: List[MemRequest] = field(default_factory=list)

    # --- concurrency bookkeeping (updated by the ConcurrencyMonitor) ------
    pmc: float = 0.0             # pure miss contribution accumulated so far
    mlp_cost: float = 0.0        # MLP-based cost accumulated so far
    is_pure: bool = False        # had >=1 pure miss cycle
    hit_miss_overlap: bool = False  # >=1 miss cycle hidden under base cycles

    # --- provenance -------------------------------------------------------
    prefetch_only: bool = True   # no demand request merged in yet
    instr_at_issue: int = 0      # core's instruction count when miss issued

    def __post_init__(self) -> None:
        self.waiters.append(self.primary)
        if self.primary.rtype != AccessType.PREFETCH:
            self.prefetch_only = False

    def merge(self, req: MemRequest) -> None:
        """Attach a secondary miss to this entry."""
        self.waiters.append(req)
        if req.rtype != AccessType.PREFETCH:
            # A demand merged under a prefetch-initiated miss: the block is
            # no longer a pure prefetch (ChampSim's prefetch promotion).
            self.prefetch_only = False

    @property
    def has_rfo(self) -> bool:
        return any(w.rtype == AccessType.RFO for w in self.waiters)


class MSHR:
    """Fixed-capacity MSHR file for one cache."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("MSHR capacity must be >= 1")
        self.capacity = capacity
        self._entries: Dict[int, MSHREntry] = {}
        # peak occupancy / merge statistics
        self.peak_occupancy = 0
        self.merges = 0
        self.allocations = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def lookup(self, block: int) -> Optional[MSHREntry]:
        return self._entries.get(block)

    def allocate(self, req: MemRequest, time: int) -> MSHREntry:
        """Allocate a new entry for ``req``'s block.  Caller checks ``full``."""
        if self.full:
            raise RuntimeError("MSHR allocate on full file")
        if req.block in self._entries:
            raise RuntimeError(f"duplicate MSHR allocation for block {req.block:#x}")
        entry = MSHREntry(block=req.block, primary=req, issue_time=time, core=req.core)
        self._entries[req.block] = entry
        self.allocations += 1
        if len(self._entries) > self.peak_occupancy:
            self.peak_occupancy = len(self._entries)
        return entry

    def merge(self, block: int, req: MemRequest) -> MSHREntry:
        entry = self._entries[block]
        entry.merge(req)
        self.merges += 1
        return entry

    def free(self, block: int) -> MSHREntry:
        return self._entries.pop(block)

    def outstanding_for_core(self, core: int) -> int:
        """N_x in Algorithm 1: outstanding misses from ``core`` at this level."""
        return sum(1 for e in self._entries.values() if e.core == core)

    def entries_for_core(self, core: int) -> List[MSHREntry]:
        return [e for e in self._entries.values() if e.core == core]
