"""Trace-driven multi-core cache-hierarchy simulator (the ChampSim substrate)."""

from .config import (
    BLOCK_BITS,
    BLOCK_SIZE,
    CacheConfig,
    CoreConfig,
    DRAMConfig,
    SystemConfig,
)
from .engine import Engine, EngineError
from .request import AccessType, MemRequest
from .mshr import MSHR, MSHREntry
from .cache import Cache, CacheBlock, CacheStats
from .dram import DRAM, DRAMStats
from .cpu import Core
from .stats import SimResult
from .system import System, simulate

__all__ = [
    "BLOCK_BITS", "BLOCK_SIZE", "CacheConfig", "CoreConfig", "DRAMConfig",
    "SystemConfig", "Engine", "EngineError", "AccessType", "MemRequest",
    "MSHR", "MSHREntry", "Cache", "CacheBlock", "CacheStats", "DRAM",
    "DRAMStats", "Core", "SimResult", "System", "simulate",
]
