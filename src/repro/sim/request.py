"""Memory request objects flowing through the hierarchy.

A core emits one :class:`MemRequest` per trace record; each cache level that
misses creates a *child* request toward the next level, wiring its own fill
handler as the child's callback.  Completion information that replacement
policies consume (the measured PMC / MLP-based cost of the miss, prefetch and
writeback provenance) is carried on the request.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Callable, Optional

from .config import BLOCK_BITS


class AccessType(IntEnum):
    """Request classes, mirroring ChampSim's demand/RFO/prefetch/writeback."""

    LOAD = 0
    RFO = 1          # store miss fetch (read-for-ownership)
    PREFETCH = 2
    WRITEBACK = 3

    @property
    def is_demand(self) -> bool:
        return self in (AccessType.LOAD, AccessType.RFO)


_next_request_id = 0


def _take_request_id() -> int:
    global _next_request_id
    _next_request_id += 1
    return _next_request_id


@dataclass
class MemRequest:
    """One memory access in flight.

    ``callback(request, time)`` fires when the data is available to the
    requester.  Writebacks have no callback.
    """

    addr: int
    pc: int
    core: int
    rtype: AccessType
    created: int = 0
    callback: Optional[Callable[["MemRequest", int], None]] = None
    req_id: int = field(default_factory=_take_request_id)

    # Filled in as the request is serviced --------------------------------
    completed: int = -1          # cycle data became available
    served_by: str = ""          # name of the level that supplied the data

    @property
    def block(self) -> int:
        """Block-aligned address (cache line number)."""
        return self.addr >> BLOCK_BITS

    @property
    def is_prefetch(self) -> bool:
        return self.rtype == AccessType.PREFETCH

    @property
    def is_writeback(self) -> bool:
        return self.rtype == AccessType.WRITEBACK

    def child(self, rtype: Optional[AccessType] = None,
              callback: Optional[Callable[["MemRequest", int], None]] = None,
              created: int = 0) -> "MemRequest":
        """A request for the same block sent to the next level down."""
        return MemRequest(
            addr=self.addr,
            pc=self.pc,
            core=self.core,
            rtype=self.rtype if rtype is None else rtype,
            created=created,
            callback=callback,
        )

    def respond(self, time: int, served_by: str = "") -> None:
        """Deliver data to the requester at ``time``."""
        self.completed = time
        if served_by:
            self.served_by = served_by
        if self.callback is not None:
            self.callback(self, time)
