"""Memory request objects flowing through the hierarchy.

A core emits one :class:`MemRequest` per trace record; each cache level that
misses creates a *child* request toward the next level, wiring its own fill
handler as the child's callback.  Completion information that replacement
policies consume (the measured PMC / MLP-based cost of the miss, prefetch and
writeback provenance) is carried on the request.

``MemRequest`` is deliberately a ``__slots__`` class rather than a
dataclass: one is allocated per trace record per level, so construction
cost and attribute access are on the simulator's hot path.  ``block`` and
``is_demand`` are precomputed at construction instead of derived per use
(the hierarchy reads them several times per request), and the
``mshr_entry`` / ``rob_entry`` fields let the cache fill path and the
core completion path use cached bound methods as callbacks instead of
allocating a closure per miss.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Any, Callable, Optional

from .config import BLOCK_BITS


class AccessType(IntEnum):
    """Request classes, mirroring ChampSim's demand/RFO/prefetch/writeback."""

    LOAD = 0
    RFO = 1          # store miss fetch (read-for-ownership)
    PREFETCH = 2
    WRITEBACK = 3

    @property
    def is_demand(self) -> bool:
        return self in (AccessType.LOAD, AccessType.RFO)


_next_request_id = 0


def _take_request_id() -> int:
    global _next_request_id
    _next_request_id += 1
    return _next_request_id


class MemRequest:
    """One memory access in flight.

    ``callback(request, time)`` fires when the data is available to the
    requester.  Writebacks have no callback.
    """

    __slots__ = (
        "addr", "pc", "core", "rtype", "created", "callback", "req_id",
        "completed", "served_by", "block", "is_demand",
        "mshr_entry", "rob_entry", "trace",
    )

    def __init__(self, addr: int, pc: int, core: int, rtype: AccessType,
                 created: int = 0,
                 callback: Optional[Callable[["MemRequest", int], None]] = None,
                 req_id: Optional[int] = None) -> None:
        global _next_request_id
        self.addr = addr
        self.pc = pc
        self.core = core
        self.rtype = rtype
        self.created = created
        self.callback = callback
        if req_id is None:
            _next_request_id += 1
            req_id = _next_request_id
        self.req_id = req_id

        # Filled in as the request is serviced ----------------------------
        self.completed = -1          # cycle data became available
        self.served_by = ""          # name of the level that supplied the data

        # Precomputed hot-path fields -------------------------------------
        self.block = addr >> BLOCK_BITS       # cache line number
        self.is_demand = rtype <= AccessType.RFO   # LOAD or RFO
        # set by Cache._start_miss on children / Core._dispatch on core
        # requests; typed Any to avoid import cycles on the hot path.
        self.mshr_entry: Optional[Any] = None
        self.rob_entry: Optional[Any] = None
        # True when the event tracer sampled this request's lifecycle;
        # propagated to child requests so spans nest across levels.
        self.trace = False

    @property
    def is_prefetch(self) -> bool:
        return self.rtype == AccessType.PREFETCH

    @property
    def is_writeback(self) -> bool:
        return self.rtype == AccessType.WRITEBACK

    def child(self, rtype: Optional[AccessType] = None,
              callback: Optional[Callable[["MemRequest", int], None]] = None,
              created: int = 0) -> "MemRequest":
        """A request for the same block sent to the next level down."""
        return MemRequest(
            self.addr,
            self.pc,
            self.core,
            self.rtype if rtype is None else rtype,
            created=created,
            callback=callback,
        )

    def respond(self, time: int, served_by: str = "") -> None:
        """Deliver data to the requester at ``time``."""
        self.completed = time
        if served_by:
            self.served_by = served_by
        if self.callback is not None:
            self.callback(self, time)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MemRequest(addr={self.addr:#x}, pc={self.pc:#x}, "
                f"core={self.core}, rtype={self.rtype!r}, "
                f"req_id={self.req_id})")
