"""Struct-of-arrays state for the batched backend.

Three SoA stores live here (DESIGN.md §13):

* :class:`SoATagArrays` — the cache tag store as flat numpy arrays, one
  per :class:`~repro.sim.cache.CacheBlock` field, indexed by
  ``set_idx * ways + way``.  The batched cache mutates these directly on
  its fused paths; :meth:`materialize` rebuilds classic ``CacheBlock``
  rows on demand for introspection (sanitizer, tests).
* :class:`SoAMSHR` — the classic MSHR with numpy slot views *derived on
  demand* from the entry dict, giving vectorized occupancy queries
  without per-miss array maintenance.  The
  :class:`~repro.sim.mshr.MSHREntry` objects are kept: the concurrency
  monitor tracks entries by identity and the waiter/merge protocol
  hangs off them.
* :class:`TraceColumns` — a core's trace decomposed into per-field numpy
  columns plus plain-list decode caches for the scalar dispatch loop
  (CPython indexes a list several times faster than a numpy scalar; the
  arrays are the storage of record and feed the batched ROB ring).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..cache import CacheBlock
from ..mshr import MSHR
from ..request import AccessType


class SoATagArrays:
    """Flat struct-of-arrays tag store for one cache level."""

    __slots__ = ("sets", "ways", "valid", "tag", "dirty", "prefetch",
                 "core", "pc")

    def __init__(self, sets: int, ways: int) -> None:
        self.sets = sets
        self.ways = ways
        n = sets * ways
        self.valid = np.zeros(n, dtype=np.uint8)
        self.tag = np.full(n, -1, dtype=np.int64)
        self.dirty = np.zeros(n, dtype=np.uint8)
        self.prefetch = np.zeros(n, dtype=np.uint8)
        self.core = np.full(n, -1, dtype=np.int64)
        self.pc = np.zeros(n, dtype=np.int64)

    def valid_blocks(self) -> int:
        return int(self.valid.sum())

    def materialize_set(self, set_idx: int) -> List[CacheBlock]:
        """Classic ``CacheBlock`` snapshot of one set (introspection)."""
        base = set_idx * self.ways
        item = self.valid.item
        blocks = []
        for way in range(self.ways):
            fi = base + way
            blk = CacheBlock()
            blk.valid = bool(item(fi))
            blk.tag = self.tag.item(fi)
            blk.dirty = bool(self.dirty.item(fi))
            blk.prefetch = bool(self.prefetch.item(fi))
            blk.core = self.core.item(fi)
            blk.pc = self.pc.item(fi)
            blocks.append(blk)
        return blocks

    def materialize(self) -> List[List[CacheBlock]]:
        """Snapshot of the whole array as classic per-set block lists."""
        return [self.materialize_set(s) for s in range(self.sets)]

    def set_tags(self, set_idx: int) -> List[int]:
        """Valid tags of one set, in way order (tests/assertions)."""
        base = set_idx * self.ways
        v = self.valid[base:base + self.ways]
        t = self.tag[base:base + self.ways]
        return [int(x) for x in t[v != 0]]


class SoAMSHR(MSHR):
    """MSHR file whose numpy slot views are *derived*, not maintained.

    An early iteration kept parallel ``slot_*`` arrays updated inline on
    every allocate/free, but profiling showed the per-miss numpy scalar
    writes (~70ns each, x5 per miss, both directions) cost far more than
    they saved — occupancy queries are off the per-event path.  The hot
    allocate/free paths therefore touch only the inherited entry dict;
    :meth:`slot_view` rebuilds the column arrays from ``_entries`` when
    a vectorized consumer actually asks.
    """

    __slots__ = ()

    def slot_view(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """``(block, core, issue_time)`` int64 columns over live entries.

        Rows are in entry-dict insertion order (allocation order among
        currently outstanding misses).
        """
        entries = list(self._entries.values())
        n = len(entries)
        block = np.fromiter((e.block for e in entries), dtype=np.int64,
                            count=n)
        core = np.fromiter((e.core for e in entries), dtype=np.int64,
                           count=n)
        issue = np.fromiter((e.issue_time for e in entries),
                            dtype=np.int64, count=n)
        return block, core, issue

    def outstanding_for_core(self, core: int) -> int:
        _, cores, _ = self.slot_view()
        return int((cores == core).sum())

    def occupied_slots(self) -> int:
        return len(self._entries)


class TraceColumns:
    """One core's trace as numpy columns + scalar decode caches."""

    __slots__ = ("n", "pc", "addr", "slots", "is_write", "dep",
                 "pc_l", "addr_l", "slots_l", "dep_l", "rtype_l",
                 "slotw_l")

    def __init__(self, records: Sequence, issue_width: int) -> None:
        self.n = n = len(records)
        self.pc = np.fromiter((r.pc for r in records), dtype=np.int64,
                              count=n)
        self.addr = np.fromiter((r.addr for r in records), dtype=np.int64,
                                count=n)
        # a record occupies gap+1 ROB slots (its gap compute instructions
        # plus the access itself)
        self.slots = np.fromiter((r.gap + 1 for r in records),
                                 dtype=np.int64, count=n)
        self.is_write = np.fromiter((r.is_write for r in records),
                                    dtype=np.uint8, count=n)
        self.dep = np.fromiter((r.dep for r in records), dtype=np.uint8,
                               count=n)
        # Decode caches for the dispatch loop: plain lists index ~5x
        # faster than numpy scalars in CPython, and the rtype/slot-width
        # values are precomputed once instead of per dispatch.
        self.pc_l = self.pc.tolist()
        self.addr_l = self.addr.tolist()
        self.slots_l = self.slots.tolist()
        self.dep_l = self.dep.tolist()
        rfo, load = AccessType.RFO, AccessType.LOAD
        self.rtype_l = [rfo if w else load for w in self.is_write.tolist()]
        self.slotw_l = [s / issue_width for s in self.slots_l]
