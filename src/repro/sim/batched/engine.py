"""Calendar-queue event engine: epoch-batched draining.

The classic :class:`~repro.sim.engine.Engine` pays one ``heappush`` and
one ``heappop`` per event.  Most events cluster on a handful of distinct
cycles (every cache level echoes an access exactly ``latency`` cycles
later), so the heap mostly re-discovers the same few timestamps.

:class:`EpochEngine` keeps a **calendar**: a ``time -> [event, ...]``
bucket dict plus a small min-heap over the *distinct* times only.  A run
pops one timestamp, then drains that cycle's whole bucket with a single
index walk — events scheduled *into the live cycle while it drains* are
appended and picked up by the same walk.

Equivalence to the classic heap order
-------------------------------------
The classic engine orders events by ``(time, seq)`` with a global
monotonic sequence number.  Here, events land in per-time buckets in
scheduling order, buckets are drained front to back, and distinct times
are drained in heap order — so the dispatch order is exactly "by time,
then by scheduling order", identical to the classic ``(time, seq)``
order.  A callback that schedules into the current cycle appends behind
every event already queued for that cycle, which is precisely where a
larger ``seq`` would have placed it.

The public surface matches :class:`~repro.sim.engine.Engine`
(``at``/``after``/``post``, ``run``/``step``/``stop``, ``pending``,
``next_event_time``, ``events_processed``, and the composable watcher
registration), so shared components (DRAM, memory controller,
concurrency monitor, sanitizer, metrics sampler) run unmodified against
either engine.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..engine import EngineError


class EpochEngine:
    """Deterministic calendar-queue engine with integer-cycle time."""

    __slots__ = ("now", "_buckets", "_times", "_stopped", "events_processed",
                 "watcher", "watch_interval", "_watchers",
                 "_live_bucket", "_live_idx")

    def __init__(self) -> None:
        self.now: int = 0
        #: calendar: absolute cycle -> events of that cycle, in scheduling
        #: order.  Hot components append here directly (the batched
        #: equivalent of the classic inlined ``heappush``).
        self._buckets: Dict[int, List[Tuple[Callable[..., None], Tuple[Any, ...]]]] = {}
        #: min-heap over the *distinct* times present in ``_buckets``
        self._times: List[int] = []
        self._stopped: bool = False
        self.events_processed: int = 0
        # Watcher slots mirror the classic engine (see Engine.watcher).
        self.watcher: Optional[Callable[[], None]] = None
        self.watch_interval: int = 4096
        self._watchers: List[List[Any]] = []
        # Live-bucket cursor, maintained only while a watcher is invoked
        # mid-drain so ``next_event_time`` stays exact for observers.
        self._live_bucket: Optional[List] = None
        self._live_idx: int = 0

    # ------------------------------------------------------------------
    # Observer registration (identical semantics to the classic engine)
    # ------------------------------------------------------------------
    @property
    def watchers(self) -> Tuple[Callable[[], None], ...]:
        if self._watchers:
            return tuple(entry[0] for entry in self._watchers)
        return (self.watcher,) if self.watcher is not None else ()

    def add_watcher(self, fn: Callable[[], None], interval: int) -> None:
        if interval < 1:
            raise EngineError(f"watch interval must be >= 1, got {interval}")
        if self.watcher is not None and not self._watchers:
            raise EngineError(
                "engine.watcher was assigned directly; use add_watcher for "
                "composable observers")
        if any(entry[0] == fn for entry in self._watchers):
            raise EngineError("watcher already registered")
        self._watchers.append([fn, interval, interval])
        self._rewire_watchers()

    def remove_watcher(self, fn: Callable[[], None]) -> None:
        kept = [entry for entry in self._watchers if entry[0] != fn]
        if len(kept) == len(self._watchers):
            return
        self._watchers = kept
        self._rewire_watchers()

    def _rewire_watchers(self) -> None:
        entries = self._watchers
        if not entries:
            self.watcher = None
        elif len(entries) == 1:
            self.watcher = entries[0][0]
            self.watch_interval = entries[0][1]
        else:
            base = min(entry[1] for entry in entries)
            for entry in entries:
                entry[2] = entry[1]
            self.watcher = self._fire_watchers
            self.watch_interval = base

    def _fire_watchers(self) -> None:
        base = self.watch_interval
        for entry in self._watchers:
            entry[2] -= base
            if entry[2] <= 0:
                entry[2] = entry[1]
                entry[0]()

    # ------------------------------------------------------------------
    # Save-states (repro.sim.savestate)
    # ------------------------------------------------------------------
    def __getstate__(self):
        """Pickle the calendar with the live drain normalized away.

        Snapshots happen inside a watcher call, mid-bucket: the live
        cycle's bucket still sits in ``_buckets`` *with its drained
        prefix*, and its time has been popped off ``_times``.  Copies
        are normalized exactly the way the run loops requeue on a
        mid-bucket stop — keep only the undrained tail, re-push ``now``
        when a tail exists — so a restored engine re-enters its loop and
        drains the same events in the same order.  ``now`` is the
        minimum of the pushed-back heap: every other entry was scheduled
        strictly later (same-cycle schedules append to the in-dict live
        bucket rather than pushing a time).
        """
        buckets = dict(self._buckets)
        times = list(self._times)
        live = self._live_bucket
        if live is not None:
            tail = live[self._live_idx:]
            if tail:
                buckets[self.now] = tail
                heapq.heappush(times, self.now)
            else:
                buckets.pop(self.now, None)
        state = {slot: getattr(self, slot) for slot in EpochEngine.__slots__}
        state["_buckets"] = buckets
        state["_times"] = times
        state["_live_bucket"] = None
        state["_live_idx"] = 0
        return state

    def __setstate__(self, state) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(self, time: int, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute cycle ``time``."""
        time = int(time)
        if time < self.now:
            raise EngineError(
                f"cannot schedule event at {time} (now={self.now})"
            )
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [(fn, args)]
            heapq.heappush(self._times, time)
        else:
            bucket.append((fn, args))

    def after(self, delay: int, fn: Callable[..., None], *args: Any) -> None:
        if delay < 0:
            raise EngineError(f"negative delay {delay}")
        self.at(self.now + int(delay), fn, *args)

    def post(self, time: int, fn: Callable[..., None], *args: Any) -> None:
        """Unchecked fast path of :meth:`at` (integer ``time >= now``)."""
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [(fn, args)]
            heapq.heappush(self._times, time)
        else:
            bucket.append((fn, args))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    @property
    def pending(self) -> int:
        """Number of events still queued.

        Computed from the calendar so scheduling stays counter-free; the
        live-bucket cursor corrects for the partially drained cycle when
        an observer reads this mid-run (the live bucket stays in
        ``_buckets`` until fully drained).
        """
        n = sum(map(len, self._buckets.values()))
        if self._live_bucket is not None:
            n -= self._live_idx
        return n

    def next_event_time(self) -> Optional[int]:
        """Timestamp of the earliest queued event (``None`` when empty)."""
        live = self._live_bucket
        if live is not None and self._live_idx < len(live):
            return self.now          # current bucket not fully drained
        return self._times[0] if self._times else None

    def step(self) -> bool:
        """Process one event.  Returns ``False`` when the queue is empty."""
        times = self._times
        if not times:
            return False
        t = times[0]
        bucket = self._buckets[t]
        fn, args = bucket.pop(0)
        if not bucket:
            del self._buckets[t]
            heapq.heappop(times)
        self.now = t
        self.events_processed += 1
        fn(*args)
        return True

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Run until the calendar drains, ``stop()`` is called, ``until``
        cycles pass, or ``max_events`` events fire.  Returns events
        processed.  Event order, ``now`` values, and ``events_processed``
        accounting are identical to the classic engine.
        """
        self._stopped = False
        if until is None and max_events is None:
            if self.watcher is None:
                return self._run_fast()
            return self._run_watched()
        return self._run_general(until, max_events)

    def _run_fast(self) -> int:
        """Full-run fast path: bulk bucket drains, no observers."""
        times = self._times
        buckets = self._buckets
        pop = heapq.heappop
        push = heapq.heappush
        processed = 0
        while times and not self._stopped:
            t = pop(times)
            bucket = buckets[t]
            self.now = t
            i = 0
            # A plain for-loop re-checks the list length on every step, so
            # events appended into the live cycle are drained by the same
            # walk — the core of epoch-batched draining.
            for fn, args in bucket:
                i += 1
                fn(*args)
                if self._stopped:
                    break
            processed += i
            if i < len(bucket):
                # stopped mid-bucket: requeue the unprocessed tail
                buckets[t] = bucket[i:]
                push(times, t)
            else:
                del buckets[t]
        self.events_processed += processed
        return processed

    def _run_watched(self) -> int:
        """Full run with the watcher fired every ``watch_interval`` events.

        ``events_processed``/``pending`` are settled and the live-bucket
        cursor exposed before each watcher call, so observers (sanitizer,
        metrics sampler) see exact state between events.
        """
        times = self._times
        buckets = self._buckets
        pop = heapq.heappop
        push = heapq.heappush
        base = self.events_processed
        processed = 0
        interval = self.watch_interval
        countdown = interval
        while times and not self._stopped:
            t = pop(times)
            bucket = buckets[t]
            self.now = t
            i = 0
            while i < len(bucket):
                fn, args = bucket[i]
                i += 1
                fn(*args)
                processed += 1
                countdown -= 1
                if countdown <= 0:
                    countdown = interval
                    self.events_processed = base + processed
                    watcher = self.watcher
                    if watcher is not None:
                        self._live_bucket = bucket
                        self._live_idx = i
                        watcher()
                        self._live_bucket = None
                if self._stopped:
                    break
            if i < len(bucket):
                buckets[t] = bucket[i:]
                push(times, t)
            else:
                del buckets[t]
        self.events_processed = base + processed
        return processed

    def _run_general(self, until: Optional[int],
                     max_events: Optional[int]) -> int:
        """Bounded run (``until``/``max_events``), watcher-aware."""
        times = self._times
        buckets = self._buckets
        processed = 0
        watcher = self.watcher
        countdown = self.watch_interval
        while times and not self._stopped:
            if max_events is not None and processed >= max_events:
                break
            t = times[0]
            if until is not None and t > until:
                self.now = until
                break
            heapq.heappop(times)
            bucket = buckets[t]
            self.now = t
            i = 0
            while i < len(bucket):
                fn, args = bucket[i]
                i += 1
                self.events_processed += 1
                fn(*args)
                processed += 1
                if watcher is not None:
                    countdown -= 1
                    if countdown <= 0:
                        countdown = self.watch_interval
                        self._live_bucket = bucket
                        self._live_idx = i
                        watcher()
                        self._live_bucket = None
                if self._stopped:
                    break
                if max_events is not None and processed >= max_events:
                    break
            if i < len(bucket):
                buckets[t] = bucket[i:]
                heapq.heappush(times, t)
            else:
                del buckets[t]
        return processed
