"""Batched system: classic topology with the fast components swapped in.

:class:`BatchedSystem` reuses every piece of shared machinery from
:class:`~repro.sim.system.System` — the hierarchy wiring, the PMC
concurrency monitor, warmup/finish bookkeeping, sanitizer and observer
attachment, result assembly — and overrides only the component-class
hooks.  The memory side (DRAM / memory controller) is deliberately *not*
swapped: it schedules through the engine's public API and is cold
relative to the cache levels.

``run()`` additionally disables the garbage collector for the duration
of the drain: the simulator allocates requests/entries in arena-like
bursts with no reference cycles on the hot path, so collector pauses are
pure overhead.  The previous GC state is restored on exit.
"""

from __future__ import annotations

import gc

from .cache import BatchedCache
from .cpu import BatchedCore
from .engine import EpochEngine
from ..stats import SimResult
from ..system import System


class BatchedSystem(System):
    """Classic wiring over the calendar engine + SoA cache/core."""

    __slots__ = ()

    engine_cls = EpochEngine
    cache_cls = BatchedCache
    core_cls = BatchedCore

    def run(self) -> SimResult:
        was_enabled = gc.isenabled()
        if was_enabled:
            gc.disable()
        try:
            return super().run()
        finally:
            if was_enabled:
                gc.enable()

    def resume(self) -> SimResult:
        # Same GC discipline as run(): resumed segments execute the very
        # same inner loops, so they get the same allocator behaviour.
        was_enabled = gc.isenabled()
        if was_enabled:
            gc.disable()
        try:
            return super().resume()
        finally:
            if was_enabled:
                gc.enable()

    def _relink(self) -> None:
        # Save-states drop the caches' engine-calendar aliases (see
        # BatchedCache.__getstate__); re-bind them to the restored engine.
        for cache in [self.llc] + self.l1s + self.l2s:
            cache.relink_engine()
