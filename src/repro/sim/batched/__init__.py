"""Batched engine backend (DESIGN.md §13).

``repro.sim.batched`` is the ``"batched"`` entry in the backend registry
(:mod:`repro.sim.backends`): a drop-in replacement for the classic
per-event heap simulator built around

* :class:`~repro.sim.batched.engine.EpochEngine` — a calendar-queue event
  engine that drains all events of one cycle in bulk instead of one heap
  pop per event,
* :class:`~repro.sim.batched.cache.BatchedCache` — struct-of-arrays tag
  state (numpy) with fused lookup/fill paths and batched per-set
  replacement-metadata updates for the LRU/SRRIP/CARE hot policies,
* :class:`~repro.sim.batched.cpu.BatchedCore` — precomputed trace columns
  and a struct-of-arrays ROB ring,
* :class:`~repro.sim.batched.system.BatchedSystem` — the classic
  :class:`~repro.sim.system.System` wiring with the fast parts swapped in.

The backend is **bit-identical** to the classic engine: the golden
fixtures under ``tests/golden/`` are regenerated and checked against both
backends, and every fast path carries an equivalence argument in
DESIGN.md §13.
"""

from .engine import EpochEngine
from .system import BatchedSystem

__all__ = ["EpochEngine", "BatchedSystem"]
