"""Batched core: precomputed trace columns + struct-of-arrays ROB ring.

Behaviourally identical to :class:`~repro.sim.cpu.Core`; the differences
are representational (DESIGN.md §13):

* the trace is decomposed once into :class:`~.soa.TraceColumns` (numpy
  columns + scalar decode caches) instead of touching ``TraceRecord``
  tuples per dispatch; record type and fractional slot width are
  precomputed,
* the ROB is a numpy ``done``-flag ring indexed by dispatch ordinal
  instead of a deque of ``_RobEntry`` objects.  Because retirement is
  FIFO, the k-th retired record *is* the k-th dispatched record, so the
  per-entry ``slots`` and ``measured`` fields are recomputed at retire
  time from the ordinal alone (``slots = slots_l[k % n]``,
  ``measured = warmup <= k < measure_end``) — no allocation per record,
* dependence-deferred requests live in a sparse ``ordinal -> [req]``
  dict (the classic lazily-allocated ``_RobEntry.deferred`` list),
* completion + retirement + redispatch are fused into one callback.

The dispatch loop itself replicates the classic pacing arithmetic
verbatim (same fractional ``front_time`` accumulation, same ``ceil``)
so issue cycles are bit-identical.
"""

from __future__ import annotations

from math import ceil
from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence

import numpy as np

from .soa import TraceColumns
from ..config import CoreConfig
from ..request import MemRequest

if TYPE_CHECKING:
    from .cache import BatchedCache
    from .engine import EpochEngine


class BatchedCore:
    """One core consuming a memory-access trace (batched backend)."""

    __slots__ = (
        "core_id", "engine", "l1", "records", "cfg", "measure_records",
        "warmup_records", "replay", "start_offset", "on_finish", "on_warm",
        "_cols", "_done", "_ring_mask", "_deferred", "_idx", "_rob_occ",
        "_front_time", "_stopped",
        "dispatched_instructions", "dispatched_records", "retired_records",
        "retired_instructions", "warm", "measure_start_time", "finished",
        "finish_time", "_complete_callback", "tracer", "_trace_tid",
    )

    def __init__(self, core_id: int, engine: "EpochEngine",
                 l1: "BatchedCache", records: Sequence, cfg: CoreConfig,
                 measure_records: Optional[int] = None,
                 warmup_records: int = 0,
                 replay: bool = True,
                 start_offset: int = 0,
                 on_finish: Optional[Callable[["BatchedCore"], None]] = None,
                 on_warm: Optional[Callable[["BatchedCore"], None]] = None
                 ) -> None:
        self.core_id = core_id
        self.engine = engine
        self.l1 = l1
        self.records = records
        self.cfg = cfg
        self.measure_records = (
            len(records) if measure_records is None else measure_records)
        self.warmup_records = warmup_records
        self.replay = replay
        self.start_offset = start_offset
        self.on_finish = on_finish
        self.on_warm = on_warm

        self._cols = TraceColumns(records, cfg.issue_width)
        # ROB ring: in-flight ordinals span [retired, dispatched), whose
        # width is bounded by rob_entries occupied slots (every record
        # takes >= 1), so a power-of-two ring > rob_entries never aliases.
        cap = 1
        while cap < cfg.rob_entries + 1:
            cap <<= 1
        self._ring_mask = cap - 1
        self._done = np.zeros(cap, dtype=np.uint8)
        self._deferred = {}     # dispatch ordinal -> [MemRequest, ...]

        self._idx = 0
        self._rob_occ = 0
        self._front_time: float = float(start_offset)
        self._stopped = False

        # Measurement ----------------------------------------------------
        self.dispatched_instructions = 0
        self.dispatched_records = 0
        self.retired_records = 0            # total, warmup included
        self.retired_instructions = 0       # measured region only
        self.warm = warmup_records == 0
        self.measure_start_time = start_offset
        self.finished = False
        self.finish_time = 0

        if self.measure_records == 0 or not records:
            self.finished = True

        self._complete_callback = self._complete_cb
        self.tracer: Optional[Any] = None
        self._trace_tid = f"core{core_id}"

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the first dispatch (called by the System)."""
        if self.finished:
            if self.on_finish is not None:
                self.on_finish(self)
            return
        self.engine.at(self.start_offset, self._dispatch)

    def stop(self) -> None:
        """Stop dispatching new work (all cores' measured regions done)."""
        self._stopped = True

    # ------------------------------------------------------------------
    @property
    def ipc(self) -> float:
        """IPC over the measured region (valid once ``finished``)."""
        cycles = self.finish_time - self.measure_start_time
        return self.retired_instructions / cycles if cycles > 0 else 0.0

    @property
    def measured_cycles(self) -> int:
        return self.finish_time - self.measure_start_time

    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        """Consume records while the ROB has room, pacing the front end.

        Counters live in locals (written back on exit): nothing
        downstream of ``l1.access`` runs synchronously back into this
        core, so object state only needs to be coherent between dispatch
        rounds.  ``retired_records`` cannot advance inside the loop, so
        the previous-record done check reads the ring directly.
        """
        if self._stopped:
            return
        engine = self.engine
        now = engine.now
        rob_limit = self.cfg.rob_entries
        cols = self._cols
        slots_l = cols.slots_l
        slotw_l = cols.slotw_l
        addr_l = cols.addr_l
        pc_l = cols.pc_l
        rtype_l = cols.rtype_l
        dep_l = cols.dep_l
        n_records = cols.n
        l1_access = self.l1.access
        post = engine.post
        core_id = self.core_id
        callback = self._complete_callback
        replay = self.replay
        measure_end = self.warmup_records + self.measure_records
        tracer = self.tracer
        trace_tid = self._trace_tid
        done = self._done
        mask = self._ring_mask
        tail = self.retired_records
        idx = self._idx
        rob_occ = self._rob_occ
        front_time = self._front_time
        dispatched = self.dispatched_records
        dispatched_instr = self.dispatched_instructions
        try:
            while True:
                if dispatched >= measure_end and not replay:
                    return
                if idx >= n_records:
                    if not replay:
                        return
                    idx = 0
                slots = slots_l[idx]
                if rob_occ + slots > rob_limit:
                    return          # retirement will re-trigger dispatch
                dispatched_instr += slots
                rob_occ += slots
                done[dispatched & mask] = 0
                if front_time < now:
                    front_time = now + slotw_l[idx]
                else:
                    front_time += slotw_l[idx]
                issue_cycle = int(ceil(front_time))
                if issue_cycle < now:
                    issue_cycle = now
                req = MemRequest(addr_l[idx], pc_l[idx], core_id,
                                 rtype_l[idx], issue_cycle, callback)
                req.rob_entry = dispatched
                if tracer is not None and tracer.take():
                    req.trace = True
                    tracer.span_begin(req, trace_tid, issue_cycle)
                dep = dep_l[idx]
                idx += 1
                prev_ord = dispatched
                dispatched += 1
                prev_ord -= 1
                if (dep and prev_ord >= tail
                        and not done[prev_ord & mask]):
                    # Address-dependent load: the pointer value arrives
                    # only when the previous access completes; hold it.
                    deferred = self._deferred
                    lst = deferred.get(prev_ord)
                    if lst is None:
                        deferred[prev_ord] = [req]
                    else:
                        lst.append(req)
                elif issue_cycle > now:
                    post(issue_cycle, l1_access, req)
                else:
                    l1_access(req)
        finally:
            self._idx = idx
            self._rob_occ = rob_occ
            self._front_time = front_time
            self.dispatched_records = dispatched
            self.dispatched_instructions = dispatched_instr

    # ------------------------------------------------------------------
    def _complete_cb(self, req: MemRequest, _time: int) -> None:
        """Fused complete + deferred replay + retire + redispatch."""
        if req.trace and self.tracer is not None:
            self.tracer.span_end(req, self._trace_tid, self.engine.now)
        k = req.rob_entry
        done = self._done
        mask = self._ring_mask
        done[k & mask] = 1
        deferred = self._deferred
        if deferred:
            lst = deferred.pop(k, None)
            if lst is not None:
                l1_access = self.l1.access
                for dreq in lst:
                    l1_access(dreq)

        # ---- retire (classic `_retire`, ordinal-indexed) ----
        tail = self.retired_records
        head = self.dispatched_records
        if tail < head and done[tail & mask]:
            now = self.engine.now
            slots_l = self._cols.slots_l
            n_records = self._cols.n
            warmup = self.warmup_records
            measure_end = warmup + self.measure_records
            rob_occ = self._rob_occ
            warm = self.warm
            finished = self.finished
            retired_instr = self.retired_instructions
            while tail < head and done[tail & mask]:
                k2 = tail           # ordinal being retired
                slots = slots_l[k2 % n_records]
                rob_occ -= slots
                tail += 1
                if not warm:
                    if tail >= warmup:
                        warm = True
                        self.warm = True
                        self.measure_start_time = now
                        self.retired_records = tail
                        self._rob_occ = rob_occ
                        if self.on_warm is not None:
                            self.on_warm(self)
                    continue
                if warmup <= k2 < measure_end and not finished:
                    retired_instr += slots
                    if tail >= measure_end:
                        finished = True
                        self.finished = True
                        self.finish_time = now
                        self.retired_records = tail
                        self._rob_occ = rob_occ
                        self.retired_instructions = retired_instr
                        if self.on_finish is not None:
                            self.on_finish(self)
            self.retired_records = tail
            self._rob_occ = rob_occ
            self.retired_instructions = retired_instr

        self._dispatch()
