"""Batched cache level: SoA tag state + fused access/fill paths.

:class:`BatchedCache` is behaviourally identical to
:class:`~repro.sim.cache.Cache` — same counters, same event order, same
policy decisions — with three structural changes (DESIGN.md §13):

* the tag store is a :class:`~repro.sim.batched.soa.SoATagArrays`
  struct-of-arrays (flat numpy arrays indexed ``set_idx * ways + way``)
  instead of per-way ``CacheBlock`` objects; ``_sets`` materializes
  classic blocks on demand for introspection,
* lookup/hit/miss/install are fused into single functions (the classic
  backend spreads them over ~6 calls per event), and events are appended
  straight into the :class:`~.engine.EpochEngine` calendar bucket,
* replacement metadata for the hot policies is updated **per set in
  bulk**: LRU keeps a flat stamp array and picks victims with ``argmin``;
  SRRIP keeps a flat RRPV array, replaces the classic one-step aging loop
  with a single deficit add (``row += rrpv_max - row.max()``), and picks
  victims with ``argmax``; CARE applies the same deficit transform to the
  policy's own EPV rows (``epv[:] = [x + d for x in epv]``, crediting
  ``epv_aging_rounds += d``) and preserves the RNG draw exactly.  Every
  other policy falls back to the classic per-event hook calls
  (``find_victim``/``on_hit``/``on_fill``/``on_evict``) against a lazy
  block view.

Equivalence arguments for the fast paths are spelled out in DESIGN.md
§13; the golden suite pins them bit-for-bit against the classic backend.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush as _heappush
from typing import TYPE_CHECKING, Any, Callable, Deque, Dict, List, Optional

import numpy as np

from .soa import SoAMSHR, SoATagArrays
from ..cache import CacheStats
from ..config import BLOCK_BITS, CacheConfig
from ..mshr import MSHREntry
from ..request import AccessType, MemRequest
from ...core.care import CAREPolicy, EPV_MAX as _EPV_MAX
from ...policies.base import PolicyAccess
from ...policies.lru import LRUPolicy
from ...policies.srrip import SRRIPPolicy

if TYPE_CHECKING:
    from .engine import EpochEngine
    from ...core.pmc import ConcurrencyMonitor
    from ...policies.base import ReplacementPolicy
    from ...prefetch.base import Prefetcher

_WRITEBACK = AccessType.WRITEBACK
_RFO = AccessType.RFO

#: fast-path selector values (``_pmode``)
_P_GENERIC, _P_LRU, _P_SRRIP, _P_CARE = 0, 1, 2, 3


class _SetView:
    """Lazy classic-blocks view of one set for fallback policy hooks.

    Registered policies never read the ``blocks`` argument (they operate
    on their own metadata), so the common case allocates nothing; a
    policy that does index or iterate it gets classic ``CacheBlock``
    snapshots.  One reusable instance per cache — policies must not
    retain the view across hook calls (none do)."""

    __slots__ = ("_cache", "set_idx")

    def __init__(self, cache: "BatchedCache") -> None:
        self._cache = cache
        self.set_idx = 0

    def __len__(self) -> int:
        return self._cache._ways

    def __getitem__(self, way: int):
        return self._cache.soa.materialize_set(self.set_idx)[way]

    def __iter__(self):
        return iter(self._cache.soa.materialize_set(self.set_idx))


class BatchedCache:
    """One cache level of the batched backend (see module docstring)."""

    __slots__ = (
        "cfg", "name", "engine", "policy", "lower", "monitor", "prefetcher",
        "inclusive", "upper_levels", "instr_counter", "stats", "_set_mask",
        "_set_bits", "_latency", "_ways", "soa", "_valid_a", "_tag_a",
        "_dirty_a", "_pref_a", "_core_a", "_pc_a", "_tag2way", "_valid_count",
        "_dup_tags", "mshr", "_mentries", "_mshr_cap", "_pending", "_fill_cb",
        "_lookup_cb", "_ebuckets", "_etimes", "tracer", "_pmode", "_meta_a",
        "_meta_max", "_clock", "_view",
    )

    def __init__(self, cfg: CacheConfig, engine: "EpochEngine",
                 policy: "ReplacementPolicy",
                 lower: Optional[Any] = None,
                 monitor: Optional["ConcurrencyMonitor"] = None,
                 prefetcher: Optional["Prefetcher"] = None,
                 inclusive: bool = False) -> None:
        if not hasattr(engine, "_buckets"):
            raise TypeError(
                "BatchedCache requires an EpochEngine (calendar queue); "
                f"got {type(engine).__name__}")
        self.cfg = cfg
        self.name = cfg.name
        self.engine = engine
        self.policy = policy
        self.lower = lower
        self.monitor = monitor
        self.prefetcher = prefetcher
        self.inclusive = inclusive
        self.upper_levels: List["BatchedCache"] = []
        self.instr_counter: Optional[Callable[[int], int]] = None
        self.stats = CacheStats()

        self._set_mask = cfg.sets - 1
        self._set_bits = cfg.sets.bit_length() - 1
        self._latency = cfg.latency
        self._ways = cfg.ways
        self.soa = SoATagArrays(cfg.sets, cfg.ways)
        self._valid_a = self.soa.valid
        self._tag_a = self.soa.tag
        self._dirty_a = self.soa.dirty
        self._pref_a = self.soa.prefetch
        self._core_a = self.soa.core
        self._pc_a = self.soa.pc
        # Same lookup index + bookkeeping as the classic cache (the
        # sanitizer cross-checks these against the tag arrays).
        self._tag2way: List[Dict[int, int]] = [{} for _ in range(cfg.sets)]
        self._valid_count: List[int] = [0] * cfg.sets
        self._dup_tags = 0
        self.mshr = SoAMSHR(cfg.mshr_entries)
        self._mentries = self.mshr._entries
        self._mshr_cap = cfg.mshr_entries
        self._pending: Deque[MemRequest] = deque()
        self._fill_cb = self._fill_from_child
        self._lookup_cb = self._lookup
        # Calendar internals bound once: `access` appends its lookup
        # event straight into the bucket (the batched counterpart of the
        # classic inlined heappush).
        self._ebuckets = engine._buckets
        self._etimes = engine._times
        self.tracer: Optional[Any] = None

        # Replacement fast-path selection (exact types only: a subclass
        # may override hooks, so it falls back to the generic path).
        n = cfg.sets * cfg.ways
        self._clock = 0
        self._meta_max = 0
        self._meta_a: Optional[np.ndarray] = None
        if type(policy) is LRUPolicy:
            self._pmode = _P_LRU
            self._meta_a = np.zeros(n, dtype=np.int64)
        elif type(policy) is SRRIPPolicy:
            self._pmode = _P_SRRIP
            self._meta_max = policy.rrpv_max
            self._meta_a = np.full(n, policy.rrpv_max, dtype=np.int64)
        elif isinstance(policy, CAREPolicy):
            # CARE subclasses (ablations, M-CARE) only change constructor
            # flags / cost_signal; victim selection is shared.
            self._pmode = _P_CARE
        else:
            self._pmode = _P_GENERIC
        self._view = _SetView(self)

    # ------------------------------------------------------------------
    # Save-states (repro.sim.savestate)
    # ------------------------------------------------------------------
    def __getstate__(self):
        """Pickle without the engine-calendar aliases.

        ``_ebuckets``/``_etimes`` alias ``engine._buckets``/``_times``
        for the inlined append; the engine's own ``__getstate__``
        replaces those containers with normalized copies, so pickled
        aliases would point at an orphaned calendar and post-restore
        events would vanish.  They are dropped here and re-bound by
        :meth:`~repro.sim.batched.system.BatchedSystem._relink` before
        a restored system resumes.
        """
        state = {slot: getattr(self, slot) for slot in BatchedCache.__slots__}
        state["_ebuckets"] = None
        state["_etimes"] = None
        return state

    def __setstate__(self, state) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)

    def relink_engine(self) -> None:
        """Re-bind the calendar aliases to the (restored) engine."""
        self._ebuckets = self.engine._buckets
        self._etimes = self.engine._times

    # ------------------------------------------------------------------
    # Address helpers / introspection (classic API)
    # ------------------------------------------------------------------
    def set_index(self, block: int) -> int:
        return block & self._set_mask

    def tag_of(self, block: int) -> int:
        return block >> self._set_bits

    def block_addr(self, set_idx: int, tag: int) -> int:
        return ((tag << self._set_bits) | set_idx) << BLOCK_BITS

    def _find_way(self, set_idx: int, tag: int) -> int:
        return self._tag2way[set_idx].get(tag, -1)

    def probe(self, addr: int) -> bool:
        block = addr >> BLOCK_BITS
        return self.tag_of(block) in self._tag2way[self.set_index(block)]

    @property
    def _sets(self):
        """Classic per-set ``CacheBlock`` lists, materialized on demand.

        Introspection-only (sanitizer sweeps, tests): the authoritative
        state is the flat SoA arrays."""
        return self.soa.materialize()

    def blocks_in_set(self, set_idx: int):
        return self.soa.materialize_set(set_idx)

    def valid_blocks(self) -> int:
        return int(self._valid_a.sum())

    def assert_no_duplicates(self) -> None:
        for set_idx in range(self.cfg.sets):
            base = set_idx * self._ways
            valid = self._valid_a[base:base + self._ways]
            tags = self._tag_a[base:base + self._ways][valid != 0]
            if len(tags) != len(set(tags.tolist())):
                raise AssertionError(
                    f"{self.name}: duplicate tags in set {set_idx}: "
                    f"{tags.tolist()}")
            expected = {}
            for w in range(self._ways):
                if valid.item(w):
                    expected.setdefault(self._tag_a.item(base + w), w)
            if self._tag2way[set_idx] != expected:
                raise AssertionError(
                    f"{self.name}: tag index out of sync in set {set_idx}: "
                    f"{self._tag2way[set_idx]} != {expected}")
            if self._valid_count[set_idx] != int((valid != 0).sum()):
                raise AssertionError(
                    f"{self.name}: valid count out of sync in set "
                    f"{set_idx}: {self._valid_count[set_idx]}")

    # ------------------------------------------------------------------
    # Invalidation (inclusive back-invalidation)
    # ------------------------------------------------------------------
    def invalidate(self, addr: int) -> bool:
        block = addr >> BLOCK_BITS
        set_idx = block & self._set_mask
        tag = block >> self._set_bits
        index = self._tag2way[set_idx]
        way = index.get(tag, -1)
        if way < 0:
            return False
        fi = set_idx * self._ways + way
        was_dirty = bool(self._dirty_a.item(fi))
        self._valid_a[fi] = 0
        self._dirty_a[fi] = 0
        self._valid_count[set_idx] -= 1
        self._drop_mapping(index, set_idx, tag, way)
        self.stats.invalidations += 1
        return was_dirty

    # ------------------------------------------------------------------
    # Tag-index maintenance (same invariants as the classic cache)
    # ------------------------------------------------------------------
    def _drop_mapping(self, index: Dict[int, int], set_idx: int,
                      tag: int, way: int) -> None:
        if self._dup_tags:
            base = set_idx * self._ways
            valid_it = self._valid_a.item
            tag_it = self._tag_a.item
            for w in range(self._ways):
                if w != way and valid_it(base + w) and tag_it(base + w) == tag:
                    index[tag] = w
                    self._dup_tags -= 1
                    return
        del index[tag]

    # ------------------------------------------------------------------
    # Access path (fused)
    # ------------------------------------------------------------------
    def access(self, req: MemRequest) -> None:
        """Entry point: an access arrives at this level now."""
        engine = self.engine
        now = engine.now
        self.stats.accesses[req.rtype] += 1
        monitor = self.monitor
        if monitor is not None:
            monitor.on_access(req.core, now, req.is_demand)
        if req.trace and self.tracer is not None:
            self.tracer.span_begin(req, self.name, now)
        # Inlined EpochEngine.post — the single most frequent scheduling
        # site; bucket append order equals classic seq order.
        t = now + self._latency
        buckets = self._ebuckets
        bucket = buckets.get(t)
        if bucket is None:
            buckets[t] = [(self._lookup_cb, (req,))]
            _heappush(self._etimes, t)  # simsan: skip=SS204 (approved inlined post; bucket append order == classic seq order)
        else:
            bucket.append((self._lookup_cb, (req,)))

    def _lookup(self, req: MemRequest) -> None:
        """Fused lookup + hit handling (classic `_lookup`+`_handle_hit`)."""
        block = req.block
        set_idx = block & self._set_mask
        way = self._tag2way[set_idx].get(block >> self._set_bits, -1)

        if way >= 0:
            now = self.engine.now
            rtype = req.rtype
            stats = self.stats
            stats.hits[rtype] += 1
            monitor = self.monitor
            if monitor is not None:
                monitor.on_hit_observed(req.core, now)
            fi = set_idx * self._ways + way
            pmode = self._pmode
            if pmode == _P_LRU:
                clock = self._clock + 1
                self._clock = clock
                self._meta_a[fi] = clock
            elif pmode == _P_SRRIP:
                self._meta_a[fi] = 0
            else:
                pol = self.policy
                pref = bool(self._pref_a.item(fi))
                access = PolicyAccess(req.pc, req.addr, req.core, rtype, pref)
                view = self._view
                view.set_idx = set_idx
                if rtype == _WRITEBACK:
                    self._dirty_a[fi] = 1
                    pol.on_hit(set_idx, way, view, access)
                    return
                if pref and req.is_demand:
                    stats.prefetch_useful += 1
                pol.on_hit(set_idx, way, view, access)
                if req.is_demand:
                    self._pref_a[fi] = 0
                    if rtype == _RFO:
                        self._dirty_a[fi] = 1
                if req.trace and self.tracer is not None:
                    self.tracer.span_end(req, self.name, now, hit=True)
                req.completed = now
                req.served_by = self.name
                cb = req.callback
                if cb is not None:
                    cb(req, now)
                prefetcher = self.prefetcher
                if prefetcher is not None and req.is_demand:
                    for addr in prefetcher.train(req, True):
                        self._issue_prefetch(addr, req)
                return
            # LRU/SRRIP tail (no PolicyAccess, hooks are pure metadata)
            if rtype == _WRITEBACK:
                self._dirty_a[fi] = 1
                return
            if req.is_demand:
                if self._pref_a.item(fi):
                    stats.prefetch_useful += 1
                    self._pref_a[fi] = 0
                if rtype == _RFO:
                    self._dirty_a[fi] = 1
            if req.trace and self.tracer is not None:
                self.tracer.span_end(req, self.name, now, hit=True)
            req.completed = now
            req.served_by = self.name
            cb = req.callback
            if cb is not None:
                cb(req, now)
            prefetcher = self.prefetcher
            if prefetcher is not None and req.is_demand:
                for addr in prefetcher.train(req, True):
                    self._issue_prefetch(addr, req)
            return

        # ---- miss (classic `_lookup` miss arm + `_handle_miss`) ----
        stats = self.stats
        rtype = req.rtype
        stats.misses[rtype] += 1
        if req.is_demand:
            by_core = stats.demand_misses_by_core
            core = req.core
            by_core[core] = by_core.get(core, 0) + 1
        if rtype == _WRITEBACK:
            # Write-allocate without fetch: the full line is incoming.
            self._install(req, True, None)
        else:
            entries = self._mentries
            entry = entries.get(block)
            if entry is not None:
                was_prefetch_only = entry.prefetch_only
                entry.merge(req)
                self.mshr.merges += 1
                stats.mshr_merges += 1
                if was_prefetch_only and not entry.prefetch_only:
                    stats.prefetch_promoted += 1
                if req.trace and self.tracer is not None:
                    self.tracer.instant("mshr-merge", self.name,
                                        self.engine.now, req.core,
                                        block=hex(block))
            elif len(entries) >= self._mshr_cap:
                stats.mshr_stalls += 1
                self._pending.append(req)
                if req.trace and self.tracer is not None:
                    self.tracer.instant("mshr-stall", self.name,
                                        self.engine.now, req.core,
                                        block=hex(block))
            else:
                self._start_miss(req)
        prefetcher = self.prefetcher
        if prefetcher is not None and req.is_demand:
            for addr in prefetcher.train(req, False):
                self._issue_prefetch(addr, req)

    def _start_miss(self, req: MemRequest) -> None:
        now = self.engine.now
        core = req.core
        block = req.block
        # Inlined MSHR.allocate (callers just confirmed space + no entry);
        # the SoAMSHR slot arrays are derived lazily from the entry dict.
        mshr = self.mshr
        entries = mshr._entries
        entry = MSHREntry(block, req, now, core)
        entries[block] = entry
        mshr.allocations += 1
        occ = len(entries)
        if occ > mshr.peak_occupancy:
            mshr.peak_occupancy = occ
        if self.instr_counter is not None:
            entry.instr_at_issue = self.instr_counter(core)
        if self.monitor is not None:
            self.monitor.on_miss_start(core, now, entry)
        if self.lower is None:
            raise RuntimeError(f"{self.name}: miss with no lower level")
        child = MemRequest(req.addr, req.pc, core, req.rtype, now,
                           self._fill_cb)
        child.mshr_entry = entry
        if req.trace:
            child.trace = True
        self.lower.access(child)

    # ------------------------------------------------------------------
    # Fill path (fused)
    # ------------------------------------------------------------------
    def _fill_from_child(self, child: MemRequest, _time: int) -> None:
        entry = child.mshr_entry
        now = self.engine.now
        if self.monitor is not None:
            self.monitor.on_miss_end(entry.core, now, entry)
        self._install(entry.primary, entry.rfo, entry)
        served = child.served_by or (self.lower.name if self.lower else "")
        tracer = self.tracer
        if child.trace and tracer is not None:
            tracer.instant("fill", self.name, now, child.core,
                           block=hex(child.block), waiters=len(entry.waiters))
        for waiter in entry.waiters:
            waiter.completed = now
            if served:
                waiter.served_by = served
            if waiter.trace and tracer is not None:
                tracer.span_end(waiter, self.name, now, hit=False)
            cb = waiter.callback
            if cb is not None:
                cb(waiter, now)
        del self.mshr._entries[entry.block]
        if self._pending:
            self._retry_pending()

    def _install(self, req: MemRequest, dirty: bool,
                 entry: Optional[MSHREntry]) -> None:
        """Place ``req``'s block into the arrays, evicting if needed."""
        block = req.block
        set_idx = block & self._set_mask
        tag = block >> self._set_bits
        index = self._tag2way[set_idx]
        ways = self._ways
        base = set_idx * ways
        pmode = self._pmode
        pol = self.policy

        if entry is None:
            prefetch_fill = False
        else:
            prefetch_fill = entry.prefetch_only
        fill_access = None
        if pmode >= _P_CARE or pmode == _P_GENERIC:
            if entry is None:
                fill_access = PolicyAccess(req.pc, req.addr, req.core,
                                           req.rtype)
            else:
                instr_during = 0
                if self.instr_counter is not None:
                    instr_during = (self.instr_counter(req.core)
                                    - entry.instr_at_issue)
                fill_access = PolicyAccess(
                    req.pc, req.addr, req.core, req.rtype, prefetch_fill,
                    entry.pmc, entry.mlp_cost, entry.is_pure, instr_during)

        way = -1
        if self._valid_count[set_idx] < ways:
            # First invalid way (argmin of the 0/1 valid row returns the
            # first zero); skipped entirely once the set is full.
            way = int(self._valid_a[base:base + ways].argmin())
        if way < 0:
            if pmode == _P_LRU:
                # Victim = oldest stamp; argmin returns the first minimum,
                # matching the classic first-min scan.
                way = int(self._meta_a[base:base + ways].argmin())
            elif pmode == _P_SRRIP:
                # Deficit aging: the classic loop ages all ways +1 until
                # one reaches rrpv_max; since all start < max that is
                # exactly d = rrpv_max - row.max() rounds, applied here
                # as one vector add.  First way at max = argmax.
                row = self._meta_a[base:base + ways]
                d = self._meta_max - int(row.max())
                if d:
                    row += d
                way = int(row.argmax())
            elif pmode == _P_CARE:
                # Same deficit transform on CARE's EPV row, preserving
                # the aging-round counter and the RNG draw: the candidate
                # list after d rounds is the ways whose EPV was maximal,
                # and rng.choice consumes one _randbelow(len) either way.
                epv = pol._epv[set_idx]
                m = max(epv)
                if m < _EPV_MAX:
                    d = _EPV_MAX - m
                    epv[:] = [x + d for x in epv]
                    pol.stats.epv_aging_rounds += d
                candidates = [w for w in range(ways) if epv[w] >= _EPV_MAX]
                way = pol.rng.choice(candidates)
                view = self._view
                view.set_idx = set_idx
                pol.on_evict(set_idx, way, view, fill_access)
            else:
                view = self._view
                view.set_idx = set_idx
                way = pol.check_way(
                    pol.find_victim(set_idx, view, fill_access))
                pol.on_evict(set_idx, way, view, fill_access)
            fi = base + way
            self.stats.evictions += 1
            victim_tag = self._tag_a.item(fi)
            victim_dirty = self._dirty_a.item(fi)
            if self.inclusive and self.upper_levels:
                victim_addr = (((victim_tag << self._set_bits) | set_idx)
                               << BLOCK_BITS)
                for upper in self.upper_levels:
                    if upper.invalidate(victim_addr):
                        victim_dirty = 1
            if req.trace and self.tracer is not None:
                self.tracer.instant("evict", self.name, self.engine.now,
                                    req.core, victim=hex(victim_tag),
                                    dirty=bool(victim_dirty))
            if victim_dirty:
                self._writeback(set_idx, fi, victim_tag)
            if self._dup_tags:
                self._drop_mapping(index, set_idx, victim_tag, way)
            else:
                del index[victim_tag]
            self._valid_count[set_idx] -= 1
        else:
            fi = base + way

        self._valid_a[fi] = 1
        self._tag_a[fi] = tag
        self._dirty_a[fi] = 1 if dirty else 0
        self._pref_a[fi] = 1 if prefetch_fill else 0
        self._core_a[fi] = req.core
        self._pc_a[fi] = req.pc
        self._valid_count[set_idx] += 1
        prev = index.get(tag)       # inlined _add_mapping
        if prev is None:
            index[tag] = way
        else:
            self._dup_tags += 1
            if way < prev:
                index[tag] = way
        if prefetch_fill:
            self.stats.prefetch_fills += 1
        if pmode == _P_LRU:
            clock = self._clock + 1
            self._clock = clock
            self._meta_a[fi] = clock
        elif pmode == _P_SRRIP:
            self._meta_a[fi] = self._meta_max - 1
        else:
            view = self._view
            view.set_idx = set_idx
            pol.on_fill(set_idx, way, view, fill_access)

    def _writeback(self, set_idx: int, fi: int, victim_tag: int) -> None:
        if self.lower is None:
            return                      # memory-side victim: nothing below
        self.stats.writebacks_out += 1
        wb = MemRequest(
            ((victim_tag << self._set_bits) | set_idx) << BLOCK_BITS,
            self._pc_a.item(fi), self._core_a.item(fi), _WRITEBACK,
            created=self.engine.now,
        )
        self.lower.access(wb)

    def _retry_pending(self) -> None:
        """Admit queued requests as MSHR slots free up (classic replica)."""
        pending = self._pending
        mshr = self.mshr
        entries = mshr._entries
        capacity = mshr.capacity
        while pending and len(entries) < capacity:
            req = pending.popleft()
            block = req.block
            set_idx = block & self._set_mask
            if (block >> self._set_bits) in self._tag2way[set_idx]:
                # Another miss to the same block filled while we waited.
                self.stats.late_hits += 1
                if req.trace and self.tracer is not None:
                    self.tracer.span_end(req, self.name, self.engine.now,
                                         hit=True, late=True)
                req.respond(self.engine.now, served_by=self.name)
                continue
            entry = entries.get(block)
            if entry is not None:
                entry.merge(req)
                mshr.merges += 1
                self.stats.mshr_merges += 1
                continue
            self._start_miss(req)

    # ------------------------------------------------------------------
    # Prefetching (classic replica)
    # ------------------------------------------------------------------
    def _issue_prefetch(self, addr: int, trigger: MemRequest) -> None:
        if addr < 0:
            return
        block = addr >> BLOCK_BITS
        if (block >> self._set_bits) in self._tag2way[block & self._set_mask]:
            return                      # already cached
        entries = self._mentries
        if block in entries:
            return                      # already in flight
        if len(entries) >= self._mshr_cap or self._pending:
            return                      # don't let prefetches add pressure
        preq = MemRequest(
            addr, trigger.pc, trigger.core, AccessType.PREFETCH,
            created=self.engine.now,
        )
        self.prefetcher.issued += 1
        self.access(preq)
