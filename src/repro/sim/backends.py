"""Pluggable engine-backend registry (DESIGN.md §13).

The simulator has one *model* (cores, caches, MSHRs, PML, DRAM) but may
have several *engine cores* that execute it: the classic per-event heap
loop (:class:`repro.sim.system.System`) and the batched struct-of-arrays
core (:class:`repro.sim.batched.system.BatchedSystem`).  A backend is a
factory with the ``System`` constructor signature::

    factory(cfg, traces, llc_policy=..., prefetch=..., seed=..., ...)

returning an object whose ``run()`` yields a
:class:`~repro.sim.stats.SimResult`.  Every backend must be
*bit-identical* to ``classic`` — the golden suite enforces it — so the
selection is purely a throughput knob.

Selection precedence (:func:`resolve_engine`):

1. ``REPRO_ENGINE`` environment variable — operator override, used by
   the CI cross-backend golden job to re-execute fixture specs under
   another backend without touching their identity;
2. the explicit ``engine=`` argument at the call site
   (``simulate(engine=...)``, ``--engine`` on the CLI);
3. ``SystemConfig.engine``;
4. ``"classic"``.

Built-in backends are registered lazily so importing this module never
drags in numpy; third parties may :func:`register_backend` their own.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

if TYPE_CHECKING:
    from .system import System

#: A backend factory: ``factory(cfg, traces, **kwargs) -> System``-like.
BackendFactory = Callable[..., object]

DEFAULT_BACKEND = "classic"

#: Environment override (highest precedence) — lets CI re-run any stored
#: spec / golden fixture under another backend for equivalence checks.
ENGINE_ENV = "REPRO_ENGINE"

_REGISTRY: Dict[str, BackendFactory] = {}

#: Lazily imported built-ins: name -> "module:attribute".
_BUILTINS: Dict[str, str] = {
    "classic": "repro.sim.system:System",
    "batched": "repro.sim.batched.system:BatchedSystem",
}


class UnknownBackendError(KeyError):
    """Raised when an engine name resolves to no registered backend."""


def register_backend(name: str, factory: BackendFactory) -> BackendFactory:
    """Register (or replace) a backend under ``name``; returns ``factory``."""
    if not name or not isinstance(name, str):
        raise ValueError(f"backend name must be a non-empty string, got {name!r}")
    if not callable(factory):
        raise TypeError(f"backend factory for {name!r} is not callable")
    _REGISTRY[name] = factory
    return factory


def get_backend(name: str) -> BackendFactory:
    """Resolve ``name`` to its factory, importing built-ins on demand."""
    try:
        return _REGISTRY[name]
    except KeyError:
        pass
    target = _BUILTINS.get(name)
    if target is None:
        raise UnknownBackendError(
            f"unknown engine backend {name!r}; "
            f"available: {sorted(available_backends())}")
    module_name, _, attr = target.partition(":")
    import importlib
    factory = getattr(importlib.import_module(module_name), attr)
    _REGISTRY[name] = factory
    return factory


def available_backends() -> Tuple[str, ...]:
    """Names selectable right now (built-ins plus registered), sorted."""
    return tuple(sorted(set(_BUILTINS) | set(_REGISTRY)))


def engine_from_env(default: str = DEFAULT_BACKEND) -> str:
    """``REPRO_ENGINE`` if set and non-empty, else ``default``."""
    return os.environ.get(ENGINE_ENV, "").strip() or default


def resolve_engine(engine: Optional[str] = None, cfg: Optional[object] = None) -> str:
    """Pick the backend name per the precedence in the module docstring."""
    env = os.environ.get(ENGINE_ENV, "").strip()
    if env:
        return env
    if engine:
        return engine
    cfg_engine = getattr(cfg, "engine", "") if cfg is not None else ""
    return cfg_engine or DEFAULT_BACKEND


def build_system(cfg, traces, *, engine: Optional[str] = None,
                 **kwargs) -> "System":
    """Construct the selected backend's system (does not run it)."""
    return get_backend(resolve_engine(engine, cfg))(cfg, traces, **kwargs)
