"""System configuration (the paper's Table VII, plus scaled presets).

The :class:`SystemConfig` presets mirror the structure of the evaluated
system:

* ``paper()`` — the full Table VII machine: 32KB L1D, 256KB L2, 2MB/core
  16-way LLC, 64-entry LLC MSHR, 4GHz timing-equivalent DRAM latencies.
* ``default()`` — a proportionally scaled-down machine for Python-speed
  runs.  Associativities, latency ratios, and MSHR-to-cache ratios are kept
  from Table VII; capacities shrink so that 10^4-record traces exercise the
  LLC the way 200M-instruction SimPoints exercise a 2MB/core LLC.
* ``tiny()`` — for unit tests.

All caches use 64-byte blocks as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


BLOCK_SIZE = 64
BLOCK_BITS = 6  # log2(BLOCK_SIZE)


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing for one cache level."""

    name: str
    sets: int
    ways: int
    latency: int          # base access (tag+data lookup) cycles
    mshr_entries: int
    block_size: int = BLOCK_SIZE

    def __post_init__(self) -> None:
        if not _is_pow2(self.sets):
            raise ValueError(f"{self.name}: sets must be a power of two, got {self.sets}")
        if self.ways < 1 or self.latency < 1 or self.mshr_entries < 1:
            raise ValueError(f"{self.name}: invalid cache parameters")

    @property
    def size_bytes(self) -> int:
        return self.sets * self.ways * self.block_size

    @property
    def size_kb(self) -> float:
        return self.size_bytes / 1024.0


@dataclass(frozen=True)
class DRAMConfig:
    """First-order DRAM timing model parameters.

    Latencies are in core cycles.  Table VII: 2400MT/s 64-bit channels,
    tRP=15ns, tRCD=15ns, tCAS=12.5ns at a 4GHz core -> 60/60/50 cycles; a
    64B burst over an 8B-wide DDR channel takes ~13 core cycles.
    """

    channels: int = 1
    banks_per_channel: int = 8
    row_size: int = 2048            # bytes per row (row-buffer granularity)
    t_cas: int = 50                 # column access (row hit portion)
    t_rcd: int = 60                 # row activate
    t_rp: int = 60                  # precharge
    burst_cycles: int = 13          # data transfer occupancy per 64B block
    #: "fcfs" = per-bank in-order (repro.sim.dram.DRAM);
    #: "frfcfs" = queued row-hit-first controller (repro.sim.memctrl)
    scheduler: str = "fcfs"

    @property
    def row_hit_latency(self) -> int:
        return self.t_cas + self.burst_cycles

    @property
    def row_miss_latency(self) -> int:
        return self.t_rp + self.t_rcd + self.t_cas + self.burst_cycles


@dataclass(frozen=True)
class CoreConfig:
    """Core front-end / window model parameters (Table VII processor row)."""

    issue_width: int = 8
    rob_entries: int = 256


@dataclass(frozen=True)
class SystemConfig:
    """Complete machine description handed to :class:`repro.sim.system.System`."""

    n_cores: int = 1
    core: CoreConfig = field(default_factory=CoreConfig)
    l1: CacheConfig = field(default_factory=lambda: CacheConfig("L1D", 64, 8, 4, 8))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig("L2", 512, 8, 10, 32))
    # llc geometry given per core; system scales sets by n_cores
    llc_sets_per_core: int = 2048
    llc_ways: int = 16
    llc_latency: int = 20
    llc_mshr: int = 64
    #: inclusive LLC: evictions back-invalidate L1/L2 copies (the paper's
    #: ChampSim LLC is non-inclusive, the default here)
    llc_inclusive: bool = False
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    #: engine backend name ("classic" | "batched" | any registered name);
    #: resolved through :mod:`repro.sim.backends` by ``simulate()`` —
    #: backends are bit-identical, so this is purely a throughput knob
    engine: str = "classic"

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ValueError("n_cores must be >= 1")
        if not _is_pow2(self.llc_sets_per_core * self.n_cores):
            raise ValueError("total LLC sets must be a power of two")

    @property
    def llc(self) -> CacheConfig:
        """Shared-LLC config scaled to the core count (2MB/core in paper())."""
        return CacheConfig(
            "LLC",
            self.llc_sets_per_core * self.n_cores,
            self.llc_ways,
            self.llc_latency,
            self.llc_mshr,
        )

    def with_cores(self, n_cores: int) -> "SystemConfig":
        """Same machine with a different core count (LLC scales with cores)."""
        return replace(self, n_cores=n_cores)

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def paper(cls, n_cores: int = 1) -> "SystemConfig":
        """Full Table VII configuration."""
        channels = 1 if n_cores == 1 else 2
        return cls(
            n_cores=n_cores,
            core=CoreConfig(issue_width=8, rob_entries=256),
            l1=CacheConfig("L1D", 64, 8, 4, 8),          # 32KB
            l2=CacheConfig("L2", 512, 8, 10, 32),        # 256KB
            llc_sets_per_core=2048,                      # 2MB/core, 16-way
            llc_ways=16,
            llc_latency=20,
            llc_mshr=64,
            dram=DRAMConfig(channels=channels),
        )

    @classmethod
    def default(cls, n_cores: int = 1) -> "SystemConfig":
        """Scaled-down machine used by examples and benchmarks.

        Table VII's shape is preserved — 3 levels, private L1/L2, shared
        16-way LLC scaled per core, same latencies and L1:L2:LLC capacity
        ordering — at roughly 1/64 capacity, so the short traces Python can
        afford produce the same *turnover* (accesses per LLC block) that
        200M-instruction SimPoints produce on a 2MB/core LLC.  Workload
        generators size their regions relative to this machine via their
        ``scale`` parameter.
        """
        channels = 1 if n_cores == 1 else 2
        return cls(
            n_cores=n_cores,
            core=CoreConfig(issue_width=8, rob_entries=256),
            l1=CacheConfig("L1D", 4, 4, 4, 8),           # 16 blocks (1KB)
            l2=CacheConfig("L2", 8, 8, 10, 16),          # 64 blocks (4KB)
            llc_sets_per_core=32,                        # 512 blocks/core
            llc_ways=16,
            llc_latency=20,
            llc_mshr=32,
            dram=DRAMConfig(channels=channels),
        )

    @classmethod
    def tiny(cls, n_cores: int = 1) -> "SystemConfig":
        """Minimal machine for fast unit tests."""
        return cls(
            n_cores=n_cores,
            core=CoreConfig(issue_width=4, rob_entries=64),
            l1=CacheConfig("L1D", 2, 2, 2, 4),
            l2=CacheConfig("L2", 4, 4, 6, 8),
            llc_sets_per_core=8,
            llc_ways=4,
            llc_latency=12,
            llc_mshr=16,
            dram=DRAMConfig(channels=1, banks_per_channel=2),
        )
