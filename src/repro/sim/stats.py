"""Run-level results bundle returned by :class:`repro.sim.system.System`."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .cache import CacheStats
from .dram import DRAMStats
from ..core.pmc import CoreConcurrencyStats


@dataclass
class SimResult:
    """Everything the analysis layer consumes after one simulation."""

    policy: str
    n_cores: int
    prefetch: bool

    # Per-core measured-region results -----------------------------------
    ipc: List[float]
    instructions: List[int]
    cycles: List[int]

    # LLC-level results ----------------------------------------------------
    llc: CacheStats
    conc: List[CoreConcurrencyStats]      # per-core PML measurements
    conc_total: CoreConcurrencyStats      # aggregate over cores
    pmc_deltas: List[List[float]]         # per-core |PMCΔ| streams (Table III)

    # Substrate bookkeeping ------------------------------------------------
    dram: DRAMStats = field(default_factory=DRAMStats)
    sim_cycles: int = 0
    events: int = 0
    l1_stats: List[CacheStats] = field(default_factory=list)
    l2_stats: List[CacheStats] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def total_instructions(self) -> int:
        return sum(self.instructions)

    def mpki(self, core: Optional[int] = None) -> float:
        """LLC demand misses per kilo-instruction.

        With ``core=None``, aggregate over all cores (multi-core MPKI).
        """
        if core is None:
            misses = sum(self.llc.demand_misses_by_core.values())
            instr = self.total_instructions
        else:
            misses = self.llc.demand_misses_by_core.get(core, 0)
            instr = self.instructions[core]
        return 1000.0 * misses / instr if instr else 0.0

    @property
    def pmr(self) -> float:
        """Aggregate LLC pure miss rate (Fig. 8 / Table X)."""
        return self.conc_total.pure_miss_rate

    @property
    def mean_pmc(self) -> float:
        """Mean PMC over completed LLC misses (Table X)."""
        return self.conc_total.mean_pmc

    @property
    def aocpa(self) -> float:
        """Average Overlapping Cycles Per Access, mean over cores (Table XI)."""
        per_core = [c.aocpa for c in self.conc if c.accesses]
        return sum(per_core) / len(per_core) if per_core else 0.0

    @property
    def hit_miss_overlap_fraction(self) -> float:
        """Fraction of LLC misses with hit-miss overlapping (Fig. 3)."""
        return self.conc_total.hit_miss_overlap_fraction

    # ------------------------------------------------------------------
    # Serialization.  ``from_dict(to_dict(r)) == r`` holds exactly: every
    # field is integers, floats, strings, and lists thereof, all of which
    # JSON round-trips losslessly (floats via repr).  The persistent result
    # store and the parallel sweep runner both rely on this guarantee.
    # ------------------------------------------------------------------
    SCHEMA_VERSION = 1

    def to_dict(self) -> Dict:
        """JSON-safe representation of the full result."""
        return {
            "schema": self.SCHEMA_VERSION,
            "policy": self.policy,
            "n_cores": self.n_cores,
            "prefetch": self.prefetch,
            "ipc": list(self.ipc),
            "instructions": list(self.instructions),
            "cycles": list(self.cycles),
            "llc": self.llc.to_dict(),
            "conc": [c.to_dict() for c in self.conc],
            "conc_total": self.conc_total.to_dict(),
            "pmc_deltas": [list(d) for d in self.pmc_deltas],
            "dram": self.dram.to_dict(),
            "sim_cycles": self.sim_cycles,
            "events": self.events,
            "l1_stats": [s.to_dict() for s in self.l1_stats],
            "l2_stats": [s.to_dict() for s in self.l2_stats],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SimResult":
        """Exact inverse of :meth:`to_dict`."""
        from ..core.pmc import CoreConcurrencyStats
        from .cache import CacheStats
        from .dram import DRAMStats
        schema = data.get("schema", cls.SCHEMA_VERSION)
        if schema != cls.SCHEMA_VERSION:
            raise ValueError(
                f"SimResult schema {schema} != {cls.SCHEMA_VERSION}")
        return cls(
            policy=data["policy"],
            n_cores=data["n_cores"],
            prefetch=data["prefetch"],
            ipc=list(data["ipc"]),
            instructions=list(data["instructions"]),
            cycles=list(data["cycles"]),
            llc=CacheStats.from_dict(data["llc"]),
            conc=[CoreConcurrencyStats.from_dict(c) for c in data["conc"]],
            conc_total=CoreConcurrencyStats.from_dict(data["conc_total"]),
            pmc_deltas=[list(d) for d in data["pmc_deltas"]],
            dram=DRAMStats.from_dict(data["dram"]),
            sim_cycles=data["sim_cycles"],
            events=data["events"],
            l1_stats=[CacheStats.from_dict(s) for s in data["l1_stats"]],
            l2_stats=[CacheStats.from_dict(s) for s in data["l2_stats"]],
        )

    def to_json(self) -> str:
        """Canonical (sorted-key, compact) JSON — byte-stable for a given
        result, so determinism checks can compare strings directly."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "SimResult":
        return cls.from_dict(json.loads(text))

    def summary(self) -> Dict[str, float]:
        """Compact scalar summary (handy for printing / quick assertions)."""
        return {
            "policy": self.policy,
            "cores": self.n_cores,
            "ipc_mean": sum(self.ipc) / len(self.ipc) if self.ipc else 0.0,
            "mpki": self.mpki(),
            "pmr": self.pmr,
            "mean_pmc": self.mean_pmc,
            "aocpa": self.aocpa,
            "cycles": self.sim_cycles,
        }
