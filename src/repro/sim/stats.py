"""Run-level results bundle returned by :class:`repro.sim.system.System`."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .cache import CacheStats
from .dram import DRAMStats
from ..core.pmc import CoreConcurrencyStats


@dataclass
class SimResult:
    """Everything the analysis layer consumes after one simulation."""

    policy: str
    n_cores: int
    prefetch: bool

    # Per-core measured-region results -----------------------------------
    ipc: List[float]
    instructions: List[int]
    cycles: List[int]

    # LLC-level results ----------------------------------------------------
    llc: CacheStats
    conc: List[CoreConcurrencyStats]      # per-core PML measurements
    conc_total: CoreConcurrencyStats      # aggregate over cores
    pmc_deltas: List[List[float]]         # per-core |PMCΔ| streams (Table III)

    # Substrate bookkeeping ------------------------------------------------
    dram: DRAMStats = field(default_factory=DRAMStats)
    sim_cycles: int = 0
    events: int = 0
    l1_stats: List[CacheStats] = field(default_factory=list)
    l2_stats: List[CacheStats] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def total_instructions(self) -> int:
        return sum(self.instructions)

    def mpki(self, core: int = None) -> float:
        """LLC demand misses per kilo-instruction.

        With ``core=None``, aggregate over all cores (multi-core MPKI).
        """
        if core is None:
            misses = sum(self.llc.demand_misses_by_core.values())
            instr = self.total_instructions
        else:
            misses = self.llc.demand_misses_by_core.get(core, 0)
            instr = self.instructions[core]
        return 1000.0 * misses / instr if instr else 0.0

    @property
    def pmr(self) -> float:
        """Aggregate LLC pure miss rate (Fig. 8 / Table X)."""
        return self.conc_total.pure_miss_rate

    @property
    def mean_pmc(self) -> float:
        """Mean PMC over completed LLC misses (Table X)."""
        return self.conc_total.mean_pmc

    @property
    def aocpa(self) -> float:
        """Average Overlapping Cycles Per Access, mean over cores (Table XI)."""
        per_core = [c.aocpa for c in self.conc if c.accesses]
        return sum(per_core) / len(per_core) if per_core else 0.0

    @property
    def hit_miss_overlap_fraction(self) -> float:
        """Fraction of LLC misses with hit-miss overlapping (Fig. 3)."""
        return self.conc_total.hit_miss_overlap_fraction

    def summary(self) -> Dict[str, float]:
        """Compact scalar summary (handy for printing / quick assertions)."""
        return {
            "policy": self.policy,
            "cores": self.n_cores,
            "ipc_mean": sum(self.ipc) / len(self.ipc) if self.ipc else 0.0,
            "mpki": self.mpki(),
            "pmr": self.pmr,
            "mean_pmc": self.mean_pmc,
            "aocpa": self.aocpa,
            "cycles": self.sim_cycles,
        }
