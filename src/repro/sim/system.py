"""Top-level simulated machine: cores + private L1/L2 + shared LLC + DRAM.

``System`` wires the whole hierarchy the way Table VII describes it, attaches
the PMC Measurement Logic to the LLC, runs every core's trace to completion
of its measured region (replaying finished traces to keep pressure, per the
CRC-2/DPC-3 methodology), and returns a :class:`~repro.sim.stats.SimResult`.

The LLC replacement policy is selected by name through the policy registry,
so ``System(cfg, traces, llc_policy="care")`` and ``llc_policy="lru"`` run
the identical machine with only the LLC decision logic swapped — exactly the
paper's experimental control.
"""

from __future__ import annotations

from typing import (TYPE_CHECKING, Any, Callable, List, Optional, Sequence,
                    Union)

from .cache import Cache
from .config import SystemConfig
from .cpu import Core
from .engine import Engine
from .stats import SimResult
from ..core.pmc import ConcurrencyMonitor
from ..policies.lru import LRUPolicy
from ..prefetch import IPStridePrefetcher, NextLinePrefetcher

if TYPE_CHECKING:
    from ..obs.schema import ObsConfig

PolicyFactory = Callable[..., object]

#: Stagger per-core start cycles so multi-copy runs are not lock-stepped
#: (the paper notes its traces "do not start exactly at the same time").
_CORE_STAGGER = 17


class System:
    """One simulated machine ready to :meth:`run`.

    Subclass hook: backends (DESIGN.md §13) swap the component classes
    below — the wiring in ``__init__`` is shared, so a backend only
    provides faster parts, never different topology.
    """

    __slots__ = ("cfg", "prefetch", "max_events", "engine", "dram",
                 "llc_policy", "monitor", "llc", "l1s", "l2s", "cores",
                 "_finished", "_warm", "warmup_records", "sanitize",
                 "sanitizer", "obs", "sampler", "tracer", "checkpoint")

    #: component classes; backend subclasses override these
    engine_cls = Engine
    cache_cls = Cache
    core_cls = Core

    def __init__(self, cfg: SystemConfig, traces: Sequence[Sequence],
                 llc_policy: Union[str, PolicyFactory] = "lru",
                 prefetch: bool = False,
                 seed: int = 0,
                 measure_records: Optional[int] = None,
                 warmup_records: Optional[int] = None,
                 collect_deltas: bool = False,
                 max_events: Optional[int] = None,
                 sanitize: Optional[bool] = None,
                 obs: Optional["ObsConfig"] = None,
                 checkpoint: Optional[Any] = None) -> None:
        if len(traces) != cfg.n_cores:
            raise ValueError(
                f"{cfg.n_cores} cores but {len(traces)} traces supplied")
        self.cfg = cfg
        self.prefetch = prefetch
        self.max_events = max_events
        #: tri-state: True/False force the runtime sanitizer on/off; None
        #: defers to ``REPRO_SANITIZE`` (read lazily at :meth:`run`)
        self.sanitize = sanitize
        self.sanitizer: Optional[Any] = None
        #: optional :class:`~repro.obs.ObsConfig`; observers attach in
        #: :meth:`run` so construction stays cheap when unused
        self.obs = obs
        self.sampler: Optional[Any] = None
        self.tracer: Optional[Any] = None
        #: optional :class:`~repro.harness.preempt.CheckpointPolicy`;
        #: installs last in :meth:`run` and travels inside save-states
        self.checkpoint = checkpoint
        self.engine = self.engine_cls()

        # Memory side ------------------------------------------------------
        from .memctrl import make_memory
        self.dram = make_memory(cfg.dram, self.engine)

        # Shared LLC with the PML attached ----------------------------------
        llc_cfg = cfg.llc
        self.llc_policy = self._make_llc_policy(
            llc_policy, llc_cfg.sets, llc_cfg.ways, seed, cfg.n_cores)
        self.monitor = ConcurrencyMonitor(
            self.engine, cfg.n_cores, llc_cfg.latency,
            collect_deltas=collect_deltas)
        self.llc = self.cache_cls(llc_cfg, self.engine, self.llc_policy,
                                  lower=self.dram, monitor=self.monitor,
                                  inclusive=cfg.llc_inclusive)

        # Private levels and cores ------------------------------------------
        self.l1s: List[Cache] = []
        self.l2s: List[Cache] = []
        self.cores: List[Core] = []
        self._finished = 0
        self._warm = 0
        # Default warmup: a quarter of the measured region (the paper's
        # ratio is 50M warmup / 200M measured).
        if warmup_records is None:
            base = measure_records if measure_records is not None else (
                min(len(t) for t in traces) if traces else 0)
            warmup_records = base // 4
        self.warmup_records = warmup_records
        for core_id in range(cfg.n_cores):
            l2_pf = IPStridePrefetcher() if prefetch else None
            l1_pf = NextLinePrefetcher() if prefetch else None
            l2 = self.cache_cls(self._named(cfg.l2, core_id), self.engine,
                                LRUPolicy(cfg.l2.sets, cfg.l2.ways, seed),
                                lower=self.llc, prefetcher=l2_pf)
            l1 = self.cache_cls(self._named(cfg.l1, core_id), self.engine,
                                LRUPolicy(cfg.l1.sets, cfg.l1.ways, seed),
                                lower=l2, prefetcher=l1_pf)
            core = self.core_cls(core_id, self.engine, l1, traces[core_id],
                                 cfg.core,
                                 measure_records=measure_records,
                                 warmup_records=warmup_records,
                                 replay=True,
                                 start_offset=core_id * _CORE_STAGGER,
                                 on_finish=self._core_finished,
                                 on_warm=self._core_warm)
            self.l1s.append(l1)
            self.l2s.append(l2)
            self.cores.append(core)

        # Cost-based policies (LACS) read per-core instruction progress.
        # A bound method, not a lambda, so the wired system stays
        # picklable for save-states.
        self.llc.instr_counter = self._core_instr_count
        # Inclusive LLCs back-invalidate the private levels on eviction.
        self.llc.upper_levels = list(self.l1s) + list(self.l2s)

    @staticmethod
    def _named(cache_cfg, core_id: int):
        from dataclasses import replace
        return replace(cache_cfg, name=f"{cache_cfg.name}{core_id}")

    @staticmethod
    def _make_llc_policy(spec: Union[str, PolicyFactory], sets: int,
                         ways: int, seed: int, n_cores: int):
        if callable(spec):
            return spec(sets=sets, ways=ways, seed=seed, n_cores=n_cores)
        from ..policies.registry import make_policy
        return make_policy(spec, sets=sets, ways=ways, seed=seed,
                           n_cores=n_cores)

    # ------------------------------------------------------------------
    def _core_instr_count(self, core_id: int) -> int:
        return self.cores[core_id].dispatched_instructions

    def _core_warm(self, core: Core) -> None:
        """Reset measurement counters once every core passed its warmup."""
        self._warm += 1
        if self._warm >= self.cfg.n_cores:
            self.monitor.reset_stats()
            self.llc.stats = type(self.llc.stats)()
            self.dram.stats = type(self.dram.stats)()
            for cache in self.l1s + self.l2s:
                cache.stats = type(cache.stats)()

    def _core_finished(self, core: Core) -> None:
        self._finished += 1
        if self._finished >= self.cfg.n_cores:
            for c in self.cores:
                c.stop()
            self.engine.stop()

    def _sanitize_enabled(self) -> bool:
        if self.sanitize is not None:
            return self.sanitize
        from ..checks.sanitize import sanitize_enabled
        return sanitize_enabled()

    def _attach_obs(self) -> None:
        """Install the metrics sampler and/or event tracer per ``self.obs``.

        Observers read simulator state between events and never mutate it,
        so results stay byte-identical with or without them.
        """
        obs = self.obs
        if obs is None or not obs.enabled:
            return
        if obs.metrics_interval > 0:
            from ..obs.sampler import MetricsSampler
            self.sampler = MetricsSampler(self, obs.metrics_interval)
            self.sampler.install()
        if obs.trace:
            from ..obs.tracer import ChromeTracer
            self.tracer = tracer = ChromeTracer(
                sample_rate=obs.trace_sample, limit=obs.trace_limit)
            for sink in [self.llc, self.dram] + self.l1s + self.l2s:
                sink.tracer = tracer
            for core in self.cores:
                core.tracer = tracer

    def run(self) -> SimResult:
        """Run to completion of every core's measured region.

        With the sanitizer enabled (``sanitize=True`` or
        ``REPRO_SANITIZE=1``), invariants are swept every
        ``REPRO_SANITIZE_INTERVAL`` events and once more at the end; a
        trip raises :class:`~repro.checks.sanitize.SanitizerError`.  The
        sanitizer observes between events and never perturbs state, so
        results are byte-identical either way.

        With a :attr:`checkpoint` policy attached, save-states are
        written on cadence and a pending preempt request surfaces as
        :class:`~repro.harness.preempt.PreemptedError`; a system
        restored from such a state continues via :meth:`resume`.
        """
        if self._sanitize_enabled():
            from ..checks.sanitize import attach_sanitizer
            self.sanitizer = attach_sanitizer(self)
        self._attach_obs()
        if self.checkpoint is not None:
            # Installed after every other observer so its watcher entry
            # sits last in the trampoline: when it fires (and possibly
            # snapshots), all earlier entries are settled for the tick.
            self.checkpoint.install(self)
        for core in self.cores:
            core.start()
        return self._complete()

    def resume(self) -> SimResult:
        """Continue a system restored from a mid-run save-state.

        Watchers (sanitizer, sampler, checkpoint policy) travel inside
        the save-state with their live trampoline countdowns, so nothing
        is re-registered here — re-registering would reset countdowns
        and break byte-identity with the uninterrupted run.  The
        checkpoint policy only re-arms its process-local wall clock.
        """
        self._relink()
        if self.checkpoint is not None:
            self.checkpoint.rearm()
        return self._complete()

    def _relink(self) -> None:
        """Backend hook: restore intra-machine aliases after unpickling.

        The classic machine has none; the batched backend re-binds the
        caches' inlined engine-calendar references here.
        """

    def _complete(self) -> SimResult:
        """Drive the engine to completion and build the result.

        Shared tail of :meth:`run` and :meth:`resume`: the remaining
        ``max_events`` budget is computed against events already
        processed, so an interrupted-and-resumed bounded run stops at
        the same event as an uninterrupted one.
        """
        sanitizer = self.sanitizer
        try:
            budget = self.max_events
            if budget is not None:
                budget = max(0, budget - self.engine.events_processed)
            self.engine.run(max_events=budget)
            if self._finished < self.cfg.n_cores:
                unfinished = [c.core_id for c in self.cores if not c.finished]
                raise RuntimeError(
                    f"simulation ended with unfinished cores {unfinished} "
                    f"(events={self.engine.events_processed}); raise "
                    "max_events or check for starvation")
            self.monitor.finalize()
            if self.sampler is not None:
                self.sampler.finalize()
            if sanitizer is not None:
                sanitizer.check()
        finally:
            if sanitizer is not None:
                sanitizer.uninstall()
            if self.sampler is not None:
                self.sampler.uninstall()
            if self.checkpoint is not None:
                self.checkpoint.uninstall()
        result = self._result()
        if self.obs is not None and self.obs.out_dir is not None:
            from ..obs.schema import write_outputs
            write_outputs(self.obs, self.sampler, self.tracer)
        return result

    def _result(self) -> SimResult:
        policy_name = getattr(self.llc_policy, "name", type(self.llc_policy).__name__)
        return SimResult(
            policy=policy_name,
            n_cores=self.cfg.n_cores,
            prefetch=self.prefetch,
            ipc=[c.ipc for c in self.cores],
            instructions=[c.retired_instructions for c in self.cores],
            cycles=[c.finish_time - c.start_offset for c in self.cores],
            llc=self.llc.stats,
            conc=self.monitor.all_stats(),
            conc_total=self.monitor.total(),
            pmc_deltas=[self.monitor.pmc_deltas(c) for c in range(self.cfg.n_cores)],
            dram=self.dram.stats,
            sim_cycles=self.engine.now,
            events=self.engine.events_processed,
            l1_stats=[l1.stats for l1 in self.l1s],
            l2_stats=[l2.stats for l2 in self.l2s],
        )


#: Historical positional order of ``simulate()``'s optional parameters;
#: used only by the deprecation shim below.
_SIMULATE_KEYWORDS = ("cfg", "llc_policy", "prefetch", "seed",
                      "measure_records", "warmup_records",
                      "collect_deltas", "obs")


def simulate(traces: Sequence[Sequence], *args: Any, **kwargs: Any) -> SimResult:
    """One-call convenience wrapper: build a system and run it.

    Keyword parameters: ``cfg``, ``llc_policy``, ``prefetch``, ``seed``,
    ``measure_records``, ``warmup_records``, ``collect_deltas``, ``obs``,
    and ``engine`` (a :mod:`repro.sim.backends` name; default resolves
    ``REPRO_ENGINE`` -> ``cfg.engine`` -> ``"classic"``).

    .. deprecated::
        Passing the optional parameters positionally (``simulate(traces,
        cfg, "lru", ...)``) is deprecated; use keywords.  The positional
        form never covered ``engine`` and will be removed.
    """
    if args:
        import warnings
        warnings.warn(
            "positional arguments to simulate() after `traces` are "
            "deprecated; pass them as keywords (cfg=..., llc_policy=..., "
            "prefetch=..., ...)",
            DeprecationWarning, stacklevel=2)
        if len(args) > len(_SIMULATE_KEYWORDS):
            raise TypeError(
                f"simulate() takes at most {1 + len(_SIMULATE_KEYWORDS)} "
                f"positional arguments ({1 + len(args)} given)")
        for name, value in zip(_SIMULATE_KEYWORDS, args):
            if name in kwargs:
                raise TypeError(
                    f"simulate() got multiple values for argument {name!r}")
            kwargs[name] = value
    return _simulate(traces, **kwargs)


def _simulate(traces: Sequence[Sequence], cfg: Optional[SystemConfig] = None,
              llc_policy: Union[str, PolicyFactory] = "lru",
              prefetch: bool = False, seed: int = 0,
              measure_records: Optional[int] = None,
              warmup_records: Optional[int] = None,
              collect_deltas: bool = False,
              obs: Optional["ObsConfig"] = None,
              engine: Optional[str] = None) -> SimResult:
    if cfg is None:
        cfg = SystemConfig.default(n_cores=len(traces))
    from .backends import build_system
    system = build_system(cfg, traces, engine=engine,
                          llc_policy=llc_policy, prefetch=prefetch,
                          seed=seed, measure_records=measure_records,
                          warmup_records=warmup_records,
                          collect_deltas=collect_deltas, obs=obs)
    return system.run()
