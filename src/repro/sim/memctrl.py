"""FR-FCFS memory controller (queued alternative to the simple DRAM model).

:class:`~repro.sim.dram.DRAM` services requests in arrival order per bank —
adequate for most replacement studies, but queue scheduling shapes the miss
latencies PMC measures, so a real controller model is provided:

* per-channel **read and write queues** with bounded capacity and
  back-pressure,
* **FR-FCFS** scheduling: among issuable requests prefer row-buffer hits,
  then oldest-first,
* **read priority** with write-drain hysteresis: writes buffer until the
  write queue passes a high-water mark, then drain in a burst until a
  low-water mark (standard write-drain policy),
* bank-level parallelism with a shared per-channel data bus.

Select it with ``DRAMConfig(scheduler="frfcfs")``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from .config import DRAMConfig
from .dram import DRAMStats, _Bank
from .engine import Engine
from .request import AccessType, MemRequest


@dataclass
class ControllerStats(DRAMStats):
    read_queue_full_stalls: int = 0
    write_drains: int = 0
    frfcfs_reorders: int = 0     # row-hit chosen over an older request
    peak_read_queue: int = 0
    peak_write_queue: int = 0


class _QueuedRequest:
    __slots__ = ("req", "arrival", "row", "bank")

    def __init__(self, req: MemRequest, arrival: int, bank: int, row: int):
        self.req = req
        self.arrival = arrival
        self.bank = bank
        self.row = row


class _Channel:
    __slots__ = ("banks", "bank_busy", "bus_free", "read_q", "write_q",
                 "pending_reads", "draining")

    def __init__(self, banks: int) -> None:
        self.banks = [_Bank() for _ in range(banks)]
        self.bank_busy = [False] * banks
        self.bus_free = 0
        self.read_q: List[_QueuedRequest] = []
        self.write_q: List[_QueuedRequest] = []
        self.pending_reads: List[_QueuedRequest] = []  # blocked on full queue
        self.draining = False


class FRFCFSController:
    """Drop-in replacement for :class:`~repro.sim.dram.DRAM`."""

    __slots__ = ("cfg", "engine", "read_queue", "write_queue",
                 "drain_high_mark", "drain_low_mark", "stats", "_channels",
                 "tracer")

    name = "DRAM"

    def __init__(self, cfg: DRAMConfig, engine: Engine,
                 read_queue: int = 32, write_queue: int = 32,
                 drain_high: float = 0.75, drain_low: float = 0.25) -> None:
        if not 0.0 <= drain_low < drain_high <= 1.0:
            raise ValueError("bad drain hysteresis")
        self.cfg = cfg
        self.engine = engine
        self.read_queue = read_queue
        self.write_queue = write_queue
        self.drain_high_mark = max(1, int(drain_high * write_queue))
        self.drain_low_mark = int(drain_low * write_queue)
        self.stats = ControllerStats()
        self.tracer: Optional[Any] = None   # optional repro.obs ChromeTracer
        self._channels = [
            _Channel(cfg.banks_per_channel) for _ in range(cfg.channels)
        ]

    # ------------------------------------------------------------------
    def _route(self, addr: int) -> Tuple[int, int, int]:
        block = addr >> 6
        channel = block % self.cfg.channels
        bank = (block // self.cfg.channels) % self.cfg.banks_per_channel
        row = addr // self.cfg.row_size
        return channel, bank, row

    def access(self, req: MemRequest) -> None:
        now = self.engine.now
        ch_idx, bank, row = self._route(req.addr)
        ch = self._channels[ch_idx]
        entry = _QueuedRequest(req, now, bank, row)
        if req.rtype == AccessType.WRITEBACK:
            if len(ch.write_q) >= self.write_queue:
                # Oldest write merges conceptually; drop the new arrival's
                # queue slot pressure by forcing an immediate drain phase.
                ch.draining = True
            ch.write_q.append(entry)
            self.stats.peak_write_queue = max(self.stats.peak_write_queue,
                                              len(ch.write_q))
        else:
            if len(ch.read_q) >= self.read_queue:
                self.stats.read_queue_full_stalls += 1
                ch.pending_reads.append(entry)
            else:
                ch.read_q.append(entry)
                self.stats.peak_read_queue = max(self.stats.peak_read_queue,
                                                 len(ch.read_q))
        self._issue(ch_idx)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _select(self, ch: _Channel, queue: List[_QueuedRequest]
                ) -> Optional[_QueuedRequest]:
        """FR-FCFS: oldest row-hit on a free bank, else oldest issuable."""
        best_hit: Optional[_QueuedRequest] = None
        best_any: Optional[_QueuedRequest] = None
        for entry in queue:
            if ch.bank_busy[entry.bank]:
                continue
            if best_any is None or entry.arrival < best_any.arrival:
                best_any = entry
            if ch.banks[entry.bank].open_row == entry.row:
                if best_hit is None or entry.arrival < best_hit.arrival:
                    best_hit = entry
        if best_hit is not None:
            if best_any is not None and best_hit is not best_any:
                self.stats.frfcfs_reorders += 1
            return best_hit
        return best_any

    def _update_drain_state(self, ch: _Channel) -> None:
        if len(ch.write_q) >= self.drain_high_mark:
            if not ch.draining:
                self.stats.write_drains += 1
            ch.draining = True
        elif len(ch.write_q) <= self.drain_low_mark:
            ch.draining = False

    def _issue(self, ch_idx: int) -> None:
        """Start every request that can start right now."""
        ch = self._channels[ch_idx]
        while True:
            self._update_drain_state(ch)
            use_writes = ch.draining or (not ch.read_q and ch.write_q)
            queue = ch.write_q if use_writes else ch.read_q
            entry = self._select(ch, queue)
            if entry is None and not use_writes and ch.write_q:
                # reads exist but none issuable: try writes opportunistically
                queue = ch.write_q
                entry = self._select(ch, queue)
            if entry is None:
                return
            queue.remove(entry)
            self._start(ch_idx, ch, entry)
            if queue is ch.read_q and ch.pending_reads:
                ch.read_q.append(ch.pending_reads.pop(0))

    def _start(self, ch_idx: int, ch: _Channel, entry: _QueuedRequest) -> None:
        cfg = self.cfg
        now = self.engine.now
        bank = ch.banks[entry.bank]
        if bank.open_row == entry.row:
            self.stats.row_hits += 1
            array_latency = cfg.t_cas
        elif bank.open_row < 0:
            self.stats.row_misses += 1
            array_latency = cfg.t_rcd + cfg.t_cas
        else:
            self.stats.row_misses += 1
            array_latency = cfg.t_rp + cfg.t_rcd + cfg.t_cas
        bank.open_row = entry.row
        burst_start = max(now + array_latency, ch.bus_free)
        done = burst_start + cfg.burst_cycles
        ch.bus_free = done
        ch.bank_busy[entry.bank] = True
        # ``done > now`` always (positive array/burst latencies): safe for
        # the unchecked fast-path scheduler.
        self.engine.post(done, self._complete, ch_idx, entry, done)

    def _complete(self, ch_idx: int, entry: _QueuedRequest, done: int) -> None:
        ch = self._channels[ch_idx]
        ch.bank_busy[entry.bank] = False
        ch.banks[entry.bank].next_free = done
        if entry.req.rtype == AccessType.WRITEBACK:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
            self.stats.total_read_latency += done - entry.arrival
            if entry.req.trace and self.tracer is not None:
                # Span covers queueing plus service: arrival to data-out.
                self.tracer.complete(entry.req, self.name, entry.arrival,
                                     done - entry.arrival,
                                     channel=ch_idx, bank=entry.bank)
            entry.req.respond(done, self.name)
        self._issue(ch_idx)


def make_memory(cfg: DRAMConfig, engine: Engine):
    """Factory honoring ``DRAMConfig.scheduler``."""
    from .dram import DRAM
    scheduler = getattr(cfg, "scheduler", "fcfs")
    if scheduler == "fcfs":
        return DRAM(cfg, engine)
    if scheduler == "frfcfs":
        return FRFCFSController(cfg, engine)
    raise ValueError(f"unknown DRAM scheduler {scheduler!r}")
