"""First-order DRAM timing model.

Models what matters for an LLC-replacement study: variable miss latency from
row-buffer locality, bank-level parallelism, and per-channel data-bus
bandwidth (Table VII: 1 channel single-core, 2 channels multi-core,
tRP/tRCD/tCAS converted to core cycles).

Requests are serviced FCFS per bank.  A request occupies its bank until the
data burst finishes; bursts serialize on the channel data bus.  Writebacks
consume bank and bus time but generate no response.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from .config import DRAMConfig
from .engine import Engine
from .request import AccessType, MemRequest


@dataclass
class DRAMStats:
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    total_read_latency: int = 0

    @property
    def row_hit_rate(self) -> float:
        n = self.row_hits + self.row_misses
        return self.row_hits / n if n else 0.0

    @property
    def mean_read_latency(self) -> float:
        return self.total_read_latency / self.reads if self.reads else 0.0

    def to_dict(self) -> dict:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "row_hits": self.row_hits,
            "row_misses": self.row_misses,
            "total_read_latency": self.total_read_latency,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DRAMStats":
        return cls(**data)


class _Bank:
    __slots__ = ("next_free", "open_row")

    def __init__(self) -> None:
        self.next_free = 0
        self.open_row = -1


class DRAM:
    """Memory-side terminator of the hierarchy (``lower`` of the LLC)."""

    __slots__ = ("cfg", "engine", "stats", "_banks", "_bus_free", "tracer")

    name = "DRAM"

    def __init__(self, cfg: DRAMConfig, engine: Engine) -> None:
        self.cfg = cfg
        self.engine = engine
        self.stats = DRAMStats()
        self.tracer: Optional[Any] = None   # optional repro.obs ChromeTracer
        self._banks: List[List[_Bank]] = [
            [_Bank() for _ in range(cfg.banks_per_channel)]
            for _ in range(cfg.channels)
        ]
        self._bus_free: List[int] = [0] * cfg.channels

    # ------------------------------------------------------------------
    def _route(self, addr: int) -> Tuple[int, int, int]:
        """Address interleaving: block-granular across channels, then banks."""
        block = addr >> 6
        channel = block % self.cfg.channels
        bank = (block // self.cfg.channels) % self.cfg.banks_per_channel
        row = addr // self.cfg.row_size
        return channel, bank, row

    def access(self, req: MemRequest) -> None:
        now = self.engine.now
        cfg = self.cfg
        channel, bank_idx, row = self._route(req.addr)
        bank = self._banks[channel][bank_idx]

        start = max(now, bank.next_free)
        if bank.open_row == row:
            self.stats.row_hits += 1
            array_latency = cfg.t_cas
        elif bank.open_row < 0:
            self.stats.row_misses += 1
            array_latency = cfg.t_rcd + cfg.t_cas
        else:
            self.stats.row_misses += 1
            array_latency = cfg.t_rp + cfg.t_rcd + cfg.t_cas
        bank.open_row = row

        burst_start = max(start + array_latency, self._bus_free[channel])
        done = burst_start + cfg.burst_cycles
        bank.next_free = done
        self._bus_free[channel] = done

        if req.rtype == AccessType.WRITEBACK:
            self.stats.writes += 1
            return
        self.stats.reads += 1
        self.stats.total_read_latency += done - now
        if req.trace and self.tracer is not None:
            # The full bank+bus occupancy is known synchronously, so the
            # DRAM span is emitted as a complete event right away.
            self.tracer.complete(req, self.name, now, done - now,
                                 channel=channel, bank=bank_idx,
                                 row_hit=array_latency == cfg.t_cas)
        # ``done > now`` always (positive array/burst latencies): safe for
        # the unchecked fast-path scheduler.
        self.engine.post(done, req.respond, done, self.name)
