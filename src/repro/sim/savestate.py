"""Versioned in-flight save-states for both engine backends.

A save-state captures the *entire* deterministic machine mid-run — the
classic heap engine (event queue, time, sequence counter), the batched
:class:`~repro.sim.batched.engine.EpochEngine` (calendar buckets, live
drain cursor normalized away), every cache/MSHR/core/DRAM component,
the PML concurrency monitor, attached observers, and the module-level
request-id counter — so that *restore-then-run is byte-identical to an
uninterrupted run*.  The golden checkpoint suite pins that invariant on
every fixture under both engines.

Snapshots are only meaningful at a **watcher boundary**: both engines
settle ``events_processed``, reset the loop countdown, and (for the
calendar engine) expose the live-bucket cursor before invoking a
watcher, so a snapshot taken inside a watcher call resumes phase-exact.
The :class:`~repro.harness.preempt.CheckpointPolicy` watcher is the only
sanctioned snapshot site.

Wire format (``repro.savestate/v1``)::

    gzip( <header JSON line> \\n <pickle payload> )

The header is readable without unpickling and carries everything the
refusal rules need: schema version, the repro *code fingerprint* (any
source edit invalidates old states), the spec content key, the engine
class, progress counters, and a sha256 over the payload.  A mismatched
schema/fingerprint/key raises :class:`StaleSavestate`; torn or
bit-rotted files raise :class:`CorruptSavestate`.  Callers (the preempt
layer) quarantine on either and fall back to a cold restart — a bad
save-state may cost time, never correctness.

This module is pure: it maps a live system to bytes and back.  File
I/O, cadence, env vars, and wall clocks live in
:mod:`repro.harness.preempt` so the deterministic domain stays free of
nondeterminism sources.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import pickle
import zlib
from typing import Any, Dict

SAVESTATE_SCHEMA = "repro.savestate/v1"


class SavestateError(RuntimeError):
    """A save-state could not be used; the caller must cold-start."""


class CorruptSavestate(SavestateError):
    """Torn write, bad checksum, or an unpicklable payload."""


class StaleSavestate(SavestateError):
    """Schema/fingerprint/spec mismatch — the state is for other code."""


def encode_savestate(system: Any, *, spec_key: str,
                     fingerprint: str) -> bytes:
    """Serialize ``system`` mid-run into a ``repro.savestate/v1`` blob.

    Must be called at a watcher boundary (see module doc); the engines'
    ``__getstate__`` hooks normalize their queues so the pickled state
    is exactly "every event not yet dispatched".
    """
    from . import request as request_mod
    payload = pickle.dumps(
        {"system": system,
         "next_request_id": request_mod._next_request_id},
        protocol=pickle.HIGHEST_PROTOCOL)
    header = {
        "schema": SAVESTATE_SCHEMA,
        "fingerprint": fingerprint,
        "spec_key": spec_key,
        "engine": type(system.engine).__name__,
        "events": system.engine.events_processed,
        "now": system.engine.now,
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
    }
    raw = json.dumps(header, sort_keys=True).encode() + b"\n" + payload
    # mtime=0 keeps the blob bytes a pure function of the machine state.
    return gzip.compress(raw, compresslevel=6, mtime=0)


def _split(blob: bytes) -> "tuple":
    try:
        raw = gzip.decompress(blob)
    except (OSError, EOFError, zlib.error) as exc:
        raise CorruptSavestate(f"unreadable gzip container: {exc}") from exc
    sep = raw.find(b"\n")
    if sep < 0:
        raise CorruptSavestate("missing header line")
    try:
        header = json.loads(raw[:sep].decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CorruptSavestate(f"unparseable header: {exc}") from exc
    if not isinstance(header, dict):
        raise CorruptSavestate("header is not a JSON object")
    return header, raw[sep + 1:]


def read_savestate_header(blob: bytes) -> Dict[str, Any]:
    """The header dict alone (no unpickling, no refusal checks)."""
    header, _payload = _split(blob)
    return header


def decode_savestate(blob: bytes, *, spec_key: str,
                     fingerprint: str) -> Any:
    """Validate ``blob`` and return the restored system, ready to resume.

    Refusal rules, in order: schema version, code fingerprint, spec key
    (:class:`StaleSavestate`); then payload checksum and unpickling
    (:class:`CorruptSavestate`).  The module-level request-id counter is
    restored alongside the system so post-resume requests continue the
    uninterrupted id sequence (observer span keys depend on it).
    """
    header, payload = _split(blob)
    if header.get("schema") != SAVESTATE_SCHEMA:
        raise StaleSavestate(
            f"schema {header.get('schema')!r} != {SAVESTATE_SCHEMA!r}")
    if header.get("fingerprint") != fingerprint:
        raise StaleSavestate(
            f"code fingerprint {str(header.get('fingerprint'))[:12]}... "
            f"does not match the running code ({fingerprint[:12]}...)")
    if header.get("spec_key") != spec_key:
        raise StaleSavestate(
            f"state is for spec {str(header.get('spec_key'))[:12]}..., "
            f"not {spec_key[:12]}...")
    digest = hashlib.sha256(payload).hexdigest()
    if header.get("payload_sha256") != digest:
        raise CorruptSavestate("payload checksum mismatch (torn write?)")
    try:
        state = pickle.loads(payload)
        system = state["system"]
        next_id = state["next_request_id"]
    except CorruptSavestate:
        raise
    except Exception as exc:   # pickle raises a zoo of types
        raise CorruptSavestate(f"unpicklable payload: {exc}") from exc
    from . import request as request_mod
    # Resuming must continue the uninterrupted id sequence exactly; the
    # write is part of restoring one task's own state, not shared state
    # leaking between tasks (a fresh snapshot rewrites it per restore).
    request_mod._next_request_id = next_id
    return system
