"""Non-blocking set-associative cache model.

Each cache level is write-back / write-allocate with a fixed base (tag+data)
latency and an MSHR file for outstanding misses, following the paper's
Table VII organization.  The model supports:

* miss merging (secondary misses attach to the existing MSHR entry),
* MSHR back-pressure (requests queue when the file is full),
* dirty-victim writebacks to the next level,
* writeback allocation without fetch (a writeback that misses installs the
  block directly — the whole line is being written),
* prefetch requests, with ChampSim-style promotion when a demand merges
  under a prefetch-initiated miss,
* an optional :class:`~repro.core.pmc.ConcurrencyMonitor` (the paper's PML)
  that observes base/miss phases and stamps each served miss with its PMC
  and MLP-based cost.

The replacement policy is fully pluggable via
:class:`repro.policies.base.ReplacementPolicy`.

Hot-path organization
---------------------
Tag lookup is O(1): each set keeps a ``tag -> way`` dict
(``_tag2way``) maintained on install/evict/invalidate, replacing the
per-lookup linear scan over the ways; :meth:`assert_no_duplicates`
cross-checks the index against the tag array.  A per-set valid-block
count skips the free-way scan once a set reaches steady state (every
install into a full set goes straight to victim selection).  Miss fills
use a cached bound method plus the request's ``mshr_entry`` field
instead of allocating a closure per miss, and lookups are scheduled
through :meth:`repro.sim.engine.Engine.post` (the unchecked integer-time
fast path).  All of this is behaviour-preserving — the golden-equivalence
suite pins results bit-for-bit.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from heapq import heappush as _heappush
from typing import TYPE_CHECKING, Any, Callable, Deque, Dict, List, Optional

from .config import BLOCK_BITS, CacheConfig
from .engine import Engine
from .mshr import MSHR, MSHREntry
from .request import AccessType, MemRequest
from ..policies.base import PolicyAccess

if TYPE_CHECKING:
    from ..core.pmc import ConcurrencyMonitor
    from ..policies.base import ReplacementPolicy
    from ..prefetch.base import Prefetcher

_WRITEBACK = AccessType.WRITEBACK


class CacheBlock:
    """Tag-store entry.  Policy-private metadata lives inside the policy."""

    __slots__ = ("valid", "tag", "dirty", "prefetch", "core", "pc")

    def __init__(self) -> None:
        self.valid = False
        self.tag = -1
        self.dirty = False
        self.prefetch = False    # filled by a prefetch, not yet demanded
        self.core = -1
        self.pc = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CacheBlock(valid={self.valid}, tag={self.tag:#x}, "
                f"dirty={self.dirty}, prefetch={self.prefetch})")


@dataclass
class CacheStats:
    """Per-level counters, split by access type where it matters."""

    accesses: Dict[AccessType, int] = field(
        default_factory=lambda: {t: 0 for t in AccessType})
    hits: Dict[AccessType, int] = field(
        default_factory=lambda: {t: 0 for t in AccessType})
    misses: Dict[AccessType, int] = field(
        default_factory=lambda: {t: 0 for t in AccessType})
    mshr_merges: int = 0
    mshr_stalls: int = 0          # requests that had to queue for an MSHR
    invalidations: int = 0        # inclusive back-invalidations received
    late_hits: int = 0            # queued requests satisfied before retry
    evictions: int = 0
    writebacks_out: int = 0
    prefetch_fills: int = 0
    prefetch_useful: int = 0      # demand hits on a prefetched block
    prefetch_promoted: int = 0    # demand merged under a prefetch miss
    demand_misses_by_core: Dict[int, int] = field(default_factory=dict)

    @property
    def total_accesses(self) -> int:
        return sum(self.accesses.values())

    @property
    def demand_accesses(self) -> int:
        return self.accesses[AccessType.LOAD] + self.accesses[AccessType.RFO]

    @property
    def demand_hits(self) -> int:
        return self.hits[AccessType.LOAD] + self.hits[AccessType.RFO]

    @property
    def demand_misses(self) -> int:
        return self.misses[AccessType.LOAD] + self.misses[AccessType.RFO]

    @property
    def demand_miss_rate(self) -> float:
        n = self.demand_accesses
        return self.demand_misses / n if n else 0.0

    # ------------------------------------------------------------------
    # Serialization (persistent result store / ``SimResult.to_dict``)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-safe dict; enum-keyed counters become name-keyed."""
        return {
            "accesses": {t.name: self.accesses.get(t, 0) for t in AccessType},
            "hits": {t.name: self.hits.get(t, 0) for t in AccessType},
            "misses": {t.name: self.misses.get(t, 0) for t in AccessType},
            "mshr_merges": self.mshr_merges,
            "mshr_stalls": self.mshr_stalls,
            "invalidations": self.invalidations,
            "late_hits": self.late_hits,
            "evictions": self.evictions,
            "writebacks_out": self.writebacks_out,
            "prefetch_fills": self.prefetch_fills,
            "prefetch_useful": self.prefetch_useful,
            "prefetch_promoted": self.prefetch_promoted,
            "demand_misses_by_core": {
                str(core): n
                for core, n in sorted(self.demand_misses_by_core.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CacheStats":
        """Exact inverse of :meth:`to_dict`."""
        return cls(
            accesses={t: data["accesses"][t.name] for t in AccessType},
            hits={t: data["hits"][t.name] for t in AccessType},
            misses={t: data["misses"][t.name] for t in AccessType},
            mshr_merges=data["mshr_merges"],
            mshr_stalls=data["mshr_stalls"],
            invalidations=data["invalidations"],
            late_hits=data["late_hits"],
            evictions=data["evictions"],
            writebacks_out=data["writebacks_out"],
            prefetch_fills=data["prefetch_fills"],
            prefetch_useful=data["prefetch_useful"],
            prefetch_promoted=data["prefetch_promoted"],
            demand_misses_by_core={
                int(core): n
                for core, n in data["demand_misses_by_core"].items()
            },
        )


class Cache:
    """One cache level wired to a lower level (another cache or DRAM)."""

    __slots__ = (
        "cfg", "name", "engine", "policy", "lower", "monitor", "prefetcher",
        "inclusive", "upper_levels", "instr_counter", "stats", "_set_mask",
        "_set_bits", "_latency", "_ways", "_sets", "_tag2way", "_valid_count",
        "_dup_tags", "mshr", "_pending", "_fill_cb", "_lookup_cb", "_post",
        "tracer",
    )

    def __init__(self, cfg: CacheConfig, engine: Engine,
                 policy: "ReplacementPolicy",
                 lower: Optional[Any] = None,
                 monitor: Optional["ConcurrencyMonitor"] = None,
                 prefetcher: Optional["Prefetcher"] = None,
                 inclusive: bool = False) -> None:
        self.cfg = cfg
        self.name = cfg.name
        self.engine = engine
        self.policy = policy
        self.lower = lower
        self.monitor = monitor
        self.prefetcher = prefetcher
        #: inclusive mode: evictions back-invalidate the upper levels
        self.inclusive = inclusive
        self.upper_levels: List["Cache"] = []
        # Optional core-instruction counter, wired by the System: lets
        # cost-based policies (LACS) see instructions issued during a miss.
        self.instr_counter: Optional[Callable[[int], int]] = None
        self.stats = CacheStats()

        self._set_mask = cfg.sets - 1
        self._set_bits = cfg.sets.bit_length() - 1
        self._latency = cfg.latency
        self._ways = cfg.ways
        self._sets: List[List[CacheBlock]] = [
            [CacheBlock() for _ in range(cfg.ways)] for _ in range(cfg.sets)
        ]
        #: per-set ``tag -> way`` index over the *valid* blocks; with
        #: duplicate tags (see ``_drop_mapping``) it maps to the lowest way,
        #: matching what a first-match linear scan would return
        self._tag2way: List[Dict[int, int]] = [{} for _ in range(cfg.sets)]
        #: per-set count of valid blocks (== len of the set's index unless
        #: duplicate tags exist)
        self._valid_count: List[int] = [0] * cfg.sets
        #: number of shadowed duplicate-tag copies across all sets
        #: (pathological writeback-under-miss interleavings; normally 0)
        self._dup_tags = 0
        self.mshr = MSHR(cfg.mshr_entries)
        self._pending: Deque[MemRequest] = deque()
        # Bound methods cached once: ``self._lookup`` in ``access`` (and the
        # fill callback per miss) would otherwise allocate a fresh bound
        # method per request.
        self._fill_cb = self._fill_from_child
        self._lookup_cb = self._lookup
        self._post = engine.post
        #: optional :class:`repro.obs.tracer.ChromeTracer`; every hook
        #: below guards on ``req.trace`` (False unless the tracer sampled
        #: the request), keeping the untraced hot path to one slot read.
        self.tracer: Optional[Any] = None

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    def set_index(self, block: int) -> int:
        return block & self._set_mask

    def tag_of(self, block: int) -> int:
        return block >> self._set_bits

    def block_addr(self, set_idx: int, tag: int) -> int:
        return ((tag << self._set_bits) | set_idx) << BLOCK_BITS

    def _find_way(self, set_idx: int, tag: int) -> int:
        return self._tag2way[set_idx].get(tag, -1)

    def probe(self, addr: int) -> bool:
        """Non-intrusive presence check (used by prefetch filtering/tests)."""
        block = addr >> BLOCK_BITS
        return self.tag_of(block) in self._tag2way[self.set_index(block)]

    def invalidate(self, addr: int) -> bool:
        """Drop ``addr``'s block if present (inclusive back-invalidation).

        Returns whether the dropped copy was dirty, so the caller can merge
        that state into its own eviction writeback.
        """
        block = addr >> BLOCK_BITS
        set_idx = block & self._set_mask
        tag = block >> self._set_bits
        index = self._tag2way[set_idx]
        way = index.get(tag, -1)
        if way < 0:
            return False
        blk = self._sets[set_idx][way]
        was_dirty = blk.dirty
        blk.valid = False
        blk.dirty = False
        self._valid_count[set_idx] -= 1
        self._drop_mapping(index, set_idx, tag, way)
        self.stats.invalidations += 1
        return was_dirty

    # ------------------------------------------------------------------
    # Tag-index maintenance
    # ------------------------------------------------------------------
    def _drop_mapping(self, index: Dict[int, int], set_idx: int,
                      tag: int, way: int) -> None:
        """Remove ``tag``'s mapping after the copy in ``way`` left the set.

        Normally a plain ``del``.  If duplicate-tag copies exist anywhere
        (a block installed by a writeback while a miss on the same block
        was outstanding, then installed again by the fill), the remaining
        lowest-way copy must take over the mapping so the index keeps
        agreeing with a first-match linear scan.
        """
        if self._dup_tags:
            for w, blk in enumerate(self._sets[set_idx]):
                if w != way and blk.valid and blk.tag == tag:
                    index[tag] = w
                    self._dup_tags -= 1
                    return
        del index[tag]

    def _add_mapping(self, index: Dict[int, int], tag: int, way: int) -> None:
        """Point ``tag`` at ``way``; with a duplicate, keep the lowest way."""
        prev = index.get(tag)
        if prev is None:
            index[tag] = way
        else:
            self._dup_tags += 1
            if way < prev:
                index[tag] = way

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------
    def access(self, req: MemRequest) -> None:
        """Entry point: an access arrives at this level now."""
        engine = self.engine
        now = engine.now
        self.stats.accesses[req.rtype] += 1
        if self.monitor is not None:
            self.monitor.on_access(req.core, now, req.is_demand)
        if req.trace and self.tracer is not None:
            self.tracer.span_begin(req, self.name, now)
        # Inlined Engine.post — this is the single most frequent scheduling
        # site in the simulator (one event per access per level); identical
        # heap tuple and sequence numbering, measured in DESIGN.md §9.
        _heappush(engine._heap,  # simsan: skip=SS204
                  (now + self._latency, engine._seq, self._lookup_cb, (req,)))
        engine._seq += 1

    def _lookup(self, req: MemRequest) -> None:
        block = req.block
        set_idx = block & self._set_mask
        way = self._tag2way[set_idx].get(block >> self._set_bits, -1)

        if way >= 0:
            self._handle_hit(req, set_idx, way)
        else:
            stats = self.stats
            rtype = req.rtype
            stats.misses[rtype] += 1
            if req.is_demand:
                by_core = stats.demand_misses_by_core
                by_core[req.core] = by_core.get(req.core, 0) + 1
            if rtype == _WRITEBACK:
                # Write-allocate without fetch: the full line is incoming.
                self._install(req, dirty=True, entry=None)
            else:
                self._handle_miss(req)

        prefetcher = self.prefetcher
        if prefetcher is not None and req.is_demand:
            for addr in prefetcher.train(req, way >= 0):
                self._issue_prefetch(addr, req)

    def _handle_hit(self, req: MemRequest, set_idx: int, way: int) -> None:
        now = self.engine.now
        blocks = self._sets[set_idx]
        blk = blocks[way]
        rtype = req.rtype
        self.stats.hits[rtype] += 1
        if self.monitor is not None:
            self.monitor.on_hit_observed(req.core, now)
        access = PolicyAccess(req.pc, req.addr, req.core, rtype, blk.prefetch)
        if rtype == _WRITEBACK:
            blk.dirty = True
            self.policy.on_hit(set_idx, way, blocks, access)
            return
        if blk.prefetch and req.is_demand:
            self.stats.prefetch_useful += 1
        self.policy.on_hit(set_idx, way, blocks, access)
        if req.is_demand:
            blk.prefetch = False      # block has now been demanded
            if rtype == AccessType.RFO:
                blk.dirty = True
        if req.trace and self.tracer is not None:
            self.tracer.span_end(req, self.name, now, hit=True)
        # Inlined MemRequest.respond
        req.completed = now
        req.served_by = self.name
        cb = req.callback
        if cb is not None:
            cb(req, now)

    def _handle_miss(self, req: MemRequest) -> None:
        block = req.block
        mshr = self.mshr
        entries = mshr._entries
        entry = entries.get(block)
        if entry is not None:
            was_prefetch_only = entry.prefetch_only
            entry.merge(req)
            mshr.merges += 1
            self.stats.mshr_merges += 1
            if was_prefetch_only and not entry.prefetch_only:
                self.stats.prefetch_promoted += 1
            if req.trace and self.tracer is not None:
                self.tracer.instant("mshr-merge", self.name,
                                    self.engine.now, req.core,
                                    block=hex(block))
            return
        if len(entries) >= mshr.capacity:
            self.stats.mshr_stalls += 1
            self._pending.append(req)
            if req.trace and self.tracer is not None:
                self.tracer.instant("mshr-stall", self.name,
                                    self.engine.now, req.core,
                                    block=hex(block))
            return
        self._start_miss(req)

    def _start_miss(self, req: MemRequest) -> None:
        now = self.engine.now
        core = req.core
        # Inlined MSHR.allocate: both callers (`_handle_miss`,
        # `_retry_pending`) have just confirmed the file is not full and
        # holds no entry for this block.
        mshr = self.mshr
        entries = mshr._entries
        entry = MSHREntry(req.block, req, now, core)
        entries[req.block] = entry
        mshr.allocations += 1
        occ = len(entries)
        if occ > mshr.peak_occupancy:
            mshr.peak_occupancy = occ
        if self.instr_counter is not None:
            entry.instr_at_issue = self.instr_counter(core)
        if self.monitor is not None:
            self.monitor.on_miss_start(core, now, entry)
        if self.lower is None:
            raise RuntimeError(f"{self.name}: miss with no lower level")
        child = MemRequest(req.addr, req.pc, core, req.rtype,
                           created=now, callback=self._fill_cb)
        child.mshr_entry = entry
        if req.trace:
            child.trace = True      # keep the lifecycle visible downstream
        self.lower.access(child)

    # ------------------------------------------------------------------
    # Fill path
    # ------------------------------------------------------------------
    def _fill_from_child(self, child: MemRequest, _time: int) -> None:
        """Fill callback shared by every miss (bound once in ``__init__``)."""
        entry = child.mshr_entry
        now = self.engine.now
        if self.monitor is not None:
            self.monitor.on_miss_end(entry.core, now, entry)
        self._install(entry.primary, dirty=entry.rfo, entry=entry)
        served = child.served_by or (self.lower.name if self.lower else "")
        tracer = self.tracer
        if child.trace and tracer is not None:
            tracer.instant("fill", self.name, now, child.core,
                           block=hex(child.block), waiters=len(entry.waiters))
        # Inlined MemRequest.respond for each waiter (the per-request
        # overhead is measurable at this call count).  Traced waiters
        # close their span at this level before the callback propagates
        # the fill upward, so spans nest DRAM -> LLC -> L2 -> L1 -> core.
        for waiter in entry.waiters:
            waiter.completed = now
            if served:
                waiter.served_by = served
            if waiter.trace and tracer is not None:
                tracer.span_end(waiter, self.name, now, hit=False)
            cb = waiter.callback
            if cb is not None:
                cb(waiter, now)
        del self.mshr._entries[entry.block]
        if self._pending:
            self._retry_pending()

    def _install(self, req: MemRequest, dirty: bool,
                 entry: Optional[MSHREntry]) -> None:
        """Place ``req``'s block into the array, evicting if needed."""
        block = req.block
        set_idx = block & self._set_mask
        tag = block >> self._set_bits
        blocks = self._sets[set_idx]
        index = self._tag2way[set_idx]
        policy = self.policy

        if entry is None:
            prefetch_fill = False
            fill_access = PolicyAccess(req.pc, req.addr, req.core, req.rtype)
        else:
            prefetch_fill = entry.prefetch_only
            instr_during = 0
            if self.instr_counter is not None:
                instr_during = (self.instr_counter(req.core)
                                - entry.instr_at_issue)
            fill_access = PolicyAccess(
                req.pc, req.addr, req.core, req.rtype, prefetch_fill,
                entry.pmc, entry.mlp_cost, entry.is_pure, instr_during)

        way = -1
        if self._valid_count[set_idx] < self._ways:
            # Set not yet full: first invalid way wins (skipped entirely in
            # the steady state, where every set stays full).
            for w, blk in enumerate(blocks):
                if not blk.valid:
                    way = w
                    break
        if way < 0:
            way = policy.check_way(
                policy.find_victim(set_idx, blocks, fill_access))
            victim = blocks[way]
            policy.on_evict(set_idx, way, blocks, fill_access)
            self.stats.evictions += 1
            victim_dirty = victim.dirty
            if self.inclusive and self.upper_levels:
                victim_addr = self.block_addr(set_idx, victim.tag)
                for upper in self.upper_levels:
                    # An upper-level dirty copy is newer than ours: its
                    # data must reach memory with the eviction.
                    victim_dirty |= upper.invalidate(victim_addr)
            if req.trace and self.tracer is not None:
                self.tracer.instant("evict", self.name, self.engine.now,
                                    req.core, victim=hex(victim.tag),
                                    dirty=victim_dirty)
            if victim_dirty:
                self._writeback(set_idx, victim)
            if self._dup_tags:
                self._drop_mapping(index, set_idx, victim.tag, way)
            else:
                del index[victim.tag]
            self._valid_count[set_idx] -= 1

        blk = blocks[way]
        blk.valid = True
        blk.tag = tag
        blk.dirty = dirty
        blk.prefetch = prefetch_fill
        blk.core = req.core
        blk.pc = req.pc
        self._valid_count[set_idx] += 1
        prev = index.get(tag)       # inlined _add_mapping
        if prev is None:
            index[tag] = way
        else:
            self._dup_tags += 1
            if way < prev:
                index[tag] = way
        if prefetch_fill:
            self.stats.prefetch_fills += 1
        policy.on_fill(set_idx, way, blocks, fill_access)

    def _writeback(self, set_idx: int, victim: CacheBlock) -> None:
        if self.lower is None:
            return                      # memory-side victim: nothing below
        self.stats.writebacks_out += 1
        wb = MemRequest(
            self.block_addr(set_idx, victim.tag),
            victim.pc, victim.core, _WRITEBACK, created=self.engine.now,
        )
        # Writebacks leave this cache's port immediately; the lower level
        # accounts for its own latency and bandwidth.
        self.lower.access(wb)

    def _retry_pending(self) -> None:
        """Admit queued requests as MSHR slots free up."""
        pending = self._pending
        mshr = self.mshr
        entries = mshr._entries
        capacity = mshr.capacity
        while pending and len(entries) < capacity:
            req = pending.popleft()
            block = req.block
            set_idx = block & self._set_mask
            if (block >> self._set_bits) in self._tag2way[set_idx]:
                # Another miss to the same block filled while we waited.
                self.stats.late_hits += 1
                if req.trace and self.tracer is not None:
                    self.tracer.span_end(req, self.name, self.engine.now,
                                         hit=True, late=True)
                req.respond(self.engine.now, served_by=self.name)
                continue
            entry = entries.get(block)
            if entry is not None:
                entry.merge(req)
                mshr.merges += 1
                self.stats.mshr_merges += 1
                continue
            self._start_miss(req)

    # ------------------------------------------------------------------
    # Prefetching
    # ------------------------------------------------------------------
    def _issue_prefetch(self, addr: int, trigger: MemRequest) -> None:
        if addr < 0:
            return
        block = addr >> BLOCK_BITS
        if (block >> self._set_bits) in self._tag2way[block & self._set_mask]:
            return                      # already cached
        mshr = self.mshr
        entries = mshr._entries
        if block in entries:
            return                      # already in flight
        if len(entries) >= mshr.capacity or self._pending:
            return                      # don't let prefetches add pressure
        preq = MemRequest(
            addr, trigger.pc, trigger.core, AccessType.PREFETCH,
            created=self.engine.now,
        )
        self.prefetcher.issued += 1
        self.access(preq)

    # ------------------------------------------------------------------
    # Introspection (tests, debugging)
    # ------------------------------------------------------------------
    def blocks_in_set(self, set_idx: int) -> List[CacheBlock]:
        return self._sets[set_idx]

    def valid_blocks(self) -> int:
        return sum(1 for s in self._sets for b in s if b.valid)

    def assert_no_duplicates(self) -> None:
        """Invariants: a block address appears at most once in its set, and
        the ``tag -> way`` index agrees exactly with the tag array."""
        for set_idx, blocks in enumerate(self._sets):
            tags = [b.tag for b in blocks if b.valid]
            if len(tags) != len(set(tags)):
                raise AssertionError(
                    f"{self.name}: duplicate tags in set {set_idx}: {tags}")
            expected = {b.tag: w for w, b in enumerate(blocks) if b.valid}
            if self._tag2way[set_idx] != expected:
                raise AssertionError(
                    f"{self.name}: tag index out of sync in set {set_idx}: "
                    f"{self._tag2way[set_idx]} != {expected}")
            if self._valid_count[set_idx] != len(tags):
                raise AssertionError(
                    f"{self.name}: valid count out of sync in set "
                    f"{set_idx}: {self._valid_count[set_idx]} != {len(tags)}")
