"""Non-blocking set-associative cache model.

Each cache level is write-back / write-allocate with a fixed base (tag+data)
latency and an MSHR file for outstanding misses, following the paper's
Table VII organization.  The model supports:

* miss merging (secondary misses attach to the existing MSHR entry),
* MSHR back-pressure (requests queue when the file is full),
* dirty-victim writebacks to the next level,
* writeback allocation without fetch (a writeback that misses installs the
  block directly — the whole line is being written),
* prefetch requests, with ChampSim-style promotion when a demand merges
  under a prefetch-initiated miss,
* an optional :class:`~repro.core.pmc.ConcurrencyMonitor` (the paper's PML)
  that observes base/miss phases and stamps each served miss with its PMC
  and MLP-based cost.

The replacement policy is fully pluggable via
:class:`repro.policies.base.ReplacementPolicy`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from .config import BLOCK_BITS, CacheConfig
from .engine import Engine
from .mshr import MSHR, MSHREntry
from .request import AccessType, MemRequest
from ..policies.base import PolicyAccess


class CacheBlock:
    """Tag-store entry.  Policy-private metadata lives inside the policy."""

    __slots__ = ("valid", "tag", "dirty", "prefetch", "core", "pc")

    def __init__(self) -> None:
        self.valid = False
        self.tag = -1
        self.dirty = False
        self.prefetch = False    # filled by a prefetch, not yet demanded
        self.core = -1
        self.pc = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CacheBlock(valid={self.valid}, tag={self.tag:#x}, "
                f"dirty={self.dirty}, prefetch={self.prefetch})")


@dataclass
class CacheStats:
    """Per-level counters, split by access type where it matters."""

    accesses: Dict[AccessType, int] = field(
        default_factory=lambda: {t: 0 for t in AccessType})
    hits: Dict[AccessType, int] = field(
        default_factory=lambda: {t: 0 for t in AccessType})
    misses: Dict[AccessType, int] = field(
        default_factory=lambda: {t: 0 for t in AccessType})
    mshr_merges: int = 0
    mshr_stalls: int = 0          # requests that had to queue for an MSHR
    invalidations: int = 0        # inclusive back-invalidations received
    late_hits: int = 0            # queued requests satisfied before retry
    evictions: int = 0
    writebacks_out: int = 0
    prefetch_fills: int = 0
    prefetch_useful: int = 0      # demand hits on a prefetched block
    prefetch_promoted: int = 0    # demand merged under a prefetch miss
    demand_misses_by_core: Dict[int, int] = field(default_factory=dict)

    @property
    def total_accesses(self) -> int:
        return sum(self.accesses.values())

    @property
    def demand_accesses(self) -> int:
        return self.accesses[AccessType.LOAD] + self.accesses[AccessType.RFO]

    @property
    def demand_hits(self) -> int:
        return self.hits[AccessType.LOAD] + self.hits[AccessType.RFO]

    @property
    def demand_misses(self) -> int:
        return self.misses[AccessType.LOAD] + self.misses[AccessType.RFO]

    @property
    def demand_miss_rate(self) -> float:
        n = self.demand_accesses
        return self.demand_misses / n if n else 0.0

    # ------------------------------------------------------------------
    # Serialization (persistent result store / ``SimResult.to_dict``)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-safe dict; enum-keyed counters become name-keyed."""
        return {
            "accesses": {t.name: self.accesses.get(t, 0) for t in AccessType},
            "hits": {t.name: self.hits.get(t, 0) for t in AccessType},
            "misses": {t.name: self.misses.get(t, 0) for t in AccessType},
            "mshr_merges": self.mshr_merges,
            "mshr_stalls": self.mshr_stalls,
            "invalidations": self.invalidations,
            "late_hits": self.late_hits,
            "evictions": self.evictions,
            "writebacks_out": self.writebacks_out,
            "prefetch_fills": self.prefetch_fills,
            "prefetch_useful": self.prefetch_useful,
            "prefetch_promoted": self.prefetch_promoted,
            "demand_misses_by_core": {
                str(core): n
                for core, n in sorted(self.demand_misses_by_core.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CacheStats":
        """Exact inverse of :meth:`to_dict`."""
        return cls(
            accesses={t: data["accesses"][t.name] for t in AccessType},
            hits={t: data["hits"][t.name] for t in AccessType},
            misses={t: data["misses"][t.name] for t in AccessType},
            mshr_merges=data["mshr_merges"],
            mshr_stalls=data["mshr_stalls"],
            invalidations=data["invalidations"],
            late_hits=data["late_hits"],
            evictions=data["evictions"],
            writebacks_out=data["writebacks_out"],
            prefetch_fills=data["prefetch_fills"],
            prefetch_useful=data["prefetch_useful"],
            prefetch_promoted=data["prefetch_promoted"],
            demand_misses_by_core={
                int(core): n
                for core, n in data["demand_misses_by_core"].items()
            },
        )


class Cache:
    """One cache level wired to a lower level (another cache or DRAM)."""

    def __init__(self, cfg: CacheConfig, engine: Engine, policy,
                 lower=None, monitor=None, prefetcher=None,
                 inclusive: bool = False) -> None:
        self.cfg = cfg
        self.name = cfg.name
        self.engine = engine
        self.policy = policy
        self.lower = lower
        self.monitor = monitor
        self.prefetcher = prefetcher
        #: inclusive mode: evictions back-invalidate the upper levels
        self.inclusive = inclusive
        self.upper_levels: List["Cache"] = []
        # Optional core-instruction counter, wired by the System: lets
        # cost-based policies (LACS) see instructions issued during a miss.
        self.instr_counter = None
        self.stats = CacheStats()

        self._set_mask = cfg.sets - 1
        self._set_bits = cfg.sets.bit_length() - 1
        self._sets: List[List[CacheBlock]] = [
            [CacheBlock() for _ in range(cfg.ways)] for _ in range(cfg.sets)
        ]
        self.mshr = MSHR(cfg.mshr_entries)
        self._pending: Deque[MemRequest] = deque()

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    def set_index(self, block: int) -> int:
        return block & self._set_mask

    def tag_of(self, block: int) -> int:
        return block >> self._set_bits

    def block_addr(self, set_idx: int, tag: int) -> int:
        return ((tag << self._set_bits) | set_idx) << BLOCK_BITS

    def _find_way(self, set_idx: int, tag: int) -> int:
        for way, blk in enumerate(self._sets[set_idx]):
            if blk.valid and blk.tag == tag:
                return way
        return -1

    def probe(self, addr: int) -> bool:
        """Non-intrusive presence check (used by prefetch filtering/tests)."""
        block = addr >> BLOCK_BITS
        return self._find_way(self.set_index(block), self.tag_of(block)) >= 0

    def invalidate(self, addr: int) -> bool:
        """Drop ``addr``'s block if present (inclusive back-invalidation).

        Returns whether the dropped copy was dirty, so the caller can merge
        that state into its own eviction writeback.
        """
        block = addr >> BLOCK_BITS
        set_idx = self.set_index(block)
        way = self._find_way(set_idx, self.tag_of(block))
        if way < 0:
            return False
        blk = self._sets[set_idx][way]
        was_dirty = blk.dirty
        blk.valid = False
        blk.dirty = False
        self.stats.invalidations += 1
        return was_dirty

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------
    def access(self, req: MemRequest) -> None:
        """Entry point: an access arrives at this level now."""
        now = self.engine.now
        self.stats.accesses[req.rtype] += 1
        if self.monitor is not None:
            self.monitor.on_access(req.core, now, demand=req.rtype.is_demand)
        self.engine.after(self.cfg.latency, self._lookup, req)

    def _lookup(self, req: MemRequest) -> None:
        now = self.engine.now
        block = req.block
        set_idx = self.set_index(block)
        tag = self.tag_of(block)
        way = self._find_way(set_idx, tag)

        if way >= 0:
            self._handle_hit(req, set_idx, way)
        else:
            self.stats.misses[req.rtype] += 1
            if req.rtype.is_demand:
                by_core = self.stats.demand_misses_by_core
                by_core[req.core] = by_core.get(req.core, 0) + 1
            if req.rtype == AccessType.WRITEBACK:
                # Write-allocate without fetch: the full line is incoming.
                self._install(req, dirty=True, entry=None)
            else:
                self._handle_miss(req)

        if self.prefetcher is not None and req.rtype.is_demand:
            self._train_prefetcher(req, hit=(way >= 0))

    def _handle_hit(self, req: MemRequest, set_idx: int, way: int) -> None:
        now = self.engine.now
        blk = self._sets[set_idx][way]
        self.stats.hits[req.rtype] += 1
        if self.monitor is not None:
            self.monitor.on_hit_observed(req.core, now)
        access = PolicyAccess(
            pc=req.pc, addr=req.addr, core=req.core, rtype=req.rtype,
            prefetch=blk.prefetch,
        )
        if req.rtype == AccessType.WRITEBACK:
            blk.dirty = True
            self.policy.on_hit(set_idx, way, self._sets[set_idx], access)
            return
        if blk.prefetch and req.rtype.is_demand:
            self.stats.prefetch_useful += 1
        self.policy.on_hit(set_idx, way, self._sets[set_idx], access)
        if req.rtype.is_demand:
            blk.prefetch = False      # block has now been demanded
            if req.rtype == AccessType.RFO:
                blk.dirty = True
        req.respond(now, served_by=self.name)

    def _handle_miss(self, req: MemRequest) -> None:
        now = self.engine.now
        block = req.block
        entry = self.mshr.lookup(block)
        if entry is not None:
            was_prefetch_only = entry.prefetch_only
            self.mshr.merge(block, req)
            self.stats.mshr_merges += 1
            if was_prefetch_only and not entry.prefetch_only:
                self.stats.prefetch_promoted += 1
            return
        if self.mshr.full:
            self.stats.mshr_stalls += 1
            self._pending.append(req)
            return
        self._start_miss(req)

    def _start_miss(self, req: MemRequest) -> None:
        now = self.engine.now
        entry = self.mshr.allocate(req, now)
        if self.instr_counter is not None:
            entry.instr_at_issue = self.instr_counter(req.core)
        if self.monitor is not None:
            self.monitor.on_miss_start(req.core, now, entry)
        if self.lower is None:
            raise RuntimeError(f"{self.name}: miss with no lower level")
        child = req.child(created=now,
                          callback=lambda r, t, e=entry: self._fill(e, r))
        self.lower.access(child)

    # ------------------------------------------------------------------
    # Fill path
    # ------------------------------------------------------------------
    def _fill(self, entry: MSHREntry, child: MemRequest) -> None:
        now = self.engine.now
        if self.monitor is not None:
            self.monitor.on_miss_end(entry.core, now, entry)
        self._install(entry.primary, dirty=entry.has_rfo, entry=entry)
        served = child.served_by or (self.lower.name if self.lower else "")
        for waiter in entry.waiters:
            waiter.respond(now, served_by=served)
        self.mshr.free(entry.block)
        self._retry_pending()

    def _install(self, req: MemRequest, dirty: bool,
                 entry: Optional[MSHREntry]) -> None:
        """Place ``req``'s block into the array, evicting if needed."""
        block = req.block
        set_idx = self.set_index(block)
        tag = self.tag_of(block)
        blocks = self._sets[set_idx]
        prefetch_fill = entry.prefetch_only if entry is not None else False

        instr_during = 0
        if entry is not None and self.instr_counter is not None:
            instr_during = self.instr_counter(req.core) - entry.instr_at_issue
        fill_access = PolicyAccess(
            pc=req.pc, addr=req.addr, core=req.core, rtype=req.rtype,
            prefetch=prefetch_fill,
            pmc=entry.pmc if entry is not None else 0.0,
            mlp_cost=entry.mlp_cost if entry is not None else 0.0,
            was_pure=entry.is_pure if entry is not None else False,
            instr_during_miss=instr_during,
        )

        way = -1
        for w, blk in enumerate(blocks):
            if not blk.valid:
                way = w
                break
        if way < 0:
            way = self.policy.check_way(
                self.policy.find_victim(set_idx, blocks, fill_access))
            victim = blocks[way]
            self.policy.on_evict(set_idx, way, blocks, fill_access)
            self.stats.evictions += 1
            victim_dirty = victim.dirty
            if self.inclusive and self.upper_levels:
                victim_addr = self.block_addr(set_idx, victim.tag)
                for upper in self.upper_levels:
                    # An upper-level dirty copy is newer than ours: its
                    # data must reach memory with the eviction.
                    victim_dirty |= upper.invalidate(victim_addr)
            if victim_dirty:
                self._writeback(set_idx, victim)

        blk = blocks[way]
        blk.valid = True
        blk.tag = tag
        blk.dirty = dirty
        blk.prefetch = prefetch_fill
        blk.core = req.core
        blk.pc = req.pc
        if prefetch_fill:
            self.stats.prefetch_fills += 1
        self.policy.on_fill(set_idx, way, blocks, fill_access)

    def _writeback(self, set_idx: int, victim: CacheBlock) -> None:
        if self.lower is None:
            return                      # memory-side victim: nothing below
        self.stats.writebacks_out += 1
        wb = MemRequest(
            addr=self.block_addr(set_idx, victim.tag),
            pc=victim.pc, core=victim.core,
            rtype=AccessType.WRITEBACK, created=self.engine.now,
        )
        # Writebacks leave this cache's port immediately; the lower level
        # accounts for its own latency and bandwidth.
        self.lower.access(wb)

    def _retry_pending(self) -> None:
        """Admit queued requests as MSHR slots free up."""
        while self._pending and not self.mshr.full:
            req = self._pending.popleft()
            block = req.block
            way = self._find_way(self.set_index(block), self.tag_of(block))
            if way >= 0:
                # Another miss to the same block filled while we waited.
                self.stats.late_hits += 1
                req.respond(self.engine.now, served_by=self.name)
                continue
            entry = self.mshr.lookup(block)
            if entry is not None:
                self.mshr.merge(block, req)
                self.stats.mshr_merges += 1
                continue
            self._start_miss(req)

    # ------------------------------------------------------------------
    # Prefetching
    # ------------------------------------------------------------------
    def _train_prefetcher(self, req: MemRequest, hit: bool) -> None:
        candidates = self.prefetcher.train(req, hit)
        for addr in candidates:
            self._issue_prefetch(addr, req)

    def _issue_prefetch(self, addr: int, trigger: MemRequest) -> None:
        if addr < 0:
            return
        block = addr >> BLOCK_BITS
        if self._find_way(self.set_index(block), self.tag_of(block)) >= 0:
            return                      # already cached
        if self.mshr.lookup(block) is not None:
            return                      # already in flight
        if self.mshr.full or self._pending:
            return                      # don't let prefetches add pressure
        preq = MemRequest(
            addr=addr, pc=trigger.pc, core=trigger.core,
            rtype=AccessType.PREFETCH, created=self.engine.now,
        )
        self.prefetcher.issued += 1
        self.access(preq)

    # ------------------------------------------------------------------
    # Introspection (tests, debugging)
    # ------------------------------------------------------------------
    def blocks_in_set(self, set_idx: int) -> List[CacheBlock]:
        return self._sets[set_idx]

    def valid_blocks(self) -> int:
        return sum(1 for s in self._sets for b in s if b.valid)

    def assert_no_duplicates(self) -> None:
        """Invariant: a block address appears at most once in its set."""
        for set_idx, blocks in enumerate(self._sets):
            tags = [b.tag for b in blocks if b.valid]
            if len(tags) != len(set(tags)):
                raise AssertionError(
                    f"{self.name}: duplicate tags in set {set_idx}: {tags}")
