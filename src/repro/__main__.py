"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``policies``   list every registered replacement scheme
``workloads``  list SPEC-like and GAP workloads (with Table VIII MPKI)
``studycase``  print the Fig. 2 study case analysis (Tables I & II)
``hwcost``     print the Table V / VI hardware-cost accounting
``run``        simulate one workload under one or more LLC policies
``sweep``      run a named figure sweep through the parallel runner
``perf``       simulation-kernel throughput microbenchmarks (BENCH_perf.json)
``check``      SimSan static lint over the tree (see repro.checks.lint)

``run`` and ``sweep`` resolve every point through the persistent result
store (``~/.cache/repro-care/results`` or ``$REPRO_RESULT_STORE``), so
repeated invocations reuse earlier simulations; ``--workers`` /
``$REPRO_WORKERS`` fan fresh points out over a process pool.
"""

from __future__ import annotations

import argparse
import sys
from typing import List


def _cmd_policies(_args) -> int:
    from .policies.registry import available_policies, make_policy
    for name in available_policies():
        pol = make_policy(name, sets=64, ways=4)
        doc = (type(pol).__doc__ or "").strip().splitlines()
        print(f"{name:18s} {doc[0] if doc else ''}")
    return 0


def _cmd_workloads(_args) -> int:
    from .workloads import SPEC_BENCHMARKS, gap_workload_names
    print("SPEC-like workloads (Table VIII):")
    for name, bench in SPEC_BENCHMARKS.items():
        print(f"  {name:18s} {bench.suite}  paper MPKI {bench.paper_mpki:6.2f}"
              f"  ({bench.pattern_class})")
    print("\nGAP workloads (Table IX graphs x 5 kernels):")
    print("  " + "  ".join(gap_workload_names()))
    return 0


def _cmd_studycase(_args) -> int:
    from .analysis import format_table, paper_study_case
    result = paper_study_case()
    rows = [[label, str(result.pmc[label]), str(result.mlp_cost[label])]
            for label in sorted(result.mlp_cost)]
    print("Fig. 2 study case (Tables I & II):")
    print(format_table(["miss", "PMC", "MLP-based cost"], rows))
    print(f"active pure miss cycles: {result.pure_miss_cycles}")
    return 0


def _cmd_hwcost(_args) -> int:
    from .analysis import (care_concurrency_kb, care_cost, format_table,
                           framework_costs)
    report = care_cost()
    print("Table V - CARE cost breakdown (16-way 2MB LLC):")
    print(format_table(
        ["structure", "KB", "used for"],
        [[i.name, f"{i.kb:.4f}", i.used_for] for i in report.items]))
    print(f"total {report.total_kb:.2f}KB "
          f"({care_concurrency_kb(report):.2f}KB for concurrency awareness)")
    print("\nTable VI - framework comparison:")
    print(format_table(
        ["framework", "uses PC", "concurrency-aware", "KB"],
        [[r.framework, "Yes" if r.uses_pc else "No",
          "Yes" if r.concurrency_aware else "No", f"{r.total_kb:.2f}"]
         for r in framework_costs()]))
    return 0


def _enable_sanitizer() -> None:
    """Propagate ``--sanitize`` through the environment so worker
    processes (and every System built downstream) inherit it."""
    import os
    os.environ["REPRO_SANITIZE"] = "1"


def _cmd_run(args) -> int:
    import json

    from .analysis import format_table
    from .harness import ExperimentSpec, run_many
    from .workloads import gap_workload_names

    if args.sanitize:
        _enable_sanitizer()
    if args.workload in gap_workload_names():
        suite = "gap"
    else:
        suite = "spec"
    store = None if args.no_store else _default_store_arg()
    try:
        specs = [ExperimentSpec.multicopy(
                     args.workload, policy, n_cores=args.cores,
                     prefetch=args.prefetch, suite=suite,
                     n_records=args.records // 2, seed=args.seed)
                 for policy in args.policies]
    except ValueError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    results = run_many(specs, workers=args.workers, store=store)
    if args.json:
        print(json.dumps(
            [{"spec": spec.to_dict(), "result": res.to_dict()}
             for spec, res in zip(specs, results)],
            sort_keys=True, indent=2))
        return 0
    rows = []
    base = None
    for policy, res in zip(args.policies, results):
        total = sum(res.ipc)
        if base is None:
            base = total
        rows.append([policy, f"{total:.3f}", f"{total / base:.3f}",
                     f"{res.mpki():.2f}", f"{res.pmr:.3f}",
                     f"{res.mean_pmc:.1f}", f"{res.aocpa:.1f}"])
    print(f"{args.workload} x {args.cores} cores, "
          f"prefetch={'on' if args.prefetch else 'off'}, "
          f"{args.records} records/core")
    print(format_table(
        ["policy", "sum IPC", "vs first", "MPKI", "pMR", "mean PMC",
         "AOCPA"], rows))
    return 0


def _default_store_arg():
    from .harness.runner import USE_DEFAULT_STORE
    return USE_DEFAULT_STORE


def _cmd_sweep(args) -> int:
    from .harness.runner import session_stats
    from .harness.scale import scale_override
    from .harness.store import set_default_store
    from .harness.sweeps import available_sweeps, run_sweep

    if args.list or not args.name:
        for name, title in available_sweeps():
            print(f"{name:8s} {title}")
        return 0
    if args.sanitize:
        _enable_sanitizer()
    if args.no_store:
        set_default_store(None)
    overrides = {}
    if args.records is not None:
        overrides["records"] = args.records
    if args.workloads is not None:
        overrides["workloads"] = args.workloads
    if args.mixes is not None:
        overrides["mixes"] = args.mixes
    try:
        with scale_override(**overrides):
            text = run_sweep(args.name, workers=args.workers,
                             progress=not args.quiet)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    print(text)
    if session_stats.sweeps:
        print(f"\n[sweep] {session_stats.sweeps[-1].summary()}")
    print(f"[sweep] session total: {session_stats.summary()}")
    return 0


def _cmd_perf(args) -> int:
    import json

    from .harness.perfbench import (PERF_CASES, format_payload, run_suite,
                                    write_payload)

    try:
        payload = run_suite(args.cases, repeat=args.repeat, smoke=args.smoke,
                            progress=not args.quiet)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    path = write_payload(payload, args.out)
    if args.json:
        print(json.dumps(payload, sort_keys=True, indent=2))
    else:
        print(format_payload(payload))
    if not args.quiet:
        print(f"[perf] wrote {path}", file=sys.stderr)
    return 0


def _cmd_check(args) -> int:
    from .checks.lint import RULES, format_finding, run_lint

    if args.list_rules:
        for rule in RULES.values():
            print(f"{rule.id}  {rule.name:26s} [{rule.scope}] {rule.summary}")
        return 0
    paths = args.paths
    if not paths:
        from pathlib import Path
        default = Path("src")
        paths = [default] if default.is_dir() else [Path(__file__).parent]
    try:
        findings = run_lint(paths)
    except (FileNotFoundError, SyntaxError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for finding in findings:
        print(format_finding(finding, fix_hints=args.fix_hints))
    if findings:
        print(f"\n{len(findings)} finding(s). Suppress a reviewed line with "
              "'# simsan: skip=<ID>'; see --fix-hints for remedies.")
        return 1
    print("simsan: clean")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="CARE (HPCA 2023) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("policies", help="list replacement schemes")
    sub.add_parser("workloads", help="list workloads")
    sub.add_parser("studycase", help="Fig. 2 / Tables I & II analysis")
    sub.add_parser("hwcost", help="Tables V & VI hardware costs")

    run = sub.add_parser("run", help="simulate a workload")
    run.add_argument("workload", help="e.g. 429.mcf or bfs-or")
    run.add_argument("--policies", nargs="+",
                     default=["lru", "shippp", "care"])
    run.add_argument("--cores", type=int, default=1)
    run.add_argument("--records", type=int, default=8000)
    run.add_argument("--seed", type=int, default=3)
    run.add_argument("--prefetch", action="store_true")
    run.add_argument("--json", action="store_true",
                     help="emit specs + full SimResult dicts as JSON")
    run.add_argument("--workers", type=int, default=None,
                     help="worker processes (default $REPRO_WORKERS or 1; "
                          "0 = one per CPU)")
    run.add_argument("--no-store", action="store_true",
                     help="skip the persistent result store")
    run.add_argument("--sanitize", action="store_true",
                     help="enable the runtime invariant sanitizer "
                          "(REPRO_SANITIZE=1; store-cached points are not "
                          "re-simulated — add --no-store to force checking)")

    sweep = sub.add_parser(
        "sweep", help="run a named figure sweep through the parallel runner")
    sweep.add_argument("name", nargs="?", default=None,
                       help="figure name, e.g. fig07 (omit to list)")
    sweep.add_argument("--list", action="store_true",
                       help="list available sweeps")
    sweep.add_argument("--workers", type=int, default=None,
                       help="worker processes (default $REPRO_WORKERS or 1; "
                            "0 = one per CPU)")
    sweep.add_argument("--records", type=int, default=None,
                       help="measured records per core")
    sweep.add_argument("--workloads", type=int, default=None,
                       help="SPEC workload count for the sweep")
    sweep.add_argument("--mixes", type=int, default=None,
                       help="mixed-workload count (fig10)")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress per-point progress lines")
    sweep.add_argument("--no-store", action="store_true",
                       help="skip the persistent result store")
    sweep.add_argument("--sanitize", action="store_true",
                       help="enable the runtime invariant sanitizer for "
                            "every freshly simulated point")

    perf = sub.add_parser(
        "perf", help="simulation-kernel throughput microbenchmarks")
    perf.add_argument("--cases", nargs="+", default=None,
                      help="case names (default: all; see "
                           "repro.harness.perfbench.PERF_CASES)")
    perf.add_argument("--repeat", type=int, default=3,
                      help="repetitions per case; best-of wall clock")
    perf.add_argument("--smoke", action="store_true",
                      help="CI-sized traces (fast, informational)")
    perf.add_argument("--json", action="store_true",
                      help="print the full payload as JSON")
    perf.add_argument("--out", default="BENCH_perf.json",
                      help="output file (default BENCH_perf.json)")
    perf.add_argument("--quiet", action="store_true",
                      help="suppress per-case progress lines")

    check = sub.add_parser(
        "check", help="SimSan static lint (determinism + hot-path rules)")
    check.add_argument("paths", nargs="*",
                       help="files or directories (default: src)")
    check.add_argument("--fix-hints", action="store_true",
                       help="print a fix hint under every finding")
    check.add_argument("--list-rules", action="store_true",
                       help="list the rule catalogue and exit")
    return parser


def main(argv: List[str] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "policies": _cmd_policies,
        "workloads": _cmd_workloads,
        "studycase": _cmd_studycase,
        "hwcost": _cmd_hwcost,
        "run": _cmd_run,
        "sweep": _cmd_sweep,
        "perf": _cmd_perf,
        "check": _cmd_check,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
