"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``policies``   list every registered replacement scheme
``workloads``  list SPEC-like and GAP workloads (with Table VIII MPKI)
``studycase``  print the Fig. 2 study case analysis (Tables I & II)
``hwcost``     print the Table V / VI hardware-cost accounting
``run``        simulate one workload under one or more LLC policies
"""

from __future__ import annotations

import argparse
import sys
from typing import List


def _cmd_policies(_args) -> int:
    from .policies.registry import available_policies, make_policy
    for name in available_policies():
        pol = make_policy(name, sets=64, ways=4)
        doc = (type(pol).__doc__ or "").strip().splitlines()
        print(f"{name:18s} {doc[0] if doc else ''}")
    return 0


def _cmd_workloads(_args) -> int:
    from .workloads import SPEC_BENCHMARKS, gap_workload_names
    print("SPEC-like workloads (Table VIII):")
    for name, bench in SPEC_BENCHMARKS.items():
        print(f"  {name:18s} {bench.suite}  paper MPKI {bench.paper_mpki:6.2f}"
              f"  ({bench.pattern_class})")
    print("\nGAP workloads (Table IX graphs x 5 kernels):")
    print("  " + "  ".join(gap_workload_names()))
    return 0


def _cmd_studycase(_args) -> int:
    from .analysis import format_table, paper_study_case
    result = paper_study_case()
    rows = [[label, str(result.pmc[label]), str(result.mlp_cost[label])]
            for label in sorted(result.mlp_cost)]
    print("Fig. 2 study case (Tables I & II):")
    print(format_table(["miss", "PMC", "MLP-based cost"], rows))
    print(f"active pure miss cycles: {result.pure_miss_cycles}")
    return 0


def _cmd_hwcost(_args) -> int:
    from .analysis import (care_concurrency_kb, care_cost, format_table,
                           framework_costs)
    report = care_cost()
    print("Table V - CARE cost breakdown (16-way 2MB LLC):")
    print(format_table(
        ["structure", "KB", "used for"],
        [[i.name, f"{i.kb:.4f}", i.used_for] for i in report.items]))
    print(f"total {report.total_kb:.2f}KB "
          f"({care_concurrency_kb(report):.2f}KB for concurrency awareness)")
    print("\nTable VI - framework comparison:")
    print(format_table(
        ["framework", "uses PC", "concurrency-aware", "KB"],
        [[r.framework, "Yes" if r.uses_pc else "No",
          "Yes" if r.concurrency_aware else "No", f"{r.total_kb:.2f}"]
         for r in framework_costs()]))
    return 0


def _cmd_run(args) -> int:
    from .analysis import format_table
    from .sim import SystemConfig, simulate
    from .workloads import gap_workload_names, multicopy_traces

    if args.workload in gap_workload_names():
        suite = "gap"
    else:
        suite = "spec"
    traces = multicopy_traces(args.workload, args.cores, args.records,
                              seed=args.seed, suite=suite)
    cfg = SystemConfig.default(args.cores)
    rows = []
    base = None
    for policy in args.policies:
        res = simulate([t.records for t in traces], cfg=cfg,
                       llc_policy=policy, prefetch=args.prefetch,
                       measure_records=args.records // 2,
                       warmup_records=args.records // 2, seed=args.seed)
        total = sum(res.ipc)
        if base is None:
            base = total
        rows.append([policy, f"{total:.3f}", f"{total / base:.3f}",
                     f"{res.mpki():.2f}", f"{res.pmr:.3f}",
                     f"{res.mean_pmc:.1f}", f"{res.aocpa:.1f}"])
    print(f"{args.workload} x {args.cores} cores, "
          f"prefetch={'on' if args.prefetch else 'off'}, "
          f"{args.records} records/core")
    print(format_table(
        ["policy", "sum IPC", "vs first", "MPKI", "pMR", "mean PMC",
         "AOCPA"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="CARE (HPCA 2023) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("policies", help="list replacement schemes")
    sub.add_parser("workloads", help="list workloads")
    sub.add_parser("studycase", help="Fig. 2 / Tables I & II analysis")
    sub.add_parser("hwcost", help="Tables V & VI hardware costs")

    run = sub.add_parser("run", help="simulate a workload")
    run.add_argument("workload", help="e.g. 429.mcf or bfs-or")
    run.add_argument("--policies", nargs="+",
                     default=["lru", "shippp", "care"])
    run.add_argument("--cores", type=int, default=1)
    run.add_argument("--records", type=int, default=8000)
    run.add_argument("--seed", type=int, default=3)
    run.add_argument("--prefetch", action="store_true")
    return parser


def main(argv: List[str] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "policies": _cmd_policies,
        "workloads": _cmd_workloads,
        "studycase": _cmd_studycase,
        "hwcost": _cmd_hwcost,
        "run": _cmd_run,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
