"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``policies``   list every registered replacement scheme
``workloads``  list SPEC-like and GAP workloads (with Table VIII MPKI)
``studycase``  print the Fig. 2 study case analysis (Tables I & II)
``hwcost``     print the Table V / VI hardware-cost accounting
``run``        simulate one workload under one or more LLC policies
``sweep``      run a named figure sweep through the parallel runner
``campaign``   declarative paper-scale campaigns (run|status|report|list)
``perf``       simulation-kernel throughput microbenchmarks (BENCH_perf.json)
``report``     render a stored run/sweep as a markdown or JSON report
``store``      inspect / repair the persistent result store (``fsck``)
``check``      SimSan static lint over the tree (see repro.checks.lint)

``run`` and ``sweep`` accept observability flags (``--metrics-interval``,
``--trace``) that attach the ``repro.obs`` sampler/tracer to every
freshly simulated point; artifacts land under ``--obs-dir``.

``run`` and ``sweep`` resolve every point through the persistent result
store (``~/.cache/repro-care/results`` or ``$REPRO_RESULT_STORE``), so
repeated invocations reuse earlier simulations; ``--workers`` /
``$REPRO_WORKERS`` fan fresh points out over a process pool.

Sweeps run *supervised* (``repro.harness.supervise``): a failing point
is retried with backoff, hung or crashed workers are killed and
re-queued, and permanent failures are collected into a failure table
while every healthy point finishes (``--fail-fast`` aborts instead).
``--manifest`` checkpoints campaign status so ``--resume`` picks up
where an interrupted or partially failed sweep left off.

``--checkpoint`` (run/sweep/campaign) enables mid-flight save-states
(``repro.harness.preempt``): watchdog timeouts and resource-guard
breaches preempt workers cleanly, and the retried point *resumes* from
its save-state instead of restarting — byte-identically.

Exit codes: 0 success; 2 usage error; 3 sweep finished but some points
failed permanently, or the sweep manifest could not be persisted;
130 interrupted (manifest flushed when enabled).
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
from typing import List, Optional


class _DynamicStderrHandler(logging.Handler):
    """Log handler bound to the *current* ``sys.stderr`` at emit time.

    The CLI promises that ``--json`` output on stdout stays parseable,
    so every diagnostic — including ``log.warning`` lines from the
    harness (store write failures, serial fallback, ...) — must land on
    stderr.  Resolving ``sys.stderr`` per record (instead of capturing
    the stream once, as ``logging.basicConfig`` would) keeps that true
    under test harnesses and callers that swap the stream out.
    """

    def emit(self, record: logging.LogRecord) -> None:
        try:
            sys.stderr.write(self.format(record) + "\n")
        except (OSError, ValueError):   # closed/broken stderr: drop it
            pass


_LOG_HANDLER: Optional[logging.Handler] = None


def _setup_cli_logging() -> None:
    """Route ``repro.*`` warnings to stderr, never stdout (idempotent)."""
    global _LOG_HANDLER
    if _LOG_HANDLER is not None:
        return
    handler = _DynamicStderrHandler()
    handler.setFormatter(logging.Formatter("[%(name)s] %(message)s"))
    logging.getLogger("repro").addHandler(handler)
    _LOG_HANDLER = handler


def _cmd_policies(_args) -> int:
    from .policies.registry import available_policies, make_policy
    for name in available_policies():
        pol = make_policy(name, sets=64, ways=4)
        doc = (type(pol).__doc__ or "").strip().splitlines()
        print(f"{name:18s} {doc[0] if doc else ''}")
    return 0


def _cmd_workloads(_args) -> int:
    from .workloads import SERVE_WORKLOADS, SPEC_BENCHMARKS, gap_workload_names
    print("SPEC-like workloads (Table VIII):")
    for name, bench in SPEC_BENCHMARKS.items():
        print(f"  {name:18s} {bench.suite}  paper MPKI {bench.paper_mpki:6.2f}"
              f"  ({bench.pattern_class})")
    print("\nGAP workloads (Table IX graphs x 5 kernels):")
    print("  " + "  ".join(gap_workload_names()))
    print("\nProduction-traffic workloads (serving families):")
    for name, work in SERVE_WORKLOADS.items():
        print(f"  {name:18s} {work.family:6s} target MPKI "
              f"{work.target_mpki:6.2f}  ({work.pattern_class})")
    return 0


def _cmd_studycase(_args) -> int:
    from .analysis import format_table, paper_study_case
    result = paper_study_case()
    rows = [[label, str(result.pmc[label]), str(result.mlp_cost[label])]
            for label in sorted(result.mlp_cost)]
    print("Fig. 2 study case (Tables I & II):")
    print(format_table(["miss", "PMC", "MLP-based cost"], rows))
    print(f"active pure miss cycles: {result.pure_miss_cycles}")
    return 0


def _cmd_hwcost(_args) -> int:
    from .analysis import (care_concurrency_kb, care_cost, format_table,
                           framework_costs)
    report = care_cost()
    print("Table V - CARE cost breakdown (16-way 2MB LLC):")
    print(format_table(
        ["structure", "KB", "used for"],
        [[i.name, f"{i.kb:.4f}", i.used_for] for i in report.items]))
    print(f"total {report.total_kb:.2f}KB "
          f"({care_concurrency_kb(report):.2f}KB for concurrency awareness)")
    print("\nTable VI - framework comparison:")
    print(format_table(
        ["framework", "uses PC", "concurrency-aware", "KB"],
        [[r.framework, "Yes" if r.uses_pc else "No",
          "Yes" if r.concurrency_aware else "No", f"{r.total_kb:.2f}"]
         for r in framework_costs()]))
    return 0


def _enable_sanitizer() -> None:
    """Propagate ``--sanitize`` through the environment so worker
    processes (and every System built downstream) inherit it."""
    import os
    os.environ["REPRO_SANITIZE"] = "1"


def _enable_obs(args) -> bool:
    """Propagate observability flags through the environment (same
    mechanism as ``--sanitize``) so pool workers inherit them.  Returns
    True when any observer was enabled."""
    import os
    enabled = False
    if args.metrics_interval:
        os.environ["REPRO_METRICS_INTERVAL"] = str(args.metrics_interval)
        enabled = True
    if args.trace:
        os.environ["REPRO_TRACE"] = "1"
        os.environ["REPRO_TRACE_SAMPLE"] = str(args.trace_sample)
        enabled = True
    if enabled:
        os.environ["REPRO_OBS_DIR"] = args.obs_dir
    return enabled


def _enable_trace_cache(args) -> None:
    """Propagate ``--trace-cache`` through the environment (same
    mechanism as ``--sanitize``) so pool workers share the cache."""
    if getattr(args, "trace_cache", None) is not None:
        os.environ["REPRO_TRACE_CACHE"] = args.trace_cache


def _enable_checkpoint(args) -> None:
    """Propagate ``--checkpoint`` through the environment (same
    mechanism as ``--sanitize``) so pool workers save/restore too.

    ``--checkpoint`` with no value enables on-demand (preempt-driven)
    save-states; a value adds an every-N-events cadence.  The state
    directory defaults to ``<obs-dir>/ckpt`` unless ``REPRO_CKPT_DIR``
    is already set.
    """
    events = getattr(args, "checkpoint", None)
    secs = getattr(args, "checkpoint_secs", None)
    if events is None and secs is None:
        return
    from .harness.preempt import (CKPT_DIR_ENV, CKPT_EVENTS_ENV,
                                  CKPT_SECS_ENV)
    if not os.environ.get(CKPT_DIR_ENV, "").strip():
        os.environ[CKPT_DIR_ENV] = os.path.join(args.obs_dir, "ckpt")
    if events:
        os.environ[CKPT_EVENTS_ENV] = str(events)
    if secs:
        os.environ[CKPT_SECS_ENV] = str(secs)


def _supervision_from_args(args, tag: str):
    """Build the ``supervised_sweep`` context from CLI flags.

    Raises ValueError for bad flag values (callers map that to the
    usage exit code 2).  Returns ``(context, incidents)``.
    """
    import os

    from .harness.supervise import (DEFAULT_MANIFEST, RetryPolicy,
                                    SweepManifest, supervised_sweep)
    from .obs.incidents import IncidentLog

    if getattr(args, "chaos", None):
        from .checks.chaos import parse_chaos
        parse_chaos(args.chaos)  # validate before exporting to workers
        os.environ["REPRO_CHAOS"] = args.chaos
    retry = RetryPolicy.from_env()
    if args.retries is not None:
        if args.retries < 1:
            raise ValueError("--retries must be >= 1")
        retry = RetryPolicy(max_attempts=args.retries,
                            backoff=retry.backoff,
                            backoff_cap=retry.backoff_cap,
                            jitter=retry.jitter)
    if args.timeout is not None and args.timeout < 0:
        raise ValueError("--timeout must be >= 0 (0 disables)")
    manifest = None
    manifest_path = getattr(args, "manifest", None)
    resume = getattr(args, "resume", False)
    if resume and manifest_path is None:
        manifest_path = DEFAULT_MANIFEST
    if manifest_path is not None:
        from pathlib import Path
        if resume and Path(manifest_path).exists():
            manifest = SweepManifest.load(manifest_path)
            requeued = manifest.reset_failures()
            done = manifest.counts()["done"]
            print(f"[sweep] resuming {manifest_path}: {done} point(s) "
                  f"done, {requeued} failed point(s) re-queued",
                  file=sys.stderr)
        else:
            if resume:
                print(f"[sweep] no manifest at {manifest_path}; starting "
                      "fresh", file=sys.stderr)
            manifest = SweepManifest(path=manifest_path, sweep=tag)
    incidents = IncidentLog(tag=tag)
    ctx = supervised_sweep(keep_going=not args.fail_fast, retry=retry,
                           timeout=args.timeout, manifest=manifest,
                           incidents=incidents)
    return ctx, incidents


def _manifest_persist_abort(exc, incidents, obs_dir, tag: str) -> int:
    """Shared epilogue for :class:`ManifestPersistError` (exit code 3)."""
    from .obs.incidents import maybe_write
    incidents.add("manifest-persist", path=str(exc.path),
                  strikes=exc.strikes)
    maybe_write(incidents, obs_dir)
    print(f"\n[{tag}] aborted: {exc}", file=sys.stderr)
    return 3


def _finish_supervised(sup, incidents, failures, obs_dir) -> int:
    """Shared epilogue: failure table, incident artifact, exit code."""
    from .harness.supervise import format_failure_table
    from .obs.incidents import maybe_write

    path = maybe_write(incidents, obs_dir)
    if path is not None:
        print(f"[sweep] {len(incidents)} incident(s) -> {path}",
              file=sys.stderr)
    if not failures:
        return 0
    print(file=sys.stderr)
    print(format_failure_table(failures), file=sys.stderr)
    if sup is not None and sup.manifest is not None:
        print(f"[sweep] manifest: {sup.manifest.summary()} -> "
              f"{sup.manifest.path} (re-run with --resume to retry)",
              file=sys.stderr)
    return 3


def _cmd_run(args) -> int:
    import json

    from .analysis import format_table
    from .harness import ExperimentSpec, run_many
    from .harness.supervise import (ManifestPersistError, SweepFailedError,
                                    SweepInterrupted)
    from .workloads import gap_workload_names, serve_names

    if args.sanitize:
        _enable_sanitizer()
    _enable_trace_cache(args)
    _enable_checkpoint(args)
    obs_on = _enable_obs(args)
    if args.workload in gap_workload_names():
        suite = "gap"
    elif args.workload in serve_names():
        suite = "serve"
    else:
        suite = "spec"
    store = None if args.no_store else _default_store_arg()
    try:
        specs = [ExperimentSpec.multicopy(
                     args.workload, policy, n_cores=args.cores,
                     prefetch=args.prefetch, suite=suite,
                     n_records=args.records // 2, seed=args.seed,
                     engine=args.engine)
                 for policy in args.policies]
        ctx, incidents = _supervision_from_args(
            args, tag=f"run-{args.workload}")
    except ValueError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    # Observer artifacts only exist when the simulator actually runs, so
    # enabling them forces fresh simulation past the memo/store caches.
    try:
        with ctx as sup:
            try:
                results = run_many(specs, workers=args.workers, store=store,
                                   force=obs_on)
            except SweepFailedError as exc:  # --fail-fast
                return _finish_supervised(sup, incidents, exc.failures,
                                          args.obs_dir)
            failures = list(sup.failures)
    except SweepInterrupted as exc:
        print(f"\n[run] interrupted: {exc}", file=sys.stderr)
        return 130
    except ManifestPersistError as exc:
        return _manifest_persist_abort(exc, incidents, args.obs_dir, "run")
    if args.json:
        print(json.dumps(
            [{"spec": spec.to_dict(),
              "result": None if res is None else res.to_dict()}
             for spec, res in zip(specs, results)],
            sort_keys=True, indent=2))
        return _finish_supervised(sup, incidents, failures, args.obs_dir)
    rows = []
    base = None
    for policy, res in zip(args.policies, results):
        if res is None:
            rows.append([policy] + ["-"] * 6)
            continue
        total = sum(res.ipc)
        if base is None:
            base = total
        rows.append([policy, f"{total:.3f}", f"{total / base:.3f}",
                     f"{res.mpki():.2f}", f"{res.pmr:.3f}",
                     f"{res.mean_pmc:.1f}", f"{res.aocpa:.1f}"])
    print(f"{args.workload} x {args.cores} cores, "
          f"prefetch={'on' if args.prefetch else 'off'}, "
          f"{args.records} records/core")
    print(format_table(
        ["policy", "sum IPC", "vs first", "MPKI", "pMR", "mean PMC",
         "AOCPA"], rows))
    return _finish_supervised(sup, incidents, failures, args.obs_dir)


def _default_store_arg():
    from .harness.runner import USE_DEFAULT_STORE
    return USE_DEFAULT_STORE


def _cmd_sweep(args) -> int:
    from .harness.runner import session_stats
    from .harness.scale import scale_override
    from .harness.store import set_default_store
    from .harness.supervise import (ManifestPersistError, SweepFailedError,
                                    SweepInterrupted)
    from .harness.sweeps import available_sweeps, run_sweep

    if args.list or not args.name:
        for name, title in available_sweeps():
            print(f"{name:8s} {title}")
        return 0
    if args.engine:
        # Same mechanism as --sanitize: pool workers inherit through the
        # environment.  REPRO_ENGINE re-executes the sweep's specs under
        # the named (bit-identical) backend without changing their keys.
        import os
        os.environ["REPRO_ENGINE"] = args.engine
    if args.sanitize:
        _enable_sanitizer()
    _enable_trace_cache(args)
    _enable_checkpoint(args)
    obs_on = _enable_obs(args)
    if obs_on and not args.no_store:
        print("[sweep] observability on: store-cached points are served "
              "without artifacts; use --no-store to observe every point",
              file=sys.stderr)
    if args.no_store:
        set_default_store(None)
    overrides = {}
    if args.records is not None:
        overrides["records"] = args.records
    if args.workloads is not None:
        overrides["workloads"] = args.workloads
    if args.mixes is not None:
        overrides["mixes"] = args.mixes
    try:
        ctx, incidents = _supervision_from_args(args,
                                                tag=f"sweep-{args.name}")
    except ValueError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    try:
        with ctx as sup:
            try:
                with scale_override(**overrides):
                    text = run_sweep(args.name, workers=args.workers,
                                     progress=not args.quiet)
            except SweepFailedError as exc:  # --fail-fast
                return _finish_supervised(sup, incidents, exc.failures,
                                          args.obs_dir)
            failures = list(sup.failures)
    except SweepInterrupted as exc:
        print(f"\n[sweep] interrupted: {exc}", file=sys.stderr)
        from .obs.incidents import maybe_write
        maybe_write(incidents, args.obs_dir)
        return 130
    except ManifestPersistError as exc:
        return _manifest_persist_abort(exc, incidents, args.obs_dir, "sweep")
    except (KeyError, ValueError) as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    print(text)
    if session_stats.sweeps:
        print(f"\n[sweep] {session_stats.sweeps[-1].summary()}")
    print(f"[sweep] session total: {session_stats.summary()}")
    return _finish_supervised(sup, incidents, failures, args.obs_dir)


def _resolve_campaign(args):
    """Load + optionally slice the campaign named by the CLI args."""
    from .harness.campaign import apply_slice, find_campaign, load_campaign
    campaign = load_campaign(find_campaign(args.campaign))
    if getattr(args, "slice", None):
        campaign = apply_slice(campaign, args.slice)
    return campaign


def _campaign_store(args):
    from .harness.store import ResultStore, default_store
    if getattr(args, "store", None):
        return ResultStore(args.store)
    return default_store()


def _cmd_campaign(args) -> int:
    import json

    from .harness.campaign import (CampaignError, available_campaigns,
                                   build_campaign_report, campaign_status,
                                   format_status, load_campaign,
                                   render_campaign_markdown)

    if args.campaign_command == "list":
        paths = available_campaigns()
        if not paths:
            print("no campaigns under benchmarks/campaigns/")
            return 0
        for path in paths:
            try:
                campaign = load_campaign(path)
            except CampaignError as exc:
                print(f"{path}: INVALID ({exc})")
                continue
            slices = ", ".join(sorted(campaign.slices)) or "-"
            print(f"{campaign.name:16s} {campaign.points():6d} point(s) "
                  f"in {len(campaign.grids)} grid(s)  slices: {slices}")
        return 0

    try:
        campaign = _resolve_campaign(args)
    except CampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.campaign_command == "status":
        from pathlib import Path

        from .harness.supervise import SweepManifest
        store = _campaign_store(args)
        manifest_counts = None
        manifest_path = args.manifest or campaign.default_manifest()
        if Path(manifest_path).exists():
            manifest_counts = SweepManifest.load(manifest_path).counts()
        status = campaign_status(campaign, store,
                                 manifest_counts=manifest_counts)
        if args.json:
            print(json.dumps(status, sort_keys=True, indent=2))
        else:
            print(format_status(status))
        return 0

    if args.campaign_command == "report":
        from pathlib import Path
        store = _campaign_store(args)
        if store is None:
            print("error: no result store (set REPRO_RESULT_STORE or pass "
                  "--store PATH)", file=sys.stderr)
            return 2
        report = build_campaign_report(campaign, store,
                                       baseline=args.baseline)
        if args.format == "json":
            text = json.dumps(report, sort_keys=True, indent=2) + "\n"
        else:
            text = render_campaign_markdown(report)
        if args.out:
            out = Path(args.out)
            out.write_text(text)
            print(f"[campaign] wrote {out}", file=sys.stderr)
        else:
            print(text, end="")
        return 0

    # -- campaign run ---------------------------------------------------
    from .harness.runner import run_many, session_stats
    from .harness.supervise import (ManifestPersistError, SweepFailedError,
                                    SweepInterrupted)

    if args.engine:
        os.environ["REPRO_ENGINE"] = args.engine
    if args.sanitize:
        _enable_sanitizer()
    _enable_trace_cache(args)
    _enable_checkpoint(args)
    # The campaign is a standing resumable sweep: checkpoint to the
    # campaign's own manifest unless the caller picked another path.
    if args.manifest is None:
        args.manifest = campaign.default_manifest()
    specs = campaign.specs()
    print(f"[campaign] {campaign.name}"
          + (f" · slice {campaign.slice_name}" if campaign.slice_name else "")
          + f": {len(specs)} point(s) across {len(campaign.grids)} grid(s)",
          file=sys.stderr)
    try:
        ctx, incidents = _supervision_from_args(args, tag=campaign.tag())
    except ValueError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    store = _default_store_arg()
    try:
        with ctx as sup:
            try:
                run_many(specs, workers=args.workers, store=store,
                         progress=not args.quiet)
            except SweepFailedError as exc:  # --fail-fast
                return _finish_supervised(sup, incidents, exc.failures,
                                          args.obs_dir)
            failures = list(sup.failures)
    except SweepInterrupted as exc:
        print(f"\n[campaign] interrupted: {exc}", file=sys.stderr)
        from .obs.incidents import maybe_write
        maybe_write(incidents, args.obs_dir)
        return 130
    except ManifestPersistError as exc:
        return _manifest_persist_abort(exc, incidents, args.obs_dir,
                                       "campaign")
    status = campaign_status(
        campaign, _campaign_store(args),
        manifest_counts=sup.manifest.counts() if sup.manifest else None)
    print(format_status(status))
    if session_stats.sweeps:
        print(f"[campaign] {session_stats.sweeps[-1].summary()}")
    return _finish_supervised(sup, incidents, failures, args.obs_dir)


def _cmd_perf(args) -> int:
    import json

    from .harness.perfbench import (DEFAULT_OUTPUT, diff_payloads,
                                    format_payload, run_suite, write_payload)

    if args.sweep:
        from .harness.perfbench import (SWEEP_GRID_RECORDS,
                                        SWEEP_SMOKE_RECORDS,
                                        format_sweep_payload,
                                        merge_sweep_section,
                                        run_sweep_benchmark)
        section = run_sweep_benchmark(
            repeat=max(2, args.repeat),
            records=(SWEEP_SMOKE_RECORDS if args.smoke
                     else SWEEP_GRID_RECORDS),
            engine=args.engine, progress=not args.quiet)
        out = args.out
        if out is None:
            out = "BENCH_perf.smoke.json" if args.smoke else DEFAULT_OUTPUT
        existing = None
        try:
            with open(out) as handle:
                existing = json.load(handle)
        except (OSError, json.JSONDecodeError):
            existing = None
        payload = merge_sweep_section(existing, section)
        path = write_payload(payload, out)
        if args.json:
            print(json.dumps(payload, sort_keys=True, indent=2))
        else:
            print(format_sweep_payload(section))
        if not args.quiet:
            print(f"[perf] wrote {path}", file=sys.stderr)
        return 0
    if args.gate:
        from .harness.perfbench import (DEFAULT_GATE_THRESHOLD, GATE_ENV,
                                        GATE_THRESHOLD_ENV,
                                        gate_sweep_regression)
        if os.environ.get(GATE_ENV, "").strip().lower() in ("off", "0"):
            print(f"[perf] gate skipped ({GATE_ENV}={os.environ[GATE_ENV]})",
                  file=sys.stderr)
            return 0
        base_path, fresh_path = args.gate
        try:
            with open(base_path) as handle:
                base = json.load(handle)
            with open(fresh_path) as handle:
                fresh = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        threshold = args.gate_threshold
        if threshold is None:
            threshold = float(os.environ.get(GATE_THRESHOLD_ENV,
                                             DEFAULT_GATE_THRESHOLD))
        try:
            status, message = gate_sweep_regression(base, fresh,
                                                    threshold=threshold)
        except ValueError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        print(f"[perf] gate {status}: {message}")
        return 1 if status == "fail" else 0
    if args.diff:
        base_path, fresh_path = args.diff
        try:
            with open(base_path) as handle:
                base = json.load(handle)
            with open(fresh_path) as handle:
                fresh = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(diff_payloads(base, fresh))
        return 0
    try:
        payload = run_suite(args.cases, repeat=args.repeat, smoke=args.smoke,
                            progress=not args.quiet, engine=args.engine)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    # Smoke payloads are CI-sized and not comparable to the committed
    # baseline, so they default to a separate file instead of clobbering
    # BENCH_perf.json.
    out = args.out
    if out is None:
        out = "BENCH_perf.smoke.json" if args.smoke else DEFAULT_OUTPUT
    path = write_payload(payload, out)
    if args.json:
        print(json.dumps(payload, sort_keys=True, indent=2))
    else:
        print(format_payload(payload))
    if not args.quiet:
        print(f"[perf] wrote {path}", file=sys.stderr)
    return 0


def _cmd_report(args) -> int:
    from pathlib import Path

    from .harness.store import ResultStore, default_store
    from .obs.report import generate

    if args.store:
        store = ResultStore(args.store)
    else:
        store = default_store()
        if store is None:
            print("error: no result store (set REPRO_RESULT_STORE or pass "
                  "--store PATH)", file=sys.stderr)
            return 2
    try:
        text = generate(store, fmt=args.format, baseline=args.baseline,
                        policies=args.policies)
    except ValueError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.incidents:
        from .obs.incidents import IncidentLog
        if args.format != "md":
            print("error: --incidents requires --format md",
                  file=sys.stderr)
            return 2
        try:
            log = IncidentLog.load(args.incidents)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read incidents file: {exc}",
                  file=sys.stderr)
            return 2
        text = text.rstrip("\n") + "\n\n" + log.render_markdown()
    if args.out:
        out = Path(args.out)
        out.write_text(text if text.endswith("\n") else text + "\n")
        print(f"[report] wrote {out}", file=sys.stderr)
    else:
        print(text)
    return 0


def _cmd_store(args) -> int:
    from .harness.store import ResultStore, default_store

    if args.store:
        store = ResultStore(args.store)
    else:
        store = default_store()
        if store is None:
            print("error: no result store (set REPRO_RESULT_STORE or pass "
                  "--store PATH)", file=sys.stderr)
            return 2
    if args.store_command == "fsck":
        report = store.fsck()
        print(report.summary())
        for line in report.errors:
            print(f"  {line}")
        if report.quarantined:
            print(f"quarantined entries moved to {store.quarantine_dir}; "
                  "re-running the sweep re-simulates them")
        dirty = bool(report.quarantined or report.errors)
        # The trace cache sits beside the store and corrupts the same
        # way (torn writes, chaos); fsck covers both in one pass.
        from .workloads.tracecache import default_trace_cache
        cache = default_trace_cache()
        if cache is not None and cache.namespace.is_dir():
            trace_report = cache.fsck()
            print(f"trace cache {trace_report.summary()}")
            for line in trace_report.errors:
                print(f"  {line}")
            if trace_report.quarantined:
                print(f"quarantined trace entries moved to "
                      f"{cache.quarantine_dir}; traces are regenerated "
                      "on next use")
            dirty = dirty or bool(trace_report.quarantined
                                  or trace_report.errors)
        # Sweep/campaign manifests are the third artifact family that
        # corrupts the same way; a torn ledger would crash --resume.
        from pathlib import Path

        from .harness.supervise import fsck_manifests
        manifest_paths = list(getattr(args, "manifests", None) or [])
        if not manifest_paths:
            manifest_paths = sorted(
                str(p) for p in Path(".").glob("*.manifest.json"))
        if manifest_paths:
            m_report = fsck_manifests(manifest_paths)
            if m_report.scanned:
                print(f"manifests {m_report.summary()}")
                for line in m_report.errors:
                    print(f"  {line}")
                if m_report.quarantined:
                    print("quarantined manifests moved aside; the next "
                          "sweep starts a fresh ledger (done points still "
                          "come from the store)")
                dirty = dirty or bool(m_report.quarantined
                                      or m_report.errors)
        return 1 if dirty else 0
    print(f"store root: {store.root}")
    print(f"namespace:  {store.namespace.name}")
    print(f"entries:    {len(store)}")
    return 0


def _emit_findings(findings, fmt: str, fix_hints: bool) -> None:
    from .checks.lint import format_finding

    if fmt == "json":
        import json
        payload = {
            "version": "repro.simsan.findings/v1",
            "clean": not findings,
            "findings": [
                {"path": f.path, "line": f.line, "col": f.col,
                 "rule": f.rule_id, "name": f.rule.name,
                 "message": f.message}
                for f in findings
            ],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return
    if fmt == "github":
        for f in findings:
            # GitHub annotation grammar: property values escape % , \r \n
            msg = (f"{f.rule_id} [{f.rule.name}] {f.message}"
                   .replace("%", "%25").replace("\r", "%0D")
                   .replace("\n", "%0A"))
            print(f"::error file={f.path},line={f.line},"
                  f"col={f.col + 1},title={f.rule_id}::{msg}")
        return
    for f in findings:
        print(format_finding(f, fix_hints=fix_hints))


def _cmd_check(args) -> int:
    from .checks.lint import audit_suppressions, run_lint_detailed
    from .checks.lint.rules import RULES

    if args.list_rules:
        from .checks.flow.rules import FLOW_RULES
        for rule in list(RULES.values()) + list(FLOW_RULES.values()):
            print(f"{rule.id}  {rule.name:26s} [{rule.scope}] {rule.summary}")
        return 0
    paths = args.paths
    if not paths:
        from pathlib import Path
        default = Path("src")
        paths = [default] if default.is_dir() else [Path(__file__).parent]
    run_flow_pass = args.flow or bool(args.call_graph)
    try:
        results = run_lint_detailed(paths)
        findings = [f for r in results for f in r.findings]
        flow_report = None
        if run_flow_pass:
            from .checks.flow import run_flow
            flow_report = run_flow(paths)
            findings.extend(flow_report.findings)
    except (FileNotFoundError, SyntaxError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    findings.extend(audit_suppressions(
        results,
        flow_used=flow_report.used_suppressions if flow_report else None,
        flow_ran=flow_report is not None))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    if args.call_graph and flow_report is not None:
        import json
        from pathlib import Path
        out = Path(args.call_graph)
        if out.suffix in (".dot", ".gv"):
            out.write_text(
                flow_report.graph.to_dot(hot=flow_report.hot_derived),
                encoding="utf-8")
        else:
            payload = flow_report.graph.to_json(
                hot=flow_report.hot_derived,
                worker=flow_report.worker_closure)
            out.write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n",
                encoding="utf-8")
        print(f"call graph written to {out}", file=sys.stderr)
    _emit_findings(findings, args.format, args.fix_hints)
    if findings:
        if args.format == "text":
            print(f"\n{len(findings)} finding(s). Suppress a reviewed line "
                  "with '# simsan: skip=<ID>'; see --fix-hints for remedies.")
        return 1
    if args.format == "text":
        scope = "lint+flow" if run_flow_pass else "lint"
        print(f"simsan: clean ({scope})")
    return 0


def _add_supervise_args(parser: argparse.ArgumentParser,
                        with_manifest: bool = False) -> None:
    """Fault-tolerance flags shared by ``run`` and ``sweep``."""
    parser.add_argument("--fail-fast", action="store_true",
                        help="abort on the first permanent failure "
                             "(default: finish healthy points, report a "
                             "failure table, exit 3)")
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="attempts per point for transient failures "
                             "(default $REPRO_RETRIES or 3)")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="per-point watchdog timeout in seconds "
                             "(0 disables; default $REPRO_TIMEOUT or "
                             "scaled to the point's size)")
    parser.add_argument("--chaos", default=None,
                        metavar="PROFILE:SEED[:NUM/DEN]",
                        help="inject deterministic faults (testing): "
                             "profiles raise/flaky/hang/kill/corrupt/"
                             "preempt/ckpt-corrupt/all, e.g. 'all:7' or "
                             "'flaky:3:1/2'; equivalent to REPRO_CHAOS")
    parser.add_argument("--checkpoint", nargs="?", const=0, type=int,
                        default=None, metavar="EVENTS",
                        help="write mid-run save-states so preempted "
                             "points resume instead of restarting; an "
                             "EVENTS value adds a periodic cadence "
                             "(states land in <obs-dir>/ckpt; equivalent "
                             "to REPRO_CKPT_DIR/REPRO_CKPT_EVENTS)")
    parser.add_argument("--checkpoint-secs", type=float, default=None,
                        metavar="S",
                        help="also checkpoint every S wall-clock seconds "
                             "(implies --checkpoint; REPRO_CKPT_SECS)")
    if with_manifest:
        parser.add_argument("--manifest", nargs="?",
                            const="sweep.manifest.json",
                            default=None, metavar="PATH",
                            help="checkpoint campaign status to PATH "
                                 "(default sweep.manifest.json)")
        parser.add_argument("--resume", action="store_true",
                            help="resume from the manifest: done points "
                                 "come from the store, failed points are "
                                 "re-queued")


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    """Observability flags shared by ``run`` and ``sweep``."""
    parser.add_argument("--metrics-interval", type=int, default=0,
                        metavar="CYCLES",
                        help="sample interval metrics every CYCLES cycles "
                             "(0 = off); writes <tag>.metrics.json")
    parser.add_argument("--trace", action="store_true",
                        help="emit Chrome-trace request-lifecycle spans "
                             "(<tag>.trace.json; open in ui.perfetto.dev)")
    parser.add_argument("--trace-sample", type=int, default=1, metavar="N",
                        help="trace every Nth demand request per core "
                             "(default 1 = all)")
    parser.add_argument("--obs-dir", default="obs", metavar="DIR",
                        help="directory for observability artifacts "
                             "(default ./obs)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="CARE (HPCA 2023) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("policies", help="list replacement schemes")
    sub.add_parser("workloads", help="list workloads")
    sub.add_parser("studycase", help="Fig. 2 / Tables I & II analysis")
    sub.add_parser("hwcost", help="Tables V & VI hardware costs")

    run = sub.add_parser("run", help="simulate a workload")
    run.add_argument("workload", help="e.g. 429.mcf or bfs-or")
    run.add_argument("--policies", nargs="+",
                     default=["lru", "shippp", "care"])
    run.add_argument("--cores", type=int, default=1)
    run.add_argument("--records", type=int, default=8000)
    run.add_argument("--seed", type=int, default=3)
    run.add_argument("--prefetch", action="store_true")
    run.add_argument("--json", action="store_true",
                     help="emit specs + full SimResult dicts as JSON")
    run.add_argument("--workers", type=int, default=None,
                     help="worker processes (default $REPRO_WORKERS or 1; "
                          "0 = one per CPU)")
    run.add_argument("--no-store", action="store_true",
                     help="skip the persistent result store")
    run.add_argument("--sanitize", action="store_true",
                     help="enable the runtime invariant sanitizer "
                          "(REPRO_SANITIZE=1; store-cached points are not "
                          "re-simulated — add --no-store to force checking)")
    run.add_argument("--engine", default="classic", metavar="NAME",
                     help="engine backend (classic|batched; bit-identical "
                          "— part of the spec fingerprint)")
    run.add_argument("--trace-cache", default=None, metavar="DIR",
                     help="content-addressed trace cache directory, or "
                          "'off' (default ~/.cache/repro-care/traces; "
                          "equivalent to REPRO_TRACE_CACHE)")
    _add_supervise_args(run)
    _add_obs_args(run)

    sweep = sub.add_parser(
        "sweep", help="run a named figure sweep through the parallel runner")
    sweep.add_argument("name", nargs="?", default=None,
                       help="figure name, e.g. fig07 (omit to list)")
    sweep.add_argument("--list", action="store_true",
                       help="list available sweeps")
    sweep.add_argument("--workers", type=int, default=None,
                       help="worker processes (default $REPRO_WORKERS or 1; "
                            "0 = one per CPU)")
    sweep.add_argument("--records", type=int, default=None,
                       help="measured records per core")
    sweep.add_argument("--workloads", type=int, default=None,
                       help="SPEC workload count for the sweep")
    sweep.add_argument("--mixes", type=int, default=None,
                       help="mixed-workload count (fig10)")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress per-point progress lines")
    sweep.add_argument("--no-store", action="store_true",
                       help="skip the persistent result store")
    sweep.add_argument("--sanitize", action="store_true",
                       help="enable the runtime invariant sanitizer for "
                            "every freshly simulated point")
    sweep.add_argument("--engine", default=None, metavar="NAME",
                       help="engine backend for fresh simulation "
                            "(exports REPRO_ENGINE so pool workers "
                            "inherit it; bit-identical to classic)")
    sweep.add_argument("--trace-cache", default=None, metavar="DIR",
                       help="content-addressed trace cache directory, or "
                            "'off' (default ~/.cache/repro-care/traces; "
                            "equivalent to REPRO_TRACE_CACHE)")
    _add_supervise_args(sweep, with_manifest=True)
    _add_obs_args(sweep)

    perf = sub.add_parser(
        "perf", help="simulation-kernel throughput microbenchmarks")
    perf.add_argument("--cases", nargs="+", default=None,
                      help="case names (default: all; see "
                           "repro.harness.perfbench.PERF_CASES)")
    perf.add_argument("--repeat", type=int, default=3,
                      help="repetitions per case; best-of wall clock")
    perf.add_argument("--smoke", action="store_true",
                      help="CI-sized traces (fast, informational)")
    perf.add_argument("--json", action="store_true",
                      help="print the full payload as JSON")
    perf.add_argument("--out", default=None,
                      help="output file (default BENCH_perf.json, or "
                           "BENCH_perf.smoke.json with --smoke)")
    perf.add_argument("--quiet", action="store_true",
                      help="suppress per-case progress lines")
    perf.add_argument("--engine", default=None, metavar="NAME",
                      help="engine backend to benchmark (default: classic "
                           "unless REPRO_ENGINE overrides)")
    perf.add_argument("--diff", nargs=2, metavar=("BASE", "FRESH"),
                      help="print a markdown trend table comparing two "
                           "payload files instead of running the suite")
    perf.add_argument("--gate", nargs=2, metavar=("BASE", "FRESH"),
                      help="fail (exit 1) when FRESH's sweep points/s "
                           "regresses more than the gate threshold vs "
                           "BASE's matching grid; skip cleanly when the "
                           "grids are not comparable or REPRO_PERF_GATE=off")
    perf.add_argument("--gate-threshold", type=float, default=None,
                      metavar="FRAC",
                      help="tolerated fractional drop for --gate (default "
                           "$REPRO_PERF_GATE_THRESHOLD or 0.25)")
    perf.add_argument("--sweep", action="store_true",
                      help="run the sweep-throughput macro-benchmark "
                           "(warm pool + trace cache vs. spawn pool) "
                           "instead of the kernel microbenchmarks; "
                           "merged into the payload's 'sweep' section")

    campaign = sub.add_parser(
        "campaign",
        help="declarative paper-scale evaluation campaigns "
             "(benchmarks/campaigns/)")
    campaign_sub = campaign.add_subparsers(dest="campaign_command",
                                           required=True)

    def _campaign_common(p, with_slice: bool = True) -> None:
        p.add_argument("campaign", nargs="?", default=None,
                       help="campaign name under benchmarks/campaigns/ or "
                            "a spec file path (default care-paper)")
        if with_slice:
            p.add_argument("--slice", default=None, metavar="NAME",
                           help="run/inspect a named slice of the campaign "
                                "(e.g. ci-smoke, nightly)")

    crun = campaign_sub.add_parser(
        "run", help="execute the campaign grid as a resumable "
                    "supervised sweep")
    _campaign_common(crun)
    crun.add_argument("--workers", type=int, default=None,
                      help="worker processes (default $REPRO_WORKERS or 1; "
                           "0 = one per CPU)")
    crun.add_argument("--quiet", action="store_true",
                      help="suppress per-point progress lines")
    crun.add_argument("--sanitize", action="store_true",
                      help="enable the runtime invariant sanitizer for "
                           "every freshly simulated point")
    crun.add_argument("--engine", default=None, metavar="NAME",
                      help="engine backend for fresh simulation "
                           "(exports REPRO_ENGINE; bit-identical)")
    crun.add_argument("--trace-cache", default=None, metavar="DIR",
                      help="content-addressed trace cache directory, or "
                           "'off' (equivalent to REPRO_TRACE_CACHE)")
    _add_supervise_args(crun, with_manifest=True)
    _add_obs_args(crun)

    cstatus = campaign_sub.add_parser(
        "status", help="coverage of the campaign vs. the result store "
                       "and manifest")
    _campaign_common(cstatus)
    cstatus.add_argument("--store", default=None, metavar="PATH",
                         help="result-store root (default: the process "
                              "default store / $REPRO_RESULT_STORE)")
    cstatus.add_argument("--manifest", default=None, metavar="PATH",
                         help="manifest path (default: the campaign's own "
                              "<tag>.manifest.json)")
    cstatus.add_argument("--json", action="store_true",
                         help="emit the status dict as JSON")

    creport = campaign_sub.add_parser(
        "report", help="render the per-figure reproduction tables from "
                       "stored results")
    _campaign_common(creport)
    creport.add_argument("--store", default=None, metavar="PATH",
                         help="result-store root (default: the process "
                              "default store / $REPRO_RESULT_STORE)")
    creport.add_argument("--baseline", default=None,
                         help="policy speedups are normalized to "
                              "(default: the campaign's baseline, lru)")
    creport.add_argument("--format", choices=["md", "json"], default="md")
    creport.add_argument("--out", default=None, metavar="PATH",
                         help="write to PATH instead of stdout")

    campaign_sub.add_parser(
        "list", help="list campaign files under benchmarks/campaigns/")

    report = sub.add_parser(
        "report", help="render a stored run/sweep as markdown or JSON")
    report.add_argument("--store", default=None, metavar="PATH",
                        help="result-store root (default: the process "
                             "default store / $REPRO_RESULT_STORE)")
    report.add_argument("--format", choices=["md", "json"], default="md")
    report.add_argument("--out", default=None, metavar="PATH",
                        help="write to PATH instead of stdout")
    report.add_argument("--baseline", default="lru",
                        help="policy speedups are normalized to "
                             "(default lru)")
    report.add_argument("--policies", nargs="+", default=None,
                        help="restrict the report to these policies")
    report.add_argument("--incidents", default=None, metavar="FILE",
                        help="append a supervision-incident section from "
                             "FILE (<obs-dir>/<tag>.incidents.json; "
                             "md format only)")

    store = sub.add_parser(
        "store", help="inspect / repair the persistent result store")
    store_sub = store.add_subparsers(dest="store_command", required=False)
    store.add_argument("--store", default=None, metavar="PATH",
                       help="result-store root (default: the process "
                            "default store / $REPRO_RESULT_STORE)")
    fsck = store_sub.add_parser(
        "fsck", help="validate every entry; quarantine corrupt ones")
    # SUPPRESS keeps a bare sub-flag default from clobbering a --store
    # given before the subcommand.
    fsck.add_argument("--store", default=argparse.SUPPRESS, metavar="PATH",
                      help="result-store root (default: the process "
                           "default store / $REPRO_RESULT_STORE)")
    fsck.add_argument("--manifests", nargs="*", default=None,
                      metavar="PATH",
                      help="sweep/campaign manifest files to validate "
                           "(default: *.manifest.json in the current "
                           "directory)")

    check = sub.add_parser(
        "check", help="SimSan static lint (determinism + hot-path rules)")
    check.add_argument("paths", nargs="*",
                       help="files or directories (default: src)")
    check.add_argument("--fix-hints", action="store_true",
                       help="print a fix hint under every finding")
    check.add_argument("--list-rules", action="store_true",
                       help="list the rule catalogue and exit")
    check.add_argument("--flow", action="store_true",
                       help="also run the whole-program flow analysis "
                            "(call graph, hot-path reachability, "
                            "determinism taint, worker/fork safety)")
    check.add_argument("--call-graph", metavar="PATH", default=None,
                       help="export the flow call graph (implies --flow; "
                            ".dot/.gv for Graphviz, anything else JSON)")
    check.add_argument("--format", choices=("text", "json", "github"),
                       default="text",
                       help="finding output format (github emits "
                            "::error workflow annotations)")
    return parser


def main(argv: List[str] = None) -> int:
    _setup_cli_logging()
    args = build_parser().parse_args(argv)
    handlers = {
        "policies": _cmd_policies,
        "workloads": _cmd_workloads,
        "studycase": _cmd_studycase,
        "hwcost": _cmd_hwcost,
        "run": _cmd_run,
        "sweep": _cmd_sweep,
        "campaign": _cmd_campaign,
        "perf": _cmd_perf,
        "report": _cmd_report,
        "store": _cmd_store,
        "check": _cmd_check,
    }
    try:
        return handlers[args.command](args)
    except KeyboardInterrupt:
        print("\ninterrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # stdout fed a closed pager/head; exit quietly like other CLIs do
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
