"""Pure Miss Contribution measurement (the paper's Section IV).

This module implements the PMC Measurement Logic (PML) of Figure 4 /
Algorithm 1: the Access Detector (AD), the Pure Miss Detector (PMD) and the
PMC Calculation Unit (PCU), generalized to any cache level and any number of
cores.

Definitions (per core ``x`` at one cache level):

* A cache access spends ``base_latency`` *base access cycles* (tag + data
  lookup).  A miss additionally spends *miss access cycles* waiting for the
  next level.
* ``NoNewAccess_x`` is 1 in a cycle when no access from core ``x`` is in its
  base access cycles; such a cycle offers no overlap to hide miss latency.
* An *active pure miss cycle* for core ``x`` is a cycle with
  ``NoNewAccess_x == 1`` and at least one outstanding miss from core ``x``.
* In each active pure miss cycle the cycle's cost is divided evenly over the
  ``N_x`` outstanding misses from core ``x``: each accumulates ``1 / N_x``
  into its PMC (Algorithm 1).
* A miss with at least one pure miss cycle is a *pure miss*; the
  *pure miss rate* is ``pMR = pure misses / total accesses``.

Hardware walks this per cycle; iterating Python per cycle is infeasible, so
we accrue over *intervals* between state changes (base-phase begin/end, miss
begin/end).  Within an interval both ``NoNewAccess_x`` and ``N_x`` are
constant, so accruing ``Δt / N_x`` per outstanding miss is exactly the sum of
the per-cycle updates — the per-cycle algorithm is the ``Δt = 1`` special
case.  The same sweep accrues the MLP-based cost of Qureshi et al. (each
outstanding miss receives ``Δt / N_misses`` over its miss cycles regardless
of base-cycle overlap), which feeds SBAR and M-CARE.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..sim.engine import Engine
from ..sim.mshr import MSHREntry

#: Fig. 5 uses eight 50-cycle PMC bins: 0-49, 50-99, ..., 300-349, 350+.
PMC_BIN_WIDTH = 50
PMC_NUM_BINS = 8


def pmc_bin(pmc: float) -> int:
    """Histogram bin index (0-based) for a PMC value, per Fig. 5's x-axis."""
    if pmc < 0:
        raise ValueError(f"negative PMC {pmc}")
    return min(int(pmc // PMC_BIN_WIDTH), PMC_NUM_BINS - 1)


@dataclass
class CoreConcurrencyStats:
    """Aggregated per-core measurements exported after a run."""

    accesses: int = 0                 # all accesses seen at this level
    demand_accesses: int = 0
    misses: int = 0                   # MSHR-entry misses completed
    pure_misses: int = 0
    hit_miss_overlap_misses: int = 0  # misses with >=1 hidden miss cycle
    pure_miss_cycles: float = 0.0     # total active pure miss cycles
    active_cycles: float = 0.0        # cycles with any memory activity
    overlap_cycle_sum: float = 0.0    # Σ per-access overlapped cycles (AOCPA num.)
    pmc_sum: float = 0.0
    mlp_sum: float = 0.0
    pmc_histogram: List[int] = field(default_factory=lambda: [0] * PMC_NUM_BINS)

    @property
    def pure_miss_rate(self) -> float:
        """pMR = pure misses / total accesses (paper Section IV-A)."""
        return self.pure_misses / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def mean_pmc(self) -> float:
        """Average PMC over completed misses (Table X's PMC row)."""
        return self.pmc_sum / self.misses if self.misses else 0.0

    @property
    def mean_mlp_cost(self) -> float:
        return self.mlp_sum / self.misses if self.misses else 0.0

    @property
    def aocpa(self) -> float:
        """Average Overlapping Cycles Per Access (Table XI).

        For each access, the cycles of its lifetime during which at least one
        other access from the same core is outstanding at this level,
        averaged over all accesses.
        """
        return self.overlap_cycle_sum / self.accesses if self.accesses else 0.0

    @property
    def hit_miss_overlap_fraction(self) -> float:
        """Fraction of misses with hit-miss overlapping (Fig. 3)."""
        return self.hit_miss_overlap_misses / self.misses if self.misses else 0.0

    def to_dict(self) -> Dict:
        return {
            "accesses": self.accesses,
            "demand_accesses": self.demand_accesses,
            "misses": self.misses,
            "pure_misses": self.pure_misses,
            "hit_miss_overlap_misses": self.hit_miss_overlap_misses,
            "pure_miss_cycles": self.pure_miss_cycles,
            "active_cycles": self.active_cycles,
            "overlap_cycle_sum": self.overlap_cycle_sum,
            "pmc_sum": self.pmc_sum,
            "mlp_sum": self.mlp_sum,
            "pmc_histogram": list(self.pmc_histogram),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CoreConcurrencyStats":
        return cls(**data)


class _CoreMonitor:
    """PML instance for one core (the paper places one per core)."""

    __slots__ = (
        "core", "last_time", "base_count", "misses", "stats",
        "_last_pmc_by_pc", "pmc_deltas",
    )

    def __init__(self, core: int, collect_deltas: bool) -> None:
        self.core = core
        self.last_time = 0
        self.base_count = 0                 # accesses currently in base phase
        self.misses: Set[MSHREntry] = set() # outstanding misses (miss phase)
        self.stats = CoreConcurrencyStats()
        self._last_pmc_by_pc: Optional[Dict[int, float]] = (
            {} if collect_deltas else None
        )
        self.pmc_deltas: List[float] = []

    # ------------------------------------------------------------------
    def accrue(self, now: int) -> None:
        """Advance the sweep to ``now``, distributing interval costs."""
        dt = now - self.last_time
        if dt <= 0:
            # Events fire in time order, so ``now`` can never be behind
            # ``last_time``; a zero interval has nothing to distribute.
            return
        self.last_time = now
        n_miss = len(self.misses)
        n_total = self.base_count + n_miss
        if n_total > 0:
            self.stats.active_cycles += dt
            if n_total >= 2:
                # every outstanding access overlaps with >=1 other access
                self.stats.overlap_cycle_sum += dt * n_total
        if n_miss == 0:
            return
        if n_miss == 1:
            # Single-outstanding-miss fast path (the overwhelmingly common
            # interval shape): the sole entry takes the whole interval.
            # ``x += dt`` with integer ``dt`` is bit-identical to
            # ``x += dt / 1``.  Set iteration here only extracts the sole
            # element, so ordering cannot matter.
            for entry in self.misses:  # simsan: skip=SS103
                break
            if self.base_count == 0:
                self.stats.pure_miss_cycles += dt
                entry.pmc += dt
                entry.mlp_cost += dt
                entry.is_pure = True
            else:
                entry.mlp_cost += dt
            return
        mlp_share = dt / n_miss
        if self.base_count == 0:
            # NoNewAccess_x == 1: active pure miss cycles (Algorithm 1)
            self.stats.pure_miss_cycles += dt
            pmc_share = dt / n_miss
            # Each entry accumulates an identical share: the update is
            # commutative across entries, so set order is immaterial.
            for entry in self.misses:  # simsan: skip=SS103
                entry.pmc += pmc_share
                entry.mlp_cost += mlp_share
                entry.is_pure = True
        else:
            for entry in self.misses:  # simsan: skip=SS103 (uniform update)
                entry.mlp_cost += mlp_share

    def finish_miss(self, entry: MSHREntry) -> None:
        """Record a completed miss into the aggregate statistics."""
        st = self.stats
        st.misses += 1
        st.pmc_sum += entry.pmc
        st.mlp_sum += entry.mlp_cost
        st.pmc_histogram[pmc_bin(entry.pmc)] += 1
        if entry.is_pure:
            st.pure_misses += 1
        if entry.hit_miss_overlap:
            st.hit_miss_overlap_misses += 1
        if self._last_pmc_by_pc is not None:
            pc = entry.primary.pc
            prev = self._last_pmc_by_pc.get(pc)
            if prev is not None:
                self.pmc_deltas.append(abs(entry.pmc - prev))
            self._last_pmc_by_pc[pc] = entry.pmc


class ConcurrencyMonitor:
    """PML attached to one cache level, tracking every core independently.

    The cache calls :meth:`on_access` when an access begins its base cycles,
    :meth:`on_miss_start` when an MSHR entry is allocated (miss cycles begin
    after the base cycles), and :meth:`on_miss_end` when the fill arrives.
    """

    def __init__(self, engine: Engine, n_cores: int, base_latency: int,
                 collect_deltas: bool = True) -> None:
        if base_latency < 1:
            raise ValueError("base_latency must be >= 1")
        self.engine = engine
        self.base_latency = base_latency
        self.n_cores = n_cores
        self._cores = [_CoreMonitor(c, collect_deltas) for c in range(n_cores)]
        self._post = engine.post
        self._base_end_cb = self._base_end

    # ------------------------------------------------------------------
    # Hooks called by the cache
    # ------------------------------------------------------------------
    def on_access(self, core: int, time: int, demand: bool = True) -> None:
        """An access from ``core`` starts its base access cycles at ``time``.

        The Access Detector monitors for the level's fixed base latency and
        clears ``NoNewAccess`` for that window.
        """
        mon = self._cores[core]
        mon.accrue(time)
        mon.base_count += 1
        st = mon.stats
        st.accesses += 1
        if demand:
            st.demand_accesses += 1
        self._post(time + self.base_latency, self._base_end_cb, core)

    def _base_end(self, core: int) -> None:
        mon = self._cores[core]
        mon.accrue(self.engine.now)
        mon.base_count -= 1
        if mon.base_count < 0:
            raise RuntimeError("base access count underflow")

    def on_hit_observed(self, core: int, time: int) -> None:
        """A lookup from ``core`` just resolved as a hit (Fig. 3 statistic).

        The hit's base access cycles were ``[time - base_latency, time)``;
        every miss from the same core outstanding during that window had
        miss cycles hidden under a *hit's* base cycles — the paper's
        "hit-miss overlapping".  (Misses that completed mid-window are not
        recovered; the approximation undercounts slightly.)
        """
        for entry in self._cores[core].misses:
            if entry.issue_time < time:
                entry.hit_miss_overlap = True

    def on_miss_start(self, core: int, time: int, entry: MSHREntry) -> None:
        """``entry`` begins its miss access cycles (MSHR allocated)."""
        mon = self._cores[core]
        mon.accrue(time)
        mon.misses.add(entry)

    def on_miss_end(self, core: int, time: int, entry: MSHREntry) -> None:
        """The fill for ``entry`` arrived; its PMC value is now final."""
        mon = self._cores[core]
        mon.accrue(time)
        mon.misses.discard(entry)
        mon.finish_miss(entry)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Accrue every core up to the current cycle (end of simulation)."""
        for mon in self._cores:
            mon.accrue(self.engine.now)

    def reset_stats(self) -> None:
        """Zero the aggregates at the warmup boundary.

        Outstanding base/miss state is preserved (those accesses are still
        in flight); only the counters restart, so measured-region statistics
        exclude cold-start effects — mirroring the paper's 50M-instruction
        warmup before its 200M-instruction measurement.
        """
        for mon in self._cores:
            mon.accrue(self.engine.now)
            mon.stats = CoreConcurrencyStats()
            mon.pmc_deltas.clear()

    def core_stats(self, core: int) -> CoreConcurrencyStats:
        return self._cores[core].stats

    def all_stats(self) -> List[CoreConcurrencyStats]:
        return [m.stats for m in self._cores]

    def pmc_deltas(self, core: int) -> List[float]:
        """|PMC delta| between consecutive misses per PC (Table III)."""
        return list(self._cores[core].pmc_deltas)

    def snapshot(self) -> Dict[str, object]:
        """Cheap read-only aggregate for the metrics sampler.

        Unlike :meth:`total` this avoids building a
        :class:`CoreConcurrencyStats` per call; it is invoked once per
        sampling interval mid-run and must not mutate anything.
        """
        accesses = misses = pure = outstanding = 0
        pmc_sum = 0.0
        histogram = [0] * PMC_NUM_BINS
        for mon in self._cores:
            s = mon.stats
            accesses += s.accesses
            misses += s.misses
            pure += s.pure_misses
            pmc_sum += s.pmc_sum
            outstanding += len(mon.misses)
            hist = s.pmc_histogram
            for i in range(PMC_NUM_BINS):
                histogram[i] += hist[i]
        return {"accesses": accesses, "misses": misses,
                "pure_misses": pure, "pmc_sum": pmc_sum,
                "outstanding": outstanding, "histogram": histogram}

    # Aggregates over all cores -----------------------------------------
    def total(self) -> CoreConcurrencyStats:
        agg = CoreConcurrencyStats()
        for m in self._cores:
            s = m.stats
            agg.accesses += s.accesses
            agg.demand_accesses += s.demand_accesses
            agg.misses += s.misses
            agg.pure_misses += s.pure_misses
            agg.hit_miss_overlap_misses += s.hit_miss_overlap_misses
            agg.pure_miss_cycles += s.pure_miss_cycles
            agg.active_cycles += s.active_cycles
            agg.overlap_cycle_sum += s.overlap_cycle_sum
            agg.pmc_sum += s.pmc_sum
            agg.mlp_sum += s.mlp_sum
            for i, v in enumerate(s.pmc_histogram):
                agg.pmc_histogram[i] += v
        return agg


def pmc_delta_summary(deltas: List[float]) -> Dict[str, float]:
    """Table III row for one workload: bucket shares and the median.

    Buckets: [0,50), [50,100), [100,150), >=150 cycles.
    """
    result = {"[0,50)": 0.0, "[50,100)": 0.0, "[100,150)": 0.0, ">=150": 0.0,
              "median": 0.0}
    if not deltas:
        return result
    n = len(deltas)
    buckets = defaultdict(int)
    for d in deltas:
        if d < 50:
            buckets["[0,50)"] += 1
        elif d < 100:
            buckets["[50,100)"] += 1
        elif d < 150:
            buckets["[100,150)"] += 1
        else:
            buckets[">=150"] += 1
    for key in ("[0,50)", "[50,100)", "[100,150)", ">=150"):
        result[key] = buckets[key] / n
    ordered = sorted(deltas)
    mid = n // 2
    result["median"] = (
        ordered[mid] if n % 2 else 0.5 * (ordered[mid - 1] + ordered[mid])
    )
    return result
