"""Signature History Table and Signature-Based Predictor (Sections V-A/B/C).

The SHT tracks, per 14-bit PC signature, two 3-bit saturating counters:

* **RC (Re-reference Confidence)** — trained up on a block's first reuse and
  down when a block is evicted unreferenced.  Saturated-high means future
  blocks from this signature are *High-Reuse*; zero means *Low-Reuse*.
* **PD (PMC Degree)** — trained by the quantized PMC state (PMCS) of evicted
  blocks: PMCS 3 (costly miss) increments, PMCS 0 (cheap miss) decrements.
  Saturated-high predicts *High-Cost* misses, zero predicts *Low-Cost*.

The SBP (Signature-Based Predictor) is the read side: classify a signature's
expected reuse and cost from the current counter values.
"""

from __future__ import annotations

from enum import IntEnum
from typing import List

from .signatures import SIG_ENTRIES


class ReuseClass(IntEnum):
    LOW = 0
    MODERATE = 1
    HIGH = 2


class CostClass(IntEnum):
    LOW = 0
    MODERATE = 1
    HIGH = 2


class SignatureHistoryTable:
    """16K-entry SHT with 3-bit RC and PD counters (Table V)."""

    def __init__(self, entries: int = SIG_ENTRIES, counter_bits: int = 3,
                 rc_init: int = 2, pd_init: int = 2) -> None:
        if entries < 1:
            raise ValueError("entries must be >= 1")
        self.entries = entries
        self.max_value = (1 << counter_bits) - 1
        if not (0 <= rc_init <= self.max_value and 0 <= pd_init <= self.max_value):
            raise ValueError("initial counter values out of range")
        self._rc: List[int] = [rc_init] * entries
        self._pd: List[int] = [pd_init] * entries

    def _index(self, sig: int) -> int:
        return sig % self.entries

    # ------------------------------------------------------------------
    # Raw counters
    # ------------------------------------------------------------------
    def rc(self, sig: int) -> int:
        return self._rc[self._index(sig)]

    def pd(self, sig: int) -> int:
        return self._pd[self._index(sig)]

    # ------------------------------------------------------------------
    # Training (all saturating, Section V-B)
    # ------------------------------------------------------------------
    def rc_increment(self, sig: int) -> None:
        i = self._index(sig)
        if self._rc[i] < self.max_value:
            self._rc[i] += 1

    def rc_decrement(self, sig: int) -> None:
        i = self._index(sig)
        if self._rc[i] > 0:
            self._rc[i] -= 1

    def pd_increment(self, sig: int) -> None:
        i = self._index(sig)
        if self._pd[i] < self.max_value:
            self._pd[i] += 1

    def pd_decrement(self, sig: int) -> None:
        i = self._index(sig)
        if self._pd[i] > 0:
            self._pd[i] -= 1

    # ------------------------------------------------------------------
    # SBP predictions (Section V-C)
    # ------------------------------------------------------------------
    def reuse_class(self, sig: int) -> ReuseClass:
        rc = self.rc(sig)
        if rc >= self.max_value:
            return ReuseClass.HIGH
        if rc == 0:
            return ReuseClass.LOW
        return ReuseClass.MODERATE

    def cost_class(self, sig: int) -> CostClass:
        pd = self.pd(sig)
        if pd >= self.max_value:
            return CostClass.HIGH
        if pd == 0:
            return CostClass.LOW
        return CostClass.MODERATE
