"""PC-based signatures (Section V-A: "14-bit hash of PC").

CARE, SHiP and SHiP++ all index their history tables with a hashed program
counter.  Following SHiP++ (and Section V-E of the paper), one signature bit
distinguishes prefetch-initiated from demand-initiated accesses so the two
access classes learn independently.
"""

from __future__ import annotations

SIG_BITS = 14
SIG_ENTRIES = 1 << SIG_BITS      # 16K-entry tables (Table V: 16K SHT entries)
_PC_SIG_BITS = SIG_BITS - 1      # room for the prefetch bit


def hash_pc(pc: int, bits: int = _PC_SIG_BITS) -> int:
    """Cheap invertible-ish mixing hash folded to ``bits`` bits.

    A fixed xor-shift/multiply mix (SplitMix64 finalizer) keeps nearby PCs
    from colliding systematically, which matters because our synthetic
    traces use small dense PC ranges.
    """
    x = pc & 0xFFFFFFFFFFFFFFFF
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
    x = (x ^ (x >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 31
    return x & ((1 << bits) - 1)


def pc_signature(pc: int, prefetch: bool = False) -> int:
    """14-bit signature: 13-bit PC hash plus the prefetch class bit."""
    return (hash_pc(pc) << 1) | (1 if prefetch else 0)
