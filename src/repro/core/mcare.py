"""M-CARE — the paper's MLP-cost ablation of CARE (Section VI).

"The only difference from CARE is that M-CARE does not consider PMC but
uses MLP-based cost to analyze data access concurrency and guide cache
management."  Comparing CARE against M-CARE isolates the value of modeling
hit-miss overlapping (which MLP-based cost ignores).
"""

from __future__ import annotations

from .care import CAREPolicy
from ..policies.base import PolicyAccess
from ..policies.registry import register


@register("mcare")
class MCAREPolicy(CAREPolicy):
    """CARE driven by MLP-based cost instead of PMC."""

    def cost_signal(self, access: PolicyAccess) -> float:
        return access.mlp_cost
