"""Dynamic Threshold Reconfiguration Mechanism (Section V-F).

DTRM quantizes each served miss's PMC value into a 2-bit PMC State (PMCS)
using two thresholds, and re-tunes the thresholds each period so the share
of "costly" misses stays in a healthy band:

* ``PMC < low``  -> PMCS 0 (cheap miss)
* ``PMC > high`` -> PMCS 3 (costly miss; counted by the TCM register)
* otherwise      -> PMCS 1

At the end of each period (paper: 16K misses — half the number of LLC
blocks in the single-core configuration) the thresholds move: if fewer than
0.5% of the period's misses were costly, both thresholds drop (low by 10,
high by 70 cycles); if more than 5% were costly, both rise by the same
steps.  Initial values: low = 50, high = 350 cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass
class DTRMConfig:
    """Threshold parameters.

    The class defaults are scaled to this repository's default machine
    (DRAM round trips of ~120-250 cycles); :meth:`paper` returns the
    values of Section V-F, which assume the full Table VII latencies.
    Either way DTRM converges: the steps just start closer to the target
    band on the scaled machine.
    """

    initial_low: float = 15.0
    initial_high: float = 120.0
    low_step: float = 5.0
    high_step: float = 25.0
    decrease_fraction: float = 0.005    # costly share below this -> loosen
    increase_fraction: float = 0.05     # costly share above this -> tighten
    min_low: float = 0.0
    min_gap: float = 10.0               # keep high meaningfully above low

    @classmethod
    def paper(cls) -> "DTRMConfig":
        """Section V-F's constants for the full-scale Table VII machine."""
        return cls(initial_low=50.0, initial_high=350.0,
                   low_step=10.0, high_step=70.0)


class DTRM:
    """Stateful PMC -> PMCS quantizer with periodic threshold adaptation."""

    PMCS_CHEAP = 0
    PMCS_MID = 1
    PMCS_COSTLY = 3

    def __init__(self, period: int = 16384, config: DTRMConfig = None,
                 adaptive: bool = True) -> None:
        if period < 1:
            raise ValueError("period must be >= 1")
        self.cfg = config or DTRMConfig()
        self.period = period
        self.adaptive = adaptive
        self.low = self.cfg.initial_low
        self.high = self.cfg.initial_high
        self._misses_this_period = 0
        self._costly_this_period = 0     # the paper's TCM register
        self.total_misses = 0
        self.total_costly = 0
        #: (low, high) after each completed period, for ablation plots
        self.threshold_history: List[Tuple[float, float]] = []

    # ------------------------------------------------------------------
    def quantize(self, pmc: float) -> int:
        """PMCS for a PMC value under the *current* thresholds (read-only)."""
        if pmc < self.low:
            return self.PMCS_CHEAP
        if pmc > self.high:
            return self.PMCS_COSTLY
        return self.PMCS_MID

    def observe(self, pmc: float) -> int:
        """Quantize a served miss's PMC and advance the period machinery."""
        pmcs = self.quantize(pmc)
        self._misses_this_period += 1
        self.total_misses += 1
        if pmcs == self.PMCS_COSTLY:
            self._costly_this_period += 1
            self.total_costly += 1
        if self._misses_this_period >= self.period:
            self._end_period()
        return pmcs

    def snapshot(self) -> dict:
        """Read-only threshold state for the metrics sampler / reports."""
        return {"low": self.low, "high": self.high,
                "total_misses": self.total_misses,
                "total_costly": self.total_costly,
                "periods": len(self.threshold_history)}

    # ------------------------------------------------------------------
    def _end_period(self) -> None:
        cfg = self.cfg
        if self.adaptive:
            costly = self._costly_this_period
            if costly < cfg.decrease_fraction * self.period:
                self.low -= cfg.low_step
                self.high -= cfg.high_step
            elif costly > cfg.increase_fraction * self.period:
                self.low += cfg.low_step
                self.high += cfg.high_step
            self.low = max(self.low, cfg.min_low)
            self.high = max(self.high, self.low + cfg.min_gap)
        self.threshold_history.append((self.low, self.high))
        self._misses_this_period = 0
        self._costly_this_period = 0
