"""The paper's contribution: PMC measurement and the CARE framework."""

from .pmc import (
    PMC_BIN_WIDTH,
    PMC_NUM_BINS,
    ConcurrencyMonitor,
    CoreConcurrencyStats,
    pmc_bin,
    pmc_delta_summary,
)

__all__ = [
    "PMC_BIN_WIDTH", "PMC_NUM_BINS", "ConcurrencyMonitor",
    "CoreConcurrencyStats", "pmc_bin", "pmc_delta_summary",
]
