"""CARE — the Concurrency-Aware cache management framework (Section V).

CARE augments SHiP++-style signature learning with the PMC cost signal:

* every LLC block carries a 2-bit **Eviction Priority Value (EPV)**;
  0 = keep longest, 3 = evict first,
* the **SHT** learns each signature's reuse (RC) and miss cost (PD) from
  sampled sets,
* the **SBP** classifies each access as High/Moderate/Low-Reuse and
  High/Moderate/Low-Cost, driving the Table IV insertion & hit-promotion
  policies,
* the served miss's measured PMC is quantized to a 2-bit **PMCS** by the
  **DTRM**, stored with sampled blocks, and trains PD on eviction,
* prefetched blocks get the Section V-E special handling; writebacks insert
  at EPV 3 and never promote (Section V-D).

The constructor flags ``use_reuse`` / ``use_cost`` / ``adaptive_thresholds``
exist for the ablation benchmarks: disabling the cost path yields a
locality-only SHiP++-like scheme, disabling the reuse path yields a
concurrency-only scheme, and freezing DTRM isolates its contribution.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .dtrm import DTRM, DTRMConfig
from .sht import CostClass, ReuseClass, SignatureHistoryTable
from .signatures import pc_signature
from ..policies.base import PolicyAccess, ReplacementPolicy
from ..policies.registry import register
from ..policies.sampling import choose_sampled_sets
from ..sim.request import AccessType

EPV_MAX = 3          # 2-bit eviction priority value
_NO_SIG = -1         # sampled-set slot holds no trainable signature


class CAREStats:
    """Decision counters for analysis / ablation reporting."""

    def __init__(self) -> None:
        self.insert_high_reuse = 0
        self.insert_low_reuse = 0
        self.insert_moderate_low_cost = 0
        self.insert_moderate_high_cost = 0
        self.insert_moderate_mid = 0
        self.insert_writeback = 0
        self.prefetch_first_demotions = 0
        self.epv_aging_rounds = 0


@register("care")
class CAREPolicy(ReplacementPolicy):
    """The paper's framework, driven by PMC."""

    def __init__(self, sets: int, ways: int, seed: int = 0,
                 n_cores: int = 1,
                 sampled_target: int = 64,
                 use_reuse: bool = True,
                 use_cost: bool = True,
                 adaptive_thresholds: bool = True,
                 dtrm_period: Optional[int] = None,
                 dtrm_config: Optional[DTRMConfig] = None) -> None:
        super().__init__(sets, ways, seed)
        self.use_reuse = use_reuse
        self.use_cost = use_cost
        self.sht = SignatureHistoryTable()
        # Paper: one period = 16K misses = half the LLC's blocks (1-core).
        period = dtrm_period if dtrm_period is not None else max(
            64, (sets * ways) // 2)
        self.dtrm = DTRM(period=period, config=dtrm_config,
                         adaptive=adaptive_thresholds)
        self.stats = CAREStats()

        self._epv: List[List[int]] = [[EPV_MAX] * ways for _ in range(sets)]
        self.sampled = choose_sampled_sets(sets, sampled_target)
        self._sig: Dict[int, List[int]] = {
            s: [_NO_SIG] * ways for s in self.sampled}
        self._r: Dict[int, List[bool]] = {
            s: [False] * ways for s in self.sampled}
        self._pmcs: Dict[int, List[int]] = {
            s: [0] * ways for s in self.sampled}

    # ------------------------------------------------------------------
    # Cost signal — M-CARE overrides this single hook (Section VI).
    # ------------------------------------------------------------------
    def cost_signal(self, access: PolicyAccess) -> float:
        return access.pmc

    # ------------------------------------------------------------------
    # Victim selection (Section V-D)
    # ------------------------------------------------------------------
    def find_victim(self, set_idx: int, blocks, access: PolicyAccess) -> int:
        epv = self._epv[set_idx]
        while True:
            candidates = [w for w in range(self.ways) if epv[w] >= EPV_MAX]
            if candidates:
                # Paper: random choice among EPV-3 candidates performs the
                # same as recency order at far lower hardware cost.
                return self.rng.choice(candidates)
            for w in range(self.ways):
                epv[w] += 1
            self.stats.epv_aging_rounds += 1

    # ------------------------------------------------------------------
    # Hit-promotion policy (Table IV + Section V-E)
    # ------------------------------------------------------------------
    def on_hit(self, set_idx: int, way: int, blocks, access: PolicyAccess) -> None:
        if access.is_writeback:
            return                          # writebacks never promote
        epv = self._epv[set_idx]
        if access.rtype == AccessType.PREFETCH:
            if access.prefetch:
                # A prefetched, still-undemanded block touched again only by
                # prefetches: leave its EPV alone (Section V-E).
                return
            # A prefetch re-touching an already-demanded block: reuse signal.
            epv[way] = 0
        elif access.prefetch:
            # First demand touch of a prefetched block: usually single-use.
            epv[way] = EPV_MAX
            self.stats.prefetch_first_demotions += 1
        else:
            sig = pc_signature(access.pc, prefetch=False)
            reuse = (self.sht.reuse_class(sig)
                     if self.use_reuse else ReuseClass.MODERATE)
            if reuse == ReuseClass.LOW:
                if epv[way] > 0:
                    epv[way] -= 1           # conservative gradual decrement
            else:
                epv[way] = 0
        self._train_hit(set_idx, way, access)

    def _train_hit(self, set_idx: int, way: int, access: PolicyAccess) -> None:
        if set_idx not in self.sampled:
            return
        if access.rtype == AccessType.PREFETCH:
            return                          # only demand reuse trains RC
        sig = self._sig[set_idx][way]
        if sig == _NO_SIG:
            return
        if not self._r[set_idx][way]:
            self._r[set_idx][way] = True    # first re-reference
            self.sht.rc_increment(sig)

    # ------------------------------------------------------------------
    # Eviction training (Section V-B)
    # ------------------------------------------------------------------
    def on_evict(self, set_idx: int, way: int, blocks, access: PolicyAccess) -> None:
        if set_idx not in self.sampled:
            return
        sig = self._sig[set_idx][way]
        if sig == _NO_SIG:
            return
        if not self._r[set_idx][way]:
            self.sht.rc_decrement(sig)      # dead block: reuse confidence down
        pmcs = self._pmcs[set_idx][way]
        if pmcs == DTRM.PMCS_CHEAP:
            self.sht.pd_decrement(sig)
        elif pmcs == DTRM.PMCS_COSTLY:
            self.sht.pd_increment(sig)

    # ------------------------------------------------------------------
    # Insertion policy (Table IV)
    # ------------------------------------------------------------------
    def on_fill(self, set_idx: int, way: int, blocks, access: PolicyAccess) -> None:
        epv = self._epv[set_idx]
        if access.is_writeback:
            # Non-demand background request, rarely re-referenced.
            epv[way] = EPV_MAX
            self.stats.insert_writeback += 1
            if set_idx in self.sampled:
                self._sig[set_idx][way] = _NO_SIG
                self._r[set_idx][way] = False
                self._pmcs[set_idx][way] = 0
            return

        pmcs = self.dtrm.observe(self.cost_signal(access))
        sig = pc_signature(access.pc, prefetch=access.prefetch)
        reuse = (self.sht.reuse_class(sig)
                 if self.use_reuse else ReuseClass.MODERATE)
        cost = (self.sht.cost_class(sig)
                if self.use_cost else CostClass.MODERATE)

        if reuse == ReuseClass.HIGH:
            epv[way] = 0
            self.stats.insert_high_reuse += 1
        elif reuse == ReuseClass.LOW:
            epv[way] = EPV_MAX
            self.stats.insert_low_reuse += 1
        elif cost == CostClass.LOW:
            epv[way] = EPV_MAX
            self.stats.insert_moderate_low_cost += 1
        elif cost == CostClass.HIGH:
            epv[way] = 0
            self.stats.insert_moderate_high_cost += 1
        else:
            epv[way] = 2
            self.stats.insert_moderate_mid += 1

        if set_idx in self.sampled:
            self._sig[set_idx][way] = sig
            self._r[set_idx][way] = False
            self._pmcs[set_idx][way] = pmcs

    # ------------------------------------------------------------------
    # Introspection helpers (tests / examples)
    # ------------------------------------------------------------------
    def epv_of(self, set_idx: int, way: int) -> int:
        return self._epv[set_idx][way]


# ----------------------------------------------------------------------
# Ablation variants (DESIGN.md section 6), registered so the harness can
# sweep them by name like any other scheme.
# ----------------------------------------------------------------------

@register("care_locality")
class CARELocalityOnly(CAREPolicy):
    """CARE with the PMC/PD path disabled: pure signature-locality EPV."""

    def __init__(self, sets: int, ways: int, seed: int = 0, **kwargs) -> None:
        kwargs["use_cost"] = False
        super().__init__(sets, ways, seed=seed, **kwargs)


@register("care_concurrency")
class CAREConcurrencyOnly(CAREPolicy):
    """CARE with the RC/reuse path disabled: cost-only EPV decisions."""

    def __init__(self, sets: int, ways: int, seed: int = 0, **kwargs) -> None:
        kwargs["use_reuse"] = False
        super().__init__(sets, ways, seed=seed, **kwargs)


@register("care_static")
class CAREStaticThresholds(CAREPolicy):
    """CARE with DTRM adaptation frozen at the initial thresholds."""

    def __init__(self, sets: int, ways: int, seed: int = 0, **kwargs) -> None:
        kwargs["adaptive_thresholds"] = False
        super().__init__(sets, ways, seed=seed, **kwargs)
