"""Trace format shared by workload generators and the core model.

A trace is a sequence of :class:`TraceRecord` tuples.  Each record is one
memory instruction plus the ``gap`` non-memory instructions that precede it,
so a trace of N records represents ``sum(gap_i + 1)`` instructions — the
denominator for IPC and MPKI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, NamedTuple

from ..sim.config import BLOCK_SIZE


class TraceRecord(NamedTuple):
    """One memory access in a workload trace.

    ``dep`` marks a load whose address depends on the previous record's
    data (pointer chasing): the core cannot issue it until the previous
    access completes, which is what makes such misses *isolated* and
    expensive — exactly the misses PMC grades as costly.
    """

    pc: int        # instruction pointer of the access
    addr: int      # byte address accessed
    is_write: bool
    gap: int       # non-memory instructions since the previous access
    dep: bool = False


@dataclass
class Trace:
    """A named trace with provenance metadata."""

    name: str
    records: List[TraceRecord]
    seed: int = 0
    suite: str = "synthetic"

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, idx):
        return self.records[idx]

    @property
    def instructions(self) -> int:
        """Total instructions represented (memory + compute)."""
        return sum(r.gap + 1 for r in self.records)

    @property
    def memory_accesses(self) -> int:
        return len(self.records)

    @property
    def write_fraction(self) -> float:
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r.is_write) / len(self.records)

    def footprint_blocks(self) -> int:
        """Distinct 64B blocks touched."""
        return len({r.addr // BLOCK_SIZE for r in self.records})

    def validate(self) -> None:
        """Sanity-check invariants all generators must uphold."""
        for i, rec in enumerate(self.records):
            if rec.addr < 0 or rec.pc < 0 or rec.gap < 0:
                raise ValueError(f"{self.name}: bad record {i}: {rec}")


def make_trace(name: str, records: Iterable[TraceRecord], seed: int = 0,
               suite: str = "synthetic") -> Trace:
    trace = Trace(name=name, records=list(records), seed=seed, suite=suite)
    trace.validate()
    return trace
