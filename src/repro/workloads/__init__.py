"""Workload substrate: SPEC-like and GAP trace generation (Tables VIII & IX)."""

from .trace import Trace, TraceRecord, make_trace
from .patterns import (
    HotColdPattern,
    Pattern,
    PointerChasePattern,
    RandomPattern,
    ScanPattern,
    StreamPattern,
    StridePattern,
    WeightedPattern,
    WorkloadMix,
    ZipfianPattern,
)
from .spec_like import (
    DEFAULT_SCALE,
    FIG5_WORKLOADS,
    SPEC_BENCHMARKS,
    SpecBenchmark,
    spec_benchmark,
    spec_names,
    spec_trace,
)
from .serving import (
    SERVE_FAMILIES,
    SERVE_WORKLOADS,
    ServeWorkload,
    serve_names,
    serve_trace,
    serve_workload,
    zipf_mass,
)
from .graphs import CSRGraph, GRAPH_SPECS, build_graph, graph_keys
from .gap import gap_algorithms, gap_trace, gap_workload_names
from .mixes import (
    N_MIXES,
    mixed_workload_names,
    mixed_workload_traces,
    multicopy_traces,
)
from .io import (
    load_trace,
    pack_champsim_instruction,
    read_champsim_trace,
    save_trace,
)
from .tracecache import (
    TraceCache,
    cached_trace,
    default_trace_cache,
    reset_default_trace_cache,
    set_default_trace_cache,
    trace_key,
    workloads_fingerprint,
)

__all__ = [
    "Trace", "TraceRecord", "make_trace",
    "Pattern", "StreamPattern", "StridePattern", "RandomPattern",
    "PointerChasePattern", "HotColdPattern", "ScanPattern",
    "ZipfianPattern", "WeightedPattern", "WorkloadMix",
    "SERVE_FAMILIES", "SERVE_WORKLOADS", "ServeWorkload",
    "serve_names", "serve_trace", "serve_workload", "zipf_mass",
    "DEFAULT_SCALE", "FIG5_WORKLOADS", "SPEC_BENCHMARKS", "SpecBenchmark",
    "spec_benchmark", "spec_names", "spec_trace",
    "CSRGraph", "GRAPH_SPECS", "build_graph", "graph_keys",
    "gap_algorithms", "gap_trace", "gap_workload_names",
    "N_MIXES", "mixed_workload_names", "mixed_workload_traces",
    "multicopy_traces",
    "load_trace", "pack_champsim_instruction", "read_champsim_trace",
    "save_trace",
    "TraceCache", "cached_trace", "default_trace_cache",
    "reset_default_trace_cache", "set_default_trace_cache", "trace_key",
    "workloads_fingerprint",
]
