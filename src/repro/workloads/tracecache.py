"""Content-addressed on-disk cache for generated workload traces.

Every sweep point sharing a ``(suite, workload, seed, n_records, scale)``
tuple regenerates the identical synthetic trace — a policy matrix at one
core count regenerates it once *per policy*, and a paper-scale campaign
(100 mixes x policies x core counts) pays that cost thousands of times.
The :class:`TraceCache` generates each distinct trace once and serves
every later request from disk (and from a small in-process memo, which
is what makes persistent warm workers nearly generation-free).

Addressing mirrors :class:`~repro.harness.store.ResultStore`:

* the **key** is ``sha256`` over the canonical JSON of the generation
  parameters (:func:`trace_key`);
* the **namespace** is a fingerprint over the workload-generator sources
  (plus ``sim/config.py``, whose ``BLOCK_SIZE`` shapes addresses), so
  editing a generator can never serve stale traces;
* entries are written atomically (tempfile + rename) in the native
  ``.rtrc.gz`` format of :mod:`repro.workloads.io`, are fsck-able
  (:meth:`TraceCache.fsck`), and corrupt entries are quarantined on
  read instead of poisoning sweeps.

Byte-identity contract: a cached trace must round-trip *exactly* —
:func:`repro.workloads.io.save_trace` clamps ``gap`` to 16 bits, so any
record the format cannot represent losslessly makes the trace
uncacheable (generated fresh every time) rather than subtly different.
The golden-equivalence suite pins this: fixtures reproduce byte-for-byte
with the cache cold, warm, and disabled.

Enable/point the cache with ``REPRO_TRACE_CACHE`` (default
``~/.cache/repro-care/traces``; set to ``0``/``off``/``none``/empty to
disable) or the ``--trace-cache`` CLI flag.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import struct
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

from .io import load_trace, save_trace
from .trace import Trace

log = logging.getLogger(__name__)

ENV_VAR = "REPRO_TRACE_CACHE"
_DISABLED_VALUES = {"", "0", "off", "none", "disabled"}

#: trace-key schema — bump when key semantics change
KEY_VERSION = 1

#: max gap value the native format stores losslessly (u16)
MAX_GAP = 0xFFFF
_MAX_U64 = (1 << 64) - 1

#: in-process memo entries kept per cache (FIFO).  Sized for a sweep's
#: working set (one workload tuple is reused across a whole policy
#: matrix) while bounding memory for paper-scale traces.
MEMO_ENTRIES = 16

_fingerprint_cache: Optional[str] = None


def workloads_fingerprint() -> str:
    """Hash of the trace-generation sources (the cache namespace).

    Narrower than the result store's whole-package fingerprint on
    purpose: traces depend only on ``repro.workloads`` and the geometry
    constants in ``repro/sim/config.py``, so a policy or harness edit
    keeps every cached trace valid.
    """
    # SS601: content-addressed memo — every process (parent or warm
    # worker) computes the identical digest from on-disk sources, so a
    # stale value cannot exist and the write is idempotent.
    global _fingerprint_cache
    if _fingerprint_cache is None:
        pkg_root = Path(__file__).resolve().parent
        paths = sorted(pkg_root.glob("*.py"))
        paths.append(pkg_root.parent / "sim" / "config.py")
        digest = hashlib.sha256()
        for path in paths:
            digest.update(path.name.encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _fingerprint_cache = digest.hexdigest()  # simsan: skip=SS601
    return _fingerprint_cache


def trace_key(kind: str, name: str, n_records: int, seed: int,
              scale: int) -> str:
    """Content hash of one generation request (the cache address)."""
    payload = json.dumps(
        {"key_version": KEY_VERSION, "kind": kind, "name": name,
         "n_records": n_records, "seed": seed, "scale": scale},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def _representable(trace: Trace) -> bool:
    """True when the native format round-trips ``trace`` losslessly."""
    for rec in trace.records:
        if not (0 <= rec.gap <= MAX_GAP):
            return False
        if not (0 <= rec.pc <= _MAX_U64 and 0 <= rec.addr <= _MAX_U64):
            return False
    return True


class TraceCache:
    """Keyed on-disk trace cache (layout and hardening like ResultStore).

    Layout::

        <root>/<workloads_fingerprint[:16]>/<key[:2]>/<key>.rtrc.gz
    """

    def __init__(self, root: Union[str, Path],
                 fingerprint: Optional[str] = None) -> None:
        self.root = Path(root)
        self.fingerprint = fingerprint or workloads_fingerprint()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.memo_hits = 0
        self.quarantined = 0
        self._memo: "OrderedDict[str, Trace]" = OrderedDict()

    # -- paths ----------------------------------------------------------
    @property
    def namespace(self) -> Path:
        return self.root / self.fingerprint[:16]

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine" / self.fingerprint[:16]

    def path_for(self, key: str) -> Path:
        return self.namespace / key[:2] / f"{key}.rtrc.gz"

    # -- access ---------------------------------------------------------
    def get(self, key: str) -> Optional[Trace]:
        """The cached trace for ``key``, or ``None`` on a miss.

        Unreadable entries (torn writes, chaos corruption, foreign
        files) are quarantined and reported as a miss, so the caller
        regenerates and rewrites the entry.
        """
        memo = self._memo.get(key)
        if memo is not None:
            self.memo_hits += 1
            return memo
        path = self.path_for(key)
        try:
            trace = load_trace(path)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, EOFError, KeyError, ValueError,
                struct.error) as exc:
            self._quarantine(path, reason=f"{type(exc).__name__}: {exc}")
            self.misses += 1
            return None
        self.hits += 1
        self._remember(key, trace)
        return trace

    def put(self, key: str, trace: Trace) -> Optional[Path]:
        """Persist ``trace`` under ``key`` (atomic rename).

        Returns ``None`` without writing when the native format cannot
        represent the trace losslessly — caching such a trace would
        break result byte-identity, which outranks throughput.
        """
        if not _representable(trace):
            log.debug("trace %s not representable losslessly; not cached",
                      trace.name)
            return None
        self._remember(key, trace)
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".gz")
        try:
            os.close(fd)
            save_trace(trace, tmp)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.writes += 1
        self._maybe_chaos_corrupt(key, path)
        return path

    def _remember(self, key: str, trace: Trace) -> None:
        self._memo[key] = trace
        self._memo.move_to_end(key)
        while len(self._memo) > MEMO_ENTRIES:
            self._memo.popitem(last=False)

    def clear_memo(self) -> None:
        self._memo.clear()

    def _maybe_chaos_corrupt(self, key: str, path: Path) -> None:
        """Chaos hook: the ``corrupt`` fault truncates selected fresh
        entries, exercising quarantine/fsck against real torn files."""
        from ..checks.chaos import chaos_from_env, corrupt_entry
        chaos = chaos_from_env()
        if chaos is not None and corrupt_entry(chaos, key, path):
            log.debug("chaos: corrupted trace cache entry %s", path.name)

    def _quarantine(self, path: Path, reason: str = "") -> Optional[Path]:
        """Move a bad entry into ``quarantine/`` (never raises)."""
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            target = self.quarantine_dir / path.name
            suffix = 0
            while target.exists():
                suffix += 1
                target = self.quarantine_dir / f"{path.name}.{suffix}"
            os.replace(path, target)
        except OSError as exc:
            log.warning("could not quarantine corrupt trace entry %s: %s",
                        path, exc)
            return None
        self.quarantined += 1
        log.warning("quarantined corrupt trace cache entry %s (%s)",
                    path.name, reason or "unreadable")
        return target

    # -- maintenance ----------------------------------------------------
    def entries(self) -> Iterator[Path]:
        yield from self.namespace.glob("*/*.rtrc.gz")

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def fsck(self):
        """Scan the namespace; quarantine entries that cannot load.

        Healthy means: the file parses as a native trace and sits under
        the filename matching no *other* constraints — trace keys hash
        generation parameters that are not recoverable from the payload,
        so fsck validates readability, not re-derivable identity.
        Returns the same :class:`~repro.harness.store.FsckReport` shape
        the result store uses, so the CLI renders both uniformly.
        """
        from ..harness.store import FsckReport
        report = FsckReport()
        for path in sorted(self.entries()):
            report.scanned += 1
            try:
                load_trace(path)
            except (OSError, EOFError, KeyError, ValueError,
                    struct.error) as exc:
                reason = f"{type(exc).__name__}: {exc}"
                report.errors.append(f"{path.name}: {reason}")
                moved = self._quarantine(path, reason=reason)
                if moved is not None:
                    report.quarantined.append(str(moved))
                continue
            report.ok += 1
        return report

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes, "memo_hits": self.memo_hits,
                "quarantined": self.quarantined}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TraceCache({str(self.namespace)!r}, hits={self.hits}, "
                f"memo_hits={self.memo_hits}, misses={self.misses}, "
                f"writes={self.writes})")


# ----------------------------------------------------------------------
# Process-wide default (env-keyed, so long-lived workers track changes)
# ----------------------------------------------------------------------
_default_cache: Optional[TraceCache] = None
#: the raw env value the current default was resolved from; ``None``
#: means "unresolved".  Unlike the result store's one-shot resolution,
#: the default is *re*-resolved whenever ``REPRO_TRACE_CACHE`` changes —
#: persistent pool workers receive env snapshots per task and must honor
#: them without a process restart.
_resolved_env: Optional[str] = None
_override_active = False


def default_trace_cache() -> Optional[TraceCache]:
    """Process-wide cache from ``REPRO_TRACE_CACHE`` (``None`` if disabled
    or the directory cannot be created)."""
    # SS601: env-keyed memo, safe in warm workers by design — the pair
    # (_resolved_env, _default_cache) is a pure function of the current
    # REPRO_TRACE_CACHE value, re-resolved after every per-task env
    # snapshot, and the cache it names is content-addressed on disk.
    global _default_cache, _resolved_env
    if _override_active:
        return _default_cache
    raw = os.environ.get(ENV_VAR)
    env_key = "\0unset" if raw is None else raw
    if _resolved_env == env_key:
        return _default_cache
    _resolved_env = env_key  # simsan: skip=SS601
    if raw is not None and raw.strip().lower() in _DISABLED_VALUES:
        _default_cache = None  # simsan: skip=SS601
    else:
        root = Path(raw) if raw else (
            Path.home() / ".cache" / "repro-care" / "traces")
        cache = TraceCache(root)
        try:
            cache.namespace.mkdir(parents=True, exist_ok=True)
            _default_cache = cache  # simsan: skip=SS601
        except OSError:
            _default_cache = None  # simsan: skip=SS601
    return _default_cache


def set_default_trace_cache(cache: Optional[TraceCache]) -> None:
    """Install ``cache`` process-wide, ignoring the environment until
    :func:`reset_default_trace_cache` (tests use this with a tmp dir)."""
    global _default_cache, _override_active
    _default_cache = cache
    _override_active = True


def reset_default_trace_cache() -> None:
    """Forget the cached default; next use re-reads the environment."""
    global _default_cache, _resolved_env, _override_active
    _default_cache = None
    _resolved_env = None
    _override_active = False


# ----------------------------------------------------------------------
# Cached generation entry points
# ----------------------------------------------------------------------
def generate_trace(kind: str, name: str, n_records: int, seed: int,
                   scale: int) -> Trace:
    """Generate one trace directly (the cache-miss path)."""
    if kind == "spec":
        from .spec_like import spec_trace
        return spec_trace(name, n_records=n_records, seed=seed, scale=scale)
    if kind == "gap":
        from .gap import gap_trace
        return gap_trace(name, n_records=n_records, seed=seed)
    if kind == "serve":
        from .serving import serve_trace
        return serve_trace(name, n_records=n_records, seed=seed, scale=scale)
    raise ValueError(
        f"unknown trace kind {kind!r} (want 'spec', 'gap' or 'serve')")


def cached_trace(kind: str, name: str, n_records: int, seed: int,
                 scale: int,
                 cache: Optional[TraceCache] = None) -> Trace:
    """One trace via the cache: memo -> disk -> generate (and persist).

    With the cache disabled this is exactly a direct generator call, and
    generated traces round-trip the native format exactly (pinned by the
    golden suite), so enabling the cache can never change a result.
    """
    if kind == "gap":
        scale = 0  # gap generation has no scale knob; keep keys canonical
    if cache is None:
        cache = default_trace_cache()
    if cache is None:
        return generate_trace(kind, name, n_records, seed, scale)
    key = trace_key(kind, name, n_records, seed, scale)
    trace = cache.get(key)
    if trace is None:
        trace = generate_trace(kind, name, n_records, seed, scale)
        try:
            cache.put(key, trace)
        except OSError as exc:   # full/readonly disk: generation still won
            log.warning("trace cache write failed: %s", exc)
    return trace
