"""Production-traffic workload families (serving-tier synthetic traces).

The campaign's workload diversity cannot stop at SPEC/GAP stand-ins:
reuse behavior varies heavily across applications, and CARE's
concurrency story is most interesting under the traffic shapes that
dominate production fleets.  Three calibrated families model them:

* **kv** — Zipfian key-value / web-cache serving (the millions-of-users
  pattern): a power-law key popularity (:class:`ZipfianPattern`,
  YCSB-style ``theta``), a small hot head that caches and a long tail
  that misses.
* **stream** — streaming scans: log ingestion (write-heavy sequential
  append) and analytics sweeps (repeated scans of a working set just
  past LLC capacity — the classic LRU-thrash shape).
* **usvc** — pointer-chasing microservice traces: request handling that
  hops linked session/graph structures, with a hot dispatch tier and an
  LLC-resident session cache.

Calibration mirrors :mod:`.spec_like`: every workload mixes a
core-resident hot tier, an LLC-resident tier, and a memory-bound
signature pattern whose weight is derived from a target MPKI via
``w = target · (g+1) / (1000 · mpa)``.  For Zipfian traffic the miss
probability per access is itself derived from the distribution: keys
whose popularity rank fits in the LLC-resident share hit after warmup,
so ``mpa ≈ 1 - zipf_mass(resident)`` — skew, footprint, and machine
scale all move the calibration coherently.

All generation is seed-deterministic and routed through the trace cache
as kind ``"serve"`` (see :func:`repro.workloads.tracecache.cached_trace`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from .patterns import (
    ELEMS_PER_BLOCK,
    HotColdPattern,
    PointerChasePattern,
    ScanPattern,
    StreamPattern,
    WeightedPattern,
    WorkloadMix,
    ZipfianPattern,
)
from .spec_like import DEFAULT_SCALE, _HOT_BLOCKS, _elems
from .trace import Trace

#: serving families, in registry order
SERVE_FAMILIES = ("kv", "stream", "usvc")


def zipf_mass(n_keys: int, theta: float, top: int) -> float:
    """Fraction of a Zipf(``theta``) stream landing on the ``top`` most
    popular of ``n_keys`` keys (closed-form partial harmonic ratio)."""
    if n_keys < 1:
        raise ValueError("n_keys must be >= 1")
    top = min(max(top, 0), n_keys)
    if top == 0:
        return 0.0
    head = sum((k + 1) ** -theta for k in range(top))
    total = head + sum((k + 1) ** -theta for k in range(top, n_keys))
    return head / total


def _zipf_mpa(n_keys: int, theta: float, resident_blocks: int) -> float:
    """Approximate LLC misses per access for a Zipfian stream: the
    ``resident_blocks`` hottest objects hit after warmup, the rest miss."""
    return max(0.02, 1.0 - zipf_mass(n_keys, theta, resident_blocks))


@dataclass(frozen=True)
class ServeWorkload:
    """One production-traffic workload: metadata plus a trace builder."""

    name: str
    family: str                # one of SERVE_FAMILIES
    target_mpki: float         # calibration target (like Table VIII's column)
    pattern_class: str         # human-readable characterization
    builder: Callable[[int, int], WorkloadMix]

    def mix(self, seed: int = 0, scale: int = DEFAULT_SCALE) -> WorkloadMix:
        return self.builder(seed, scale)

    def trace(self, n_records: int, seed: int = 0,
              scale: int = DEFAULT_SCALE) -> Trace:
        trace = self.mix(seed, scale).generate(n_records, seed=seed)
        trace.suite = "SERVE"
        return trace


def _wp(weight: float, pattern) -> WeightedPattern:
    return WeightedPattern(weight, pattern)


def _tiers(miss_w: float, signature, wf: float, s: int,
           llc_tier: float) -> List[WeightedPattern]:
    """The three-tier composition shared by every family (see module doc)."""
    miss_w = min(max(miss_w, 0.004), 0.88)
    llc_w = min(llc_tier, max(0.0, 0.96 - miss_w))
    hot_w = max(0.0, 1.0 - miss_w - llc_w)
    parts = [
        _wp(miss_w, signature),
        _wp(llc_w, HotColdPattern(_elems(s * 0.45), _elems(s * 0.3),
                                  hot_fraction=0.85, write_fraction=wf)),
    ]
    if hot_w > 0:
        parts.append(_wp(hot_w, HotColdPattern(
            _elems(_HOT_BLOCKS * 2), _elems(_HOT_BLOCKS),
            hot_fraction=0.95, write_fraction=wf)))
    return parts


def _kv(target_mpki: float, gap: float, theta: float,
        region_mult: float = 8.0, wf: float = 0.05, llc_tier: float = 0.14):
    """Zipfian key-value/web-cache builder (miss rate from the skew)."""

    def build(seed: int, s: int) -> WorkloadMix:
        region = _elems(s * region_mult)
        n_keys = max(2, region // ELEMS_PER_BLOCK)
        mpa = _zipf_mpa(n_keys, theta, max(1, int(s * 0.5)))
        miss_w = target_mpki * (gap + 1) / (1000.0 * mpa)
        signature = ZipfianPattern(region, theta=theta,
                                   write_fraction=wf, seed=seed)
        return WorkloadMix("", _tiers(miss_w, signature, wf, s, llc_tier),
                           mean_gap=gap, seed=seed)

    return build


def _stream(target_mpki: float, gap: float, kind: str,
            region_mult: float = 10.0, wf: float = 0.1,
            llc_tier: float = 0.12):
    """Streaming-scan builder (``kind`` is ``"stream"`` or ``"scan"``)."""

    def build(seed: int, s: int) -> WorkloadMix:
        region = _elems(s * region_mult)
        if kind == "stream":
            mpa = 1.0 / ELEMS_PER_BLOCK
            signature = StreamPattern(region, write_fraction=wf)
        else:
            mpa = 0.95
            signature = ScanPattern(region, write_fraction=wf)
        miss_w = target_mpki * (gap + 1) / (1000.0 * mpa)
        return WorkloadMix("", _tiers(miss_w, signature, wf, s, llc_tier),
                           mean_gap=gap, seed=seed)

    return build


def _usvc(target_mpki: float, gap: float, region_mult: float = 5.0,
          wf: float = 0.08, llc_tier: float = 0.18,
          session_theta: float = 0.9):
    """Microservice builder: pointer chase + Zipfian session cache.

    The chase models request handling hopping linked structures; the
    LLC tier is replaced by a Zipfian session-object cache (sessions are
    popularity-skewed too), keeping the three-tier calibration story.
    """

    def build(seed: int, s: int) -> WorkloadMix:
        region = _elems(s * region_mult)
        miss_w = target_mpki * (gap + 1) / 1000.0   # chase: mpa = 1.0
        miss_w = min(max(miss_w, 0.004), 0.88)
        llc_w = min(llc_tier, max(0.0, 0.96 - miss_w))
        hot_w = max(0.0, 1.0 - miss_w - llc_w)
        parts = [
            _wp(miss_w, PointerChasePattern(region, write_fraction=wf,
                                            seed=seed)),
            _wp(llc_w, ZipfianPattern(_elems(s * 0.5), theta=session_theta,
                                      write_fraction=wf, seed=seed + 1)),
        ]
        if hot_w > 0:
            parts.append(_wp(hot_w, HotColdPattern(
                _elems(_HOT_BLOCKS * 2), _elems(_HOT_BLOCKS),
                hot_fraction=0.95, write_fraction=wf)))
        return WorkloadMix("", parts, mean_gap=gap, seed=seed)

    return build


def _registry() -> Dict[str, ServeWorkload]:
    W = ServeWorkload
    entries = [
        # -- kv: Zipfian key-value / web-cache serving --------------------
        W("kv-zipf99", "kv", 16.0, "YCSB-B read-mostly, theta 0.99",
          _kv(16.0, gap=3.5, theta=0.99, region_mult=8)),
        W("kv-zipf80", "kv", 24.0, "long-tail KV, theta 0.80",
          _kv(24.0, gap=3.0, theta=0.80, region_mult=10)),
        W("kv-update", "kv", 19.0, "YCSB-A update-heavy, theta 0.99",
          _kv(19.0, gap=3.2, theta=0.99, region_mult=8, wf=0.35)),
        W("web-cdn", "kv", 30.0, "web-cache edge, theta 0.75, huge tail",
          _kv(30.0, gap=2.5, theta=0.75, region_mult=16, llc_tier=0.10)),
        # -- stream: streaming scans --------------------------------------
        W("stream-log", "stream", 24.0, "log ingestion, write-heavy append",
          _stream(24.0, gap=3.0, kind="stream", region_mult=14, wf=0.6,
                  llc_tier=0.08)),
        W("stream-scan", "stream", 15.0, "analytics sweep, LLC-thrashing",
          _stream(15.0, gap=3.5, kind="scan", region_mult=1.8,
                  llc_tier=0.16)),
        # -- usvc: pointer-chasing microservices --------------------------
        W("usvc-chase", "usvc", 28.0, "linked session graph walk",
          _usvc(28.0, gap=2.5, region_mult=6)),
        W("usvc-rpc", "usvc", 12.0, "RPC handling, mixed chase + sessions",
          _usvc(12.0, gap=5.0, region_mult=3.5, llc_tier=0.22)),
    ]
    table: Dict[str, ServeWorkload] = {}
    for work in entries:
        if work.name in table or work.family not in SERVE_FAMILIES:
            raise ValueError(f"bad serve registry entry {work.name}")
        table[work.name] = work
    return table


SERVE_WORKLOADS: Dict[str, ServeWorkload] = _registry()


def serve_names() -> List[str]:
    """All production-traffic workload names, family order."""
    return list(SERVE_WORKLOADS)


def serve_workload(name: str) -> ServeWorkload:
    try:
        return SERVE_WORKLOADS[name]
    except KeyError:
        matches = [k for k in SERVE_WORKLOADS if k.startswith(name)]
        if len(matches) == 1:
            return SERVE_WORKLOADS[matches[0]]
        raise KeyError(
            f"unknown serving workload {name!r}; known: {serve_names()}"
        ) from None


def serve_trace(name: str, n_records: int = 20000, seed: int = 0,
                scale: int = DEFAULT_SCALE) -> Trace:
    """Generate the synthetic trace for one production-traffic workload."""
    work = serve_workload(name)
    trace = work.trace(n_records, seed=seed, scale=scale)
    trace.name = work.name
    return trace
