"""GAP benchmark suite workloads: real algorithms emitting address traces.

The paper evaluates five GAP kernels — Betweenness Centrality (bc), Breadth
First Search (bfs), Connected Components (cc), PageRank (pr) and Single
Source Shortest Path (sssp) — traced with Pin on orkut/twitter/urand.  We
get the equivalent effect by *executing the algorithms* on the Table IX
stand-in graphs (:mod:`.graphs`) and emitting the memory accesses their CSR
array operations perform: offset reads, sequential neighbor-list walks, and
the random-indexed property-array reads/writes that make graph analytics
LLC-hostile.

Each access site uses its own fixed PC, so per-PC behavior is stable — the
property PC-signature schemes (and CARE) exploit.  Compute gaps between
accesses are small, matching the low arithmetic intensity of these kernels.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Iterator, List

import numpy as np

from .graphs import CSRGraph, build_graph, graph_keys
from .trace import Trace, TraceRecord, make_trace

ELEM = 8

# Array base addresses: disjoint 1GB-aligned regions.
OFFSETS_BASE = 0x1_0000_0000
NEIGHBORS_BASE = 0x1_4000_0000
WEIGHTS_BASE = 0x1_8000_0000


def _prop_base(k: int) -> int:
    """Base address for the k-th per-vertex property array."""
    return 0x2_0000_0000 + k * 0x4000_0000


class _Tracer:
    """Emits TraceRecords for array element touches with per-site PCs."""

    def __init__(self, pc_base: int, seed: int) -> None:
        self.pc_base = pc_base
        self.rng = random.Random(seed ^ 0x6A9)

    def _gap(self) -> int:
        return self.rng.randrange(0, 4)

    def offsets(self, idx: int, site: int = 0) -> TraceRecord:
        return TraceRecord(self.pc_base + 4 * site,
                           OFFSETS_BASE + idx * ELEM, False, self._gap())

    def neighbor(self, idx: int, site: int = 1) -> TraceRecord:
        return TraceRecord(self.pc_base + 4 * site,
                           NEIGHBORS_BASE + idx * ELEM, False, self._gap())

    def weight(self, idx: int, site: int = 2) -> TraceRecord:
        return TraceRecord(self.pc_base + 4 * site,
                           WEIGHTS_BASE + idx * ELEM, False, self._gap())

    def prop(self, array: int, idx: int, site: int,
             write: bool = False) -> TraceRecord:
        return TraceRecord(self.pc_base + 4 * site,
                           _prop_base(array) + idx * ELEM, write, self._gap())


# ----------------------------------------------------------------------
# Kernels.  Each is a generator of TraceRecord that *actually computes*
# its result on the CSR graph while tracing.
# ----------------------------------------------------------------------

def bfs_records(graph: CSRGraph, source: int, seed: int = 0,
                result: dict = None) -> Iterator[TraceRecord]:
    """Breadth-first search from ``source`` (direction: push).

    If ``result`` is supplied, ``result["depth"]`` holds the final depth
    array once the generator is exhausted (tests validate it against
    networkx).
    """
    t = _Tracer(pc_base=0x50_0000, seed=seed)
    depth = np.full(graph.n_vertices, -1, dtype=np.int64)
    if result is not None:
        result["depth"] = depth
    depth[source] = 0
    frontier: List[int] = [source]
    level = 0
    while frontier:
        level += 1
        next_frontier: List[int] = []
        for u in frontier:
            yield t.offsets(u, site=0)
            yield t.offsets(u + 1, site=0)
            start, end = graph.offsets[u], graph.offsets[u + 1]
            for i in range(start, end):
                yield t.neighbor(i, site=1)
                v = int(graph.neighbors[i])
                yield t.prop(0, v, site=2)              # depth[v] read
                if depth[v] < 0:
                    depth[v] = level
                    yield t.prop(0, v, site=3, write=True)
                    next_frontier.append(v)
        frontier = next_frontier


def pagerank_records(graph: CSRGraph, iterations: int = 20,
                     seed: int = 0,
                     result: dict = None) -> Iterator[TraceRecord]:
    """Pull-style PageRank: each vertex gathers from its in-edges.

    (We treat the stored edges as in-edges for the pull, which is how GAP's
    pr kernel walks CSR.)
    """
    t = _Tracer(pc_base=0x51_0000, seed=seed)
    n = graph.n_vertices
    rank = np.full(n, 1.0 / n)
    # Each vertex's rank is consumed once per adjacency list that names it,
    # so dividing by that reference count conserves rank mass (up to
    # dangling vertices nobody references).
    degree = np.maximum(np.bincount(graph.neighbors, minlength=n), 1)
    for _ in range(iterations):
        contrib = rank / degree
        new_rank = np.full(n, 0.15 / n)
        for u in range(n):
            yield t.offsets(u, site=0)
            yield t.offsets(u + 1, site=0)
            start, end = graph.offsets[u], graph.offsets[u + 1]
            acc = 0.0
            for i in range(start, end):
                yield t.neighbor(i, site=1)
                v = int(graph.neighbors[i])
                yield t.prop(0, v, site=2)              # contrib[v] read
                acc += contrib[v]
            new_rank[u] += 0.85 * acc
            yield t.prop(1, u, site=3, write=True)      # rank_next[u] write
        rank = new_rank
    if result is not None:
        result["rank"] = rank


def cc_records(graph: CSRGraph, seed: int = 0,
               result: dict = None) -> Iterator[TraceRecord]:
    """Connected components by label propagation (Shiloach-Vishkin style)."""
    t = _Tracer(pc_base=0x52_0000, seed=seed)
    n = graph.n_vertices
    comp = np.arange(n, dtype=np.int64)
    if result is not None:
        result["comp"] = comp
    changed = True
    while changed:
        changed = False
        for u in range(n):
            yield t.offsets(u, site=0)
            yield t.offsets(u + 1, site=0)
            yield t.prop(0, u, site=2)                  # comp[u] read
            cu = comp[u]
            start, end = graph.offsets[u], graph.offsets[u + 1]
            for i in range(start, end):
                yield t.neighbor(i, site=1)
                v = int(graph.neighbors[i])
                yield t.prop(0, v, site=3)              # comp[v] read
                if comp[v] < cu:
                    cu = comp[v]
                elif cu < comp[v]:
                    # hook in the other direction too: components are
                    # defined on the undirected view (GAP's cc)
                    comp[v] = cu
                    yield t.prop(0, v, site=5, write=True)
                    changed = True
            if cu < comp[u]:
                comp[u] = cu
                yield t.prop(0, u, site=4, write=True)
                changed = True


def sssp_records(graph: CSRGraph, source: int, seed: int = 0,
                 result: dict = None) -> Iterator[TraceRecord]:
    """Single-source shortest paths (Dijkstra with a binary heap).

    GAP uses delta-stepping; Dijkstra touches the same arrays (offsets,
    neighbors, weights, dist) with the same irregular reuse, which is what
    the cache sees.
    """
    t = _Tracer(pc_base=0x53_0000, seed=seed)
    n = graph.n_vertices
    dist = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    dist[source] = 0
    if result is not None:
        result["dist"] = dist
    heap = [(0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        yield t.prop(0, u, site=2)                      # dist[u] read
        if d > dist[u]:
            continue
        yield t.offsets(u, site=0)
        yield t.offsets(u + 1, site=0)
        start, end = graph.offsets[u], graph.offsets[u + 1]
        for i in range(start, end):
            yield t.neighbor(i, site=1)
            yield t.weight(i, site=5)
            v = int(graph.neighbors[i])
            nd = d + int(graph.weights[i])
            yield t.prop(0, v, site=3)                  # dist[v] read
            if nd < dist[v]:
                dist[v] = nd
                yield t.prop(0, v, site=4, write=True)
                heapq.heappush(heap, (nd, v))


def bc_records(graph: CSRGraph, source: int, seed: int = 0,
               result: dict = None) -> Iterator[TraceRecord]:
    """Betweenness centrality (Brandes, one source): forward BFS computing
    path counts, then dependency accumulation in reverse order."""
    t = _Tracer(pc_base=0x54_0000, seed=seed)
    n = graph.n_vertices
    depth = np.full(n, -1, dtype=np.int64)
    sigma = np.zeros(n, dtype=np.int64)
    delta = np.zeros(n, dtype=np.float64)
    if result is not None:
        result["depth"] = depth
        result["sigma"] = sigma
        result["delta"] = delta
    depth[source] = 0
    sigma[source] = 1
    order: List[int] = []
    frontier = [source]
    level = 0
    while frontier:                                     # forward phase
        level += 1
        nxt: List[int] = []
        for u in frontier:
            order.append(u)
            yield t.offsets(u, site=0)
            yield t.offsets(u + 1, site=0)
            start, end = graph.offsets[u], graph.offsets[u + 1]
            for i in range(start, end):
                yield t.neighbor(i, site=1)
                v = int(graph.neighbors[i])
                yield t.prop(0, v, site=2)              # depth[v]
                if depth[v] < 0:
                    depth[v] = level
                    yield t.prop(0, v, site=3, write=True)
                    nxt.append(v)
                if depth[v] == level:
                    yield t.prop(1, v, site=4, write=True)  # sigma[v] +=
                    sigma[v] += sigma[u]
        frontier = nxt
    for u in reversed(order):                           # backward phase
        yield t.offsets(u, site=0)
        yield t.offsets(u + 1, site=0)
        start, end = graph.offsets[u], graph.offsets[u + 1]
        for i in range(start, end):
            yield t.neighbor(i, site=1)
            v = int(graph.neighbors[i])
            yield t.prop(0, v, site=5)                  # depth[v]
            if depth[v] == depth[u] + 1 and sigma[v] > 0:
                yield t.prop(1, v, site=6)              # sigma[v]
                yield t.prop(2, v, site=7)              # delta[v]
                delta[u] += sigma[u] / sigma[v] * (1.0 + delta[v])
        yield t.prop(2, u, site=8, write=True)          # delta[u] write


_KERNELS = {
    "bc": bc_records,
    "bfs": bfs_records,
    "cc": cc_records,
    "pr": pagerank_records,
    "sssp": sssp_records,
}

#: requires a source vertex argument
_SOURCED = {"bc", "bfs", "sssp"}


def gap_algorithms() -> List[str]:
    return sorted(_KERNELS)


def gap_workload_names() -> List[str]:
    """The paper's 15 GAP workloads: '<alg>-<graph>' (Figs. 9, 12, 14)."""
    return [f"{alg}-{g}" for alg in gap_algorithms() for g in graph_keys()]


def gap_trace(workload: str, n_records: int = 20000, seed: int = 0) -> Trace:
    """Trace for a '<alg>-<graph>' GAP workload, exactly ``n_records`` long.

    If one kernel run finishes early (e.g. BFS exhausts its component) the
    kernel restarts from a new seeded source, mirroring the paper's replay
    of short traces.
    """
    try:
        alg, gkey = workload.split("-")
        kernel = _KERNELS[alg]
        graph = build_graph(gkey)
    except (ValueError, KeyError):
        raise KeyError(
            f"unknown GAP workload {workload!r}; known: {gap_workload_names()}"
        ) from None

    rng = random.Random(seed ^ 0x9A9)
    records: List[TraceRecord] = []
    attempt = 0
    while len(records) < n_records:
        if alg in _SOURCED:
            source = rng.randrange(graph.n_vertices)
            gen = kernel(graph, source, seed=seed + attempt)
        else:
            gen = kernel(graph, seed=seed + attempt)
        records.extend(itertools.islice(gen, n_records - len(records)))
        attempt += 1
        if attempt > 64:
            raise RuntimeError(
                f"{workload}: kernel keeps terminating instantly; "
                "graph likely degenerate")
    # Shift the whole run into a seed-specific 4GB address-space slot so
    # multi-copy runs model separate processes with private graph copies.
    offset = ((seed * 2654435761) & 0x3F) << 36
    if offset:
        records = [rec._replace(addr=rec.addr + offset) for rec in records]
    trace = make_trace(workload, records, seed=seed, suite="GAP")
    return trace
