"""Trace persistence and interchange.

Two on-disk formats:

* **Native format** (``.rtrc`` / ``.rtrc.gz``): a compact little-endian
  binary of this library's :class:`~repro.workloads.trace.TraceRecord`
  stream, with a JSON header carrying name/seed/suite metadata.  Use this
  to generate once and re-run many policy sweeps bit-identically.
* **ChampSim importer**: reads the fixed-size input records of the ChampSim
  simulator the paper evaluates on (64-byte ``trace_instr`` structs: ip,
  branch fields, destination/source registers, destination/source memory
  addresses) and converts them into our record stream, computing ``gap``
  from the non-memory instructions between memory operations.
"""

from __future__ import annotations

import gzip
import io
import json
import struct
from pathlib import Path
from typing import BinaryIO, Iterable, List, Union

from .trace import Trace, TraceRecord, make_trace

_MAGIC = b"RTRC"
_VERSION = 2
#: per record: pc, addr (u64), flags (u8: bit0 write, bit1 dep), gap (u16)
_RECORD = struct.Struct("<QQBH")


# ----------------------------------------------------------------------
# Native format
# ----------------------------------------------------------------------

def _open_write(path: Path) -> BinaryIO:
    if path.suffix == ".gz":
        return gzip.open(path, "wb")
    return open(path, "wb")


def _open_read(path: Path) -> BinaryIO:
    with open(path, "rb") as probe:
        magic = probe.read(2)
    if magic == b"\x1f\x8b":
        return gzip.open(path, "rb")
    return open(path, "rb")


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write a trace in the native binary format (gzip if ``.gz``)."""
    path = Path(path)
    header = json.dumps({
        "name": trace.name, "seed": trace.seed, "suite": trace.suite,
        "records": len(trace.records),
    }).encode()
    with _open_write(path) as fh:
        fh.write(_MAGIC)
        fh.write(struct.pack("<HI", _VERSION, len(header)))
        fh.write(header)
        for rec in trace.records:
            flags = (1 if rec.is_write else 0) | (2 if rec.dep else 0)
            fh.write(_RECORD.pack(rec.pc, rec.addr, flags,
                                  min(rec.gap, 0xFFFF)))


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    path = Path(path)
    with _open_read(path) as fh:
        magic = fh.read(4)
        if magic != _MAGIC:
            raise ValueError(f"{path}: not a native trace file")
        version, header_len = struct.unpack("<HI", fh.read(6))
        if version != _VERSION:
            raise ValueError(f"{path}: unsupported trace version {version}")
        meta = json.loads(fh.read(header_len))
        records: List[TraceRecord] = []
        expected = meta["records"]
        while True:
            chunk = fh.read(_RECORD.size)
            if not chunk:
                break
            if len(chunk) != _RECORD.size:
                raise ValueError(f"{path}: truncated record stream")
            pc, addr, flags, gap = _RECORD.unpack(chunk)
            records.append(TraceRecord(
                pc=pc, addr=addr, is_write=bool(flags & 1), gap=gap,
                dep=bool(flags & 2)))
    if len(records) != expected:
        raise ValueError(
            f"{path}: header promises {expected} records, found "
            f"{len(records)}")
    trace = make_trace(meta["name"], records, seed=meta["seed"],
                       suite=meta["suite"])
    return trace


# ----------------------------------------------------------------------
# ChampSim importer
# ----------------------------------------------------------------------

#: ChampSim input_instr: u64 ip; u8 is_branch; u8 branch_taken;
#: u8 destination_registers[2]; u8 source_registers[4];
#: u64 destination_memory[2]; u64 source_memory[4]
CHAMPSIM_RECORD = struct.Struct("<QBB2B4B2Q4Q")

NUM_INSTR_DESTINATIONS = 2
NUM_INSTR_SOURCES = 4


def pack_champsim_instruction(ip: int, is_branch: bool = False,
                              branch_taken: bool = False,
                              dest_mem: Iterable[int] = (),
                              src_mem: Iterable[int] = ()) -> bytes:
    """Build one ChampSim input record (used by tests and trace tooling)."""
    dmem = (list(dest_mem) + [0] * NUM_INSTR_DESTINATIONS)[
        :NUM_INSTR_DESTINATIONS]
    smem = (list(src_mem) + [0] * NUM_INSTR_SOURCES)[:NUM_INSTR_SOURCES]
    return CHAMPSIM_RECORD.pack(
        ip, int(is_branch), int(branch_taken),
        0, 0,            # destination registers (unused here)
        0, 0, 0, 0,      # source registers
        *dmem, *smem)


def read_champsim_trace(source: Union[str, Path, bytes, BinaryIO],
                        name: str = "champsim",
                        max_records: int = None) -> Trace:
    """Convert a ChampSim binary instruction trace to a :class:`Trace`.

    Each instruction with memory operands yields one record per distinct
    operand address (reads as loads, writes as stores); instructions
    without memory operands accumulate into the next record's ``gap``.
    """
    if isinstance(source, (str, Path)):
        fh: BinaryIO = _open_read(Path(source))
        close = True
    elif isinstance(source, bytes):
        fh = io.BytesIO(source)
        close = False
    else:
        fh = source
        close = False

    records: List[TraceRecord] = []
    gap = 0
    try:
        while True:
            chunk = fh.read(CHAMPSIM_RECORD.size)
            if not chunk:
                break
            if len(chunk) != CHAMPSIM_RECORD.size:
                raise ValueError("truncated ChampSim record")
            fields = CHAMPSIM_RECORD.unpack(chunk)
            ip = fields[0]
            dmem = fields[8:8 + NUM_INSTR_DESTINATIONS]
            smem = fields[8 + NUM_INSTR_DESTINATIONS:]
            touched = False
            for addr in smem:
                if addr:
                    records.append(TraceRecord(ip, addr, False, gap))
                    gap = 0
                    touched = True
            for addr in dmem:
                if addr:
                    records.append(TraceRecord(ip, addr, True, gap))
                    gap = 0
                    touched = True
            if not touched:
                gap += 1
            if max_records is not None and len(records) >= max_records:
                records = records[:max_records]
                break
    finally:
        if close:
            fh.close()
    return make_trace(name, records, suite="champsim")
