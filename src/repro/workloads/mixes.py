"""Mixed multi-programmed workloads (Section VI / Fig. 10 methodology).

"For an n-core mixed workload, we select n benchmarks randomly from the 30
memory-intensive SPEC benchmarks and run one trace in each core.  We
generate 100 mixed workloads in total."  The selection here is seeded and
deterministic so every scheme sees the identical 100 mixes.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from .spec_like import DEFAULT_SCALE, spec_names
from .trace import Trace
from .tracecache import cached_trace

#: the paper's mixed-workload count
N_MIXES = 100


def mixed_workload_names(n_cores: int, mix_id: int,
                         universe: Sequence[str] = None) -> List[str]:
    """The benchmark names composing mix ``mix_id`` (same for every scheme)."""
    if mix_id < 0:
        raise ValueError("mix_id must be >= 0")
    names = list(universe) if universe is not None else spec_names()
    rng = random.Random(0xA11CE + 7919 * mix_id)
    return [names[rng.randrange(len(names))] for _ in range(n_cores)]


def mixed_workload_traces(n_cores: int, mix_id: int, n_records: int,
                          seed: int = 0,
                          scale: int = DEFAULT_SCALE) -> List[Trace]:
    """Per-core traces for one mixed workload.

    Each slot uses a distinct generation seed so two copies of the same
    benchmark in one mix are *different* trace instances (different address
    regions would be ideal; distinct phases is the practical equivalent the
    multi-copy stagger also provides).
    """
    names = mixed_workload_names(n_cores, mix_id)
    return [
        cached_trace("spec", name, n_records=n_records,
                     seed=seed + 31 * slot, scale=scale)
        for slot, name in enumerate(names)
    ]


def multicopy_traces(name: str, n_cores: int, n_records: int, seed: int = 0,
                     scale: int = DEFAULT_SCALE, suite: str = "spec") -> List[Trace]:
    """n identical-benchmark traces (the paper's multi-copy workloads).

    Copies use distinct seeds so the runs are not synchronized, matching
    "each trace does not start exactly at the same time".
    """
    if suite == "spec":
        return [cached_trace("spec", name, n_records=n_records,
                             seed=seed + 31 * c, scale=scale)
                for c in range(n_cores)]
    if suite == "gap":
        return [cached_trace("gap", name, n_records=n_records,
                             seed=seed + 31 * c, scale=scale)
                for c in range(n_cores)]
    if suite == "serve":
        return [cached_trace("serve", name, n_records=n_records,
                             seed=seed + 31 * c, scale=scale)
                for c in range(n_cores)]
    raise ValueError(
        f"unknown suite {suite!r} (want 'spec', 'gap' or 'serve')")
