"""Canonical memory access patterns used to synthesize benchmark traces.

Real SPEC binaries are mixtures of a handful of archetypal behaviors —
sequential streaming, fixed strides, pointer chasing, hot/cold working sets,
repeated scans.  Each :class:`Pattern` below models one archetype as a
stateful address generator with its *own stable set of PCs*, because the
property every studied scheme (SHiP++, Hawkeye, Glider, CARE) exploits is
that behavior correlates with the issuing PC.

A :class:`WorkloadMix` interleaves several patterns by weight, assigns each
pattern a disjoint address region and PC range, and draws per-record compute
gaps — producing a :class:`~repro.workloads.trace.Trace`.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .trace import Trace, TraceRecord, make_trace
from ..sim.config import BLOCK_SIZE

#: element size used when walking arrays (8-byte doubles / pointers)
ELEM = 8
ELEMS_PER_BLOCK = BLOCK_SIZE // ELEM


class Pattern:
    """One archetypal access stream.

    Subclasses implement :meth:`step`, returning
    ``(pc_offset, element_index, is_write, dep)`` relative to the pattern's
    PC base and address region; the composer translates both.  ``dep``
    marks address-dependent loads (pointer chasing) that serialize in the
    core.
    """

    #: how many distinct PCs this pattern uses
    n_pcs = 1

    def __init__(self, region_elems: int, write_fraction: float = 0.0) -> None:
        if region_elems < 1:
            raise ValueError("region_elems must be >= 1")
        self.region_elems = region_elems
        self.write_fraction = write_fraction

    def step(self, rng: random.Random) -> Tuple[int, int, bool, bool]:
        raise NotImplementedError

    def _maybe_write(self, rng: random.Random) -> bool:
        return self.write_fraction > 0 and rng.random() < self.write_fraction


class StreamPattern(Pattern):
    """Sequential walk over a large region (libquantum/lbm/bwaves style)."""

    n_pcs = 2

    def __init__(self, region_elems: int, write_fraction: float = 0.0,
                 stride_elems: int = 1) -> None:
        super().__init__(region_elems, write_fraction)
        if stride_elems < 1:
            raise ValueError("stride must be >= 1")
        self.stride = stride_elems
        self._pos = 0

    def step(self, rng: random.Random) -> Tuple[int, int, bool, bool]:
        idx = self._pos
        self._pos = (self._pos + self.stride) % self.region_elems
        write = self._maybe_write(rng)
        return (1 if write else 0, idx, write, False)


class StridePattern(Pattern):
    """Fixed multi-block stride (stencil codes: cactus, wrf)."""

    n_pcs = 2

    def __init__(self, region_elems: int, write_fraction: float = 0.0,
                 stride_blocks: int = 2) -> None:
        super().__init__(region_elems, write_fraction)
        self.stride_elems = stride_blocks * ELEMS_PER_BLOCK
        self._pos = 0

    def step(self, rng: random.Random) -> Tuple[int, int, bool, bool]:
        idx = self._pos
        self._pos = (self._pos + self.stride_elems) % self.region_elems
        write = self._maybe_write(rng)
        return (1 if write else 0, idx, write, False)


class RandomPattern(Pattern):
    """Uniform random touches over a region (sparse/irregular kernels)."""

    n_pcs = 2

    def step(self, rng: random.Random) -> Tuple[int, int, bool, bool]:
        idx = rng.randrange(self.region_elems)
        write = self._maybe_write(rng)
        return (1 if write else 0, idx, write, False)


class PointerChasePattern(Pattern):
    """Permutation-cycle walk: each node names the next (mcf/omnetpp/astar).

    Nodes are spread one per block so every hop changes cache block, and the
    permutation is seeded per instance so reuse distance equals the cycle
    length — LLC-hostile when the node count exceeds the cache.
    """

    n_pcs = 2

    def __init__(self, region_elems: int, write_fraction: float = 0.0,
                 seed: int = 0) -> None:
        super().__init__(region_elems, write_fraction)
        self.n_nodes = max(2, region_elems // ELEMS_PER_BLOCK)
        rng = random.Random(seed ^ 0xC4A5E)
        # Sattolo's algorithm: a uniformly random *single-cycle* permutation,
        # so the walk visits every node and the reuse distance of each block
        # is exactly the node count.
        perm = list(range(self.n_nodes))
        for i in range(self.n_nodes - 1, 0, -1):
            j = rng.randrange(i)
            perm[i], perm[j] = perm[j], perm[i]
        self._next = perm
        self._cur = 0

    def step(self, rng: random.Random) -> Tuple[int, int, bool, bool]:
        idx = self._cur * ELEMS_PER_BLOCK
        self._cur = self._next[self._cur]
        write = self._maybe_write(rng)
        return (1 if write else 0, idx, write, True)


class HotColdPattern(Pattern):
    """Small hot set + large cold set (bzip2/x264/hmmer style).

    ``hot_fraction`` of accesses go to the first ``hot_elems`` elements; the
    hot and cold halves use different PCs, which is precisely the structure
    PC-signature schemes learn.
    """

    n_pcs = 4

    def __init__(self, region_elems: int, hot_elems: int,
                 hot_fraction: float = 0.9,
                 write_fraction: float = 0.0) -> None:
        super().__init__(region_elems, write_fraction)
        if not 0 < hot_elems <= region_elems:
            raise ValueError("hot_elems out of range")
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError("hot_fraction out of range")
        self.hot_elems = hot_elems
        self.hot_fraction = hot_fraction

    def step(self, rng: random.Random) -> Tuple[int, int, bool, bool]:
        write = self._maybe_write(rng)
        if rng.random() < self.hot_fraction:
            idx = rng.randrange(self.hot_elems)
            pc = 0 if not write else 1
        else:
            idx = self.hot_elems + rng.randrange(
                max(1, self.region_elems - self.hot_elems))
            pc = 2 if not write else 3
        return (pc, idx, write, False)


class ZipfianPattern(Pattern):
    """Zipf-distributed touches over a keyed object store (serving tier).

    Key popularity follows the classic power law ``P(rank k) ∝ 1/k^theta``
    (YCSB's request distribution; ``theta`` ≈ 0.99 for web/KV serving).
    Objects sit one per cache block and popularity ranks are scattered
    over the region by a seeded permutation, so the hot head is *not*
    physically contiguous — exactly the layout a serving tier's slab
    allocator produces.  Head and tail keys use distinct PCs (the hit
    fast path vs. the fill path), which is the structure PC-signature
    schemes learn.
    """

    n_pcs = 4

    def __init__(self, region_elems: int, theta: float = 0.99,
                 write_fraction: float = 0.0, seed: int = 0) -> None:
        super().__init__(region_elems, write_fraction)
        if theta <= 0.0:
            raise ValueError("theta must be > 0")
        self.theta = theta
        self.n_keys = max(2, region_elems // ELEMS_PER_BLOCK)
        cum: List[float] = []
        acc = 0.0
        for k in range(self.n_keys):
            acc += (k + 1) ** -theta
            cum.append(acc)
        self._cum = cum
        self._total = acc
        rng = random.Random(seed ^ 0x51AF5)
        slot = list(range(self.n_keys))
        rng.shuffle(slot)
        self._slot = slot
        self._head_ranks = max(1, self.n_keys // 64)

    def top_mass(self, fraction: float) -> float:
        """Access mass landing on the most popular ``fraction`` of keys."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        top = max(1, int(self.n_keys * fraction))
        return self._cum[min(top, self.n_keys) - 1] / self._total

    def step(self, rng: random.Random) -> Tuple[int, int, bool, bool]:
        x = rng.random() * self._total
        rank = min(bisect.bisect_left(self._cum, x), self.n_keys - 1)
        write = self._maybe_write(rng)
        pc = (0 if rank < self._head_ranks else 2) + (1 if write else 0)
        return (pc, self._slot[rank] * ELEMS_PER_BLOCK, write, False)


class ScanPattern(Pattern):
    """Repeated sequential scan of a fixed working set.

    With a working set slightly larger than the cache this is the classic
    LRU-thrash pattern that RRIP-family insertion fixes; with a smaller
    working set it is cache-friendly reuse.
    """

    n_pcs = 2

    def __init__(self, region_elems: int, write_fraction: float = 0.0) -> None:
        super().__init__(region_elems, write_fraction)
        self._pos = 0

    def step(self, rng: random.Random) -> Tuple[int, int, bool, bool]:
        idx = self._pos
        self._pos += ELEMS_PER_BLOCK      # one access per block per sweep
        if self._pos >= self.region_elems:
            self._pos = 0
        write = self._maybe_write(rng)
        return (1 if write else 0, idx, write, False)


@dataclass
class WeightedPattern:
    weight: float
    pattern: Pattern


class WorkloadMix:
    """Interleaves weighted patterns into one trace.

    Each pattern gets a disjoint, page-aligned address region and a disjoint
    PC range.  Gaps are drawn from a geometric-ish distribution with the
    requested mean, so instruction counts are realistic and bursty.
    """

    #: region spacing guard so patterns never collide (bytes)
    _REGION_ALIGN = 1 << 22

    def __init__(self, name: str, parts: Sequence[WeightedPattern],
                 mean_gap: float, seed: int = 0,
                 base_addr: int = 0x10000000, base_pc: int = 0x400000) -> None:
        if not parts:
            raise ValueError("need at least one pattern")
        if mean_gap < 0:
            raise ValueError("mean_gap must be >= 0")
        self.name = name
        self.parts = list(parts)
        self.mean_gap = mean_gap
        self.seed = seed
        # Each seed gets its own 4GB "address space" slot, so multi-copy
        # runs model separate processes (no accidental LLC sharing between
        # copies of the same benchmark).
        base_addr += ((seed * 2654435761) & 0x3F) << 32
        total = sum(p.weight for p in self.parts)
        if total <= 0:
            raise ValueError("pattern weights must sum to > 0")
        self._cum: List[float] = []
        acc = 0.0
        for p in self.parts:
            acc += p.weight / total
            self._cum.append(acc)
        # Region/PC assignment
        self._region_base: List[int] = []
        self._pc_base: List[int] = []
        addr = base_addr
        pc = base_pc
        for p in self.parts:
            self._region_base.append(addr)
            span = p.pattern.region_elems * ELEM
            addr += ((span // self._REGION_ALIGN) + 1) * self._REGION_ALIGN
            self._pc_base.append(pc)
            pc += 16 * max(1, p.pattern.n_pcs)

    def _pick(self, rng: random.Random) -> int:
        x = rng.random()
        for i, c in enumerate(self._cum):
            if x <= c:
                return i
        return len(self.parts) - 1

    def _gap(self, rng: random.Random) -> int:
        if self.mean_gap == 0:
            return 0
        # Geometric distribution with the requested mean, capped to keep
        # single records from dominating the ROB.
        g = int(rng.expovariate(1.0 / self.mean_gap))
        return min(g, 64)

    def generate(self, n_records: int, seed: Optional[int] = None) -> Trace:
        rng = random.Random(self.seed if seed is None else seed)
        records = []
        for _ in range(n_records):
            i = self._pick(rng)
            part = self.parts[i]
            pc_off, elem_idx, is_write, dep = part.pattern.step(rng)
            addr = self._region_base[i] + elem_idx * ELEM
            pc = self._pc_base[i] + 4 * pc_off
            records.append(TraceRecord(pc=pc, addr=addr, is_write=is_write,
                                       gap=self._gap(rng), dep=dep))
        return make_trace(self.name, records,
                          seed=self.seed if seed is None else seed)
