"""Synthetic graph datasets standing in for Table IX (orkut/twitter/urand).

The paper's GAP runs use orkut (3.1M vertices, social), twitter (61.6M,
social) and urand (134.2M, uniform random).  Graphs of that size are neither
available offline nor simulatable at Python speed, so we build seeded
synthetic graphs with the same *structural contrast* the paper relies on:

* ``orkut``  — power-law social graph, moderate size, high average degree,
* ``twitter`` — larger, heavier-tailed power-law (hub-dominated),
* ``urand``  — largest, uniform random degree (no locality structure).

Scaled sizes keep the ratio "urand > twitter > orkut" and keep each graph's
property arrays larger than the scaled LLC, so graph property accesses are
LLC-resident-hostile exactly as in the paper.  Graphs are CSR (offsets +
neighbors), the representation whose array walks the GAP suite's memory
behavior comes from.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List

import numpy as np


@dataclass(frozen=True)
class CSRGraph:
    """Compressed sparse row directed graph with uniform edge weights."""

    name: str
    offsets: np.ndarray      # int64[V+1]
    neighbors: np.ndarray    # int64[E]
    weights: np.ndarray      # int64[E], small positive ints (for sssp)

    @property
    def n_vertices(self) -> int:
        return len(self.offsets) - 1

    @property
    def n_edges(self) -> int:
        return len(self.neighbors)

    @property
    def avg_degree(self) -> float:
        return self.n_edges / self.n_vertices if self.n_vertices else 0.0

    def out_neighbors(self, u: int) -> np.ndarray:
        return self.neighbors[self.offsets[u]:self.offsets[u + 1]]

    def validate(self) -> None:
        if self.offsets[0] != 0 or self.offsets[-1] != self.n_edges:
            raise ValueError(f"{self.name}: malformed offsets")
        if np.any(np.diff(self.offsets) < 0):
            raise ValueError(f"{self.name}: offsets not monotone")
        if self.n_edges and (self.neighbors.min() < 0
                             or self.neighbors.max() >= self.n_vertices):
            raise ValueError(f"{self.name}: neighbor id out of range")


def _csr_from_edges(name: str, n: int, src: np.ndarray, dst: np.ndarray,
                    rng: np.random.Generator) -> CSRGraph:
    """Sort an edge list into CSR, dropping self-loops and duplicates."""
    keep = src != dst
    src, dst = src[keep], dst[keep]
    key = src.astype(np.int64) * n + dst
    _, unique_idx = np.unique(key, return_index=True)
    src, dst = src[unique_idx], dst[unique_idx]
    order = np.argsort(src, kind="stable")
    src, dst = src[order], dst[order]
    offsets = np.zeros(n + 1, dtype=np.int64)
    counts = np.bincount(src, minlength=n)
    offsets[1:] = np.cumsum(counts)
    weights = rng.integers(1, 16, size=len(dst), dtype=np.int64)
    graph = CSRGraph(name=name, offsets=offsets,
                     neighbors=dst.astype(np.int64), weights=weights)
    graph.validate()
    return graph


def _powerlaw_graph(name: str, n: int, avg_degree: int, alpha: float,
                    seed: int) -> CSRGraph:
    """Hub-skewed graph: endpoints drawn from a Zipf(alpha) vertex weighting."""
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    prob = ranks ** (-alpha)
    prob /= prob.sum()
    perm = rng.permutation(n)             # decouple vertex id from popularity
    m = n * avg_degree
    src = perm[rng.choice(n, size=m, p=prob)]
    dst = perm[rng.choice(n, size=m, p=prob)]
    return _csr_from_edges(name, n, src, dst, rng)


def _uniform_graph(name: str, n: int, avg_degree: int, seed: int) -> CSRGraph:
    rng = np.random.default_rng(seed)
    m = n * avg_degree
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    return _csr_from_edges(name, n, src, dst, rng)


@dataclass(frozen=True)
class GraphSpec:
    """Table IX row: paper-scale stats plus our scaled builder parameters."""

    key: str                 # paper shorthand: or / tw / ur
    full_name: str
    paper_vertices: str      # as printed in Table IX
    paper_edges: str
    description: str
    vertices: int            # scaled size we actually build
    avg_degree: int
    alpha: float             # 0 = uniform


GRAPH_SPECS: Dict[str, GraphSpec] = {
    "or": GraphSpec("or", "orkut", "3.1M", "117.2M", "Social network",
                    vertices=6000, avg_degree=24, alpha=0.7),
    "tw": GraphSpec("tw", "twitter", "61.6M", "1468.4M", "Social network",
                    vertices=12000, avg_degree=20, alpha=0.95),
    "ur": GraphSpec("ur", "urand", "134.2M", "2147.4M", "Synthetic",
                    vertices=24000, avg_degree=16, alpha=0.0),
}


def graph_keys() -> List[str]:
    return list(GRAPH_SPECS)


@lru_cache(maxsize=None)
def build_graph(key: str, seed: int = 7) -> CSRGraph:
    """Build (and memoize) one of the Table IX stand-in graphs."""
    try:
        spec = GRAPH_SPECS[key]
    except KeyError:
        raise KeyError(f"unknown graph {key!r}; known: {graph_keys()}") from None
    if spec.alpha > 0:
        return _powerlaw_graph(spec.full_name, spec.vertices,
                               spec.avg_degree, spec.alpha, seed)
    return _uniform_graph(spec.full_name, spec.vertices, spec.avg_degree, seed)
