"""Synthetic stand-ins for the 30 SPEC CPU2006/2017 workloads of Table VIII.

The paper's traces are SimPoints of SPEC binaries (provided by DPC-3); those
are unavailable offline, so each benchmark is modeled as a seeded mixture of
the archetypal patterns in :mod:`.patterns`, chosen from each benchmark's
well-documented characterization (mcf/omnetpp/astar/xalancbmk = pointer
chasing, lbm/libquantum/bwaves/milc/roms = streaming, cactus/wrf = stencils,
bzip2/hmmer/x264/xz = small hot working sets, gcc/soplex/sphinx = mixes).

Every benchmark mixes three tiers:

* a **core-resident hot set** (fits L1/L2) supplying the upper-level hits a
  real binary has,
* an **LLC-resident tier** (a fraction of LLC capacity) that misses L2 but
  hits the LLC — the traffic locality-based LLC policies protect and the
  source of LLC-level hit-miss overlap,
* the benchmark's **memory-bound signature pattern** (stream / pointer
  chase / stride / scan / random) whose weight is *derived from the
  Table VIII MPKI target*: with mean gap ``g`` and a pattern missing once
  every ``1/mpa`` accesses, MPKI ≈ 1000 · w · mpa / (g+1), so
  ``w = target · (g+1) / (1000 · mpa)``.

``paper_mpki`` records the value Table VIII reports; the Table VIII
benchmark regenerates measured values next to it.  All region sizes are
relative to ``scale`` (per-core LLC blocks), so the same definitions drive
the paper-size machine and the scaled default machine equivalently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from .patterns import (
    ELEMS_PER_BLOCK,
    HotColdPattern,
    Pattern,
    PointerChasePattern,
    RandomPattern,
    ScanPattern,
    StreamPattern,
    StridePattern,
    WeightedPattern,
    WorkloadMix,
)
from .trace import Trace

#: default ``scale``: per-core LLC blocks of ``SystemConfig.default()``
DEFAULT_SCALE = 512

#: hot-tier size in blocks (fits the default L1/L2)
_HOT_BLOCKS = 24


def _elems(blocks: float) -> int:
    """Region size in elements for a size given in cache blocks."""
    return max(ELEMS_PER_BLOCK, int(blocks) * ELEMS_PER_BLOCK)


@dataclass(frozen=True)
class SpecBenchmark:
    """One Table VIII workload: paper metadata plus a trace builder."""

    name: str
    suite: str                 # "SPEC06" | "SPEC17"
    paper_mpki: float          # Table VIII's reported LLC MPKI
    pattern_class: str         # human-readable characterization
    builder: Callable[[int, int], WorkloadMix]

    def mix(self, seed: int = 0, scale: int = DEFAULT_SCALE) -> WorkloadMix:
        return self.builder(seed, scale)

    def trace(self, n_records: int, seed: int = 0,
              scale: int = DEFAULT_SCALE) -> Trace:
        trace = self.mix(seed, scale).generate(n_records, seed=seed)
        trace.suite = self.suite
        return trace


def _wp(weight: float, pattern: Pattern) -> WeightedPattern:
    return WeightedPattern(weight, pattern)


# ----------------------------------------------------------------------
# The tiered builder.  ``s`` is the per-core LLC size in blocks.
# ----------------------------------------------------------------------

#: approximate LLC misses per access for each signature pattern kind
_MISS_PER_ACCESS = {
    "stream": 1.0 / ELEMS_PER_BLOCK,   # element-stride walk: 1 miss / block
    "chase": 1.0,                      # every hop a fresh block
    "stride": 1.0,                     # multi-block stride: always fresh
    "scan": 0.95,                      # LRU-thrashing sweep
    "random": 0.75,                    # region a few x LLC: mostly misses
}


def _signature_pattern(kind: str, s: int, region_mult: float,
                       wf: float, seed: int) -> Pattern:
    region = _elems(s * region_mult)
    if kind == "stream":
        return StreamPattern(region, write_fraction=wf)
    if kind == "chase":
        return PointerChasePattern(region, write_fraction=wf, seed=seed)
    if kind == "stride":
        return StridePattern(region, stride_blocks=3, write_fraction=wf)
    if kind == "scan":
        return ScanPattern(region, write_fraction=wf)
    if kind == "random":
        return RandomPattern(region, write_fraction=wf)
    raise ValueError(f"unknown signature pattern kind {kind!r}")


def _tiered(kind: str, target_mpki: float, gap: float,
            region_mult: float = 6.0, wf: float = 0.12,
            llc_tier: float = 0.12):
    """Build the three-tier mix whose MPKI lands near ``target_mpki``."""

    def build(seed: int, s: int) -> WorkloadMix:
        mpa = _MISS_PER_ACCESS[kind]
        miss_w = target_mpki * (gap + 1) / (1000.0 * mpa)
        miss_w = min(max(miss_w, 0.004), 0.88)
        llc_w = min(llc_tier, max(0.0, 0.96 - miss_w))
        hot_w = max(0.0, 1.0 - miss_w - llc_w)
        parts = [
            _wp(miss_w, _signature_pattern(kind, s, region_mult, wf, seed)),
            # LLC-resident tier: random reuse over ~40% of the LLC --
            # misses L2, hits LLC after warmup.
            _wp(llc_w, HotColdPattern(
                _elems(s * 0.45), _elems(s * 0.3),
                hot_fraction=0.85, write_fraction=wf)),
        ]
        if hot_w > 0:
            parts.append(_wp(hot_w, HotColdPattern(
                _elems(_HOT_BLOCKS * 2), _elems(_HOT_BLOCKS),
                hot_fraction=0.95, write_fraction=wf)))
        return WorkloadMix("", parts, mean_gap=gap, seed=seed)

    return build


# ----------------------------------------------------------------------
# The Table VIII registry
# ----------------------------------------------------------------------

def _registry() -> Dict[str, SpecBenchmark]:
    B = SpecBenchmark
    entries = [
        # -- SPEC CPU2006 -------------------------------------------------
        B("401.bzip2", "SPEC06", 1.34, "hot working set",
          _tiered("random", 1.34, gap=6.0, region_mult=2.5, llc_tier=0.10)),
        B("403.gcc", "SPEC06", 25.55, "irregular mix",
          _tiered("random", 25.55, gap=2.4, region_mult=3.0)),
        B("410.bwaves", "SPEC06", 18.35, "streaming",
          _tiered("stream", 18.35, gap=4.5, region_mult=10)),
        B("429.mcf", "SPEC06", 26.28, "pointer chasing",
          _tiered("chase", 26.28, gap=3.4, region_mult=6)),
        B("433.milc", "SPEC06", 19.00, "streaming",
          _tiered("stream", 19.00, gap=4.4, region_mult=9)),
        B("436.cactusADM", "SPEC06", 4.99, "stencil",
          _tiered("stride", 4.99, gap=5.5, region_mult=3)),
        B("437.leslie3d", "SPEC06", 6.68, "streaming + reuse",
          _tiered("stream", 6.68, gap=7.5, region_mult=6, llc_tier=0.20)),
        B("450.soplex", "SPEC06", 32.69, "sparse solver",
          _tiered("random", 32.69, gap=1.9, region_mult=2.5)),
        B("456.hmmer", "SPEC06", 2.72, "hot working set",
          _tiered("random", 2.72, gap=4.5, region_mult=2.0, llc_tier=0.10)),
        B("459.GemsFDTD", "SPEC06", 24.44, "streaming stencil",
          _tiered("stream", 24.44, gap=3.2, region_mult=12, wf=0.25)),
        B("462.libquantum", "SPEC06", 28.03, "pure streaming",
          _tiered("stream", 28.03, gap=3.0, region_mult=16, wf=0.25,
                  llc_tier=0.06)),
        B("470.lbm", "SPEC06", 28.42, "streaming, write heavy",
          _tiered("stream", 28.42, gap=2.9, region_mult=12, wf=0.45)),
        B("473.astar", "SPEC06", 35.88, "pointer chasing",
          _tiered("chase", 35.88, gap=2.1, region_mult=5)),
        B("481.wrf", "SPEC06", 5.66, "stencil mix",
          _tiered("stride", 5.66, gap=5.2, region_mult=3, llc_tier=0.18)),
        B("482.sphinx3", "SPEC06", 12.96, "scan + lookup",
          _tiered("scan", 12.96, gap=3.6, region_mult=1.6, llc_tier=0.16)),
        B("483.xalancbmk", "SPEC06", 26.91, "pointer + hot",
          _tiered("chase", 26.91, gap=2.6, region_mult=3.5)),
        # -- SPEC CPU2017 -------------------------------------------------
        B("602.gcc_s", "SPEC17", 17.77, "irregular mix",
          _tiered("random", 17.77, gap=3.3, region_mult=2.5)),
        B("603.bwaves_s", "SPEC17", 19.00, "streaming",
          _tiered("stream", 19.00, gap=4.3, region_mult=10)),
        B("605.mcf_s", "SPEC17", 55.62, "pointer chasing, intense",
          _tiered("chase", 55.62, gap=1.2, region_mult=8)),
        B("607.cactuBSSN_s", "SPEC17", 3.51, "stencil",
          _tiered("stride", 3.51, gap=6.5, region_mult=2.5, llc_tier=0.16)),
        B("619.lbm_s", "SPEC17", 40.64, "streaming, write heavy",
          _tiered("stream", 40.64, gap=1.8, region_mult=14, wf=0.45,
                  llc_tier=0.06)),
        B("620.omnetpp_s", "SPEC17", 9.21, "pointer chasing, moderate",
          _tiered("chase", 9.21, gap=5.4, region_mult=2.5, llc_tier=0.18)),
        B("621.wrf_s", "SPEC17", 19.22, "stencil, wide",
          _tiered("stride", 19.22, gap=2.6, region_mult=6)),
        B("623.xalancbmk_s", "SPEC17", 24.26, "pointer + hot",
          _tiered("chase", 24.26, gap=2.8, region_mult=3.0)),
        B("625.x264_s", "SPEC17", 1.35, "hot working set",
          _tiered("stride", 1.35, gap=5.5, region_mult=1.5, wf=0.2,
                  llc_tier=0.10)),
        B("627.cam4_s", "SPEC17", 4.51, "stencil",
          _tiered("stride", 4.51, gap=5.8, region_mult=3, llc_tier=0.16)),
        B("628.pop2_s", "SPEC17", 2.99, "stencil + hot",
          _tiered("stride", 2.99, gap=6.8, region_mult=2, llc_tier=0.16)),
        B("649.fotonik3d_s", "SPEC17", 15.67, "streaming",
          _tiered("stream", 15.67, gap=5.2, region_mult=9)),
        B("654.roms_s", "SPEC17", 24.23, "streaming",
          _tiered("stream", 24.23, gap=3.4, region_mult=11)),
        B("657.xz_s", "SPEC17", 1.58, "hot + light random",
          _tiered("random", 1.58, gap=5.2, region_mult=2.0, llc_tier=0.10)),
    ]
    table = {}
    for bench in entries:
        if bench.name in table:
            raise ValueError(f"duplicate benchmark {bench.name}")
        table[bench.name] = bench
    return table


SPEC_BENCHMARKS: Dict[str, SpecBenchmark] = _registry()

#: The 16 single-core workloads Figure 5 / Table III report on, by the
#: numeric shorthand the paper uses (403, 429, ..., 654).
FIG5_WORKLOADS: List[str] = [
    "403.gcc", "429.mcf", "433.milc", "436.cactusADM", "437.leslie3d",
    "450.soplex", "459.GemsFDTD", "462.libquantum", "470.lbm", "473.astar",
    "482.sphinx3", "603.bwaves_s", "621.wrf_s", "623.xalancbmk_s",
    "649.fotonik3d_s", "654.roms_s",
]


def spec_names() -> List[str]:
    """All 30 Table VIII workload names, suite order."""
    return list(SPEC_BENCHMARKS)


def spec_benchmark(name: str) -> SpecBenchmark:
    try:
        return SPEC_BENCHMARKS[name]
    except KeyError:
        short_matches = [k for k in SPEC_BENCHMARKS if k.startswith(name)]
        if len(short_matches) == 1:
            return SPEC_BENCHMARKS[short_matches[0]]
        raise KeyError(
            f"unknown SPEC workload {name!r}; known: {spec_names()}"
        ) from None


def spec_trace(name: str, n_records: int = 20000, seed: int = 0,
               scale: int = DEFAULT_SCALE) -> Trace:
    """Generate the synthetic trace for one Table VIII workload."""
    bench = spec_benchmark(name)
    trace = bench.trace(n_records, seed=seed, scale=scale)
    trace.name = bench.name
    return trace
