"""Uniform-random replacement (testing/ablation baseline)."""

from __future__ import annotations

from .base import PolicyAccess, ReplacementPolicy
from .registry import register


@register("random")
class RandomPolicy(ReplacementPolicy):
    def find_victim(self, set_idx: int, blocks, access: PolicyAccess) -> int:
        return self.rng.randrange(self.ways)
