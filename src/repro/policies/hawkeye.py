"""Hawkeye (Jain & Lin, ISCA'16) — learning Belady's OPT.

One of the paper's locality-only comparison schemes.  Hawkeye reconstructs
what Belady's OPT would have done on sampled sets (:mod:`.optgen`), trains a
per-PC predictor with those labels, and manages the cache with 3-bit ages:

* blocks predicted *cache-friendly* insert at age 0; inserting a friendly
  block ages every other friendly block by one (so stale friendly blocks can
  eventually be victimized),
* blocks predicted *cache-averse* insert at age 7 and are preferred victims,
* when no averse block exists, the oldest friendly block is evicted and its
  load PC is detrained (the prediction was evidently wrong).

Writebacks insert averse and never train.  Demand and prefetch accesses use
distinct predictor indices (the CRC-2 version trains prefetches separately).
"""

from __future__ import annotations

from typing import Dict, List

from .base import PolicyAccess, ReplacementPolicy
from .optgen import OptGen
from .registry import register
from .sampling import choose_sampled_sets
from ..core.signatures import hash_pc


class HawkeyePredictor:
    """3-bit saturating per-PC counters; >=4 means cache-friendly."""

    def __init__(self, entries: int = 8192, bits: int = 3) -> None:
        self.entries = entries
        self.max_value = (1 << bits) - 1
        self.threshold = (self.max_value + 1) // 2
        self._table = [self.threshold] * entries

    def _index(self, pc: int, prefetch: bool) -> int:
        # Mix the prefetch class into the hashed PC (not a plain XOR on the
        # index, which a power-of-two modulus could cancel out).
        key = pc ^ (0x9E3779B9 if prefetch else 0)
        return hash_pc(key, 16) % self.entries

    def friendly(self, pc: int, prefetch: bool = False) -> bool:
        return self._table[self._index(pc, prefetch)] >= self.threshold

    def train(self, pc: int, hit: bool, prefetch: bool = False) -> None:
        i = self._index(pc, prefetch)
        if hit:
            self._table[i] = min(self._table[i] + 1, self.max_value)
        else:
            self._table[i] = max(self._table[i] - 1, 0)


@register("hawkeye")
class HawkeyePolicy(ReplacementPolicy):
    MAX_AGE = 7          # 3-bit RRIP-style age; 7 == cache-averse

    def __init__(self, sets: int, ways: int, seed: int = 0,
                 sampled_target: int = 64,
                 predictor_entries: int = 8192) -> None:
        super().__init__(sets, ways, seed)
        self.predictor = HawkeyePredictor(predictor_entries)
        self.sampled = choose_sampled_sets(sets, sampled_target)
        self._optgen: Dict[int, OptGen] = {
            s: OptGen(ways) for s in self.sampled}
        self._age: List[List[int]] = [[self.MAX_AGE] * ways for _ in range(sets)]
        # PC that last touched each block, for detraining on forced evictions.
        self._pc: List[List[int]] = [[0] * ways for _ in range(sets)]
        self._pf: List[List[bool]] = [[False] * ways for _ in range(sets)]

    # ------------------------------------------------------------------
    def _sample(self, set_idx: int, access: PolicyAccess) -> None:
        if set_idx not in self.sampled or access.is_writeback:
            return
        label = self._optgen[set_idx].access(
            access.addr >> 6, access.pc, context=access.prefetch)
        if label is not None:
            self.predictor.train(label.pc, label.hit,
                                 prefetch=bool(label.context))

    # ------------------------------------------------------------------
    def find_victim(self, set_idx: int, blocks, access: PolicyAccess) -> int:
        ages = self._age[set_idx]
        for way in range(self.ways):
            if ages[way] == self.MAX_AGE:
                return way
        # No averse block: evict the oldest friendly one and detrain its PC.
        victim = max(range(self.ways), key=lambda w: (ages[w], -w))
        self.predictor.train(self._pc[set_idx][victim], hit=False,
                             prefetch=self._pf[set_idx][victim])
        return victim

    def on_hit(self, set_idx: int, way: int, blocks, access: PolicyAccess) -> None:
        if access.is_writeback:
            return
        self._sample(set_idx, access)
        friendly = self.predictor.friendly(access.pc, access.prefetch)
        self._age[set_idx][way] = 0 if friendly else self.MAX_AGE
        self._pc[set_idx][way] = access.pc
        self._pf[set_idx][way] = access.prefetch

    def on_fill(self, set_idx: int, way: int, blocks, access: PolicyAccess) -> None:
        ages = self._age[set_idx]
        self._pc[set_idx][way] = access.pc
        self._pf[set_idx][way] = access.prefetch
        if access.is_writeback:
            ages[way] = self.MAX_AGE
            return
        self._sample(set_idx, access)
        if self.predictor.friendly(access.pc, access.prefetch):
            ages[way] = 0
            for w in range(self.ways):
                if w != way and ages[w] < self.MAX_AGE - 1:
                    ages[w] += 1
        else:
            ages[way] = self.MAX_AGE
