"""SHiP++ (Young et al., CRC-2 2017) — the scheme CARE directly extends.

Enhancements over SHiP implemented here, following the CRC-2 write-up the
paper cites:

* prefetch-aware signatures (a prefetch bit is appended to the PC hash) so
  demand and prefetch behavior train separately,
* writebacks insert at distant RRPV and never train the SHCT,
* strongly-reused signatures (saturated SHCT) insert at RRPV 0 instead of
  the SRRIP "long" position,
* prefetch fills insert at distant RRPV unless their signature has proven
  reuse,
* only the first demand re-reference of a block trains the SHCT (+1), and
  a prefetched block that is hit by its first demand access is re-marked so
  a single prefetch-then-use pair does not look like heavy reuse.
"""

from __future__ import annotations

from .base import PolicyAccess
from .registry import register
from .ship import SHiPPolicy
from ..sim.request import AccessType


@register("shippp")
class SHiPPPPolicy(SHiPPolicy):
    """SHiP++ ("SHiP plus plus")."""

    prefetch_aware_signature = True

    def insertion_rrpv(self, access: PolicyAccess, sig: int) -> int:
        if access.is_writeback:
            return self.rrpv_max
        counter = self.shct[sig]
        if access.prefetch:
            # Prefetch fill: dead prefetch signatures insert distant, the
            # rest at the SRRIP "long" position so timely prefetches
            # survive until their demand arrives.
            return self.rrpv_max if counter == 0 else self.rrpv_max - 1
        if counter == 0:
            return self.rrpv_max
        if counter >= self.shct.max_value:
            return 0
        return self.rrpv_max - 1

    def on_hit(self, set_idx: int, way: int, blocks, access: PolicyAccess) -> None:
        if access.is_writeback:
            return
        if access.rtype == AccessType.PREFETCH and access.prefetch:
            # Prefetch request hitting a still-unreferenced prefetched block:
            # not a real reuse signal; leave RRPV and training alone.
            return
        super().on_hit(set_idx, way, blocks, access)
