"""SHiP — Signature-based Hit Predictor (Wu et al., MICRO'11).

SRRIP augmented with a Signature History Counter Table (SHCT): each PC
signature keeps a saturating counter of whether its blocks get reused.
Blocks whose signature counter is zero are inserted at distant RRPV (likely
dead on arrival); everything else inserts like SRRIP.  The SHCT trains from
sampled sets only: +1 on a block's first reuse, -1 when a block is evicted
without reuse.
"""

from __future__ import annotations

from typing import Dict, List

from .base import PolicyAccess
from .registry import register
from .sampling import choose_sampled_sets
from .srrip import RRIPBase
from ..core.signatures import SIG_ENTRIES, pc_signature


class SHCT:
    """Signature History Counter Table: saturating reuse counters."""

    def __init__(self, entries: int = SIG_ENTRIES, bits: int = 3,
                 initial: int = 1) -> None:
        self.max_value = (1 << bits) - 1
        if not 0 <= initial <= self.max_value:
            raise ValueError("initial out of counter range")
        self.entries = entries
        self._table = [initial] * entries

    def __getitem__(self, sig: int) -> int:
        return self._table[sig % self.entries]

    def increment(self, sig: int) -> None:
        i = sig % self.entries
        if self._table[i] < self.max_value:
            self._table[i] += 1

    def decrement(self, sig: int) -> None:
        i = sig % self.entries
        if self._table[i] > 0:
            self._table[i] -= 1

    @property
    def saturated_max(self) -> int:
        return self.max_value


@register("ship")
class SHiPPolicy(RRIPBase):
    """Original SHiP-PC on top of 2-bit SRRIP."""

    #: distinguish prefetch accesses in the signature (SHiP++/CARE refinement)
    prefetch_aware_signature = False

    def __init__(self, sets: int, ways: int, seed: int = 0,
                 rrpv_bits: int = 2, sampled_target: int = 64) -> None:
        super().__init__(sets, ways, seed, rrpv_bits)
        self.shct = SHCT()
        self.sampled = choose_sampled_sets(sets, sampled_target)
        # Per-block learning metadata, kept only for sampled sets.
        self._sig: Dict[int, List[int]] = {
            s: [0] * ways for s in self.sampled}
        self._reused: Dict[int, List[bool]] = {
            s: [False] * ways for s in self.sampled}

    # ------------------------------------------------------------------
    def signature(self, access: PolicyAccess) -> int:
        prefetch = access.prefetch if self.prefetch_aware_signature else False
        return pc_signature(access.pc, prefetch)

    # ------------------------------------------------------------------
    def on_hit(self, set_idx: int, way: int, blocks, access: PolicyAccess) -> None:
        if access.is_writeback:
            return
        self.rrpv[set_idx][way] = 0
        if set_idx in self.sampled and not self._reused[set_idx][way]:
            self._reused[set_idx][way] = True
            self.shct.increment(self._sig[set_idx][way])

    def on_evict(self, set_idx: int, way: int, blocks, access: PolicyAccess) -> None:
        if set_idx in self.sampled and not self._reused[set_idx][way]:
            self.shct.decrement(self._sig[set_idx][way])

    def on_fill(self, set_idx: int, way: int, blocks, access: PolicyAccess) -> None:
        sig = self.signature(access)
        self.rrpv[set_idx][way] = self.insertion_rrpv(access, sig)
        if set_idx in self.sampled:
            self._sig[set_idx][way] = sig
            self._reused[set_idx][way] = False

    # ------------------------------------------------------------------
    def insertion_rrpv(self, access: PolicyAccess, sig: int) -> int:
        """SHiP rule: dead-on-arrival signatures insert at distant RRPV."""
        if access.is_writeback:
            return self.rrpv_max
        if self.shct[sig] == 0:
            return self.rrpv_max
        return self.rrpv_max - 1
