"""RLR — the reinforcement-learning-derived replacement policy of
Sethumurugan, Yin & Sartori (HPCA'21), the paper's citation [40].

The published policy is the *distilled heuristic* extracted from an RL
agent, not an online learner: each block scores by

* **age** since last touch (older = better victim),
* whether the block has been **reused** since fill (hit bonus),
* the **type** of the access that brought it in (prefetch inserts are
  cheaper to lose than demand inserts).

Victim = highest ``age + preservation_penalty`` balance; concretely RLR
evicts the block maximizing ``age - (hit_bonus + type_bonus)`` with the
published relative weights (reuse ~ 8x a unit of age-granularity, demand
provenance ~ 1 unit).
"""

from __future__ import annotations

from .base import PolicyAccess, ReplacementPolicy
from .registry import register


@register("rlr")
class RLRPolicy(ReplacementPolicy):
    #: weight of "was reused" relative to one aging step (from the paper's
    #: derived policy: reuse dominates provenance)
    HIT_BONUS = 8
    DEMAND_BONUS = 1

    def __init__(self, sets: int, ways: int, seed: int = 0,
                 age_granularity: int = 8) -> None:
        super().__init__(sets, ways, seed)
        self.age_granularity = age_granularity
        self._last_touch = [[0] * ways for _ in range(sets)]
        self._reused = [[False] * ways for _ in range(sets)]
        self._demand = [[True] * ways for _ in range(sets)]
        self._clock = [0] * sets       # per-set access clock

    def _age(self, set_idx: int, way: int) -> int:
        raw = self._clock[set_idx] - self._last_touch[set_idx][way]
        return raw // self.age_granularity

    def find_victim(self, set_idx: int, blocks, access: PolicyAccess) -> int:
        def score(way: int) -> int:
            keep = 0
            if self._reused[set_idx][way]:
                keep += self.HIT_BONUS
            if self._demand[set_idx][way]:
                keep += self.DEMAND_BONUS
            return self._age(set_idx, way) - keep

        return max(range(self.ways), key=lambda w: (score(w), -w))

    def on_hit(self, set_idx: int, way: int, blocks, access: PolicyAccess) -> None:
        self._clock[set_idx] += 1
        self._last_touch[set_idx][way] = self._clock[set_idx]
        if not access.is_writeback:
            self._reused[set_idx][way] = True

    def on_fill(self, set_idx: int, way: int, blocks, access: PolicyAccess) -> None:
        self._clock[set_idx] += 1
        self._last_touch[set_idx][way] = self._clock[set_idx]
        self._reused[set_idx][way] = False
        self._demand[set_idx][way] = access.is_demand
