"""DRRIP — Dynamic RRIP via set dueling (Jaleel et al., ISCA'10).

Duels SRRIP insertion against bimodal (BRRIP) insertion and lets follower
sets adopt the current winner.
"""

from __future__ import annotations

from .base import PolicyAccess
from .dueling import SetDuel
from .registry import register
from .srrip import RRIPBase


@register("drrip")
class DRRIPPolicy(RRIPBase):
    def __init__(self, sets: int, ways: int, seed: int = 0,
                 rrpv_bits: int = 2, long_probability: float = 1 / 32,
                 leaders_per_policy: int = 32) -> None:
        super().__init__(sets, ways, seed, rrpv_bits)
        self.long_probability = long_probability
        self.duel = SetDuel(sets, leaders_per_policy, seed=seed)

    def on_fill(self, set_idx: int, way: int, blocks, access: PolicyAccess) -> None:
        # A fill implies a miss occurred in this set: update the duel.
        self.duel.on_miss(set_idx)
        use_srrip = self.duel.choose(set_idx) == SetDuel.ROLE_A
        if use_srrip:
            self.rrpv[set_idx][way] = self.rrpv_max - 1
        elif self.rng.random() < self.long_probability:
            self.rrpv[set_idx][way] = self.rrpv_max - 1
        else:
            self.rrpv[set_idx][way] = self.rrpv_max
