"""LACS — Locality-Aware Cost-Sensitive replacement (Kharbutli & Sheikh).

Background baseline from Section II-D.  LACS estimates a miss's cost by the
number of instructions the processor managed to issue while the miss was
outstanding: few issued instructions means the miss stalled the core (high
cost), many means the penalty was hidden (low cost).  Blocks fetched by
low-cost misses become eviction candidates once they look dead.

Our substrate exposes exactly this signal: the LLC stamps each MSHR entry
with the core's issued-instruction count and reports the delta at fill time
(``PolicyAccess.instr_during_miss``).
"""

from __future__ import annotations

from .base import PolicyAccess, ReplacementPolicy
from .registry import register


@register("lacs")
class LACSPolicy(ReplacementPolicy):
    """Cost-sensitive LRU: prefer evicting blocks whose miss was cheap."""

    def __init__(self, sets: int, ways: int, seed: int = 0,
                 cheap_threshold: int = 64) -> None:
        super().__init__(sets, ways, seed)
        # A miss during which the core issued >= cheap_threshold
        # instructions is considered hidden (low cost).
        self.cheap_threshold = cheap_threshold
        self._stamp = [[0] * ways for _ in range(sets)]
        self._cheap = [[True] * ways for _ in range(sets)]
        self._clock = 0

    def _touch(self, set_idx: int, way: int) -> None:
        self._clock += 1
        self._stamp[set_idx][way] = self._clock

    def find_victim(self, set_idx: int, blocks, access: PolicyAccess) -> int:
        stamps = self._stamp[set_idx]
        cheap = self._cheap[set_idx]
        cheap_ways = [w for w in range(self.ways) if cheap[w]]
        pool = cheap_ways if cheap_ways else list(range(self.ways))
        return min(pool, key=lambda w: stamps[w])

    def on_hit(self, set_idx: int, way: int, blocks, access: PolicyAccess) -> None:
        self._touch(set_idx, way)

    def on_fill(self, set_idx: int, way: int, blocks, access: PolicyAccess) -> None:
        self._touch(set_idx, way)
        if access.is_writeback:
            self._cheap[set_idx][way] = True
        else:
            self._cheap[set_idx][way] = (
                access.instr_during_miss >= self.cheap_threshold)
