"""Mockingjay (Shah, Jain & Lin, HPCA'22) — reuse-distance mimicry of OPT.

The strongest locality-only baseline in the paper's scaling study.  Rather
than Hawkeye's binary friendly/averse classes, Mockingjay predicts a
*reuse distance* per load PC and evicts the block whose predicted next use
is farthest away ("estimated time remaining", ETR).

Faithful-but-simplified implementation:

* **Sampled cache**: for sampled sets we remember each block's last access
  (per-set logical time and PC).  When a block is re-touched, the observed
  reuse distance trains the Reuse Distance Predictor (RDP) entry of the
  *previous* PC; blocks that age out of the sampler train toward "infinite"
  reuse distance.
* **RDP**: per-PC predicted reuse distance with Mockingjay's
  difference-based update (move by +/-1 when close, jump when wildly off).
* **Replacement**: each block stores its predicted next-use time
  (set-local clock + predicted distance).  The victim is the valid block
  with the largest remaining time; blocks whose predicted reuse already
  passed are treated as dead and preferred.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .base import PolicyAccess, ReplacementPolicy
from .registry import register
from .sampling import choose_sampled_sets
from ..core.signatures import hash_pc

#: RDP value used for "never reused within reach" training.
_INFINITE_RD = 1024


class ReuseDistancePredictor:
    """Per-PC predicted reuse distance with difference-based updates."""

    def __init__(self, entries: int = 4096, max_value: int = _INFINITE_RD) -> None:
        self.entries = entries
        self.max_value = max_value
        self._table: Dict[int, int] = {}

    #: prediction for a PC never seen by the sampler: mid-range, so fresh
    #: blocks are neither instant victims nor immortal.
    DEFAULT_RD = 16

    def _index(self, pc: int, prefetch: bool) -> int:
        key = pc ^ (0x9E3779B9 if prefetch else 0)
        return hash_pc(key, 16) % self.entries

    def predict(self, pc: int, prefetch: bool = False) -> int:
        return self._table.get(self._index(pc, prefetch), self.DEFAULT_RD)

    def train(self, pc: int, observed: int, prefetch: bool = False) -> None:
        i = self._index(pc, prefetch)
        current = self._table.get(i)
        if current is None:
            self._table[i] = min(observed, self.max_value)
            return
        diff = observed - current
        if abs(diff) <= 8:
            step = diff                       # close: snap to observation
        else:
            step = diff // 4                  # far: move a quarter of the way
        self._table[i] = max(0, min(current + step, self.max_value))


class _SampledSet:
    """Last-access tracker for one sampled set."""

    __slots__ = ("capacity", "time", "entries")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.time = 0
        # tag -> (last_time, pc, prefetch)
        self.entries: Dict[int, Tuple[int, int, bool]] = {}

    def access(self, tag: int, pc: int, prefetch: bool):
        """Returns (train_pc, observed_rd, train_prefetch) or None, plus
        a list of aged-out entries to train as infinite."""
        label = None
        prev = self.entries.pop(tag, None)
        if prev is not None:
            last_time, last_pc, last_pf = prev
            label = (last_pc, self.time - last_time, last_pf)
        aged_out = []
        if len(self.entries) >= self.capacity:
            # Evict the stalest tracked block: it was never re-seen.
            stale_tag = min(self.entries, key=lambda t: self.entries[t][0])
            _, stale_pc, stale_pf = self.entries.pop(stale_tag)
            aged_out.append((stale_pc, stale_pf))
        self.entries[tag] = (self.time, pc, prefetch)
        self.time += 1
        return label, aged_out


@register("mockingjay")
class MockingjayPolicy(ReplacementPolicy):
    def __init__(self, sets: int, ways: int, seed: int = 0,
                 sampled_target: int = 64, sampler_capacity_factor: int = 4,
                 rdp_entries: int = 4096) -> None:
        super().__init__(sets, ways, seed)
        self.rdp = ReuseDistancePredictor(rdp_entries)
        self.sampled = choose_sampled_sets(sets, sampled_target)
        self._samplers: Dict[int, _SampledSet] = {
            s: _SampledSet(ways * sampler_capacity_factor) for s in self.sampled
        }
        # Per-set logical clocks and per-block predicted next-use times.
        self._clock: List[int] = [0] * sets
        self._next_use: List[List[int]] = [[0] * ways for _ in range(sets)]

    # ------------------------------------------------------------------
    def _sample(self, set_idx: int, access: PolicyAccess) -> None:
        if set_idx not in self.sampled or access.is_writeback:
            return
        label, aged_out = self._samplers[set_idx].access(
            access.addr >> 6, access.pc, access.prefetch)
        if label is not None:
            pc, observed, pf = label
            self.rdp.train(pc, observed, pf)
        for pc, pf in aged_out:
            self.rdp.train(pc, _INFINITE_RD, pf)

    def _stamp(self, set_idx: int, way: int, access: PolicyAccess) -> None:
        predicted = self.rdp.predict(access.pc, access.prefetch)
        self._next_use[set_idx][way] = self._clock[set_idx] + predicted

    # ------------------------------------------------------------------
    def find_victim(self, set_idx: int, blocks, access: PolicyAccess) -> int:
        # Mockingjay's rule: evict the line with the largest |ETR| —
        # either predicted-farthest-in-the-future or longest-overdue.
        now = self._clock[set_idx]
        next_use = self._next_use[set_idx]
        return max(range(self.ways),
                   key=lambda w: (abs(next_use[w] - now), -w))

    def on_hit(self, set_idx: int, way: int, blocks, access: PolicyAccess) -> None:
        self._clock[set_idx] += 1
        if access.is_writeback:
            return
        self._sample(set_idx, access)
        self._stamp(set_idx, way, access)

    def on_fill(self, set_idx: int, way: int, blocks, access: PolicyAccess) -> None:
        self._clock[set_idx] += 1
        if access.is_writeback:
            # Writebacks get no predicted reuse: immediately stale.
            self._next_use[set_idx][way] = self._clock[set_idx] - 1
            return
        self._sample(set_idx, access)
        self._stamp(set_idx, way, access)
