"""Sampled-set selection shared by SHiP, SHiP++, Hawkeye, Glider, Mockingjay
and CARE.

All of these schemes learn from a small number of *sampled sets* to bound
metadata cost (the paper samples 64 LLC sets, Section V-G).  Sets are chosen
deterministically and spread uniformly across the index space.
"""

from __future__ import annotations

from typing import FrozenSet


def choose_sampled_sets(sets: int, target: int = 64) -> FrozenSet[int]:
    """Pick up to ``target`` sampled sets, uniformly strided.

    For small test caches (fewer than 2x ``target`` sets) every other set is
    sampled so learning still happens.
    """
    if sets <= 0:
        raise ValueError("sets must be positive")
    count = min(target, max(1, sets // 2)) if sets > 1 else 1
    stride = max(1, sets // count)
    chosen = frozenset(range(0, sets, stride))
    return frozenset(list(chosen)[:max(count, 1)]) if len(chosen) > count else chosen
