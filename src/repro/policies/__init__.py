"""LLC replacement policies: the paper's baselines and comparison schemes."""

from .base import PolicyAccess, ReplacementPolicy

__all__ = ["PolicyAccess", "ReplacementPolicy"]
