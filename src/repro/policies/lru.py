"""Least Recently Used replacement — the paper's baseline.

Implemented with per-block age counters (recency timestamps), the standard
"true LRU" that ChampSim's baseline uses and whose tag-store cost (4 bits per
block for 16 ways) appears in Table VI.
"""

from __future__ import annotations

from typing import List

from .base import PolicyAccess, ReplacementPolicy


class LRUPolicy(ReplacementPolicy):
    name = "lru"

    def __init__(self, sets: int, ways: int, seed: int = 0) -> None:
        super().__init__(sets, ways, seed)
        self._stamp = [[0] * ways for _ in range(sets)]
        self._clock = 0

    def _touch(self, set_idx: int, way: int) -> None:
        self._clock += 1
        self._stamp[set_idx][way] = self._clock

    def find_victim(self, set_idx: int, blocks, access: PolicyAccess) -> int:
        stamps = self._stamp[set_idx]
        victim = 0
        oldest = stamps[0]
        for way in range(1, self.ways):
            if stamps[way] < oldest:
                oldest = stamps[way]
                victim = way
        return victim

    def on_hit(self, set_idx: int, way: int, blocks, access: PolicyAccess) -> None:
        self._clock += 1
        self._stamp[set_idx][way] = self._clock

    def on_fill(self, set_idx: int, way: int, blocks, access: PolicyAccess) -> None:
        self._clock += 1
        self._stamp[set_idx][way] = self._clock

    def recency_order(self, set_idx: int) -> List[int]:
        """Ways ordered MRU -> LRU (test/diagnostic helper)."""
        stamps = self._stamp[set_idx]
        return sorted(range(self.ways), key=lambda w: -stamps[w])
