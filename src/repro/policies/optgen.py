"""OPTgen — online reconstruction of Belady's decisions (Jain & Lin, ISCA'16).

Hawkeye's key mechanism, reused by our Glider implementation: for a sampled
cache set, replay the access stream against a *liveness/occupancy vector* to
decide whether Belady's OPT would have hit each reuse.  If, over the
interval between two touches of the same block, the number of
simultaneously-live OPT intervals never reaches the set's associativity,
OPT would have kept the block (a hit) — otherwise it would not.

The verdict labels the *previous* access to the block (the access that chose
to keep or not keep it), which is what trains the PC predictor.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple


@dataclass
class OptLabel:
    """Training outcome for one re-reference in a sampled set."""

    pc: int            # PC of the previous access to the block
    hit: bool          # would OPT have hit this reuse?
    context: object    # opaque payload stored with the previous access


class OptGen:
    """Occupancy-vector OPT oracle for a single cache set."""

    def __init__(self, ways: int, window: Optional[int] = None) -> None:
        if ways < 1:
            raise ValueError("ways must be >= 1")
        self.ways = ways
        #: how many past accesses we can still reason about (Hawkeye: 8x assoc)
        self.window = window if window is not None else 8 * ways
        self._occupancy: Deque[int] = deque(maxlen=self.window)
        self._base = 0                       # stream position of occupancy[0]
        self._time = 0                       # per-set access counter
        # block tag -> (position, pc, context) of its most recent access
        self._last: Dict[int, Tuple[int, int, object]] = {}

    # ------------------------------------------------------------------
    def access(self, tag: int, pc: int, context: object = None) -> Optional[OptLabel]:
        """Record an access; return a label if this is a visible reuse."""
        label: Optional[OptLabel] = None
        prev = self._last.get(tag)
        if prev is not None:
            prev_pos, prev_pc, prev_ctx = prev
            if prev_pos >= self._base:
                start = prev_pos - self._base
                end = self._time - self._base
                interval = [self._occupancy[i] for i in range(start, end)]
                if all(level < self.ways for level in interval):
                    for i in range(start, end):
                        self._occupancy[i] += 1
                    label = OptLabel(pc=prev_pc, hit=True, context=prev_ctx)
                else:
                    label = OptLabel(pc=prev_pc, hit=False, context=prev_ctx)
            else:
                # Reuse distance exceeded the modeled window: OPT wouldn't
                # plausibly have held it; train negatively.
                label = OptLabel(pc=prev_pc, hit=False, context=prev_ctx)

        if len(self._occupancy) == self.window:
            self._base += 1                  # oldest slot falls out
        self._occupancy.append(0)
        self._last[tag] = (self._time, pc, context)
        self._time += 1
        self._trim()
        return label

    def _trim(self) -> None:
        """Drop address map entries that fell out of the window (bounds memory
        the way the real structure's 8x-associativity history does)."""
        if len(self._last) > 4 * self.window:
            cutoff = self._base
            self._last = {t: v for t, v in self._last.items() if v[0] >= cutoff}

    # ------------------------------------------------------------------
    @property
    def time(self) -> int:
        return self._time
