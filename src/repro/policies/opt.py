"""Belady's OPT (MIN) — the offline optimal upper bound (Section II-C).

OPT needs future knowledge, so it is only usable with the standalone
single-level simulator (:mod:`repro.harness.cachesim`), which precomputes
each access's next-use position and passes it via
``PolicyAccess.next_use``.  Attempting to use it in the timing simulator
(where the future is unknown) raises immediately rather than silently
degrading.
"""

from __future__ import annotations

from .base import PolicyAccess, ReplacementPolicy
from .registry import register

#: next_use sentinel for "never referenced again".
NEVER = 1 << 60


@register("opt")
class OPTPolicy(ReplacementPolicy):
    """Evict the block whose next use lies farthest in the future."""

    requires_future = True

    def __init__(self, sets: int, ways: int, seed: int = 0) -> None:
        super().__init__(sets, ways, seed)
        self._next_use = [[NEVER] * ways for _ in range(sets)]

    @staticmethod
    def _check(access: PolicyAccess) -> int:
        if access.next_use < 0:
            raise ValueError(
                "OPT requires future knowledge; run it through "
                "repro.harness.cachesim, not the timing simulator")
        return access.next_use

    def find_victim(self, set_idx: int, blocks, access: PolicyAccess) -> int:
        nxt = self._next_use[set_idx]
        return max(range(self.ways), key=lambda w: (nxt[w], -w))

    def on_hit(self, set_idx: int, way: int, blocks, access: PolicyAccess) -> None:
        self._next_use[set_idx][way] = self._check(access)

    def on_fill(self, set_idx: int, way: int, blocks, access: PolicyAccess) -> None:
        self._next_use[set_idx][way] = self._check(access)
