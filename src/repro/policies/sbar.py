"""SBAR — MLP-aware cache replacement (Qureshi et al., ISCA'06).

The cost-based baseline the paper contrasts PMC against (Sections II-A and
III-B).  Each block stores a quantized *MLP-based cost*: the miss that
fetched it accumulated ``1/N`` per miss cycle over the ``N`` concurrently
outstanding misses, so isolated misses are expensive and overlapped misses
cheap.  The *LIN* policy evicts the block minimizing
``recency_rank + weight * quantized_cost``; SBAR (Sampling Based Adaptive
Replacement) set-duels LIN against plain LRU and follows the winner, which
protects workloads whose cost estimates misbehave.
"""

from __future__ import annotations

from typing import List

from .base import PolicyAccess, ReplacementPolicy
from .dueling import SetDuel
from .registry import register


def quantize_mlp_cost(cost: float, quantum: float = 60.0,
                      max_level: int = 7) -> int:
    """3-bit cost quantization (cost levels 0..7), as in the MLP paper."""
    if cost < 0:
        raise ValueError(f"negative MLP cost {cost}")
    return min(int(cost // quantum), max_level)


@register("sbar")
class SBARPolicy(ReplacementPolicy):
    """Linear (recency + cost) victim selection with LRU set-dueling."""

    def __init__(self, sets: int, ways: int, seed: int = 0,
                 cost_weight: int = 1, cost_quantum: float = 60.0,
                 leaders_per_policy: int = 32) -> None:
        super().__init__(sets, ways, seed)
        self.cost_weight = cost_weight
        self.cost_quantum = cost_quantum
        self._stamp = [[0] * ways for _ in range(sets)]
        self._cost = [[0] * ways for _ in range(sets)]
        self._clock = 0
        self.duel = SetDuel(sets, leaders_per_policy, seed=seed)

    # ------------------------------------------------------------------
    def _touch(self, set_idx: int, way: int) -> None:
        self._clock += 1
        self._stamp[set_idx][way] = self._clock

    def _recency_ranks(self, set_idx: int) -> List[int]:
        """Rank 0 = LRU ... ways-1 = MRU."""
        stamps = self._stamp[set_idx]
        order = sorted(range(self.ways), key=lambda w: stamps[w])
        ranks = [0] * self.ways
        for rank, way in enumerate(order):
            ranks[way] = rank
        return ranks

    # ------------------------------------------------------------------
    def find_victim(self, set_idx: int, blocks, access: PolicyAccess) -> int:
        use_lin = self.duel.choose(set_idx) == SetDuel.ROLE_A
        ranks = self._recency_ranks(set_idx)
        if not use_lin:
            return ranks.index(0)       # plain LRU victim
        costs = self._cost[set_idx]
        return min(
            range(self.ways),
            key=lambda w: (ranks[w] + self.cost_weight * costs[w], w),
        )

    def on_hit(self, set_idx: int, way: int, blocks, access: PolicyAccess) -> None:
        self._touch(set_idx, way)

    def on_fill(self, set_idx: int, way: int, blocks, access: PolicyAccess) -> None:
        self.duel.on_miss(set_idx)
        self._touch(set_idx, way)
        if access.is_writeback:
            self._cost[set_idx][way] = 0
        else:
            self._cost[set_idx][way] = quantize_mlp_cost(
                access.mlp_cost, self.cost_quantum)
