"""Replacement-policy interface shared by every scheme in the study.

The hooks mirror ChampSim's replacement API (which the paper's artifact
targets): victim selection on a miss, an update on every hit, an update on
every fill, and a notification when a valid block is evicted.  The LLC passes
concurrency measurements (the served miss's PMC and MLP-based cost) into
``on_fill`` so that CARE, M-CARE and SBAR can consume them; locality-only
policies simply ignore those fields.
"""

from __future__ import annotations

import random
from typing import List

from ..sim.request import AccessType


class PolicyAccess:
    """Everything a policy may look at for one access.

    ``pmc`` / ``mlp_cost`` / ``was_pure`` are only meaningful in ``on_fill``
    for demand/prefetch misses (they describe the miss that fetched the
    block); they are zero for writeback fills.

    A ``__slots__`` class rather than a dataclass: one is constructed per
    hit and two per fill, which puts construction on the simulator's hot
    path.
    """

    __slots__ = ("pc", "addr", "core", "rtype", "prefetch", "pmc",
                 "mlp_cost", "was_pure", "instr_during_miss", "next_use")

    def __init__(self, pc: int, addr: int, core: int, rtype: AccessType,
                 prefetch: bool = False, pmc: float = 0.0,
                 mlp_cost: float = 0.0, was_pure: bool = False,
                 instr_during_miss: int = 0, next_use: int = -1) -> None:
        self.pc = pc
        self.addr = addr
        self.core = core
        self.rtype = rtype
        self.prefetch = prefetch    # block being filled by / hit by a prefetch
        self.pmc = pmc
        self.mlp_cost = mlp_cost
        self.was_pure = was_pure
        self.instr_during_miss = instr_during_miss  # instrs issued during miss
        self.next_use = next_use    # future knowledge (standalone sim; OPT)

    @property
    def is_writeback(self) -> bool:
        return self.rtype == AccessType.WRITEBACK

    @property
    def is_demand(self) -> bool:
        return self.rtype in (AccessType.LOAD, AccessType.RFO)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PolicyAccess(pc={self.pc:#x}, addr={self.addr:#x}, "
                f"core={self.core}, rtype={self.rtype!r})")


class ReplacementPolicy:
    """Base class; concrete schemes override the four hooks."""

    #: registry key; subclasses set this
    name = "base"

    def __init__(self, sets: int, ways: int, seed: int = 0) -> None:
        if sets < 1 or ways < 1:
            raise ValueError("sets and ways must be >= 1")
        self.sets = sets
        self.ways = ways
        self.rng = random.Random(seed ^ 0x5EED)

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def find_victim(self, set_idx: int, blocks: List["CacheBlock"],
                    access: PolicyAccess) -> int:
        """Pick the way to evict.  Called only when the set is full of valid
        blocks (the cache uses invalid ways first)."""
        raise NotImplementedError

    def on_hit(self, set_idx: int, way: int, blocks: List["CacheBlock"],
               access: PolicyAccess) -> None:
        """An access hit ``blocks[way]``."""

    def on_fill(self, set_idx: int, way: int, blocks: List["CacheBlock"],
                access: PolicyAccess) -> None:
        """A new block was just installed in ``blocks[way]``."""

    def on_evict(self, set_idx: int, way: int, blocks: List["CacheBlock"],
                 access: PolicyAccess) -> None:
        """``blocks[way]`` (still valid) is about to be replaced."""

    # ------------------------------------------------------------------
    def check_way(self, way: int) -> int:
        if not 0 <= way < self.ways:
            raise ValueError(f"{self.name}: victim way {way} out of range")
        return way


__all__ = ["PolicyAccess", "ReplacementPolicy"]
