"""SRRIP — Static Re-Reference Interval Prediction (Jaleel et al., ISCA'10).

The 2-bit RRPV scheme the paper cites as the foundation of SHiP/SHiP++ and
therefore of CARE's own EPV machinery: insert at "long" re-reference interval
(RRPV = max-1), promote to 0 on hit, evict any block at RRPV max (aging the
whole set until one exists).
"""

from __future__ import annotations

from typing import List

from .base import PolicyAccess, ReplacementPolicy
from .registry import register


class RRIPBase(ReplacementPolicy):
    """Shared RRPV array + victim-search used by the whole RRIP family."""

    def __init__(self, sets: int, ways: int, seed: int = 0,
                 rrpv_bits: int = 2) -> None:
        super().__init__(sets, ways, seed)
        self.rrpv_max = (1 << rrpv_bits) - 1
        self.rrpv: List[List[int]] = [
            [self.rrpv_max] * ways for _ in range(sets)
        ]

    def find_victim(self, set_idx: int, blocks, access: PolicyAccess) -> int:
        """Evict the first block at RRPV max, aging the set as needed."""
        rrpv = self.rrpv[set_idx]
        while True:
            for way in range(self.ways):
                if rrpv[way] >= self.rrpv_max:
                    return way
            for way in range(self.ways):
                rrpv[way] += 1

    def on_hit(self, set_idx: int, way: int, blocks, access: PolicyAccess) -> None:
        self.rrpv[set_idx][way] = 0


@register("srrip")
class SRRIPPolicy(RRIPBase):
    """Static insertion at RRPV = max-1 ("long" interval)."""

    def on_fill(self, set_idx: int, way: int, blocks, access: PolicyAccess) -> None:
        self.rrpv[set_idx][way] = self.rrpv_max - 1


@register("brrip")
class BRRIPPolicy(RRIPBase):
    """Bimodal insertion: distant (max) most of the time, long occasionally.

    The thrash-resistant component of DRRIP."""

    def __init__(self, sets: int, ways: int, seed: int = 0,
                 rrpv_bits: int = 2, long_probability: float = 1 / 32) -> None:
        super().__init__(sets, ways, seed, rrpv_bits)
        self.long_probability = long_probability

    def on_fill(self, set_idx: int, way: int, blocks, access: PolicyAccess) -> None:
        if self.rng.random() < self.long_probability:
            self.rrpv[set_idx][way] = self.rrpv_max - 1
        else:
            self.rrpv[set_idx][way] = self.rrpv_max
