"""Name → policy factory registry.

Every scheme evaluated in the paper (plus the classical policies they build
on and testing aids like Belady-OPT for the standalone simulator) registers
here.  ``make_policy`` instantiates by name; extra keyword arguments flow to
the policy constructor so experiment code can override scheme parameters.
"""

from __future__ import annotations

import inspect
import logging
from typing import Callable, Dict, FrozenSet, List, Set, Tuple

from .base import ReplacementPolicy

log = logging.getLogger(__name__)

_REGISTRY: Dict[str, Callable[..., ReplacementPolicy]] = {}

#: uniform-context keys the System passes to *every* policy; schemes that
#: don't take them may drop them silently (that is the whole point of the
#: uniform context, not a caller mistake worth warning about).
CONTEXT_KWARGS: FrozenSet[str] = frozenset({"n_cores"})

_warned_drops: Set[Tuple[str, FrozenSet[str]]] = set()


def register(name: str):
    """Class decorator: register a policy under ``name``."""

    def deco(cls):
        if name in _REGISTRY:
            raise ValueError(f"policy {name!r} already registered")
        _REGISTRY[name] = cls
        cls.name = name
        return cls

    return deco


def available_policies() -> List[str]:
    _ensure_loaded()
    return sorted(_REGISTRY)


def make_policy(name: str, sets: int, ways: int, seed: int = 0,
                **kwargs) -> ReplacementPolicy:
    """Instantiate the policy registered under ``name``.

    Keyword arguments not accepted by the policy's constructor (e.g.
    ``n_cores`` for single-core-agnostic policies) are dropped, so the
    System can pass a uniform context to every scheme.  Dropping anything
    *outside* that uniform context (``CONTEXT_KWARGS``) is almost always a
    misspelled scheme-parameter override.

    .. deprecated::
        The silent-drop path for non-context kwargs is deprecated: it now
        emits a :class:`DeprecationWarning` (once per (policy,
        argument-set) combination) and will become a ``TypeError``.  Pass
        only kwargs the policy accepts, or fix the spelling.
    """
    _ensure_loaded()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; available: {available_policies()}"
        ) from None
    params = inspect.signature(factory.__init__).parameters
    accepts_var = any(p.kind == inspect.Parameter.VAR_KEYWORD
                      for p in params.values())
    if not accepts_var:
        dropped = frozenset(kwargs) - set(params) - CONTEXT_KWARGS
        if dropped and (name, dropped) not in _warned_drops:
            _warned_drops.add((name, dropped))
            import warnings
            warnings.warn(
                f"policy {name!r} does not accept constructor kwargs "
                f"{sorted(dropped)}; relying on make_policy to drop them "
                "is deprecated and will become a TypeError — remove or "
                "fix the argument",
                DeprecationWarning, stacklevel=2)
            log.warning(
                "policy %r does not accept constructor kwargs %s; "
                "they are ignored", name, sorted(dropped))
        kwargs = {k: v for k, v in kwargs.items() if k in params}
    return factory(sets, ways, seed=seed, **kwargs)


_loaded = False


def _ensure_loaded() -> None:
    """Import every policy module once so decorators run."""
    global _loaded
    if _loaded:
        return
    _loaded = True
    from . import (  # noqa: F401
        fifo, lfu, lru, random_policy, srrip, drrip, dip, rlr, eaf,
        ship, shippp, sbar, lacs, hawkeye, glider, mockingjay, opt,
    )
    from ..core import care, mcare  # noqa: F401
    # Register classical policies that predate the decorator.
    from .lru import LRUPolicy
    if "lru" not in _REGISTRY:
        _REGISTRY["lru"] = LRUPolicy
