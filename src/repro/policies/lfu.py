"""Least Frequently Used with periodic decay (testing/ablation baseline)."""

from __future__ import annotations

from .base import PolicyAccess, ReplacementPolicy
from .registry import register


@register("lfu")
class LFUPolicy(ReplacementPolicy):
    """Saturating per-block frequency counters, halved every ``decay_period``
    fills to track phase changes."""

    def __init__(self, sets: int, ways: int, seed: int = 0,
                 max_count: int = 255, decay_period: int = 4096) -> None:
        super().__init__(sets, ways, seed)
        self.max_count = max_count
        self.decay_period = decay_period
        self._count = [[0] * ways for _ in range(sets)]
        self._fills = 0

    def find_victim(self, set_idx: int, blocks, access: PolicyAccess) -> int:
        counts = self._count[set_idx]
        return min(range(self.ways), key=lambda w: counts[w])

    def on_hit(self, set_idx: int, way: int, blocks, access: PolicyAccess) -> None:
        c = self._count[set_idx]
        c[way] = min(c[way] + 1, self.max_count)

    def on_fill(self, set_idx: int, way: int, blocks, access: PolicyAccess) -> None:
        self._count[set_idx][way] = 1
        self._fills += 1
        if self._fills % self.decay_period == 0:
            for counts in self._count:
                for w in range(self.ways):
                    counts[w] >>= 1
