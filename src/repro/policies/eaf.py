"""EAF — Evicted-Address Filter (Seshadri et al., PACT'12), the paper's
citation [39]: one mechanism against both pollution and thrashing.

Recently evicted block addresses are remembered in a filter sized about one
cache's worth of blocks.  On a miss:

* address **in the filter** → the block was evicted prematurely (high
  reuse): insert at MRU and drop it from the filter,
* address **not in the filter** → likely low reuse: insert bimodally (BIP)
  so streams can't thrash the cache.

The hardware uses a Bloom filter cleared periodically; we model the
Bloom-filter variant directly (bounded bits, false positives and all).
"""

from __future__ import annotations

from .base import PolicyAccess
from .dip import _RecencyBase
from .registry import register
from ..core.signatures import hash_pc


class BloomFilter:
    """Small counting-free Bloom filter with periodic whole-filter reset."""

    def __init__(self, bits: int = 4096, hashes: int = 2,
                 reset_after: int = 2048) -> None:
        if bits < 8 or hashes < 1:
            raise ValueError("bad Bloom filter geometry")
        self.bits = bits
        self.hashes = hashes
        self.reset_after = reset_after
        self._array = bytearray(bits)
        self._inserted = 0

    def _positions(self, key: int):
        for i in range(self.hashes):
            yield hash_pc(key * (i * 2 + 1) + 0x9E37, 24) % self.bits

    def insert(self, key: int) -> None:
        for pos in self._positions(key):
            self._array[pos] = 1
        self._inserted += 1
        if self._inserted >= self.reset_after:
            self._array = bytearray(self.bits)
            self._inserted = 0

    def test(self, key: int) -> bool:
        return all(self._array[pos] for pos in self._positions(key))


@register("eaf")
class EAFPolicy(_RecencyBase):
    def __init__(self, sets: int, ways: int, seed: int = 0,
                 epsilon: float = 1 / 32,
                 filter_bits: int = 0) -> None:
        super().__init__(sets, ways, seed)
        self.epsilon = epsilon
        # Filter sized ~8 bits per cache block by default (EAF paper sizes
        # the filter to one cache of addresses).
        bits = filter_bits if filter_bits else max(64, 8 * sets * ways)
        self.filter = BloomFilter(bits=bits, reset_after=sets * ways)
        self._block = [[-1] * ways for _ in range(sets)]

    def on_evict(self, set_idx: int, way: int, blocks, access: PolicyAccess) -> None:
        block = self._block[set_idx][way]
        if block >= 0:
            self.filter.insert(block)

    def on_fill(self, set_idx: int, way: int, blocks, access: PolicyAccess) -> None:
        block = access.addr >> 6
        self._block[set_idx][way] = block
        if self.filter.test(block):
            # Recently evicted and wanted again: it has reuse.
            self._insert_mru(set_idx, way)
        elif self.rng.random() < self.epsilon:
            self._insert_mru(set_idx, way)
        else:
            self._insert_lru(set_idx, way)
