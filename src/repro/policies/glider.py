"""Glider (Shi et al., MICRO'19) — ISVM-based cache-friendliness prediction.

The paper's machine-learning comparison scheme.  Glider's offline LSTM study
distilled into hardware: per load PC, an Integer Support Vector Machine over
the core's recent *PC history register* (PCHR) predicts whether the access
is cache-friendly.  Training labels come from the same OPTgen reconstruction
Hawkeye uses; cache management also mirrors Hawkeye's 0/7 age scheme (which
is how the original artifact behaves).

Implementation notes (faithful to the published design, simplified sizes):

* PCHR: the last ``history`` load PCs per core.
* Per-PC ISVM: 16 integer weights; each history element hashes to one
  weight; the prediction is the sum over the history's weights.
* Training uses a margin: weights only update while the running sum is
  below the training threshold, which is what keeps ISVMs from saturating.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Tuple

from .base import PolicyAccess, ReplacementPolicy
from .optgen import OptGen
from .registry import register
from .sampling import choose_sampled_sets
from ..core.signatures import hash_pc

_WEIGHTS_PER_ISVM = 16
_WEIGHT_MAX = 15
_WEIGHT_MIN = -16


class ISVMTable:
    """One small integer SVM per load PC."""

    def __init__(self, max_pcs: int = 2048,
                 predict_threshold: int = 0,
                 train_threshold: int = 30) -> None:
        self.max_pcs = max_pcs
        self.predict_threshold = predict_threshold
        self.train_threshold = train_threshold
        self._tables: Dict[int, List[int]] = {}

    def _table(self, pc: int) -> List[int]:
        key = hash_pc(pc, 16) % self.max_pcs
        table = self._tables.get(key)
        if table is None:
            table = [0] * _WEIGHTS_PER_ISVM
            self._tables[key] = table
        return table

    @staticmethod
    def _indices(history: Tuple[int, ...]) -> List[int]:
        return [h % _WEIGHTS_PER_ISVM for h in history]

    def raw_sum(self, pc: int, history: Tuple[int, ...]) -> int:
        table = self._table(pc)
        return sum(table[i] for i in self._indices(history))

    def friendly(self, pc: int, history: Tuple[int, ...]) -> bool:
        return self.raw_sum(pc, history) >= self.predict_threshold

    def train(self, pc: int, history: Tuple[int, ...], hit: bool) -> None:
        table = self._table(pc)
        total = self.raw_sum(pc, history)
        if hit:
            if total < self.train_threshold:
                for i in self._indices(history):
                    table[i] = min(table[i] + 1, _WEIGHT_MAX)
        else:
            if total > -self.train_threshold:
                for i in self._indices(history):
                    table[i] = max(table[i] - 1, _WEIGHT_MIN)


@register("glider")
class GliderPolicy(ReplacementPolicy):
    MAX_AGE = 7

    def __init__(self, sets: int, ways: int, seed: int = 0,
                 n_cores: int = 1, history: int = 5,
                 sampled_target: int = 64) -> None:
        super().__init__(sets, ways, seed)
        self.isvm = ISVMTable()
        self.history_len = history
        self._pchr: List[Deque[int]] = [
            deque(maxlen=history) for _ in range(max(1, n_cores))
        ]
        self.sampled = choose_sampled_sets(sets, sampled_target)
        self._optgen: Dict[int, OptGen] = {s: OptGen(ways) for s in self.sampled}
        self._age: List[List[int]] = [[self.MAX_AGE] * ways for _ in range(sets)]
        # Fill PC + history snapshot per block, for forced-eviction detraining
        # (same corrective feedback Hawkeye applies to its predictor).
        self._pc: List[List[int]] = [[0] * ways for _ in range(sets)]
        self._hist: List[List[Tuple[int, ...]]] = [
            [()] * ways for _ in range(sets)]

    # ------------------------------------------------------------------
    def _history(self, core: int) -> Tuple[int, ...]:
        if core >= len(self._pchr):            # defensive: unknown core
            core = 0
        return tuple(self._pchr[core])

    def _observe(self, access: PolicyAccess) -> Tuple[int, ...]:
        """Snapshot the PCHR for this access, then push the PC into it."""
        core = access.core if access.core < len(self._pchr) else 0
        snapshot = tuple(self._pchr[core])
        self._pchr[core].append(hash_pc(access.pc, 16))
        return snapshot

    def _sample(self, set_idx: int, access: PolicyAccess,
                history: Tuple[int, ...]) -> None:
        if set_idx not in self.sampled:
            return
        label = self._optgen[set_idx].access(
            access.addr >> 6, access.pc, context=history)
        if label is not None:
            self.isvm.train(label.pc, label.context, label.hit)

    def _update(self, set_idx: int, way: int, access: PolicyAccess,
                filling: bool) -> None:
        history = self._observe(access)
        self._sample(set_idx, access, history)
        self._pc[set_idx][way] = access.pc
        self._hist[set_idx][way] = history
        ages = self._age[set_idx]
        if self.isvm.friendly(access.pc, history):
            ages[way] = 0
            if filling:
                for w in range(self.ways):
                    if w != way and ages[w] < self.MAX_AGE - 1:
                        ages[w] += 1
        else:
            ages[way] = self.MAX_AGE

    # ------------------------------------------------------------------
    def find_victim(self, set_idx: int, blocks, access: PolicyAccess) -> int:
        ages = self._age[set_idx]
        for way in range(self.ways):
            if ages[way] == self.MAX_AGE:
                return way
        # No cache-averse block: evicting a predicted-friendly block means
        # the prediction was wrong; detrain its ISVM.
        victim = max(range(self.ways), key=lambda w: (ages[w], -w))
        self.isvm.train(self._pc[set_idx][victim],
                        self._hist[set_idx][victim], hit=False)
        return victim

    def on_hit(self, set_idx: int, way: int, blocks, access: PolicyAccess) -> None:
        if access.is_writeback:
            return
        self._update(set_idx, way, access, filling=False)

    def on_fill(self, set_idx: int, way: int, blocks, access: PolicyAccess) -> None:
        if access.is_writeback:
            self._age[set_idx][way] = self.MAX_AGE
            return
        self._update(set_idx, way, access, filling=True)
