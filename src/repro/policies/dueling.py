"""Set dueling (Qureshi et al., DIP) — shared by DRRIP, SBAR and friends.

A small number of *leader sets* are hard-wired to each competing policy; a
saturating PSEL counter tallies which leader group misses less, and all
*follower sets* adopt the winner.  This is the adaptivity mechanism the
paper's baselines (DRRIP, SBAR) rely on.
"""

from __future__ import annotations

import random
from typing import List


class SetDuel:
    """Two-way set dueling over ``sets`` cache sets."""

    ROLE_A = 0
    ROLE_B = 1
    FOLLOWER = -1

    def __init__(self, sets: int, leaders_per_policy: int = 32,
                 psel_bits: int = 10, seed: int = 0) -> None:
        leaders_per_policy = min(leaders_per_policy, max(1, sets // 2))
        rng = random.Random(seed ^ 0xD0E1)
        chosen = rng.sample(range(sets), 2 * leaders_per_policy)
        self._role: List[int] = [self.FOLLOWER] * sets
        for s in chosen[:leaders_per_policy]:
            self._role[s] = self.ROLE_A
        for s in chosen[leaders_per_policy:]:
            self._role[s] = self.ROLE_B
        self._psel_max = (1 << psel_bits) - 1
        self._psel = self._psel_max // 2

    def role(self, set_idx: int) -> int:
        return self._role[set_idx]

    def on_miss(self, set_idx: int) -> None:
        """Account a miss: a miss in a leader set votes against its policy."""
        role = self._role[set_idx]
        if role == self.ROLE_A:
            self._psel = min(self._psel + 1, self._psel_max)
        elif role == self.ROLE_B:
            self._psel = max(self._psel - 1, 0)

    def choose(self, set_idx: int) -> int:
        """Which policy governs this set right now (ROLE_A or ROLE_B)."""
        role = self._role[set_idx]
        if role != self.FOLLOWER:
            return role
        # High PSEL means policy A has been missing more: follow B.
        return self.ROLE_B if self._psel > self._psel_max // 2 else self.ROLE_A

    @property
    def psel(self) -> int:
        return self._psel
