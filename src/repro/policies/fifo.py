"""First-in first-out replacement (testing/ablation baseline)."""

from __future__ import annotations

from .base import PolicyAccess, ReplacementPolicy
from .registry import register


@register("fifo")
class FIFOPolicy(ReplacementPolicy):
    """Evict the oldest-filled block; hits do not refresh age."""

    def __init__(self, sets: int, ways: int, seed: int = 0) -> None:
        super().__init__(sets, ways, seed)
        self._fill_stamp = [[0] * ways for _ in range(sets)]
        self._clock = 0

    def find_victim(self, set_idx: int, blocks, access: PolicyAccess) -> int:
        stamps = self._fill_stamp[set_idx]
        return min(range(self.ways), key=lambda w: stamps[w])

    def on_fill(self, set_idx: int, way: int, blocks, access: PolicyAccess) -> None:
        self._clock += 1
        self._fill_stamp[set_idx][way] = self._clock
