"""DIP — Dynamic Insertion Policy (Qureshi et al., ISCA'07; the paper's
citation [33] for adaptive insertion and set sampling).

* **LIP** (LRU Insertion Policy): insert at the *LRU* position instead of
  MRU, so one-shot blocks fall out immediately; a hit promotes to MRU.
* **BIP** (Bimodal Insertion Policy): LIP, but with small probability
  epsilon insert at MRU — retains a thrash-resistant subset.
* **DIP**: set-duel LIP/BIP... historically BIP vs LRU; we duel the
  classical pairing (LRU vs BIP) with follower sets taking the winner.
"""

from __future__ import annotations

from .base import PolicyAccess, ReplacementPolicy
from .dueling import SetDuel
from .registry import register


class _RecencyBase(ReplacementPolicy):
    """Timestamp recency machinery shared by the DIP family."""

    def __init__(self, sets: int, ways: int, seed: int = 0) -> None:
        super().__init__(sets, ways, seed)
        self._stamp = [[0] * ways for _ in range(sets)]
        self._clock = 0

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def _insert_mru(self, set_idx: int, way: int) -> None:
        self._stamp[set_idx][way] = self._tick()

    def _insert_lru(self, set_idx: int, way: int) -> None:
        """Place at the cold end: older than everything resident."""
        self._tick()
        stamps = self._stamp[set_idx]
        coldest = min(stamps)
        self._stamp[set_idx][way] = coldest - 1

    def find_victim(self, set_idx: int, blocks, access: PolicyAccess) -> int:
        stamps = self._stamp[set_idx]
        return min(range(self.ways), key=lambda w: (stamps[w], w))

    def on_hit(self, set_idx: int, way: int, blocks, access: PolicyAccess) -> None:
        self._insert_mru(set_idx, way)


@register("lip")
class LIPPolicy(_RecencyBase):
    """LRU Insertion Policy: every fill lands at the LRU position."""

    def on_fill(self, set_idx: int, way: int, blocks, access: PolicyAccess) -> None:
        self._insert_lru(set_idx, way)


@register("bip")
class BIPPolicy(_RecencyBase):
    """Bimodal Insertion: LIP with occasional MRU insertion."""

    def __init__(self, sets: int, ways: int, seed: int = 0,
                 epsilon: float = 1 / 32) -> None:
        super().__init__(sets, ways, seed)
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon out of range")
        self.epsilon = epsilon

    def on_fill(self, set_idx: int, way: int, blocks, access: PolicyAccess) -> None:
        if self.rng.random() < self.epsilon:
            self._insert_mru(set_idx, way)
        else:
            self._insert_lru(set_idx, way)


@register("dip")
class DIPPolicy(BIPPolicy):
    """Set-dueled LRU (role A) vs BIP (role B)."""

    def __init__(self, sets: int, ways: int, seed: int = 0,
                 epsilon: float = 1 / 32,
                 leaders_per_policy: int = 32) -> None:
        super().__init__(sets, ways, seed, epsilon)
        self.duel = SetDuel(sets, leaders_per_policy, seed=seed)

    def on_fill(self, set_idx: int, way: int, blocks, access: PolicyAccess) -> None:
        self.duel.on_miss(set_idx)
        if self.duel.choose(set_idx) == SetDuel.ROLE_A:
            self._insert_mru(set_idx, way)       # plain LRU insertion
        else:
            super().on_fill(set_idx, way, blocks, access)
