"""Interval metrics sampler attached through the engine watcher hook.

Every ``interval`` simulated cycles the sampler appends one row to a
:class:`~repro.obs.schema.MetricsTable`: per-core IPC, per-cache MPKI /
occupancy / MSHR pressure, DRAM bandwidth and row-hit rate, the PML's
PMC distribution, and the DTRM threshold state (when the LLC policy
carries one, i.e. CARE/M-CARE).  Interval rates are computed from
counter *deltas*; the warmup boundary replaces the stats objects
(``System._core_warm``), which the delta helper treats as a counter
reset rather than a negative rate.

The sampler registers via :meth:`Engine.add_watcher`, so it composes
with the runtime sanitizer, and — like the sanitizer — it only *reads*
state: sampled runs are byte-identical to plain ones (asserted by the
golden-equivalence suite).  The watcher fires on event counts; the
sampler polls ``engine.now`` every ``event_poll`` events and samples
when a cycle boundary has passed, so the cycle grid is approximate to
within one poll quantum.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .schema import MetricsTable

#: Engine events between watcher polls (each poll is one comparison in
#: the common case, so this can stay small for good cycle resolution).
DEFAULT_EVENT_POLL = 128


def _delta(cur: float, prev: float) -> float:
    """Counter delta tolerating the warm-boundary stats reset."""
    d = cur - prev
    return d if d >= 0 else cur


class MetricsSampler:
    """Columnar time-series collector over one :class:`System`."""

    def __init__(self, system: Any, interval: int,
                 event_poll: int = DEFAULT_EVENT_POLL) -> None:
        if interval < 1:
            raise ValueError("metrics interval must be >= 1 cycle")
        self.system = system
        self.engine = system.engine
        self.interval = int(interval)
        self.event_poll = int(event_poll)
        self._poll_cb = self.poll
        self._next = ((self.engine.now // self.interval) + 1) * self.interval
        self._last_cycle = -1

        self.cores = list(system.cores)
        #: (column prefix, cache, core index or None for shared)
        self.caches: List[Tuple[str, Any, Optional[int]]] = (
            [("LLC", system.llc, None)]
            + [(l1.name, l1, i) for i, l1 in enumerate(system.l1s)]
            + [(l2.name, l2, i) for i, l2 in enumerate(system.l2s)])
        self.dtrm = getattr(system.llc_policy, "dtrm", None)

        columns: Dict[str, List[Any]] = {"cycle": [], "events": []}
        for i in range(len(self.cores)):
            columns[f"core{i}_ipc"] = []
        for name, _cache, _core in self.caches:
            columns[f"{name}_mpki"] = []
            columns[f"{name}_occ"] = []
            columns[f"{name}_mshr"] = []
        for key in ("dram_bw_bpc", "dram_row_hit_rate",
                    "pmc_mean", "pmr", "pmc_outstanding"):
            columns[key] = []
        from ..core.pmc import PMC_NUM_BINS
        for b in range(PMC_NUM_BINS):
            columns[f"pmc_bin{b}"] = []
        for key in ("dtrm_low", "dtrm_high", "dtrm_costly_share"):
            columns[key] = []
        self.table = MetricsTable(
            interval=self.interval, columns=columns,
            meta={
                "n_cores": len(self.cores),
                "caches": [name for name, _c, _i in self.caches],
                "policy": getattr(system.llc_policy, "name",
                                  type(system.llc_policy).__name__),
                "event_poll": self.event_poll,
                "has_dtrm": self.dtrm is not None,
            })

        # Previous-sample counter values for interval deltas ------------
        self._prev_cycle = self.engine.now
        self._prev_retired = [c.retired_instructions for c in self.cores]
        self._prev_instr = [c.dispatched_instructions for c in self.cores]
        self._prev_misses = [self._demand_misses(c) for _n, c, _i in self.caches]
        d = system.dram.stats
        self._prev_dram = (d.reads, d.writes, d.row_hits, d.row_misses)

    # ------------------------------------------------------------------
    # Engine hookup (same shape as the sanitizer)
    # ------------------------------------------------------------------
    def install(self) -> "MetricsSampler":
        self.engine.add_watcher(self._poll_cb, self.event_poll)
        return self

    def uninstall(self) -> None:
        self.engine.remove_watcher(self._poll_cb)

    # ------------------------------------------------------------------
    @staticmethod
    def _demand_misses(cache: Any) -> int:
        misses = cache.stats.misses
        return misses[0] + misses[1]        # LOAD + RFO (AccessType values)

    def poll(self) -> None:
        """Watcher body: sample when a cycle boundary has passed."""
        now = self.engine.now
        if now < self._next:
            return
        self.sample(now)
        self._next = ((now // self.interval) + 1) * self.interval

    def finalize(self) -> None:
        """Emit one last row at the final simulated cycle."""
        now = self.engine.now
        if now != self._last_cycle:
            self.sample(now)

    # ------------------------------------------------------------------
    def sample(self, now: int) -> None:
        """Append one row of interval metrics at cycle ``now``."""
        cols = self.table.columns
        dt = now - self._prev_cycle
        cols["cycle"].append(now)
        cols["events"].append(self.engine.events_processed)

        for i, core in enumerate(self.cores):
            retired = core.retired_instructions
            d_ret = _delta(retired, self._prev_retired[i])
            cols[f"core{i}_ipc"].append(
                round(d_ret / dt, 6) if dt > 0 else 0.0)
            self._prev_retired[i] = retired

        instr_now = [c.dispatched_instructions for c in self.cores]
        total_d_instr = sum(
            _delta(instr_now[i], self._prev_instr[i])
            for i in range(len(self.cores)))
        for idx, (name, cache, core_idx) in enumerate(self.caches):
            misses = self._demand_misses(cache)
            d_miss = _delta(misses, self._prev_misses[idx])
            self._prev_misses[idx] = misses
            if core_idx is None:
                d_instr = total_d_instr
            else:
                d_instr = _delta(instr_now[core_idx],
                                 self._prev_instr[core_idx])
            cols[f"{name}_mpki"].append(
                round(1000.0 * d_miss / d_instr, 6) if d_instr else 0.0)
            cfg = cache.cfg
            cols[f"{name}_occ"].append(
                round(sum(cache._valid_count) / (cfg.sets * cfg.ways), 6))
            cols[f"{name}_mshr"].append(
                round(len(cache.mshr._entries) / cache.mshr.capacity, 6))
        self._prev_instr = instr_now

        d = self.system.dram.stats
        reads, writes = d.reads, d.writes
        row_hits, row_misses = d.row_hits, d.row_misses
        d_xfers = (_delta(reads, self._prev_dram[0])
                   + _delta(writes, self._prev_dram[1]))
        d_hits = _delta(row_hits, self._prev_dram[2])
        d_rows = d_hits + _delta(row_misses, self._prev_dram[3])
        self._prev_dram = (reads, writes, row_hits, row_misses)
        cols["dram_bw_bpc"].append(
            round(64.0 * d_xfers / dt, 6) if dt > 0 else 0.0)
        cols["dram_row_hit_rate"].append(
            round(d_hits / d_rows, 6) if d_rows else 0.0)

        snap = self.system.monitor.snapshot()
        misses_total = snap["misses"]
        cols["pmc_mean"].append(
            round(snap["pmc_sum"] / misses_total, 6) if misses_total else 0.0)
        cols["pmr"].append(
            round(snap["pure_misses"] / snap["accesses"], 6)
            if snap["accesses"] else 0.0)
        cols["pmc_outstanding"].append(snap["outstanding"])
        for b, count in enumerate(snap["histogram"]):
            cols[f"pmc_bin{b}"].append(count)

        dtrm = self.dtrm
        if dtrm is None:
            cols["dtrm_low"].append(None)
            cols["dtrm_high"].append(None)
            cols["dtrm_costly_share"].append(None)
        else:
            state = dtrm.snapshot()
            cols["dtrm_low"].append(state["low"])
            cols["dtrm_high"].append(state["high"])
            total = state["total_misses"]
            cols["dtrm_costly_share"].append(
                round(state["total_costly"] / total, 6) if total else 0.0)

        self._prev_cycle = now
        self._last_cycle = now
