"""Observability configuration and the columnar metrics schema.

:class:`ObsConfig` is the single knob bundle for the layer: the CLI
builds one from ``--metrics-interval``/``--trace`` flags, and
:meth:`ExperimentSpec.execute` falls back to :func:`obs_from_env` so the
same knobs reach sweep *worker processes* through the environment
(``REPRO_METRICS_INTERVAL``, ``REPRO_TRACE``, ``REPRO_TRACE_SAMPLE``,
``REPRO_TRACE_LIMIT``, ``REPRO_OBS_DIR``) — mirroring how
``REPRO_SANITIZE`` propagates.  Everything is read lazily, never at
import time (SimSan SS104).

:class:`MetricsTable` is the sampler's output: a columnar time-series
(column name -> list of per-interval values, all the same length) plus a
``meta`` block describing the machine.  Columns are documented in
DESIGN.md §11; the JSON round trip is exact for the integer/float/None
values the sampler emits.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Optional

#: Bump when the metrics/trace JSON layout changes incompatibly.
OBS_SCHEMA_VERSION = 1

#: Default sampling interval in cycles when metrics are enabled without
#: an explicit interval (CLI ``--metrics-interval``).
DEFAULT_METRICS_INTERVAL = 10_000

#: Default event-tracer cap: emitted events beyond this are counted as
#: ``dropped`` instead of growing the payload without bound.
DEFAULT_TRACE_LIMIT = 200_000


@dataclass(frozen=True)
class ObsConfig:
    """Frozen observability knobs for one simulation.

    ``metrics_interval`` <= 0 disables the sampler; ``trace`` False
    disables the tracer.  ``trace_sample`` traces every Nth core demand
    request (1 = all).  ``out_dir`` (optional) is where
    ``<tag>.metrics.json`` / ``<tag>.trace.json`` land after the run.
    """

    metrics_interval: int = 0
    trace: bool = False
    trace_sample: int = 1
    trace_limit: int = DEFAULT_TRACE_LIMIT
    out_dir: Optional[str] = None
    tag: str = "run"

    def __post_init__(self) -> None:
        if self.trace_sample < 1:
            raise ValueError("trace_sample must be >= 1")
        if self.trace_limit < 1:
            raise ValueError("trace_limit must be >= 1")

    @property
    def enabled(self) -> bool:
        return self.trace or self.metrics_interval > 0

    def with_tag(self, tag: str) -> "ObsConfig":
        """Copy with ``tag`` replaced (slashes sanitized for filenames)."""
        return replace(self, tag=tag.replace("/", "-"))


def obs_from_env(env: Optional[Dict[str, str]] = None) -> Optional[ObsConfig]:
    """Build an :class:`ObsConfig` from the environment, or ``None``.

    Returns ``None`` unless at least one of ``REPRO_METRICS_INTERVAL`` /
    ``REPRO_TRACE`` enables something, so the common (unobserved) path
    costs one dict lookup per simulation.
    """
    import os
    e = os.environ if env is None else env

    def _int(name: str, default: int) -> int:
        raw = e.get(name, "").strip()
        try:
            return int(raw) if raw else default
        except ValueError:
            return default

    interval = _int("REPRO_METRICS_INTERVAL", 0)
    trace = str(e.get("REPRO_TRACE", "")).strip().lower() not in (
        "", "0", "off", "false", "no")
    if interval <= 0 and not trace:
        return None
    return ObsConfig(
        metrics_interval=max(0, interval),
        trace=trace,
        trace_sample=max(1, _int("REPRO_TRACE_SAMPLE", 1)),
        trace_limit=max(1, _int("REPRO_TRACE_LIMIT", DEFAULT_TRACE_LIMIT)),
        out_dir=e.get("REPRO_OBS_DIR") or None,
    )


@dataclass
class MetricsTable:
    """Columnar time-series: every column holds one value per sample row."""

    interval: int
    columns: Dict[str, List[Any]] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def n_rows(self) -> int:
        for values in self.columns.values():
            return len(values)
        return 0

    def column(self, name: str) -> List[Any]:
        return self.columns[name]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": OBS_SCHEMA_VERSION,
            "interval": self.interval,
            "meta": dict(self.meta),
            "columns": {name: list(values)
                        for name, values in self.columns.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MetricsTable":
        return cls(interval=data["interval"],
                   columns={k: list(v) for k, v in data["columns"].items()},
                   meta=dict(data.get("meta", {})))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "MetricsTable":
        return cls.from_dict(json.loads(text))


def write_outputs(obs: ObsConfig, sampler: Any, tracer: Any) -> List[Path]:
    """Persist the attached observers' payloads under ``obs.out_dir``."""
    if not obs.out_dir:
        return []
    out = Path(obs.out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths: List[Path] = []
    if sampler is not None:
        path = out / f"{obs.tag}.metrics.json"
        path.write_text(sampler.table.to_json() + "\n")
        paths.append(path)
    if tracer is not None:
        path = out / f"{obs.tag}.trace.json"
        tracer.write(path)
        paths.append(path)
    return paths
