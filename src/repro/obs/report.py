"""Run/sweep report generator over the persistent result store.

``python -m repro report`` walks every entry in the store's current
code-fingerprint namespace, groups the points the way the paper's
figures do — one *section* per (suite, core count, prefetch, preset),
one *row* per (workload/mix, records, seed) — and renders the headline
tables: per-workload speedup over the baseline policy (sum-IPC ratio,
LRU by default), MPKI with deltas vs. the baseline, and the PMC
breakdown (pMR, mean PMC, 8-bin histogram shares).  Output is markdown
(for humans and ``$GITHUB_STEP_SUMMARY``) or JSON (for tooling); both
come from the same :func:`build_report` dict.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..harness.spec import ExperimentSpec
from ..harness.store import ResultStore
from ..sim.stats import SimResult
from .schema import OBS_SCHEMA_VERSION

DEFAULT_BASELINE = "lru"


def _geomean(values: Sequence[float]) -> float:
    positives = [v for v in values if v > 0]
    if not positives:
        return 0.0
    return math.exp(sum(math.log(v) for v in positives) / len(positives))


def _policy_cell(result: SimResult) -> Dict[str, Any]:
    conc = result.conc_total
    mass = sum(conc.pmc_histogram)
    return {
        "sum_ipc": sum(result.ipc),
        "mpki": result.mpki(),
        "pmr": result.pmr,
        "mean_pmc": result.mean_pmc,
        "pmc_hist_share": [
            round(v / mass, 4) if mass else 0.0 for v in conc.pmc_histogram],
    }


def build_report(entries: Sequence[Tuple[ExperimentSpec, SimResult]],
                 baseline: str = DEFAULT_BASELINE) -> Dict[str, Any]:
    """Aggregate store entries into the report dict (see module doc)."""
    sections: Dict[Tuple, Dict[str, Any]] = {}
    for spec, result in entries:
        skey = (spec.suite, spec.n_cores, spec.prefetch, spec.preset)
        section = sections.setdefault(skey, {
            "suite": spec.suite, "n_cores": spec.n_cores,
            "prefetch": spec.prefetch, "preset": spec.preset,
            "rows": {}, "policies": []})
        if spec.policy not in section["policies"]:
            section["policies"].append(spec.policy)
        workload = (f"mix{spec.mix_id}" if spec.suite == "mix"
                    else spec.workload)
        rkey = (workload, spec.n_records, spec.seed)
        row = section["rows"].setdefault(rkey, {
            "workload": workload, "n_records": spec.n_records,
            "seed": spec.seed, "per_policy": {}})
        row["per_policy"][spec.policy] = _policy_cell(result)

    out_sections: List[Dict[str, Any]] = []
    for skey in sorted(sections):
        section = sections[skey]
        policies = sorted(
            section["policies"],
            key=lambda p: (p != baseline, p))  # baseline first, then name
        rows = [section["rows"][rk] for rk in sorted(section["rows"])]
        for row in rows:
            base_cell = row["per_policy"].get(baseline)
            for policy, cell in row["per_policy"].items():
                if base_cell is not None and base_cell["sum_ipc"] > 0:
                    cell["speedup"] = cell["sum_ipc"] / base_cell["sum_ipc"]
                    cell["mpki_delta"] = cell["mpki"] - base_cell["mpki"]
                else:
                    cell["speedup"] = None
                    cell["mpki_delta"] = None
        geomean = {}
        for policy in policies:
            speedups = [row["per_policy"][policy]["speedup"]
                        for row in rows
                        if policy in row["per_policy"]
                        and row["per_policy"][policy]["speedup"] is not None]
            geomean[policy] = _geomean(speedups) if speedups else None
        out_sections.append({
            "suite": section["suite"], "n_cores": section["n_cores"],
            "prefetch": section["prefetch"], "preset": section["preset"],
            "policies": policies, "workloads": rows,
            "geomean_speedup": geomean,
        })
    return {
        "schema": OBS_SCHEMA_VERSION,
        "baseline": baseline,
        "n_results": len(entries),
        "sections": out_sections,
    }


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _fmt(value: Optional[float], spec: str = ".3f") -> str:
    return format(value, spec) if value is not None else "-"


def render_markdown(report: Dict[str, Any]) -> str:
    lines: List[str] = ["# repro-care run report", ""]
    lines.append(f"{report['n_results']} stored result(s), "
                 f"baseline policy `{report['baseline']}`.")
    if not report["sections"]:
        lines.append("")
        lines.append("_The result store is empty for the current code "
                     "fingerprint — run a sweep first._")
        return "\n".join(lines) + "\n"
    for section in report["sections"]:
        pf = "on" if section["prefetch"] else "off"
        lines.append("")
        lines.append(f"## {section['suite']} suite · "
                     f"{section['n_cores']} core(s) · prefetch {pf} · "
                     f"preset `{section['preset']}`")
        policies = section["policies"]

        lines.append("")
        lines.append(f"### Speedup over {report['baseline']} "
                     "(sum-IPC ratio)")
        lines.append("| workload | " + " | ".join(policies) + " |")
        lines.append("|---" * (len(policies) + 1) + "|")
        for row in section["workloads"]:
            cells = [_fmt(row["per_policy"].get(p, {}).get("speedup"))
                     for p in policies]
            lines.append(f"| {row['workload']} | " + " | ".join(cells) + " |")
        geo = [_fmt(section["geomean_speedup"].get(p)) for p in policies]
        lines.append("| **geomean** | " + " | ".join(geo) + " |")

        lines.append("")
        lines.append(f"### MPKI (delta vs. {report['baseline']})")
        lines.append("| workload | " + " | ".join(policies) + " |")
        lines.append("|---" * (len(policies) + 1) + "|")
        for row in section["workloads"]:
            cells = []
            for p in policies:
                cell = row["per_policy"].get(p)
                if cell is None:
                    cells.append("-")
                elif p == report["baseline"] or cell["mpki_delta"] is None:
                    cells.append(f"{cell['mpki']:.2f}")
                else:
                    cells.append(
                        f"{cell['mpki']:.2f} ({cell['mpki_delta']:+.2f})")
            lines.append(f"| {row['workload']} | " + " | ".join(cells) + " |")

        lines.append("")
        lines.append("### PMC breakdown")
        lines.append("| workload | policy | pMR | mean PMC | "
                     "bin shares (8 x 50-cycle) |")
        lines.append("|---|---|---|---|---|")
        for row in section["workloads"]:
            for p in policies:
                cell = row["per_policy"].get(p)
                if cell is None:
                    continue
                shares = "/".join(
                    f"{100 * s:.0f}" for s in cell["pmc_hist_share"])
                lines.append(
                    f"| {row['workload']} | {p} | {cell['pmr']:.3f} | "
                    f"{cell['mean_pmc']:.1f} | {shares} |")
    return "\n".join(lines) + "\n"


def generate(store: ResultStore, fmt: str = "md",
             baseline: str = DEFAULT_BASELINE,
             policies: Optional[Sequence[str]] = None) -> str:
    """Load the store, build the report, and render it as ``md``/``json``."""
    entries = list(store.load_entries())
    if policies:
        wanted = set(policies)
        entries = [(s, r) for s, r in entries if s.policy in wanted]
    report = build_report(entries, baseline=baseline)
    if fmt == "json":
        return json.dumps(report, sort_keys=True, indent=2) + "\n"
    if fmt == "md":
        return render_markdown(report)
    raise ValueError(f"unknown report format {fmt!r} (use 'md' or 'json')")
