"""``repro.obs`` — structured observability for the simulator.

Three pieces (DESIGN.md §11):

* :class:`~repro.obs.sampler.MetricsSampler` — interval metrics
  time-series (per-core IPC, per-cache MPKI/occupancy/MSHR pressure,
  DRAM bandwidth, PMC distribution, DTRM thresholds), attached through
  :meth:`repro.sim.engine.Engine.add_watcher`.
* :class:`~repro.obs.tracer.ChromeTracer` — opt-in Chrome-trace-format
  request-lifecycle spans with deterministic sampling; open the output
  in Perfetto / ``chrome://tracing``.
* :mod:`repro.obs.report` — ``python -m repro report``: markdown/JSON
  summaries (speedup over LRU, MPKI deltas, PMC breakdowns) rendered
  from the persistent result store.

Both observers only *read* simulator state, so observed runs stay
byte-identical (the golden fixtures are asserted with them attached).
Configuration travels as a frozen :class:`~repro.obs.schema.ObsConfig`,
or through the environment for sweep workers
(``REPRO_METRICS_INTERVAL``, ``REPRO_TRACE``, ``REPRO_TRACE_SAMPLE``,
``REPRO_TRACE_LIMIT``, ``REPRO_OBS_DIR``).
"""

from .incidents import IncidentLog
from .sampler import MetricsSampler
from .schema import (MetricsTable, ObsConfig, OBS_SCHEMA_VERSION,
                     obs_from_env, write_outputs)
from .tracer import ChromeTracer

__all__ = [
    "ChromeTracer",
    "IncidentLog",
    "MetricsSampler",
    "MetricsTable",
    "ObsConfig",
    "OBS_SCHEMA_VERSION",
    "obs_from_env",
    "write_outputs",
]
