"""Chrome-trace-format event tracer for request lifecycles.

Emits the Trace Event Format consumed by ``chrome://tracing`` and
Perfetto: one complete (``"X"``) span per traced request per level it
visits (core ROB residency, L1 -> L2 -> LLC lookup-to-data, DRAM
bank/bus occupancy) and instant (``"i"``) markers for MSHR merges,
MSHR-full stalls, fills and evictions.  ``pid`` is the requesting core,
``tid`` the component name, timestamps are simulator cycles.

Design constraints (why it looks the way it does):

* **Byte-identical results.**  The tracer never touches simulator state:
  hooks read request/cache fields and append to Python lists.  The
  golden-equivalence suite runs with it attached.
* **Near-zero cost when off.**  Hook sites guard on
  ``req.trace`` — a plain slot read that is ``False`` for every request
  when no tracer is attached — so the hot path pays one attribute test.
* **Deterministic sampling.**  ``take()`` marks every Nth core demand
  request via a counter (no RNG, no wall clock), so two runs of the same
  spec produce the same trace.
* **Bounded output.**  After ``limit`` events, further emissions are
  counted in ``dropped`` instead of appended.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

from .schema import DEFAULT_TRACE_LIMIT, OBS_SCHEMA_VERSION

#: ``AccessType`` value -> span name (indexable by the IntEnum itself,
#: avoiding a sim import from the obs layer).
_RTYPE_NAMES = ("LOAD", "RFO", "PREFETCH", "WRITEBACK")


class ChromeTracer:
    """Collects Trace Event Format events for one simulation."""

    __slots__ = ("sample_rate", "limit", "events", "dropped", "sampled",
                 "considered", "_open", "_counter", "_pids")

    def __init__(self, sample_rate: int = 1,
                 limit: int = DEFAULT_TRACE_LIMIT) -> None:
        if sample_rate < 1:
            raise ValueError("sample_rate must be >= 1")
        if limit < 1:
            raise ValueError("limit must be >= 1")
        self.sample_rate = sample_rate
        self.limit = limit
        self.events: List[Dict[str, Any]] = []
        self.dropped = 0
        self.sampled = 0        # requests selected for tracing
        self.considered = 0     # requests offered to take()
        #: open span start cycles, keyed by (req_id, component name)
        self._open: Dict[Tuple[int, str], int] = {}
        self._counter = 0
        self._pids: List[int] = []

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def take(self) -> bool:
        """Deterministically decide whether to trace the next request."""
        count = self._counter
        self._counter = count + 1
        self.considered += 1
        if count % self.sample_rate == 0:
            self.sampled += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    @staticmethod
    def _cat(tid: str) -> str:
        if tid.startswith("core"):
            return "core"
        return "dram" if tid == "DRAM" else "cache"

    def _emit(self, event: Dict[str, Any]) -> None:
        if len(self.events) >= self.limit:
            self.dropped += 1
            return
        pid = event["pid"]
        if pid not in self._pids:
            self._pids.append(pid)
        self.events.append(event)

    def span_begin(self, req: Any, tid: str, ts: int) -> None:
        """Record that ``req`` entered component ``tid`` at cycle ``ts``."""
        self._open[(req.req_id, tid)] = ts

    def span_end(self, req: Any, tid: str, ts: int, **args: Any) -> None:
        """Close the open span for ``req`` at ``tid`` and emit it."""
        start = self._open.pop((req.req_id, tid), None)
        if start is None:
            return
        self._emit({
            "name": _RTYPE_NAMES[req.rtype], "cat": self._cat(tid),
            "ph": "X", "ts": start, "dur": ts - start,
            "pid": req.core, "tid": tid,
            "args": dict(args, req=req.req_id, block=hex(req.block)),
        })

    def complete(self, req: Any, tid: str, ts: int, dur: int,
                 **args: Any) -> None:
        """Emit a span whose start and duration are both known now."""
        self._emit({
            "name": _RTYPE_NAMES[req.rtype], "cat": self._cat(tid),
            "ph": "X", "ts": ts, "dur": dur,
            "pid": req.core, "tid": tid,
            "args": dict(args, req=req.req_id, block=hex(req.block)),
        })

    def instant(self, name: str, tid: str, ts: int, pid: int,
                **args: Any) -> None:
        """Emit a point event (merge / stall / fill / evict marker)."""
        self._emit({
            "name": name, "cat": self._cat(tid),
            "ph": "i", "s": "t", "ts": ts,
            "pid": pid, "tid": tid, "args": dict(args),
        })

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        metadata = [
            {"name": "process_name", "ph": "M", "pid": pid,
             "args": {"name": f"core{pid}"}}
            for pid in sorted(self._pids)
        ]
        return {
            "traceEvents": metadata + self.events,
            "displayTimeUnit": "ms",
            "otherData": {
                "schema": OBS_SCHEMA_VERSION,
                "clock": "cycles",
                "sample_rate": self.sample_rate,
                "sampled_requests": self.sampled,
                "considered_requests": self.considered,
                "dropped_events": self.dropped,
                "open_spans": len(self._open),
            },
        }

    def write(self, path: Union[str, Path]) -> Path:
        out = Path(path)
        out.write_text(json.dumps(self.to_dict()) + "\n")
        return out
