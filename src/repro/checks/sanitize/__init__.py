"""SimSan runtime sanitizer: opt-in invariant checks on a live System.

Public surface::

    from repro.checks.sanitize import Sanitizer, SanitizerError, attach_sanitizer
    san = attach_sanitizer(system, interval=1000)   # hooks engine.watcher
    system.engine.run()                             # raises SanitizerError on a trip

Enable on any run with ``REPRO_SANITIZE=1`` (or ``--sanitize`` on the
CLI); tune the sweep period with ``REPRO_SANITIZE_INTERVAL``.
"""

from __future__ import annotations

from .sanitizer import (ALL_INVARIANTS, DEFAULT_INTERVAL,
                        DEFAULT_MSHR_AGE_LIMIT, SAN_INCL, SAN_MSHR, SAN_PMC,
                        SAN_TAG, SAN_TIME, SAN_WAITER, Sanitizer,
                        SanitizerError, attach_sanitizer, sanitize_enabled,
                        sanitize_interval)

__all__ = [
    "ALL_INVARIANTS",
    "DEFAULT_INTERVAL",
    "DEFAULT_MSHR_AGE_LIMIT",
    "SAN_INCL",
    "SAN_MSHR",
    "SAN_PMC",
    "SAN_TAG",
    "SAN_TIME",
    "SAN_WAITER",
    "Sanitizer",
    "SanitizerError",
    "attach_sanitizer",
    "sanitize_enabled",
    "sanitize_interval",
]
