"""Runtime invariant sanitizer for a running :class:`~repro.sim.system.System`.

The sanitizer hooks the engine's watcher slot (see
:meth:`repro.sim.engine.Engine.run`) and re-derives structural
invariants from scratch every ``interval`` events, between event
callbacks.  It is strictly an *observer*: it never schedules events,
never mutates cache/MSHR/PMC state, and a sanitized run produces a
byte-identical :class:`~repro.sim.stats.SimResult` (the golden fixtures
are asserted under it).  When disabled nothing is installed, so the
engine keeps its zero-overhead fast loop.

Invariants, each with a stable rule ID (mirroring the lint IDs):

``SAN-TIME``
    Event time is monotonic and nothing is queued in the past.  Protects
    the deterministic heap ordering every other measurement sits on.
``SAN-TAG``
    Each cache's ``tag -> way`` index agrees with a reference
    first-match linear scan of the tag array, per-set valid counts
    match, and the global duplicate-tag counter is exact.  Protects the
    O(1) lookup introduced by the hot-path work.
``SAN-MSHR``
    MSHR files never exceed capacity, entries are keyed by their own
    block, and no entry outlives ``mshr_age_limit`` cycles (leak
    detection).
``SAN-WAITER``
    Every MSHR entry still holds at least one waiter, every waiter is
    for the entry's block and not yet responded, and prefetch-only
    entries hold only prefetch waiters (lost-promotion detection).
``SAN-PMC``
    Per-core cycle conservation for the paper's Pure Miss Contribution
    (Section IV, Algorithm 1): a core distributes at most one pure-miss
    cycle per elapsed cycle, so accounted pure-miss cycles, active
    cycles and summed PMC never exceed ``engine.now``; a single miss
    never accrues more PMC/MLP cost than its own lifetime; histogram
    mass equals completed misses.
``SAN-INCL``
    With an inclusive LLC, every valid block in a private level is
    present in the LLC.
"""

from __future__ import annotations

from typing import Any, List, Optional

#: Default number of events between invariant sweeps.
DEFAULT_INTERVAL = 4096

#: Default cycle budget before an outstanding MSHR entry is called a leak.
DEFAULT_MSHR_AGE_LIMIT = 500_000

SAN_TIME = "SAN-TIME"
SAN_TAG = "SAN-TAG"
SAN_MSHR = "SAN-MSHR"
SAN_WAITER = "SAN-WAITER"
SAN_PMC = "SAN-PMC"
SAN_INCL = "SAN-INCL"

ALL_INVARIANTS = (SAN_TIME, SAN_TAG, SAN_MSHR, SAN_WAITER, SAN_PMC, SAN_INCL)


class SanitizerError(AssertionError):
    """An invariant tripped; ``rule`` carries the ``SAN-*`` rule ID."""

    def __init__(self, rule: str, message: str) -> None:
        self.rule = rule
        super().__init__(f"[{rule}] {message}")


def sanitize_enabled(env: Optional[dict] = None) -> bool:
    """Lazy read of ``REPRO_SANITIZE`` (never at import time)."""
    import os
    value = (os.environ if env is None else env).get("REPRO_SANITIZE", "")
    return str(value).strip().lower() not in ("", "0", "off", "false", "no")


def sanitize_interval(env: Optional[dict] = None) -> int:
    """``REPRO_SANITIZE_INTERVAL`` override, default ``DEFAULT_INTERVAL``."""
    import os
    raw = (os.environ if env is None else env).get(
        "REPRO_SANITIZE_INTERVAL", "").strip()
    if not raw:
        return DEFAULT_INTERVAL
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_INTERVAL
    return value if value >= 1 else DEFAULT_INTERVAL


class Sanitizer:
    """Periodic invariant checker over one :class:`System`'s components."""

    __slots__ = ("engine", "caches", "monitor", "llc", "interval",
                 "mshr_age_limit", "checks_run", "_last_now", "_installed")

    def __init__(self, system: Any, interval: Optional[int] = None,
                 mshr_age_limit: int = DEFAULT_MSHR_AGE_LIMIT) -> None:
        self.engine = system.engine
        self.llc = system.llc
        self.caches: List[Any] = [system.llc] + list(system.l1s) + list(system.l2s)
        self.monitor = system.monitor
        self.interval = sanitize_interval() if interval is None else interval
        self.mshr_age_limit = mshr_age_limit
        self.checks_run = 0
        self._last_now = system.engine.now
        self._installed = False

    # ------------------------------------------------------------------
    # Engine hookup
    # ------------------------------------------------------------------
    def install(self) -> "Sanitizer":
        """Register on the engine's watcher slot.

        Other observers (e.g. the metrics sampler) may coexist — the
        engine multiplexes them — but a second *sanitizer* on the same
        engine is a usage error and is refused.
        """
        for fn in self.engine.watchers:
            if getattr(fn, "__func__", None) is Sanitizer.check:
                raise RuntimeError("engine already has a sanitizer installed")
        self.engine.add_watcher(self.check, self.interval)
        self._installed = True
        return self

    def uninstall(self) -> None:
        if self._installed:
            self.engine.remove_watcher(self.check)
            self._installed = False

    # ------------------------------------------------------------------
    # The sweep
    # ------------------------------------------------------------------
    def check(self) -> None:
        """Run every invariant once (raises :class:`SanitizerError`)."""
        self.check_time()
        self.check_tag_index()
        self.check_mshr()
        self.check_waiters()
        self.check_pmc()
        self.check_inclusion()
        self.checks_run += 1

    # -- SAN-TIME -------------------------------------------------------
    def check_time(self) -> None:
        now = self.engine.now
        if now < self._last_now:
            raise SanitizerError(
                SAN_TIME, f"engine time moved backwards: "
                          f"{self._last_now} -> {now}")
        self._last_now = now
        # Engine-backend API (works for the classic heap and the batched
        # calendar queue alike): earliest queued timestamp, or None.
        head = self.engine.next_event_time()
        if head is not None and head < now:
            raise SanitizerError(
                SAN_TIME, f"event queued in the past: t={head} "
                          f"< now={now}")

    # -- SAN-TAG --------------------------------------------------------
    def check_tag_index(self) -> None:
        for cache in self.caches:
            shadowed = 0
            for set_idx, blocks in enumerate(cache._sets):
                reference = {}
                valid = 0
                for way, blk in enumerate(blocks):
                    if not blk.valid:
                        continue
                    valid += 1
                    if blk.tag in reference:
                        shadowed += 1          # first-match scan keeps lowest
                    else:
                        reference[blk.tag] = way
                index = cache._tag2way[set_idx]
                if index != reference:
                    raise SanitizerError(
                        SAN_TAG,
                        f"{cache.name} set {set_idx}: tag index "
                        f"{dict(index)} disagrees with linear scan "
                        f"{reference}")
                if cache._valid_count[set_idx] != valid:
                    raise SanitizerError(
                        SAN_TAG,
                        f"{cache.name} set {set_idx}: valid count "
                        f"{cache._valid_count[set_idx]} != {valid}")
            if cache._dup_tags != shadowed:
                raise SanitizerError(
                    SAN_TAG,
                    f"{cache.name}: duplicate-tag counter "
                    f"{cache._dup_tags} != {shadowed} shadowed copies")

    # -- SAN-MSHR -------------------------------------------------------
    def check_mshr(self) -> None:
        now = self.engine.now
        for cache in self.caches:
            mshr = cache.mshr
            entries = mshr._entries
            if len(entries) > mshr.capacity:
                raise SanitizerError(
                    SAN_MSHR,
                    f"{cache.name}: {len(entries)} MSHR entries exceed "
                    f"capacity {mshr.capacity}")
            for block, entry in entries.items():
                if entry.block != block:
                    raise SanitizerError(
                        SAN_MSHR,
                        f"{cache.name}: entry for block {entry.block:#x} "
                        f"filed under key {block:#x}")
                if entry.issue_time > now:
                    raise SanitizerError(
                        SAN_MSHR,
                        f"{cache.name}: entry {block:#x} issued in the "
                        f"future ({entry.issue_time} > {now})")
                age = now - entry.issue_time
                if age > self.mshr_age_limit:
                    raise SanitizerError(
                        SAN_MSHR,
                        f"{cache.name}: entry {block:#x} outstanding for "
                        f"{age} cycles (> {self.mshr_age_limit}) — leaked?")

    # -- SAN-WAITER -----------------------------------------------------
    def check_waiters(self) -> None:
        for cache in self.caches:
            for block, entry in cache.mshr._entries.items():
                if not entry.waiters:
                    raise SanitizerError(
                        SAN_WAITER,
                        f"{cache.name}: entry {block:#x} lost all waiters")
                prefetch_only = True
                for waiter in entry.waiters:
                    if waiter.block != entry.block:
                        raise SanitizerError(
                            SAN_WAITER,
                            f"{cache.name}: waiter for block "
                            f"{waiter.block:#x} attached to entry "
                            f"{entry.block:#x}")
                    if waiter.completed >= 0:
                        raise SanitizerError(
                            SAN_WAITER,
                            f"{cache.name}: waiter {waiter.req_id} of entry "
                            f"{block:#x} already responded at "
                            f"{waiter.completed} (double respond)")
                    if not waiter.is_prefetch:
                        prefetch_only = False
                if entry.prefetch_only and not prefetch_only:
                    raise SanitizerError(
                        SAN_WAITER,
                        f"{cache.name}: entry {block:#x} marked "
                        "prefetch-only but holds a demand waiter "
                        "(lost promotion)")

    # -- SAN-PMC --------------------------------------------------------
    def check_pmc(self) -> None:
        monitor = self.monitor
        if monitor is None:
            return
        now = self.engine.now
        eps = 1e-6 * max(1.0, float(now))
        for mon in monitor._cores:
            core = mon.core
            if mon.base_count < 0:
                raise SanitizerError(
                    SAN_PMC, f"core {core}: negative base access count "
                             f"{mon.base_count}")
            if mon.last_time > now:
                raise SanitizerError(
                    SAN_PMC, f"core {core}: PML swept to {mon.last_time}, "
                             f"ahead of now={now}")
            stats = mon.stats
            # Cycle conservation (PAPER.md §III / Algorithm 1): one core
            # distributes at most 1 pure-miss cycle per elapsed cycle.
            for label, value in (("pure_miss_cycles", stats.pure_miss_cycles),
                                 ("active_cycles", stats.active_cycles),
                                 ("pmc_sum", stats.pmc_sum)):
                if value > now + eps:
                    raise SanitizerError(
                        SAN_PMC,
                        f"core {core}: {label}={value:.3f} exceeds elapsed "
                        f"cycles {now}")
            if stats.pure_miss_cycles > stats.active_cycles + eps:
                raise SanitizerError(
                    SAN_PMC,
                    f"core {core}: pure miss cycles "
                    f"{stats.pure_miss_cycles:.3f} exceed active cycles "
                    f"{stats.active_cycles:.3f}")
            if stats.pure_misses > stats.misses:
                raise SanitizerError(
                    SAN_PMC, f"core {core}: {stats.pure_misses} pure misses "
                             f"> {stats.misses} misses")
            if sum(stats.pmc_histogram) != stats.misses:
                raise SanitizerError(
                    SAN_PMC,
                    f"core {core}: histogram mass "
                    f"{sum(stats.pmc_histogram)} != {stats.misses} "
                    "completed misses")
            for entry in mon.misses:   # read-only sweep; SS103 out of scope here
                lifetime = now - entry.issue_time
                for label, value in (("pmc", entry.pmc),
                                     ("mlp_cost", entry.mlp_cost)):
                    if value > lifetime + eps:
                        raise SanitizerError(
                            SAN_PMC,
                            f"core {core}: miss {entry.block:#x} accrued "
                            f"{label}={value:.3f} over a {lifetime}-cycle "
                            "lifetime")

    # -- SAN-INCL -------------------------------------------------------
    def check_inclusion(self) -> None:
        llc = self.llc
        if not llc.inclusive:
            return
        for upper in llc.upper_levels:
            for set_idx, blocks in enumerate(upper._sets):
                for blk in blocks:
                    if not blk.valid:
                        continue
                    addr = upper.block_addr(set_idx, blk.tag)
                    if not llc.probe(addr):
                        raise SanitizerError(
                            SAN_INCL,
                            f"inclusion hole: {upper.name} holds block "
                            f"{addr >> 6:#x} absent from {llc.name}")


def attach_sanitizer(system: Any, interval: Optional[int] = None,
                     mshr_age_limit: int = DEFAULT_MSHR_AGE_LIMIT) -> Sanitizer:
    """Build a :class:`Sanitizer` for ``system`` and install it."""
    return Sanitizer(system, interval=interval,
                     mshr_age_limit=mshr_age_limit).install()
