"""Correctness tooling for the simulator (SimSan).

Two complementary halves keep the hot-path invariants that PR 2's
optimization work relies on from rotting silently:

* :mod:`repro.checks.lint` — a static, AST-based lint engine with
  repo-specific rules: determinism (no unseeded RNG, no wall-clock
  reads, no iteration over unordered sets, no import-time environment
  reads), hot-path discipline (``__slots__``, no per-call closures, no
  f-string logging, events scheduled only through the engine), and API
  hygiene.  Run it with ``python -m repro check [paths]``.

* :mod:`repro.checks.sanitize` — an opt-in runtime sanitizer that
  observes a running :class:`~repro.sim.system.System` every N events
  and cross-checks structural invariants (event-time monotonicity,
  tag-index coherence, MSHR leaks and lost waiters, PMC cycle
  conservation, inclusion).  Enable with ``--sanitize`` or
  ``REPRO_SANITIZE=1``; it observes but never perturbs simulation
  state, so sanitized runs stay byte-identical.

A third half-sibling aims the same fault-injection philosophy at the
*harness* instead of the simulator:

* :mod:`repro.checks.chaos` — deterministic, seeded fault injectors
  (worker raise/hang/kill, store corruption) driven by
  ``REPRO_CHAOS=<profile>:<seed>``, which the supervised sweep runner
  (``repro.harness.supervise``) must absorb: retries converge, hung
  workers are killed, corrupt store entries are quarantined, and the
  resumed campaign reproduces the fault-free result set byte-for-byte.
"""

from __future__ import annotations

__all__ = ["chaos", "lint", "sanitize"]
