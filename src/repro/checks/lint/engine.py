"""AST lint engine behind ``python -m repro check``.

The engine parses each file once, collects ``# simsan:`` suppression
comments, and walks the tree with a rule-aware visitor.  Rules are
purely syntactic (no imports are executed), so linting is safe on any
tree and fast enough to gate CI.

Scoping: a file's dotted module name is derived from its path (the
longest suffix starting at a ``repro`` package component); rules then
apply per :class:`repro.checks.lint.rules.Rule.scope`.  Sources outside
a ``repro`` package only get the ``all``-scoped hygiene rules.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from .rules import (ALL_RULE_IDS, ENGINE_MODULES, HOT_PATH_MANIFEST, RULES,
                    TRACE_CACHE_EXEMPT_MODULES, TRACE_GENERATOR_NAMES, Rule,
                    lookup_rule)

_SUPPRESS_RE = re.compile(
    r"#\s*simsan:\s*(?P<skipfile>skip-file\b)?(?:skip=(?P<ids>[A-Za-z0-9, ]+))?"
)
_RULE_ID_RE = re.compile(r"SS\d{3}$")
_HOT_TAG_RE = re.compile(r"#\s*hot:")

#: process-global ``random`` functions that bypass seeding
_GLOBAL_RNG_FNS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "seed", "getrandbits", "gauss", "betavariate",
    "expovariate", "normalvariate", "triangular", "vonmisesvariate",
})
_CLOCK_FNS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "clock",
})
_DATETIME_NOW_FNS = frozenset({"now", "utcnow", "today"})
_LOG_METHODS = frozenset({
    "debug", "info", "warning", "warn", "error", "exception", "critical",
    "log",
})
_SET_TYPE_NAMES = frozenset({
    "set", "frozenset", "Set", "FrozenSet", "MutableSet", "AbstractSet",
})
_SLOTS_EXEMPT_BASES = frozenset({
    "Exception", "BaseException", "Enum", "IntEnum", "StrEnum", "Flag",
    "IntFlag", "Protocol", "NamedTuple", "TypedDict", "ABC", "Generic",
})


@dataclass(frozen=True)
class Finding:
    """One lint violation at a specific source line."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    @property
    def rule(self) -> Rule:
        return lookup_rule(self.rule_id)


def format_finding(finding: Finding, fix_hints: bool = False) -> str:
    rule = finding.rule
    text = (f"{finding.path}:{finding.line}:{finding.col + 1}: "
            f"{finding.rule_id} [{rule.name}] {finding.message}")
    if fix_hints:
        text += f"\n    fix: {rule.hint}"
    return text


# ----------------------------------------------------------------------
# Module naming and scope resolution
# ----------------------------------------------------------------------
def module_name_for(path: Union[str, Path]) -> str:
    """Dotted module name for ``path``, anchored at a ``repro`` component.

    Files outside a ``repro`` package return their bare stem, which puts
    them out of scope for the sim/core-specific rules.
    """
    parts = Path(path).with_suffix("").parts
    for i, part in enumerate(parts):
        if part == "repro":
            dotted = list(parts[i:])
            if dotted[-1] == "__init__":
                dotted.pop()
            return ".".join(dotted)
    return Path(path).stem


def _in_deterministic_scope(module: str) -> bool:
    return module.startswith(("repro.sim", "repro.core"))


def _rule_applies(rule: Rule, module: str) -> bool:
    if rule.scope == "all":
        return True
    if rule.scope == "sim":
        return module.startswith("repro.sim")
    if rule.scope == "harness":
        return module.startswith("repro.harness")
    # "deterministic" and "hot" both live in the deterministic packages;
    # "hot" is additionally gated per-function by the visitor.
    return _in_deterministic_scope(module)


# ----------------------------------------------------------------------
# Suppression comments
# ----------------------------------------------------------------------
def _collect_suppressions(lines: Sequence[str]) -> Tuple[bool, Dict[int, Set[str]]]:
    """Parse ``# simsan:`` comments: (skip whole file, line -> rule IDs)."""
    skip_file = False
    per_line: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        if "simsan:" not in line:
            continue
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        if match.group("skipfile"):
            skip_file = True
        ids = match.group("ids")
        if ids:
            wanted = {part.strip().upper() for part in ids.split(",")}
            # keep every SSnnn-shaped id (lint, flow, or a typo): the
            # unused-suppression audit (SS303) owns rejecting bad ones
            per_line[lineno] = {i for i in wanted if _RULE_ID_RE.match(i)}
    return skip_file, per_line


# ----------------------------------------------------------------------
# Small AST helpers
# ----------------------------------------------------------------------
def _name_of(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return _name_of(node.func) in ("set", "frozenset")
    return False


def _is_set_annotation(node: ast.AST) -> bool:
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.split("[", 1)[0].strip() in _SET_TYPE_NAMES
    name = _name_of(node)
    return name in _SET_TYPE_NAMES


def _is_dataclass_decorator(node: ast.AST) -> bool:
    if isinstance(node, ast.Call):
        node = node.func
    return _name_of(node) == "dataclass"


def _slots_exempt(node: ast.ClassDef) -> bool:
    if any(_is_dataclass_decorator(d) for d in node.decorator_list):
        return True
    for base in node.bases:
        name = _name_of(base)
        if name is None:
            continue
        if name in _SLOTS_EXEMPT_BASES:
            return True
        if name.endswith(("Error", "Exception", "Warning")):
            return True
    return False


def _has_slots(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == "__slots__"
                   for t in stmt.targets):
                return True
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.target.id == "__slots__":
                return True
    return False


class _FunctionFacts:
    """Pre-pass over one function: locals that only ever hold sets."""

    __slots__ = ("set_locals",)

    def __init__(self, node: ast.AST) -> None:
        assigned_set: Set[str] = set()
        assigned_other: Set[str] = set()
        for child in ast.walk(node):
            targets: List[ast.expr] = []
            value: Optional[ast.AST] = None
            if isinstance(child, ast.Assign):
                targets, value = child.targets, child.value
            elif isinstance(child, ast.AnnAssign):
                if _is_set_annotation(child.annotation):
                    if isinstance(child.target, ast.Name):
                        assigned_set.add(child.target.id)
                    continue
                targets, value = [child.target], child.value
            elif isinstance(child, ast.AugAssign):
                targets, value = [child.target], None
            else:
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if value is not None and _is_set_expr(value):
                    assigned_set.add(target.id)
                else:
                    assigned_other.add(target.id)
        self.set_locals = assigned_set - assigned_other


def _class_set_attrs(node: ast.ClassDef) -> Set[str]:
    """``self.<attr>`` names that the class assigns/annotates as sets."""
    attrs: Set[str] = set()
    for child in ast.walk(node):
        target: Optional[ast.expr] = None
        if isinstance(child, ast.Assign) and len(child.targets) == 1:
            target = child.targets[0]
            is_set = _is_set_expr(child.value)
        elif isinstance(child, ast.AnnAssign):
            target = child.target
            is_set = _is_set_annotation(child.annotation) or (
                child.value is not None and _is_set_expr(child.value))
        else:
            continue
        if (is_set and isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            attrs.add(target.attr)
    return attrs


# ----------------------------------------------------------------------
# The visitor
# ----------------------------------------------------------------------
class _Linter(ast.NodeVisitor):
    def __init__(self, module: str, path: str, lines: Sequence[str],
                 suppressions: Dict[int, Set[str]]) -> None:
        self.module = module
        self.path = path
        self.lines = lines
        self.suppressions = suppressions
        self.findings: List[Finding] = []
        self.used_suppressions: Set[Tuple[int, str]] = set()

        # import tracking -------------------------------------------------
        self.random_aliases: Set[str] = set()
        self.time_aliases: Set[str] = set()
        self.datetime_mod_aliases: Set[str] = set()
        self.datetime_cls_names: Set[str] = set()
        self.os_aliases: Set[str] = set()
        self.os_getenv_names: Set[str] = set()
        self.heappush_names: Set[str] = set()
        self.heapq_aliases: Set[str] = set()

        # context stacks ---------------------------------------------------
        self.func_stack: List[Tuple[ast.AST, bool, _FunctionFacts]] = []
        self.class_stack: List[str] = []
        self.class_set_attrs: List[Set[str]] = []

    # -- reporting ------------------------------------------------------
    def report(self, rule_id: str, node: ast.AST, message: str) -> None:
        rule = RULES[rule_id]
        if not _rule_applies(rule, self.module):
            return
        line = getattr(node, "lineno", 1)
        if rule_id in self.suppressions.get(line, ()):
            self.used_suppressions.add((line, rule_id))
            return
        self.findings.append(Finding(
            self.path, line, getattr(node, "col_offset", 0), rule_id, message))

    # -- context helpers ------------------------------------------------
    @property
    def at_import_time(self) -> bool:
        return not self.func_stack

    @property
    def in_hot_function(self) -> bool:
        return any(hot for _node, hot, _facts in self.func_stack)

    def _qualname(self, name: str) -> str:
        scopes = [n.name for n, _h, _f in self.func_stack
                  if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]
        return ".".join([self.module] + self.class_stack + scopes + [name])

    def _is_hot_def(self, node: ast.AST, name: str) -> bool:
        if self._qualname(name) in HOT_PATH_MANIFEST:
            return True
        lineno = getattr(node, "lineno", 1)
        for check in (lineno, lineno - 1):
            if 1 <= check <= len(self.lines) and _HOT_TAG_RE.search(
                    self.lines[check - 1]):
                return True
        # decorators push the def line down; scan the decorator block too
        for deco in getattr(node, "decorator_list", []):
            dline = getattr(deco, "lineno", lineno) - 1
            if 1 <= dline <= len(self.lines) and _HOT_TAG_RE.search(
                    self.lines[dline - 1]):
                return True
        return False

    # -- imports --------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self.random_aliases.add(bound)
            elif alias.name == "time":
                self.time_aliases.add(bound)
            elif alias.name == "datetime":
                self.datetime_mod_aliases.add(bound)
            elif alias.name == "os":
                self.os_aliases.add(bound)
            elif alias.name == "heapq":
                self.heapq_aliases.add(bound)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                if alias.name != "Random":
                    self.report("SS101", node,
                                f"'from random import {alias.name}' exposes "
                                "the process-global RNG")
        elif node.module == "time":
            for alias in node.names:
                if alias.name in _CLOCK_FNS:
                    self.report("SS102", node,
                                f"'from time import {alias.name}' imports a "
                                "wall-clock source")
        elif node.module == "datetime":
            for alias in node.names:
                if alias.name in ("datetime", "date"):
                    self.datetime_cls_names.add(alias.asname or alias.name)
        elif node.module == "os":
            for alias in node.names:
                if alias.name == "getenv":
                    self.os_getenv_names.add(alias.asname or alias.name)
                elif alias.name == "environ":
                    # bare name can't be distinguished later; treat any
                    # import of environ at module scope as fine, reads are
                    # caught at call/subscript sites via the bound name
                    self.os_getenv_names.add(alias.asname or alias.name)
        elif node.module == "heapq":
            for alias in node.names:
                if alias.name in ("heappush", "heappop"):
                    self.heappush_names.add(alias.asname or alias.name)
        self.generic_visit(node)

    # -- definitions ----------------------------------------------------
    def _visit_function(self, node: ast.AST, name: str) -> None:
        hot = self._is_hot_def(node, name)
        if self.func_stack and self.in_hot_function:
            self.report("SS202", node,
                        f"nested function '{name}' allocated per call in a "
                        "hot-path function")
        self._check_defaults(node)
        self.func_stack.append((node, hot, _FunctionFacts(node)))
        self.generic_visit(node)
        self.func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        if self.in_hot_function:
            self.report("SS202", node,
                        "lambda allocated per call in a hot-path function")
        self._check_defaults(node)
        self.func_stack.append((node, False, _FunctionFacts(node)))
        self.generic_visit(node)
        self.func_stack.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if (not self.func_stack and not _slots_exempt(node)
                and not _has_slots(node)):
            self.report("SS201", node,
                        f"class '{node.name}' has no __slots__")
        self.class_stack.append(node.name)
        self.class_set_attrs.append(_class_set_attrs(node))
        self.generic_visit(node)
        self.class_set_attrs.pop()
        self.class_stack.pop()

    def _check_defaults(self, node: ast.AST) -> None:
        args = getattr(node, "args", None)
        if args is None:
            return
        for default in list(args.defaults) + [
                d for d in args.kw_defaults if d is not None]:
            bad = isinstance(default, (ast.List, ast.Dict, ast.Set,
                                       ast.ListComp, ast.DictComp,
                                       ast.SetComp))
            if isinstance(default, ast.Call):
                bad = _name_of(default.func) in (
                    "list", "dict", "set", "defaultdict", "deque",
                    "OrderedDict", "Counter", "bytearray")
            if bad:
                self.report("SS301", default,
                            "mutable default argument is shared across calls")

    # -- statements / expressions ---------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report("SS302", node, "bare 'except:' clause")
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def _visit_comprehension_node(self, node: ast.AST) -> None:
        for gen in node.generators:  # type: ignore[attr-defined]
            self._check_iteration(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension_node
    visit_SetComp = _visit_comprehension_node
    visit_DictComp = _visit_comprehension_node
    visit_GeneratorExp = _visit_comprehension_node

    def _check_iteration(self, iter_node: ast.AST) -> None:
        if _is_set_expr(iter_node):
            self.report("SS103", iter_node,
                        "iteration over a set expression")
            return
        if isinstance(iter_node, ast.Name):
            if self.func_stack and iter_node.id in self.func_stack[-1][2].set_locals:
                self.report("SS103", iter_node,
                            f"iteration over set-typed local '{iter_node.id}'")
        elif (isinstance(iter_node, ast.Attribute)
              and isinstance(iter_node.value, ast.Name)
              and iter_node.value.id == "self"
              and self.class_set_attrs
              and iter_node.attr in self.class_set_attrs[-1]):
            self.report("SS103", iter_node,
                        f"iteration over set-typed attribute "
                        f"'self.{iter_node.attr}'")

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if self.at_import_time and self._is_environ(node.value):
            self.report("SS104", node, "os.environ[...] read at import time")
        self.generic_visit(node)

    def _is_environ(self, node: ast.AST) -> bool:
        return (isinstance(node, ast.Attribute) and node.attr == "environ"
                and isinstance(node.value, ast.Name)
                and node.value.id in self.os_aliases)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func

        # SS101 — process-global random -------------------------------
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in self.random_aliases):
            if func.attr in _GLOBAL_RNG_FNS:
                self.report("SS101", node,
                            f"random.{func.attr}() uses the process-global "
                            "RNG")
            elif func.attr == "Random" and not node.args and not node.keywords:
                self.report("SS101", node,
                            "random.Random() without a seed")

        # SS102 — wall clock ------------------------------------------
        if isinstance(func, ast.Attribute):
            base = func.value
            if (isinstance(base, ast.Name) and base.id in self.time_aliases
                    and func.attr in _CLOCK_FNS):
                self.report("SS102", node,
                            f"time.{func.attr}() reads the wall clock")
            elif func.attr in _DATETIME_NOW_FNS:
                if (isinstance(base, ast.Name)
                        and base.id in self.datetime_cls_names):
                    self.report("SS102", node,
                                f"datetime.{func.attr}() reads the wall clock")
                elif (isinstance(base, ast.Attribute)
                      and base.attr in ("datetime", "date")
                      and isinstance(base.value, ast.Name)
                      and base.value.id in self.datetime_mod_aliases):
                    self.report("SS102", node,
                                f"datetime.{base.attr}.{func.attr}() reads "
                                "the wall clock")

        # SS104 — import-time environment reads -----------------------
        if self.at_import_time:
            if (isinstance(func, ast.Attribute) and func.attr == "get"
                    and self._is_environ(func.value)):
                self.report("SS104", node,
                            "os.environ.get() read at import time")
            elif (isinstance(func, ast.Attribute) and func.attr == "getenv"
                    and isinstance(func.value, ast.Name)
                    and func.value.id in self.os_aliases):
                self.report("SS104", node, "os.getenv() read at import time")
            elif (isinstance(func, ast.Name)
                  and func.id in self.os_getenv_names):
                self.report("SS104", node,
                            f"{func.id}() read at import time")

        # SS203 — eager logging in hot functions ----------------------
        if self.in_hot_function:
            is_log_call = (
                (isinstance(func, ast.Attribute) and func.attr in _LOG_METHODS)
                or (isinstance(func, ast.Name) and func.id == "print"))
            if is_log_call:
                formatted = [a for a in list(node.args)
                             + [kw.value for kw in node.keywords]
                             if isinstance(a, ast.JoinedStr)]
                for arg in formatted:
                    self.report("SS203", arg,
                                "f-string formatted eagerly in a hot-path "
                                "logging call")

        # SS401 — trace generation bypassing the TraceCache -----------
        if self.module not in TRACE_CACHE_EXEMPT_MODULES:
            gen_name = _name_of(func)
            if gen_name in TRACE_GENERATOR_NAMES:
                self.report("SS401", node,
                            f"{gen_name}() regenerates a trace the "
                            "TraceCache already fingerprints")

        # SS204 — scheduling around the engine ------------------------
        if self.module not in ENGINE_MODULES:
            is_heappush = (
                (isinstance(func, ast.Name)
                 and func.id in self.heappush_names)
                or (isinstance(func, ast.Attribute)
                    and func.attr in ("heappush", "heappop")
                    and isinstance(func.value, ast.Name)
                    and func.value.id in self.heapq_aliases))
            if is_heappush:
                self.report("SS204", node,
                            "direct heap push/pop bypasses Engine.post/at "
                            "scheduling")

        self.generic_visit(node)


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
@dataclass
class LintResult:
    """Per-file lint outcome, including suppression bookkeeping.

    ``suppressions`` maps line -> rule IDs suppressed there; ``used``
    holds the ``(line, rule_id)`` pairs that actually swallowed a lint
    finding.  The difference feeds the SS303 unused-suppression audit
    (:func:`audit_suppressions`), which also credits suppressions
    consumed by the flow analysis (``repro.checks.flow``).
    """

    path: str
    module: str
    skip_file: bool
    findings: List[Finding]
    suppressions: Dict[int, Set[str]]
    used: Set[Tuple[int, str]]


def lint_source_detailed(source: str, module: str = "<string>",
                         path: str = "<string>") -> LintResult:
    """Lint a source string, returning findings plus suppression usage."""
    lines = source.splitlines()
    skip_file, suppressions = _collect_suppressions(lines)
    if skip_file:
        return LintResult(path, module, True, [], suppressions, set())
    tree = ast.parse(source, filename=path)
    linter = _Linter(module, path, lines, suppressions)
    linter.visit(tree)
    linter.findings.sort(key=lambda f: (f.line, f.col, f.rule_id))
    return LintResult(path, module, False, linter.findings, suppressions,
                      linter.used_suppressions)


def lint_source(source: str, module: str = "<string>",
                path: str = "<string>") -> List[Finding]:
    """Lint a source string as if it were module ``module``."""
    return lint_source_detailed(source, module=module, path=path).findings


def lint_file_detailed(path: Union[str, Path],
                       module: Optional[str] = None) -> LintResult:
    path = Path(path)
    if module is None:
        module = module_name_for(path)
    source = path.read_text(encoding="utf-8")
    return lint_source_detailed(source, module=module, path=str(path))


def lint_file(path: Union[str, Path],
              module: Optional[str] = None) -> List[Finding]:
    return lint_file_detailed(path, module=module).findings


def _iter_python_files(paths: Iterable[Union[str, Path]]) -> List[Path]:
    files: List[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            files.extend(
                p for p in sorted(entry.rglob("*.py"))
                if "egg-info" not in str(p) and "__pycache__" not in str(p))
        elif entry.suffix == ".py":
            files.append(entry)
        else:
            raise FileNotFoundError(f"not a python file or directory: {entry}")
    return files


def run_lint_detailed(paths: Iterable[Union[str, Path]]) -> List[LintResult]:
    """Lint every ``.py`` file under ``paths``, keeping per-file results."""
    return [lint_file_detailed(path) for path in _iter_python_files(paths)]


def run_lint(paths: Iterable[Union[str, Path]]) -> List[Finding]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    findings: List[Finding] = []
    for result in run_lint_detailed(paths):
        findings.extend(result.findings)
    return findings


def audit_suppressions(
    results: Iterable[LintResult],
    flow_used: Optional[Set[Tuple[str, int, str]]] = None,
    flow_ran: bool = False,
) -> List[Finding]:
    """Emit SS303 findings for suppression comments that suppress nothing.

    ``flow_used`` is ``FlowReport.used_suppressions`` — ``(path, line,
    rule_id)`` triples the flow analysis consumed.  When the flow pass
    did not run (``flow_ran=False``) suppressions naming flow rule IDs
    are given the benefit of the doubt; IDs in neither catalogue
    (typos) are flagged unconditionally.  Skip-file files are exempt:
    their suppressions are unreachable by construction.
    """
    from ..flow.rules import FLOW_RULE_IDS  # lazy: flow imports this package

    flow_used = flow_used or set()
    findings: List[Finding] = []
    for res in results:
        if res.skip_file:
            continue
        for line in sorted(res.suppressions):
            ids = res.suppressions[line]
            if "SS303" in ids:
                continue  # the audit itself is suppressed at this line
            for rule_id in sorted(ids):
                if (line, rule_id) in res.used:
                    continue
                if (res.path, line, rule_id) in flow_used:
                    continue
                if rule_id in FLOW_RULE_IDS and not flow_ran:
                    continue
                known = rule_id in ALL_RULE_IDS or rule_id in FLOW_RULE_IDS
                detail = ("suppresses nothing on this line" if known
                          else "names an unknown rule ID")
                findings.append(Finding(
                    res.path, line, 0, "SS303",
                    f"suppression 'skip={rule_id}' {detail}"))
    findings.sort(key=lambda f: (f.path, f.line, f.message))
    return findings
