"""Rule registry for the SimSan lint engine.

Every rule has a stable ID (``SS1xx`` determinism, ``SS2xx`` hot-path
discipline, ``SS3xx`` API hygiene), a one-line summary shown with each
finding, and a fix hint shown under ``--fix-hints``.  A rule's *scope*
limits which modules it applies to:

``deterministic``
    ``repro.sim`` and ``repro.core`` — the packages whose behaviour the
    golden-equivalence fixtures pin bit-for-bit.
``sim``
    ``repro.sim`` only.
``hot``
    Only inside functions on the simulator's hot path: tagged with a
    ``# hot:`` comment on (or directly above) their ``def`` line, or
    listed in :data:`HOT_PATH_MANIFEST`.
``harness``
    ``repro.harness`` — sweep-execution code, where throughput
    discipline (``SS4xx``) applies.
``all``
    Every linted module.

Suppress a finding by appending ``# simsan: skip=<ID>`` (comma-separate
several IDs) to the offending line, or exempt a whole file with
``# simsan: skip-file``.  Suppressions should say *why* in the
surrounding comment — they are reviewed like code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet


@dataclass(frozen=True)
class Rule:
    """One lint rule: stable ID, human summary, and a concrete fix hint."""

    id: str
    name: str
    summary: str
    hint: str
    scope: str  # "deterministic" | "sim" | "hot" | "harness" | "all"


_RULES = [
    # ------------------------------------------------------------------
    # SS1xx — determinism.  The simulator must be a pure function of its
    # seed: equal specs produce byte-identical SimResult JSON anywhere.
    # ------------------------------------------------------------------
    Rule(
        id="SS101",
        name="unseeded-random",
        summary="use of the process-global random module (unseeded RNG)",
        hint="construct a seeded generator: rng = random.Random(seed) and "
             "call methods on it; never random.random()/randint()/choice() "
             "or random.Random() without a seed",
        scope="deterministic",
    ),
    Rule(
        id="SS102",
        name="wall-clock-read",
        summary="wall-clock or timer read inside the simulator",
        hint="simulated time is engine.now; wall-clock reads "
             "(time.time/perf_counter/datetime.now) make runs "
             "irreproducible — measure outside repro.sim/repro.core",
        scope="deterministic",
    ),
    Rule(
        id="SS103",
        name="unordered-set-iteration",
        summary="iteration over an unordered set",
        hint="set iteration order depends on hashes (identity hashes vary "
             "per process); iterate sorted(s) or use a dict/list; if the "
             "loop body is genuinely order-independent, suppress with a "
             "comment saying why",
        scope="deterministic",
    ),
    Rule(
        id="SS104",
        name="import-time-env-read",
        summary="os.environ read at import time",
        hint="read the environment lazily inside a function (see "
             "harness.scale.BenchScale); import-time reads freeze config "
             "before callers can set it and break spawned workers",
        scope="all",
    ),
    # ------------------------------------------------------------------
    # SS2xx — hot-path discipline (the PR 2 optimization invariants).
    # ------------------------------------------------------------------
    Rule(
        id="SS201",
        name="missing-slots",
        summary="class in repro.sim without __slots__",
        hint="add __slots__ = (...) — per-instance dicts cost allocation "
             "and cache misses on the simulator's per-event objects "
             "(dataclasses, enums and exceptions are exempt)",
        scope="sim",
    ),
    Rule(
        id="SS202",
        name="hot-closure",
        summary="lambda or nested function allocated in a hot-path function",
        hint="allocate one bound method in __init__ and carry per-call "
             "context on the request (see Cache._fill_cb / "
             "MemRequest.mshr_entry) instead of a closure per call",
        scope="hot",
    ),
    Rule(
        id="SS203",
        name="hot-fstring-log",
        summary="eagerly formatted logging/print in a hot-path function",
        hint="f-strings format even when the log level is off; use lazy "
             "%-style logging args, or move the log out of the hot path",
        scope="hot",
    ),
    Rule(
        id="SS204",
        name="raw-event-scheduling",
        summary="event scheduled around the Engine (direct heap push)",
        hint="schedule only via Engine.post/at/after so sequence numbers "
             "and event ordering stay engine-owned; approved inlined "
             "sites must carry a suppression explaining the measurement",
        scope="deterministic",
    ),
    # ------------------------------------------------------------------
    # SS3xx — API hygiene.
    # ------------------------------------------------------------------
    Rule(
        id="SS301",
        name="mutable-default-arg",
        summary="mutable default argument",
        hint="default to None and create the list/dict/set inside the "
             "function body",
        scope="all",
    ),
    Rule(
        id="SS302",
        name="bare-except",
        summary="bare except clause",
        hint="catch a specific exception type; bare except swallows "
             "KeyboardInterrupt/SystemExit and hides simulator bugs",
        scope="all",
    ),
    Rule(
        id="SS303",
        name="unused-suppression",
        summary="suppression comment no longer suppresses any finding",
        hint="remove the '# simsan: skip=<ID>' comment (or fix a "
             "misspelled rule ID); stale suppressions hide future "
             "regressions at that line",
        scope="all",
    ),
    # ------------------------------------------------------------------
    # SS4xx — sweep-throughput discipline (the PR 7 amortization
    # invariants): harness code must not regenerate what the
    # content-addressed caches already fingerprint.
    # ------------------------------------------------------------------
    Rule(
        id="SS401",
        name="uncached-trace-generation",
        summary="direct trace generation in harness code bypasses the "
                "TraceCache",
        hint="reach traces through ExperimentSpec.build_traces or "
             "workloads.cached_trace so every sweep point sharing a "
             "(kind, name, records, seed, scale) tuple generates once; "
             "a reviewed direct-generation site belongs in "
             "TRACE_CACHE_EXEMPT_MODULES",
        scope="harness",
    ),
]

RULES: Dict[str, Rule] = {r.id: r for r in _RULES}

ALL_RULE_IDS: FrozenSet[str] = frozenset(RULES)


def lookup_rule(rule_id: str) -> Rule:
    """Resolve a rule ID across the lint and flow catalogues."""
    rule = RULES.get(rule_id)
    if rule is not None:
        return rule
    from ..flow.rules import FLOW_RULES   # lazy: flow imports this module
    return FLOW_RULES[rule_id]

#: Functions on the simulator's hot path (one entry per event or per
#: request), addressed by dotted qualname.  ``# hot:`` comments on a
#: ``def`` line are the in-file equivalent.  Since PR 8 this manifest
#: is *derived*: ``repro check --flow`` recomputes event-loop
#: reachability from the call graph and fails on drift in either
#: direction (SS502 stale entry / SS503 missing entry), so the set
#: below is exactly the reachable, non-dunder hot closure.
HOT_PATH_MANIFEST: FrozenSet[str] = frozenset({
    "repro.sim.engine.Engine.post",
    "repro.sim.engine.Engine.run",
    "repro.sim.engine.Engine.step",
    "repro.sim.engine.Engine._run_watched",
    "repro.sim.engine.Engine._fire_watchers",
    "repro.sim.cache.Cache.access",
    "repro.sim.cache.Cache._lookup",
    "repro.sim.cache.Cache._handle_hit",
    "repro.sim.cache.Cache._handle_miss",
    "repro.sim.cache.Cache._start_miss",
    "repro.sim.cache.Cache._fill_from_child",
    "repro.sim.cache.Cache._install",
    "repro.sim.cache.Cache._writeback",
    "repro.sim.cache.Cache._retry_pending",
    "repro.sim.cache.Cache._issue_prefetch",
    "repro.sim.cache.Cache._drop_mapping",
    "repro.sim.cache.Cache.invalidate",
    "repro.sim.cache.Cache.block_addr",
    "repro.sim.cpu.Core._dispatch",
    "repro.sim.cpu.Core._complete",
    "repro.sim.cpu.Core._complete_cb",
    "repro.sim.cpu.Core._retire",
    "repro.sim.dram.DRAM.access",
    "repro.sim.dram.DRAM._route",
    "repro.sim.memctrl.FRFCFSController.access",
    "repro.sim.memctrl.FRFCFSController._issue",
    "repro.sim.memctrl.FRFCFSController._route",
    "repro.sim.memctrl.FRFCFSController._select",
    "repro.sim.memctrl.FRFCFSController._update_drain_state",
    "repro.sim.memctrl.FRFCFSController._start",
    "repro.sim.memctrl.FRFCFSController._complete",
    "repro.sim.mshr.MSHREntry.merge",
    "repro.sim.mshr.MSHR.merge",
    "repro.sim.request.MemRequest.respond",
    "repro.core.care.CAREPolicy.on_evict",
    "repro.core.pmc.pmc_bin",
    "repro.core.pmc._CoreMonitor.accrue",
    "repro.core.pmc._CoreMonitor.finish_miss",
    "repro.core.pmc.ConcurrencyMonitor.on_access",
    "repro.core.pmc.ConcurrencyMonitor.on_hit_observed",
    "repro.core.pmc.ConcurrencyMonitor._base_end",
    "repro.core.pmc.ConcurrencyMonitor.on_miss_start",
    "repro.core.pmc.ConcurrencyMonitor.on_miss_end",
    "repro.core.sht.SignatureHistoryTable._index",
    "repro.core.sht.SignatureHistoryTable.rc_decrement",
    "repro.core.sht.SignatureHistoryTable.pd_increment",
    "repro.core.sht.SignatureHistoryTable.pd_decrement",
    # Batched backend (DESIGN.md §13) — same per-event discipline.
    "repro.sim.batched.engine.EpochEngine.run",
    "repro.sim.batched.engine.EpochEngine.post",
    "repro.sim.batched.engine.EpochEngine.step",
    "repro.sim.batched.engine.EpochEngine._run_fast",
    "repro.sim.batched.engine.EpochEngine._run_watched",
    "repro.sim.batched.engine.EpochEngine._run_general",
    "repro.sim.batched.engine.EpochEngine._fire_watchers",
    "repro.sim.batched.cache.BatchedCache.access",
    "repro.sim.batched.cache.BatchedCache._lookup",
    "repro.sim.batched.cache.BatchedCache._start_miss",
    "repro.sim.batched.cache.BatchedCache._fill_from_child",
    "repro.sim.batched.cache.BatchedCache._install",
    "repro.sim.batched.cache.BatchedCache._retry_pending",
    "repro.sim.batched.cache.BatchedCache._issue_prefetch",
    "repro.sim.batched.cache.BatchedCache._writeback",
    "repro.sim.batched.cache.BatchedCache._drop_mapping",
    "repro.sim.batched.cache.BatchedCache.invalidate",
    "repro.sim.batched.cpu.BatchedCore._dispatch",
    "repro.sim.batched.cpu.BatchedCore._complete_cb",
})

#: Modules allowed to touch the raw event queue (SS204): each registered
#: engine backend owns its queue structure; everything else must
#: schedule through the engine's public post/at/after API.
ENGINE_MODULES: FrozenSet[str] = frozenset({
    "repro.sim.engine",
    "repro.sim.batched.engine",
    # save-state codec: snapshot/restore round-trips the engines' queue
    # state (via their __getstate__/__setstate__), so it is engine-module
    # code even though it lives outside the two backends
    "repro.sim.savestate",
})

#: Raw trace-generator calls SS401 flags inside ``repro.harness``:
#: cache-bypassing generation belongs in ``repro.workloads`` (behind
#: ``cached_trace``), never in sweep-execution code.
TRACE_GENERATOR_NAMES: FrozenSet[str] = frozenset({
    "make_trace",
    "spec_trace",
    "gap_trace",
})

#: Harness modules with a reviewed need to generate traces directly
#: (exemption manifest, like :data:`ENGINE_MODULES` for SS204).  Empty
#: today: harness code reaches traces through
#: ``ExperimentSpec.build_traces``, whose ``repro.workloads.mixes``
#: helpers route through the TraceCache.
TRACE_CACHE_EXEMPT_MODULES: FrozenSet[str] = frozenset()
