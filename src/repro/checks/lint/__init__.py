"""SimSan static lint: repo-specific determinism and hot-path rules.

Public surface::

    from repro.checks.lint import run_lint, lint_source, format_finding
    findings = run_lint(["src"])          # [] when the tree is clean

See :mod:`repro.checks.lint.rules` for the rule catalogue and the
``# simsan: skip=<ID>`` suppression syntax.
"""

from __future__ import annotations

from .engine import (Finding, LintResult, audit_suppressions, format_finding,
                     lint_file, lint_file_detailed, lint_source,
                     lint_source_detailed, module_name_for, run_lint,
                     run_lint_detailed)
from .rules import ALL_RULE_IDS, HOT_PATH_MANIFEST, RULES, Rule, lookup_rule

__all__ = [
    "ALL_RULE_IDS",
    "Finding",
    "HOT_PATH_MANIFEST",
    "LintResult",
    "RULES",
    "Rule",
    "audit_suppressions",
    "format_finding",
    "lint_file",
    "lint_file_detailed",
    "lint_source",
    "lint_source_detailed",
    "lookup_rule",
    "module_name_for",
    "run_lint",
    "run_lint_detailed",
]
