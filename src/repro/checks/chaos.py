"""Chaos: deterministic fault injection for the sweep harness.

SimSan's runtime sanitizer proves the *simulator* keeps its invariants;
this module does the same job for the *harness* — the supervised runner,
retry/timeout machinery, and store hardening added by the fault-tolerance
work are only trustworthy if they are exercised against real faults.
Chaos injects those faults deterministically: a seeded hash over
``(seed, fault, spec key)`` decides which sweep points are hit, so the
same ``REPRO_CHAOS`` value reproduces the same incident pattern on any
machine, and tests can predict exactly which points fail.

Enable with ``REPRO_CHAOS=<profile>:<seed>[:<num>/<den>]``::

    REPRO_CHAOS=flaky:7        # transient OSError on first attempt
    REPRO_CHAOS=kill,hang:3    # workers exit(137) or hang (both transient)
    REPRO_CHAOS=all:1:1/2      # every fault, hitting half the points

Faults (``all`` = every one of them):

``raise``
    A permanent :class:`ChaosError` on **every** attempt — the point can
    never succeed while chaos is on, so it must land in the failure
    table and succeed on ``--resume`` with chaos off.
``flaky``
    A transient ``OSError`` on the first attempt only — the retry layer
    must recover it.
``hang``
    The worker sleeps "forever" (first attempt only) — the watchdog must
    kill it and the retry must complete the point.
``kill``
    The worker dies with ``os._exit(137)`` (first attempt only) — an
    OOM-killer stand-in; the supervisor must classify the crash as
    transient and retry.
``corrupt``
    Result-store writes for selected points are truncated after the
    atomic rename — ``fsck`` / hardened ``get`` must quarantine them.
``preempt``
    A preempt request is latched before the first attempt — the
    checkpoint policy must save state and stop cleanly, and the retry
    must *resume* the save-state to a byte-identical result.  No-ops
    when checkpointing (``REPRO_CKPT_DIR``) is disabled.
``ckpt-corrupt``
    Save-state writes for selected points are truncated after the
    atomic rename — restore must quarantine the torn file and
    cold-start (every attempt, like ``corrupt``).

``hang``/``kill`` are *disruptive*: they are only injected inside
supervised worker processes, never in-process (a serial sweep injecting
``kill`` would take the whole CLI down, which is not the failure mode
under test).  The environment is read per call, never at import time.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

ENV_VAR = "REPRO_CHAOS"

#: individual fault names (profile ``all`` expands to this tuple)
FAULTS: Tuple[str, ...] = ("raise", "flaky", "hang", "kill", "corrupt",
                           "preempt", "ckpt-corrupt")

#: faults that are injected on the first attempt only, so a retry (or a
#: watchdog kill + retry) recovers the point
TRANSIENT_FAULTS: Tuple[str, ...] = ("flaky", "hang", "kill", "preempt")

#: faults that require a sacrificial worker process
DISRUPTIVE_FAULTS: Tuple[str, ...] = ("hang", "kill")

#: how long an injected hang sleeps — effectively forever next to any
#: reasonable per-point deadline
HANG_SECONDS = 3600.0

#: default fraction of points each fault hits (numerator, denominator)
DEFAULT_RATE: Tuple[int, int] = (1, 3)


class ChaosError(RuntimeError):
    """Injected *permanent* failure (the ``raise`` fault)."""


@dataclass(frozen=True)
class ChaosConfig:
    """Parsed ``REPRO_CHAOS`` value: which faults, which seed, what rate."""

    faults: Tuple[str, ...]
    seed: int = 0
    rate_num: int = DEFAULT_RATE[0]
    rate_den: int = DEFAULT_RATE[1]

    def __post_init__(self) -> None:
        unknown = set(self.faults) - set(FAULTS)
        if unknown:
            raise ValueError(
                f"unknown chaos fault(s) {sorted(unknown)}; "
                f"available: {list(FAULTS)} (or 'all')")
        if not (0 < self.rate_num <= self.rate_den):
            raise ValueError("chaos rate must satisfy 0 < num <= den")

    def describe(self) -> str:
        return (f"{','.join(self.faults)}:{self.seed}"
                f":{self.rate_num}/{self.rate_den}")


def parse_chaos(raw: str) -> ChaosConfig:
    """Parse ``<profile>:<seed>[:<num>/<den>]`` into a :class:`ChaosConfig`."""
    parts = raw.strip().split(":")
    if not parts or not parts[0]:
        raise ValueError(f"empty {ENV_VAR} profile in {raw!r}")
    if len(parts) > 3:
        raise ValueError(
            f"bad {ENV_VAR} value {raw!r}; "
            "expected <profile>:<seed>[:<num>/<den>]")
    names = tuple(p.strip() for p in parts[0].split(",") if p.strip())
    if names == ("all",):
        names = FAULTS
    seed = 0
    if len(parts) >= 2 and parts[1].strip():
        seed = int(parts[1])
    num, den = DEFAULT_RATE
    if len(parts) == 3:
        frac = parts[2].split("/")
        if len(frac) != 2:
            raise ValueError(f"bad chaos rate {parts[2]!r}; expected num/den")
        num, den = int(frac[0]), int(frac[1])
    return ChaosConfig(faults=names, seed=seed, rate_num=num, rate_den=den)


def chaos_from_env(
        env: Optional[Dict[str, str]] = None) -> Optional[ChaosConfig]:
    """The active chaos config, or ``None`` when ``REPRO_CHAOS`` is unset.

    Read per call (cheap: one dict lookup when unset) so tests can flip
    the variable without cache invalidation; worker processes inherit it
    through the environment like ``REPRO_SANITIZE``.
    """
    e: Dict[str, str] = dict(os.environ) if env is None else env
    raw = e.get(ENV_VAR, "").strip()
    if not raw or raw.lower() in ("0", "off", "none"):
        return None
    return parse_chaos(raw)


def should_inject(cfg: ChaosConfig, fault: str, key: str,
                  attempt: int = 0) -> bool:
    """Deterministic per-(fault, point) decision.

    Transient faults fire on attempt 0 only, so the supervisor's retry is
    guaranteed to converge; ``raise`` fires on every attempt (permanent
    failure) and ``corrupt`` on every store write while chaos is on.
    """
    if fault not in cfg.faults:
        return False
    if fault in TRANSIENT_FAULTS and attempt > 0:
        return False
    digest = hashlib.sha256(
        f"{cfg.seed}:{fault}:{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big") % cfg.rate_den < cfg.rate_num


def planned_faults(cfg: ChaosConfig, key: str) -> Tuple[str, ...]:
    """Every fault that will hit ``key`` on its first attempt (test aid)."""
    return tuple(f for f in cfg.faults if should_inject(cfg, f, key, 0))


def inject_execute(cfg: ChaosConfig, key: str, attempt: int,
                   disruptive_ok: bool) -> None:
    """Fire any execute-stage fault selected for ``(key, attempt)``.

    Called by the supervised worker (``disruptive_ok=True``) and by the
    serial runner (``disruptive_ok=False`` — hang/kill would take the
    main process down, so serial sweeps only see exception faults).
    Order is fixed (kill > hang > preempt > flaky > raise) so a point
    selected for several faults behaves identically everywhere.
    ``preempt`` only latches a request; the checkpoint policy consumes
    it at the next watcher boundary inside the simulation.
    """
    if disruptive_ok and should_inject(cfg, "kill", key, attempt):
        os._exit(137)
    if disruptive_ok and should_inject(cfg, "hang", key, attempt):
        time.sleep(HANG_SECONDS)
    if should_inject(cfg, "preempt", key, attempt):
        from ..harness.preempt import chaos_preempt
        chaos_preempt()
    if should_inject(cfg, "flaky", key, attempt):
        raise OSError(f"chaos: injected transient fault for {key[:12]}")
    if should_inject(cfg, "raise", key, attempt):
        raise ChaosError(f"chaos: injected permanent fault for {key[:12]}")


def corrupt_entry(cfg: ChaosConfig, key: str, path: "os.PathLike[str]") -> bool:
    """Truncate a freshly written store entry if ``key`` is selected.

    Returns True when the entry was corrupted.  Truncation to half the
    payload guarantees a JSON parse error, which is exactly what a
    process killed mid-write (pre-atomic-rename filesystems, torn NFS
    writes) leaves behind.
    """
    if not should_inject(cfg, "corrupt", key):
        return False
    data = b""
    with open(path, "rb") as handle:
        data = handle.read()
    with open(path, "wb") as handle:
        handle.write(data[:max(1, len(data) // 2)])
    return True
