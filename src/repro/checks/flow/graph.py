"""Whole-program call-graph construction for SimSan-Flow.

Takes the per-module facts from :mod:`repro.checks.flow.extract` and
resolves their descriptors into edges between function qualnames:

* direct calls and module-function references,
* ``self.m()`` through the class MRO (bases resolved by name within
  the project),
* calls through *stored bound methods* (``self._cb = self._fill`` then
  ``self._cb(...)`` — the PR 2 hot-path callback idiom),
* attribute calls through inferred receiver types (constructor
  assignments ``self.x = Foo(...)``, parameter/attribute annotations,
  ``v = Foo(...)`` locals, and ``v = Cls.from_dict(...)`` classmethod
  constructors),
* registry indirection: string-table registries (dict literals whose
  values are ``module:Class`` qualnames, discovered structurally) and
  decorator registries (via the ``REGISTRY_RESOLVERS`` manifest),
* a capped *name fallback* for attribute calls whose receiver type is
  unknown (``obj.on_hit(...)`` links to every project method named
  ``on_hit`` unless the name is a generic container method).

References scheduled onto an engine (``*.post/at/after`` arguments)
produce ``sched`` edges and their targets are recorded separately —
the event loop invokes them directly, so they are reachability roots.
"""

from __future__ import annotations

from typing import (Any, Dict, Iterable, List, Optional,
                    Sequence, Set, Tuple)

from .extract import ClassFacts, Desc, FunctionFacts, ModuleFacts

#: generic container/string/IO methods excluded from name fallback —
#: they would fan out to unrelated classes without telling us anything
_GENERIC_METHODS = frozenset({
    "get", "items", "keys", "values", "update", "append", "add", "pop",
    "popitem", "popleft", "appendleft", "clear", "copy", "extend",
    "insert", "remove", "discard", "setdefault", "sort", "reverse",
    "join", "split", "rsplit", "strip", "lstrip", "rstrip",
    "startswith", "endswith", "format", "encode", "decode", "write",
    "read", "readline", "readlines", "close", "flush", "seek", "tell",
    "group", "groups", "search", "match", "fullmatch", "sub",
    "findall", "finditer", "lower", "upper", "replace", "count",
    "index", "exists", "mkdir", "unlink", "resolve", "put", "send",
    "recv", "poll", "join_thread", "terminate", "start", "wait",
    "acquire", "release", "hexdigest", "digest", "most_common",
})

#: name fallback gives up beyond this many candidate methods
_FALLBACK_CAP = 12


class Edge:
    """A resolved edge in the call graph."""

    __slots__ = ("src", "dst", "kind", "line", "fallback", "nested")

    def __init__(self, src: str, dst: str, kind: str, line: int,
                 fallback: bool = False, nested: bool = False) -> None:
        self.src = src
        self.dst = dst
        self.kind = kind        # call | ref | sched | registry
        self.line = line
        self.fallback = fallback   # resolved only by method-name match
        self.nested = nested       # site inside a nested def/lambda

    def __repr__(self) -> str:   # pragma: no cover - debug aid
        return f"Edge({self.src} -[{self.kind}]-> {self.dst} @{self.line})"


class ProjectIndex:
    """Cross-module lookup tables over a set of extracted modules."""

    def __init__(self, modules: Iterable[ModuleFacts]) -> None:
        self.modules: Dict[str, ModuleFacts] = {}
        self.by_path: Dict[str, ModuleFacts] = {}
        self.functions: Dict[str, FunctionFacts] = {}
        self.classes: Dict[str, ClassFacts] = {}
        self.methods_by_name: Dict[str, List[str]] = {}
        for mod in modules:
            self.modules[mod.module] = mod
            self.by_path[mod.path] = mod
            for fn in mod.functions.values():
                self.functions[fn.qualname] = fn
            if mod.module_level is not None:
                self.functions[mod.module_level.qualname] = mod.module_level
            for cls in mod.classes.values():
                self.classes[cls.qualname] = cls
                for name, meth in cls.methods.items():
                    self.functions[meth.qualname] = meth
                    self.methods_by_name.setdefault(
                        name, []).append(meth.qualname)

    # -- class / method resolution --------------------------------------
    def resolve_class_desc(self, desc: Desc,
                           mod: ModuleFacts) -> Optional[ClassFacts]:
        """Class named by ``desc`` as seen from module ``mod``."""
        if desc[0] == "name":
            name = desc[1]
            if name in mod.classes:
                return mod.classes[name]
            target = self._chase_import(mod, name)
            if target is not None and target in self.classes:
                return self.classes[target]
        elif desc[0] == "name_attr":
            base, attr = desc[1], desc[2]
            bound = mod.imports.get(base)
            if bound is not None and bound[1] is None:
                # module alias: base.attr names a class in that module
                target = self._chase_qualname(f"{bound[0]}.{attr}")
                if target is not None and target in self.classes:
                    return self.classes[target]
            # classmethod constructor: Cls.from_dict(...) builds a Cls
            owner = self.resolve_class_desc(("name", base), mod)
            if owner is not None:
                return owner
        return None

    def _chase_import(self, mod: ModuleFacts, name: str,
                      depth: int = 0) -> Optional[str]:
        """Qualname that ``name`` is bound to in ``mod`` (re-exports ok)."""
        bound = mod.imports.get(name)
        if bound is None or depth > 4:
            return None
        source_mod, attr = bound
        if attr is None:
            return None
        return self._chase_qualname(f"{source_mod}.{attr}", depth)

    def _chase_qualname(self, qualname: str,
                        depth: int = 0) -> Optional[str]:
        """Follow ``pkg.name`` through package re-exports to a def."""
        if qualname in self.functions or qualname in self.classes:
            return qualname
        head, _, tail = qualname.rpartition(".")
        via = self.modules.get(head)
        if via is not None and tail in via.imports:
            return self._chase_import(via, tail, depth + 1)
        return None

    def resolve_method(self, cls: ClassFacts, name: str,
                       _seen: Optional[Set[str]] = None) -> Optional[str]:
        """Qualname of method ``name`` on ``cls``, walking the MRO."""
        seen = _seen if _seen is not None else set()
        if cls.qualname in seen:
            return None
        seen.add(cls.qualname)
        if name in cls.methods:
            return cls.methods[name].qualname
        mod = self.modules.get(cls.module)
        if mod is None:
            return None
        for base_desc in cls.bases:
            base = self.resolve_class_desc(base_desc, mod)
            if base is not None:
                found = self.resolve_method(base, name, seen)
                if found is not None:
                    return found
        return None

    def constructor_targets(self, cls: ClassFacts) -> List[str]:
        init = self.resolve_method(cls, "__init__")
        return [init] if init is not None else []


class CallGraph:
    """Resolved call graph: function qualnames and typed edges."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.nodes: Dict[str, FunctionFacts] = dict(index.functions)
        self.out: Dict[str, List[Edge]] = {}
        self.sched_targets: Set[str] = set()

    def add_edge(self, src: str, dst: str, kind: str, line: int,
                 fallback: bool = False, nested: bool = False) -> None:
        self.out.setdefault(src, []).append(
            Edge(src, dst, kind, line, fallback=fallback, nested=nested))
        if kind == "sched":
            self.sched_targets.add(dst)

    def successors(self, qualname: str) -> List[Edge]:
        return self.out.get(qualname, [])

    def predecessors(self) -> Dict[str, List[Edge]]:
        rev: Dict[str, List[Edge]] = {}
        for edges in self.out.values():
            for edge in edges:
                rev.setdefault(edge.dst, []).append(edge)
        return rev

    def reachable(self, roots: Iterable[str],
                  domain: Optional[Sequence[str]] = None) -> Set[str]:
        """Closure over all edge kinds, optionally restricted to
        functions whose module starts with a ``domain`` prefix."""
        def in_domain(qualname: str) -> bool:
            if domain is None:
                return True
            fn = self.nodes.get(qualname)
            return fn is not None and fn.module.startswith(tuple(domain))

        frontier = [q for q in roots if q in self.nodes and in_domain(q)]
        seen: Set[str] = set(frontier)
        while frontier:
            current = frontier.pop()
            for edge in self.out.get(current, ()):
                dst = edge.dst
                if dst in seen or dst not in self.nodes:
                    continue
                if not in_domain(dst):
                    continue
                seen.add(dst)
                frontier.append(dst)
        return seen

    # -- export ---------------------------------------------------------
    def to_json(self, hot: Optional[Set[str]] = None,
                worker: Optional[Set[str]] = None) -> Dict[str, Any]:
        hot = hot or set()
        worker = worker or set()
        nodes = [{
            "qualname": q,
            "module": fn.module,
            "path": fn.path,
            "line": fn.line,
            "hot": q in hot,
            "worker": q in worker,
        } for q, fn in sorted(self.nodes.items())]
        edges = [{
            "src": e.src, "dst": e.dst, "kind": e.kind, "line": e.line,
            "fallback": e.fallback, "nested": e.nested,
        } for edges in self.out.values() for e in edges]
        edges.sort(key=lambda e: (e["src"], e["dst"], e["line"]))
        return {
            "schema": "repro.flow.call-graph/v1",
            "nodes": nodes,
            "edges": edges,
            "scheduled_targets": sorted(self.sched_targets),
        }

    def to_dot(self, hot: Optional[Set[str]] = None) -> str:
        hot = hot or set()
        lines = ["digraph simsan_flow {", "  rankdir=LR;",
                 '  node [shape=box, fontsize=9];']
        by_module: Dict[str, List[str]] = {}
        for q, fn in sorted(self.nodes.items()):
            if fn.name == "<module>" and q not in self.out:
                continue
            by_module.setdefault(fn.module, []).append(q)
        for i, (module, quals) in enumerate(sorted(by_module.items())):
            lines.append(f'  subgraph cluster_{i} {{')
            lines.append(f'    label="{module}"; color=gray;')
            for q in quals:
                label = q[len(module) + 1:] if q.startswith(module) else q
                style = ', style=filled, fillcolor="#ffd8a8"' if q in hot \
                    else ""
                lines.append(f'    "{q}" [label="{label}"{style}];')
            lines.append("  }")
        for edges in self.out.values():
            for e in edges:
                if e.dst not in self.nodes:
                    continue
                attr = {"sched": ' [color=red]',
                        "registry": ' [style=dashed]',
                        "ref": ' [color=gray]'}.get(e.kind, "")
                lines.append(f'  "{e.src}" -> "{e.dst}"{attr};')
        lines.append("}")
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Descriptor resolution
# ----------------------------------------------------------------------
class _Resolver:
    """Resolves site descriptors to ``(qualname, via_fallback)`` pairs."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index

    def targets(self, desc: Desc, fn: FunctionFacts, mod: ModuleFacts,
                cls: Optional[ClassFacts], allow_fallback: bool,
                _seen: Optional[Set[Desc]] = None,
                ) -> List[Tuple[str, bool]]:
        seen = _seen if _seen is not None else set()
        if desc in seen:
            return []
        seen.add(desc)
        index = self.index
        kind = desc[0]

        if kind == "name":
            name = desc[1]
            if name in fn.var_funcs:
                return self.targets(fn.var_funcs[name], fn, mod, cls,
                                    allow_fallback, seen)
            if name in mod.functions:
                return [(mod.functions[name].qualname, False)]
            if name in mod.classes:
                return _exact(index.constructor_targets(mod.classes[name]))
            target = index._chase_import(mod, name)
            if target is not None:
                if target in index.functions:
                    return [(target, False)]
                if target in index.classes:
                    return _exact(
                        index.constructor_targets(index.classes[target]))
            return []

        if kind == "self":
            if cls is None:
                return []
            method = desc[1]
            out: List[Tuple[str, bool]] = []
            resolved = index.resolve_method(cls, method)
            if resolved is not None:
                out.append((resolved, False))
            for stored in cls.stored_methods.get(method, ()):
                hit = index.resolve_method(cls, stored)
                if hit is not None:
                    out.append((hit, False))
            if not out and allow_fallback:
                return self._fallback(method)
            return out

        if kind == "self_attr":
            if cls is None:
                return []
            attr, method = desc[1], desc[2]
            out = []
            for type_desc in cls.attr_types.get(attr, ()):
                owner = self._value_class(type_desc, mod)
                if owner is not None:
                    hit = index.resolve_method(owner, method)
                    if hit is not None:
                        out.append((hit, False))
            if not out and allow_fallback:
                return self._fallback(method)
            return out

        if kind == "var_attr":
            var, method = desc[1], desc[2]
            out = []
            type_desc = fn.var_types.get(var)
            if type_desc is not None:
                owner = self._value_class(type_desc, mod)
                if owner is not None:
                    hit = index.resolve_method(owner, method)
                    if hit is not None:
                        out.append((hit, False))
            if not out and allow_fallback:
                return self._fallback(method)
            return out

        if kind == "name_attr":
            base, method = desc[1], desc[2]
            if base in mod.classes:
                hit = index.resolve_method(mod.classes[base], method)
                return [(hit, False)] if hit is not None else []
            bound = mod.imports.get(base)
            if bound is not None:
                source_mod, attr = bound
                prefix = source_mod if attr is None else \
                    f"{source_mod}.{attr}"
                if attr is None or prefix in index.modules:
                    target = index._chase_qualname(f"{prefix}.{method}")
                    if target is not None:
                        if target in index.functions:
                            return [(target, False)]
                        if target in index.classes:
                            return _exact(index.constructor_targets(
                                index.classes[target]))
                elif attr is not None:
                    target = index._chase_qualname(prefix)
                    if target is not None and target in index.classes:
                        hit = index.resolve_method(
                            index.classes[target], method)
                        if hit is not None:
                            return [(hit, False)]
            if allow_fallback:
                return self._fallback(method)
            return []

        return []

    def _value_class(self, type_desc: Desc,
                     mod: ModuleFacts) -> Optional[ClassFacts]:
        """Class a value of ``type_desc`` has: direct class reference,
        or a factory function's return annotation."""
        index = self.index
        owner = index.resolve_class_desc(type_desc, mod)
        if owner is not None:
            return owner
        target: Optional[str] = None
        if type_desc[0] == "name":
            if type_desc[1] in mod.functions:
                target = mod.functions[type_desc[1]].qualname
            else:
                target = index._chase_import(mod, type_desc[1])
        elif type_desc[0] == "name_attr":
            bound = mod.imports.get(type_desc[1])
            if bound is not None and bound[1] is None:
                target = index._chase_qualname(
                    f"{bound[0]}.{type_desc[2]}")
        if target is not None and target in index.functions:
            factory = index.functions[target]
            factory_mod = index.modules.get(factory.module)
            if factory.returns and factory_mod is not None:
                return index.resolve_class_desc(
                    ("name", factory.returns), factory_mod)
        return None

    def _fallback(self, method: str) -> List[Tuple[str, bool]]:
        if method in _GENERIC_METHODS or method.startswith("__"):
            return []
        candidates = self.index.methods_by_name.get(method, [])
        if 0 < len(candidates) <= _FALLBACK_CAP:
            return [(q, True) for q in candidates]
        return []


def _exact(qualnames: List[str]) -> List[Tuple[str, bool]]:
    return [(q, False) for q in qualnames]


# ----------------------------------------------------------------------
# Graph construction
# ----------------------------------------------------------------------
def build_graph(modules: Sequence[ModuleFacts],
                registry_resolvers: Optional[Dict[str, str]] = None,
                ) -> Tuple[CallGraph, ProjectIndex]:
    """Resolve every call/ref site and return the finished graph."""
    index = ProjectIndex(modules)
    graph = CallGraph(index)
    resolver = _Resolver(index)

    for mod in modules:
        functions: List[Tuple[FunctionFacts, Optional[ClassFacts]]] = []
        for fn in mod.functions.values():
            functions.append((fn, None))
        if mod.module_level is not None:
            functions.append((mod.module_level, None))
        for cls in mod.classes.values():
            for meth in cls.methods.values():
                functions.append((meth, cls))

        for fn, cls in functions:
            for site in fn.calls:
                for dst, fb in resolver.targets(site.desc, fn, mod, cls,
                                                allow_fallback=True):
                    kind = "sched" if site.scheduled else "call"
                    graph.add_edge(fn.qualname, dst, kind, site.line,
                                   fallback=fb, nested=site.nested)
            for site in fn.refs:
                for dst, fb in resolver.targets(
                        site.desc, fn, mod, cls,
                        allow_fallback=site.scheduled):
                    kind = "sched" if site.scheduled else "ref"
                    graph.add_edge(fn.qualname, dst, kind, site.line,
                                   fallback=fb, nested=site.nested)
            # string-table registries: loading the table links the
            # loader to everything the table can name
            for table, values in mod.str_tables.items():
                if table not in fn.names_loaded:
                    continue
                for value in values:
                    _link_table_entry(graph, index, fn, value)

    _link_decorator_registries(graph, index, registry_resolvers or {})
    return graph, index


def _link_table_entry(graph: CallGraph, index: ProjectIndex,
                      fn: FunctionFacts, value: str) -> None:
    qualname = value.replace(":", ".", 1)
    target = index._chase_qualname(qualname)
    if target is None:
        return
    if target in index.classes:
        for ctor in index.constructor_targets(index.classes[target]):
            graph.add_edge(fn.qualname, ctor, "registry", fn.line)
    elif target in index.functions:
        graph.add_edge(fn.qualname, target, "registry", fn.line)


def _link_decorator_registries(graph: CallGraph, index: ProjectIndex,
                               resolvers: Dict[str, str]) -> None:
    """For each resolver -> decorator pair, link the resolver to every
    def the decorator registered (``make_policy`` -> policy ctors)."""
    for resolver_q, decorator_q in resolvers.items():
        if resolver_q not in index.functions:
            continue
        resolver_fn = index.functions[resolver_q]
        for mod in index.modules.values():
            for cls in mod.classes.values():
                if _decorated_by(index, mod, cls.decorators, decorator_q):
                    for ctor in index.constructor_targets(cls):
                        graph.add_edge(resolver_q, ctor, "registry",
                                       resolver_fn.line)
            for target_fn in mod.functions.values():
                if _decorated_by(index, mod, target_fn.decorators,
                                 decorator_q):
                    graph.add_edge(resolver_q, target_fn.qualname,
                                   "registry", resolver_fn.line)


def _decorated_by(index: ProjectIndex, mod: ModuleFacts,
                  decorators: Sequence[Desc], decorator_q: str) -> bool:
    for desc in decorators:
        if desc[0] == "name":
            if mod.functions.get(desc[1]) is not None \
                    and mod.functions[desc[1]].qualname == decorator_q:
                return True
            if index._chase_import(mod, desc[1]) == decorator_q:
                return True
        elif desc[0] == "name_attr":
            bound = mod.imports.get(desc[1])
            if bound is not None and bound[1] is None:
                if index._chase_qualname(
                        f"{bound[0]}.{desc[2]}") == decorator_q:
                    return True
    return False
