"""The SimSan-Flow analysis passes.

Runs over the resolved call graph (:mod:`repro.checks.flow.graph`):

1. **Manifest integrity** (SS501) — every ``HOT_PATH_MANIFEST`` /
   ``ENGINE_MODULES`` / ``TRACE_CACHE_EXEMPT_MODULES`` entry must name
   a definition that still exists.
2. **Hot-path reachability** (SS502/SS503) — the *derived* hot set is
   the closure of the engine entry points plus every callback scheduled
   onto an engine, restricted to the deterministic domain.  Manifest
   entries and ``# hot:`` tags outside the derived set are stale;
   derived functions without a tag are missing one.
3. **Determinism taint** (SS510) — functions transitively reaching a
   nondeterminism source are *tainted* (sanitizers cut propagation);
   sink-domain code calling a tainted out-of-domain helper, or directly
   reading env/``id()``/``os.urandom``, is flagged.
4. **Worker/fork safety** (SS601/SS602/SS603) — over the closure of
   the pool worker entry points: module-global writes, raw env reads
   outside ``WORKER_ENV_API``, and import-time calls that capture
   env/clock-derived state.

Findings honor the same ``# simsan: skip=<ID>`` comments as the lint
engine, and the report records which suppressions fired so the CLI's
unused-suppression audit (SS303) can account for them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import (Dict, FrozenSet, Iterable, List, Optional, Sequence,
                    Set, Tuple, Union)

from ..lint.engine import Finding, _iter_python_files
from ..lint.rules import (ENGINE_MODULES, HOT_PATH_MANIFEST,
                          TRACE_CACHE_EXEMPT_MODULES)
from . import rules as flow_rules
from .extract import ModuleFacts, extract_module
from .graph import CallGraph, ProjectIndex, build_graph

#: taint kinds that make import-time capture diverge between pool modes
_ENVLIKE_KINDS = frozenset({"env", "clock", "urandom"})

#: taint kinds in sink-domain code not already policed per-file by
#: SS101 (rng), SS102 (clock), SS103 (set-iter)
_DIRECT_SINK_KINDS = frozenset({"env", "id", "urandom"})


@dataclass
class FlowConfig:
    """Manifests the analysis runs against (overridable for fixtures)."""

    hot_roots: FrozenSet[str] = flow_rules.HOT_ROOTS
    hot_domain: Tuple[str, ...] = flow_rules.HOT_DOMAIN
    taint_sink_domain: Tuple[str, ...] = flow_rules.TAINT_SINK_DOMAIN
    taint_sanitizers: FrozenSet[str] = flow_rules.TAINT_SANITIZERS
    worker_roots: FrozenSet[str] = flow_rules.WORKER_ROOTS
    worker_env_api: FrozenSet[str] = flow_rules.WORKER_ENV_API
    registry_resolvers: Dict[str, str] = field(
        default_factory=lambda: dict(flow_rules.REGISTRY_RESOLVERS))
    hot_manifest: FrozenSet[str] = HOT_PATH_MANIFEST
    engine_modules: FrozenSet[str] = ENGINE_MODULES
    trace_exempt_modules: FrozenSet[str] = TRACE_CACHE_EXEMPT_MODULES
    #: module holding the manifests, for SS501 finding locations
    manifest_module: str = "repro.checks.lint.rules"


@dataclass
class FlowReport:
    """Everything the flow analysis produced."""

    findings: List[Finding]
    graph: CallGraph
    index: ProjectIndex
    hot_derived: Set[str]
    worker_closure: Set[str]
    tainted: Dict[str, Tuple[str, str]]        # qualname -> (kind, origin)
    used_suppressions: Set[Tuple[str, int, str]]   # (path, line, rule_id)


class _Reporter:
    """Suppression-aware finding sink."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.findings: List[Finding] = []
        self.used: Set[Tuple[str, int, str]] = set()

    def report(self, rule_id: str, path: str, line: int,
               message: str) -> None:
        mod = self.index.by_path.get(path)
        if mod is not None:
            if mod.skip_file:
                return
            ids = mod.suppressions.get(line)
            if ids and rule_id in ids:
                self.used.add((path, line, rule_id))
                return
        self.findings.append(Finding(path, line, 0, rule_id, message))


# ----------------------------------------------------------------------
# Passes
# ----------------------------------------------------------------------
def _manifest_location(index: ProjectIndex, config: FlowConfig,
                       table: str) -> Tuple[str, int]:
    mod = index.modules.get(config.manifest_module)
    if mod is not None:
        return mod.path, mod.global_vars.get(table, 1)
    first = min(index.by_path) if index.by_path else "<manifest>"
    return first, 1


def _check_manifests(rep: _Reporter, index: ProjectIndex,
                     config: FlowConfig) -> None:
    path, line = _manifest_location(index, config, "HOT_PATH_MANIFEST")
    for qualname in sorted(config.hot_manifest):
        if qualname not in index.functions:
            rep.report("SS501", path, line,
                       f"HOT_PATH_MANIFEST entry '{qualname}' does not "
                       "name a function in the tree")
    for table, modules in (("ENGINE_MODULES", config.engine_modules),
                           ("TRACE_CACHE_EXEMPT_MODULES",
                            config.trace_exempt_modules)):
        path, line = _manifest_location(index, config, table)
        for module in sorted(modules):
            if module not in index.modules:
                rep.report("SS501", path, line,
                           f"{table} entry '{module}' does not name a "
                           "module in the tree")


def _derive_hot(graph: CallGraph, config: FlowConfig) -> Set[str]:
    roots = set(config.hot_roots) | graph.sched_targets
    derived = graph.reachable(roots, domain=config.hot_domain)
    return {q for q in derived if not q.endswith(".<module>")}


def _check_hot_path(rep: _Reporter, graph: CallGraph, index: ProjectIndex,
                    config: FlowConfig, hot_derived: Set[str]) -> None:
    # SS502 — manifest entries / tags the event loop cannot reach
    for qualname in sorted(config.hot_manifest):
        fn = index.functions.get(qualname)
        if fn is None:        # SS501 already covers nonexistent entries
            continue
        if qualname not in hot_derived:
            rep.report("SS502", fn.path, fn.line,
                       f"'{qualname}' is in HOT_PATH_MANIFEST but the "
                       "event loop cannot reach it")
    for fn in index.functions.values():
        if (fn.hot_tagged and fn.module.startswith(config.hot_domain)
                and fn.qualname not in hot_derived
                and fn.qualname not in config.hot_manifest):
            rep.report("SS502", fn.path, fn.line,
                       f"'{fn.qualname}' carries a '# hot:' tag but the "
                       "event loop cannot reach it")
    # SS503 — reachable but untagged
    for qualname in sorted(hot_derived):
        fn = index.functions[qualname]
        if fn.is_dunder or fn.name == "<module>":
            continue
        if fn.hot_tagged or qualname in config.hot_manifest:
            continue
        rep.report("SS503", fn.path, fn.line,
                   f"'{qualname}' is reachable from the engine event "
                   "loop but carries no hot tag")


def _propagate_taint(graph: CallGraph, kinds: Optional[FrozenSet[str]],
                     sanitizers: FrozenSet[str],
                     executed_only: bool = False,
                     ) -> Dict[str, Tuple[str, str]]:
    """Fixpoint: qualname -> (source kind, origin qualname).

    ``kinds=None`` means every source kind taints.  Taint does not
    propagate *out of* a sanitizer (the function itself stays marked,
    so direct-source checks still see it), and never along
    name-fallback edges — they over-approximate reachability, which is
    fine for closures but would smear taint across unrelated classes.
    ``executed_only`` restricts the model to code that runs when the
    function is *called*: sources/edges inside nested defs (closure
    factories) are excluded.
    """
    tainted: Dict[str, Tuple[str, str]] = {}
    for qualname, fn in graph.nodes.items():
        for source in fn.sources:
            if executed_only and source.nested:
                continue
            if kinds is None or source.kind in kinds:
                tainted[qualname] = (source.kind, qualname)
                break
    rev = graph.predecessors()
    frontier = [q for q in tainted if q not in sanitizers]
    while frontier:
        current = frontier.pop()
        witness = tainted[current]
        for edge in rev.get(current, ()):
            if edge.fallback or (executed_only and edge.nested):
                continue
            src = edge.src
            if src in tainted:
                continue
            tainted[src] = witness
            if src not in sanitizers:
                frontier.append(src)
    return tainted


def _check_taint(rep: _Reporter, graph: CallGraph, index: ProjectIndex,
                 config: FlowConfig,
                 tainted: Dict[str, Tuple[str, str]]) -> None:
    sink_domain = tuple(config.taint_sink_domain)
    for qualname, fn in index.functions.items():
        if not fn.module.startswith(sink_domain):
            continue
        if qualname in config.taint_sanitizers or fn.name == "<module>":
            continue
        # direct sources the per-file rules do not already police
        for source in fn.sources:
            if source.kind in _DIRECT_SINK_KINDS:
                rep.report("SS510", fn.path, source.line,
                           f"'{qualname}' reads a nondeterminism source "
                           f"({source.detail}) inside the deterministic "
                           "domain")
        # calls that cross out of the sink domain into tainted code
        for edge in graph.successors(qualname):
            if edge.fallback:
                continue
            info = tainted.get(edge.dst)
            if info is None or edge.dst in config.taint_sanitizers:
                continue
            callee = index.functions.get(edge.dst)
            if callee is not None and callee.module.startswith(sink_domain):
                continue       # in-domain callee reported at its own site
            kind, origin = info
            rep.report("SS510", fn.path, edge.line,
                       f"call to '{edge.dst}' reaches a nondeterminism "
                       f"source ({kind} in '{origin}')")


def _check_workers(rep: _Reporter, graph: CallGraph, index: ProjectIndex,
                   config: FlowConfig, closure: Set[str]) -> None:
    for qualname in sorted(closure):
        fn = index.functions[qualname]
        if fn.name == "<module>":
            continue
        mod = index.modules.get(fn.module)
        module_names: Set[str] = set()
        if mod is not None:
            module_names = set(mod.global_vars) | set(mod.classes)
        # SS601 — module-global writes
        for gw in fn.global_writes:
            definitely_global = gw.how in ("assign", "augassign")
            if definitely_global or gw.name in module_names:
                rep.report("SS601", fn.path, gw.line,
                           f"'{qualname}' writes module-level state "
                           f"'{gw.name}' ({gw.how}) and is reachable "
                           "from a pool worker")
        # SS602 — raw env reads outside the reviewed accessors
        if qualname not in config.worker_env_api:
            for source in fn.sources:
                if source.kind == "env":
                    rep.report("SS602", fn.path, source.line,
                               f"'{qualname}' reads the environment "
                               f"({source.detail}) outside WORKER_ENV_API "
                               "and is reachable from a pool worker")


def _check_import_time(rep: _Reporter, graph: CallGraph,
                       index: ProjectIndex, config: FlowConfig) -> None:
    envlike = _propagate_taint(graph, _ENVLIKE_KINDS, frozenset(),
                               executed_only=True)
    for mod in index.modules.values():
        mfn = mod.module_level
        if mfn is None:
            continue
        for edge in graph.successors(mfn.qualname):
            if edge.kind != "call" or edge.fallback or edge.nested:
                continue
            info = envlike.get(edge.dst)
            if info is None:
                continue
            kind, origin = info
            rep.report("SS603", mod.path, edge.line,
                       f"import-time call to '{edge.dst}' captures "
                       f"{kind}-derived state (source in '{origin}'); "
                       "persistent-pool workers freeze it at fork")


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def analyze_modules(modules: Sequence[ModuleFacts],
                    config: Optional[FlowConfig] = None) -> FlowReport:
    config = config or FlowConfig()
    graph, index = build_graph(
        modules, registry_resolvers=config.registry_resolvers)
    rep = _Reporter(index)

    _check_manifests(rep, index, config)
    hot_derived = _derive_hot(graph, config)
    _check_hot_path(rep, graph, index, config, hot_derived)
    tainted = _propagate_taint(graph, None, config.taint_sanitizers)
    _check_taint(rep, graph, index, config, tainted)
    worker_closure = graph.reachable(config.worker_roots)
    _check_workers(rep, graph, index, config, worker_closure)
    _check_import_time(rep, graph, index, config)

    rep.findings.sort(key=lambda f: (f.path, f.line, f.rule_id))
    return FlowReport(findings=rep.findings, graph=graph, index=index,
                      hot_derived=hot_derived,
                      worker_closure=worker_closure, tainted=tainted,
                      used_suppressions=rep.used)


def run_flow(paths: Iterable[Union[str, Path]],
             config: Optional[FlowConfig] = None) -> FlowReport:
    """Extract + analyze every ``.py`` file under ``paths``."""
    modules = [extract_module(p) for p in _iter_python_files(paths)]
    return analyze_modules(modules, config=config)
